"""Negative verifier coverage: hand-built malformed CIL bodies.

The positive path (verifier accepts everything the front end emits) is
exercised all over the suite and by the fuzzing oracle; this file pins the
*rejection* behaviour.  Each case is a structurally broken method body that
the compiler could never emit, paired with the precise diagnostic the
verifier must raise — both that it rejects, and that it rejects for the
right reason (a mis-diagnosed body would make real verifier regressions
invisible).
"""

import pytest

from repro.cil import cts, opcodes as op
from repro.cil.instructions import ExceptionRegion, Instruction
from repro.cil.metadata import LocalVar, MethodDef
from repro.cil.verifier import verify_method
from repro.errors import VerifyError


def _method(
    body,
    return_type=cts.VOID,
    locals=(),
    regions=(),
    name="Bad",
):
    m = MethodDef(
        name=name,
        param_types=[],
        return_type=return_type,
        is_static=True,
        locals=[LocalVar(f"loc{i}", t) for i, t in enumerate(locals)],
        body=list(body),
        regions=list(regions),
    )
    m.declaring_class = "T"
    return m


I = Instruction

#: (case id, MethodDef factory, diagnostic fragment the VerifyError must carry)
CASES = [
    (
        "stack_underflow_binop",
        lambda: _method([I(op.ADD), I(op.RET)]),
        "stack underflow",
    ),
    (
        "stack_underflow_ret_value",
        lambda: _method([I(op.RET)], return_type=cts.INT32),
        "stack underflow",
    ),
    (
        "operand_type_mismatch",
        lambda: _method(
            [I(op.LDC_I4, 1), I(op.LDC_R8, 2.0), I(op.ADD), I(op.POP), I(op.RET)]
        ),
        "operand type mismatch",
    ),
    (
        "store_wrong_type_into_local",
        lambda: _method(
            [I(op.LDC_R8, 1.5), I(op.STLOC, 0), I(op.RET)], locals=[cts.INT32]
        ),
        "cannot store float64 into int32",
    ),
    (
        "return_type_mismatch",
        lambda: _method(
            [I(op.LDC_R8, 1.5), I(op.RET)], return_type=cts.INT32
        ),
        "return type float64 != int32",
    ),
    (
        "stack_not_empty_at_void_ret",
        lambda: _method([I(op.LDC_I4, 7), I(op.RET)]),
        "stack not empty at ret",
    ),
    (
        "fall_off_end",
        lambda: _method([I(op.LDC_I4, 1), I(op.POP), I(op.NOP)]),
        "control falls off end of method",
    ),
    (
        "branch_target_out_of_range",
        lambda: _method([I(op.BR, 99)]),
        "branch target 99 out of range",
    ),
    (
        "negative_branch_target",
        lambda: _method([I(op.BR, -3)]),
        "branch target -3 out of range",
    ),
    (
        "merge_depth_mismatch",
        # brtrue 3 jumps past the push, so index 3 is reached with depth
        # 0 (branch) and depth 1 (fallthrough)
        lambda: _method(
            [
                I(op.LDC_I4, 1),
                I(op.BRTRUE, 3),
                I(op.LDC_I4, 5),
                I(op.NOP),
                I(op.BR, 3),
            ]
        ),
        "stack depth mismatch",
    ),
    (
        "bad_try_range",
        lambda: _method(
            [I(op.NOP), I(op.RET)],
            regions=[
                ExceptionRegion(
                    kind="finally",
                    try_start=0,
                    try_end=40,
                    handler_start=1,
                    handler_end=2,
                )
            ],
        ),
        "bad try range",
    ),
    (
        "bad_handler_range",
        lambda: _method(
            [I(op.NOP), I(op.RET)],
            regions=[
                ExceptionRegion(
                    kind="finally",
                    try_start=0,
                    try_end=1,
                    handler_start=1,
                    handler_end=17,
                )
            ],
        ),
        "bad handler range",
    ),
    (
        "endfinally_outside_finally",
        lambda: _method([I(op.ENDFINALLY)]),
        "endfinally outside finally handler",
    ),
    (
        "rethrow_outside_catch",
        lambda: _method([I(op.RETHROW)]),
        "rethrow outside catch handler",
    ),
    (
        "throw_non_reference",
        lambda: _method([I(op.LDC_I4, 3), I(op.THROW)]),
        "throw on non-reference",
    ),
    (
        "empty_body_non_void",
        lambda: _method([], return_type=cts.INT32),
        "empty body for non-void method",
    ),
]


@pytest.mark.parametrize(
    "factory,fragment",
    [pytest.param(f, frag, id=case_id) for case_id, f, frag in CASES],
)
def test_verifier_rejects_with_precise_diagnostic(factory, fragment):
    method = factory()
    with pytest.raises(VerifyError) as excinfo:
        verify_method(method)
    assert fragment in str(excinfo.value), (
        f"expected diagnostic containing {fragment!r}, got: {excinfo.value}"
    )


def test_verifier_accepts_wellformed_control():
    """Sanity: the same construction path yields an accepted body when the
    control flow and types are actually sound."""
    method = _method(
        [
            I(op.LDC_I4, 1),
            I(op.BRTRUE, 4),
            I(op.LDC_I4, 5),
            I(op.POP),
            I(op.RET),
        ]
    )
    verify_method(method)  # must not raise
