"""Tests for the repro.metrics subsystem.

Same load-bearing property as the profiler: **zero perturbation** —
attaching a :class:`~repro.metrics.MachineMetrics` (alone, or composed
with the cycle-attribution Observer through
:class:`~repro.observe.CompositeObserver`) must leave cycles,
instructions, and results bit-identical to a bare run.  On top of that:
the registry semantics, the telemetry the hooks actually record
(allocation, GC, exceptions, contention, scheduler), the deterministic
flamegraph sampler, and the ``repro-prof flame`` CLI.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import Runner
from repro.lang import compile_source
from repro.metrics import (
    MachineMetrics,
    MetricsError,
    MetricsRegistry,
    StackSampler,
)
from repro.metrics.sampler import RUNTIME_FRAME
from repro.observe import CompositeObserver, Observer
from repro.observe.cli import main as prof_main
from repro.observe.report import profile_to_dict
from repro.runtimes import CLR11, MICRO_PROFILES, MONO023
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

CORPUS = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.cs"))

#: benchmark -> shrunk-but-representative parameter overrides (mirrors
#: tests/test_observe.py so the two subsystems cover the same ground)
BENCH_CASES = {
    "micro.arith": {"Reps": 300},
    "grande.sieve": {"Limit": 600, "Reps": 1},
    "scimark.sor": {"N": 10, "Iters": 2},
}


def bench_pair(name, profile, overrides, **kwargs):
    runner = Runner(profiles=[profile])
    plain = runner.run_on(name, profile, overrides)
    instrumented = runner.run_on(name, profile, overrides, **kwargs)
    return plain, instrumented


def machine_for(source, observer=None, profile=CLR11):
    return Machine(
        LoadedAssembly(compile_source(source)), profile, observer=observer
    )


# ------------------------------------------------------------------ registry


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("a.count")
        c.inc()
        c.add(4)
        c.add(-2)  # compensating charges are legal
        assert c.value == 3
        g = reg.gauge("a.gauge")
        g.set(7)
        g.set(5)
        assert g.value == 5
        h = reg.histogram("a.hist", (10, 100))
        for v in (3, 30, 300, 7):
            h.observe(v)
        assert h.count == 4 and h.total == 340
        assert h.min == 3 and h.max == 300
        assert h.mean == pytest.approx(85.0)
        assert h.bucket_counts == [2, 1, 1]  # <=10, <=100, overflow

    def test_create_or_get_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        reg.counter("x").inc(5)
        assert reg.value("x") == 5
        assert reg.value("never-registered", default=-1) == -1

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(MetricsError, match="already registered as counter"):
            reg.gauge("dual")
        with pytest.raises(MetricsError):
            reg.histogram("dual")

    def test_histogram_bounds_must_ascend(self):
        with pytest.raises(MetricsError, match="ascending"):
            MetricsRegistry().histogram("bad", (100, 10))

    def test_snapshot_shape_and_determinism(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc(2)
            reg.counter("a").inc(1)
            reg.gauge("g").set(9)
            reg.histogram("h", (10,)).observe(4)
            return reg.snapshot()

        snap = build()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert list(snap["counters"]) == ["a", "b"]  # sorted
        assert snap["gauges"]["g"] == 9
        assert snap["histograms"]["h"]["count"] == 1
        # identical construction -> byte-identical serialization
        assert json.dumps(build(), sort_keys=True) == json.dumps(
            snap, sort_keys=True
        )


# --------------------------------------------------------- zero perturbation


class TestZeroPerturbation:
    @pytest.mark.parametrize("profile", MICRO_PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("bench", sorted(BENCH_CASES))
    def test_metrics_runs_bit_identical(self, bench, profile):
        plain, metered = bench_pair(
            bench, profile, BENCH_CASES[bench], metrics=True
        )
        assert metered.total_cycles == plain.total_cycles
        assert metered.instructions == plain.instructions
        assert metered.stdout == plain.stdout
        for name, sec in plain.sections.items():
            msec = metered.sections[name]
            assert msec.cycles == sec.cycles
            assert msec.results == sec.results
            assert msec.ops == sec.ops
        assert metered.metrics is not None

    @pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
    def test_fuzz_corpus_replay_bit_identical(self, path):
        source = path.read_text()
        plain = machine_for(source)
        plain_result = plain.run()
        metrics = MachineMetrics()
        metered = machine_for(source, observer=metrics)
        metered_result = metered.run()
        assert metered_result == plain_result
        assert metered.cycles == plain.cycles
        assert metered.instructions == plain.instructions

    @pytest.mark.parametrize("bench", sorted(BENCH_CASES))
    def test_composite_observer_plus_metrics_bit_identical(self, bench):
        plain, both = bench_pair(
            bench, CLR11, BENCH_CASES[bench], observe=True, metrics=True
        )
        assert both.total_cycles == plain.total_cycles
        assert both.instructions == plain.instructions
        for name, sec in plain.sections.items():
            assert both.sections[name].results == sec.results
        # both sides of the composite saw the whole run
        assert both.metrics["gauges"]["machine.cycles"] == plain.total_cycles
        prof = profile_to_dict(both.observation)
        assert prof["total_cycles"] == plain.total_cycles
        assert sum(prof["categories"].values()) == plain.total_cycles
        assert prof["jit"], "profiler's JIT trace must still record"

    def test_sampler_runs_bit_identical(self):
        plain, sampled = bench_pair(
            "scimark.sor", CLR11, BENCH_CASES["scimark.sor"],
            observe=StackSampler(period=500),
        )
        assert sampled.total_cycles == plain.total_cycles
        assert sampled.instructions == plain.instructions

    def test_metrics_observer_is_single_machine(self):
        metrics = MachineMetrics()
        src = "class P { static int Main() { return 7; } }"
        machine_for(src, observer=metrics).run()
        with pytest.raises(ValueError):
            machine_for(src, observer=metrics)


# -------------------------------------------------------------- telemetry


class TestTelemetry:
    def test_allocation_metrics_match_machine(self):
        metrics = MachineMetrics()
        m = machine_for(
            """
            class Node { Node next; int pad; }
            class P { static Node head;
                static void Main() {
                    for (int i = 0; i < 50; i++) {
                        Node n = new Node(); n.next = head; head = n;
                    }
                }
            }""",
            observer=metrics,
        )
        m.run()
        snap = metrics.snapshot()
        assert m.allocated_bytes > 0
        assert snap["counters"]["heap.allocated_bytes"] == m.allocated_bytes
        assert snap["gauges"]["machine.allocated_bytes"] == m.allocated_bytes
        assert snap["counters"]["heap.allocations"] >= 50
        hist = snap["histograms"]["heap.alloc_bytes"]
        assert hist["count"] == snap["counters"]["heap.allocations"]
        assert hist["total"] == m.allocated_bytes

    def test_gc_metrics(self):
        metrics = MachineMetrics()
        m = machine_for(
            """
            class Node { Node next; }
            class P { static Node head;
                static void Main() {
                    for (int i = 0; i < 30; i++) {
                        Node n = new Node(); n.next = head; head = n;
                    }
                    GC.Collect();
                    GC.Collect();
                }
            }""",
            observer=metrics,
        )
        m.run()
        snap = metrics.snapshot()
        assert m.gc_collections == 2
        assert snap["counters"]["gc.collections"] == 2
        assert snap["gauges"]["machine.gc_collections"] == 2
        assert snap["gauges"]["gc.live_objects"] == m.gc_live_objects
        assert snap["gauges"]["machine.gc_live_objects"] == m.gc_live_objects
        pause = snap["histograms"]["gc.pause_cycles"]
        assert pause["count"] == 2 and pause["total"] > 0

    def test_exception_metrics(self):
        plain, metered = bench_pair(
            "micro.exception", CLR11, {"Reps": 40, "Depth": 4}, metrics=True
        )
        assert metered.total_cycles == plain.total_cycles
        counters = metered.metrics["counters"]
        assert counters["exceptions.thrown"] >= 40
        # deep throws unwind at least one frame per throw
        assert (
            counters["exceptions.frames_unwound"] >= counters["exceptions.thrown"]
        )

    def test_switch_and_quanta_metrics(self):
        plain, metered = bench_pair(
            "threads.lock", CLR11, {"Reps": 60, "ContendedReps": 40},
            metrics=True,
        )
        assert metered.total_cycles == plain.total_cycles
        counters = metered.metrics["counters"]
        gauges = metered.metrics["gauges"]
        assert counters["threads.started"] >= 2
        assert counters["sched.switches"] > 0
        assert gauges["threads.switches"] == counters["sched.switches"]
        assert gauges["threads.quanta"] >= counters["sched.quanta"] > 0
        hist = metered.metrics["histograms"]["sched.quantum_cycles"]
        assert hist["count"] == counters["sched.quanta"]

    #: holds the lock across a yield, so the spawned thread must block on
    #: Monitor.Enter (threads.lock's contenders release before yielding and
    #: therefore never actually contend under cooperative scheduling)
    CONTENTION_SRC = """
    class L { int x; }
    class W { L l;
        virtual void Run() { lock (l) { l.x = l.x + 1; } }
    }
    class P { static int Main() {
        L l = new L();
        W w = new W(); w.l = l;
        int t = Thread.Create(w);
        lock (l) {
            Thread.Start(t);
            Thread.Yield();
            Thread.Yield();
        }
        Thread.Join(t);
        return l.x;
    } }"""

    def test_contention_metric(self):
        metrics = MachineMetrics()
        m = machine_for(self.CONTENTION_SRC, observer=metrics)
        assert m.run() == 1
        snap = metrics.snapshot()
        assert snap["counters"]["monitor.contended"] >= 1
        assert snap["counters"]["threads.started"] == 1

    def test_guest_thread_counters_maintained_unobserved(self):
        # quanta/switches live on the thread records for every run,
        # observed or not — the metrics layer only reads them
        m = machine_for(self.CONTENTION_SRC)
        assert m.run() == 1
        assert len(m.threads) == 2
        assert sum(t.quanta for t in m.threads) > 0
        assert sum(t.switches for t in m.threads) > 0

    def test_jit_and_cycle_category_metrics(self):
        _plain, metered = bench_pair(
            "scimark.sor", CLR11, BENCH_CASES["scimark.sor"], metrics=True
        )
        counters = metered.metrics["counters"]
        gauges = metered.metrics["gauges"]
        assert counters["jit.methods_compiled"] > 0
        assert counters["jit.instrs_lowered"] >= counters["jit.instrs_final"] > 0
        assert counters["jit.pass.enregister.runs"] == counters["jit.methods_compiled"]
        assert counters["jit.inline_requests"] >= counters["jit.inline_available"]
        assert gauges["jit.compile_cycles"] > 0
        # dyn-cycle categories + dispatch must account for real cycles
        cycle_counters = {
            k: v for k, v in counters.items() if k.startswith("cycles.")
        }
        assert cycle_counters and all(v >= 0 for v in cycle_counters.values())

    def test_metrics_in_profile_run_fields(self):
        runner = Runner(profiles=[CLR11])
        run = runner.run_on("micro.arith", CLR11, {"Reps": 300}, metrics=True)
        assert run.metrics is not None
        assert run.metrics["gauges"]["machine.cycles"] == run.total_cycles
        assert run.metrics["gauges"]["machine.instructions"] == run.instructions
        bare = runner.run_on("micro.arith", CLR11, {"Reps": 300})
        assert bare.metrics is None

    def test_run_all_profiles_with_metrics(self):
        runner = Runner(profiles=[CLR11, MONO023])
        runs = runner.run("micro.arith", {"Reps": 300}, metrics=True)
        assert all(r.metrics is not None for r in runs.values())
        snaps = [r.metrics for r in runs.values()]
        assert snaps[0] is not snaps[1]


# ------------------------------------------------------------------ composite


class TestCompositeObserver:
    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeObserver()
        with pytest.raises(ValueError):
            CompositeObserver(None, None)

    def test_benchmark_propagates_to_children(self):
        obs, metrics = Observer(), MachineMetrics()
        comp = CompositeObserver(obs, metrics)
        comp.benchmark = "x.y"
        assert obs.benchmark == "x.y" and metrics.benchmark == "x.y"

    def test_instr_skipped_when_no_child_wants_it(self):
        comp = CompositeObserver(MachineMetrics(), StackSampler())
        assert comp.instr is None  # machine skips the per-instruction call

    def test_jit_trace_fans_out(self):
        obs, metrics = Observer(), MachineMetrics()
        src = """
        class C { static int Add(int a, int b) { return a + b; }
            static int Main() { int s = 0;
                for (int i = 0; i < 10; i++) { s = C.Add(s, i); }
                return s; } }"""
        machine_for(src, observer=CompositeObserver(obs, metrics)).run()
        assert obs.jit.methods, "structural trace must record compilations"
        snap = metrics.snapshot()
        assert snap["counters"]["jit.methods_compiled"] == len(obs.jit.methods)


# -------------------------------------------------------------------- sampler


class TestSampler:
    def _sample(self, period=500, bench="scimark.sor", profile=CLR11):
        sampler = StackSampler(period=period)
        runner = Runner(profiles=[profile])
        run = runner.run_on(bench, profile, BENCH_CASES.get(bench), observe=sampler)
        return sampler, run

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(period=0)

    def test_total_samples_track_total_cycles(self):
        sampler, run = self._sample(period=500)
        # exact tick accounting: one sample per period boundary crossed
        assert sampler.total_samples == run.total_cycles // 500

    def test_collapsed_format(self):
        sampler, _run = self._sample()
        folded = sampler.collapsed()
        lines = folded.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert int(weight) > 0
            frames = stack.split(";")
            assert frames[0] == "main"  # root frame is the thread name
        assert any("SOR::Execute" in line for line in lines)

    def test_deterministic_across_runs(self):
        a, _ = self._sample()
        b, _ = self._sample()
        assert a.collapsed() == b.collapsed()
        assert a.weights == b.weights

    def test_runtime_frame_for_unattributed_time(self):
        # a threaded run has scheduler time with no managed frame on stack
        sampler = StackSampler(period=200)
        runner = Runner(profiles=[CLR11])
        runner.run_on("threads.lock", CLR11,
                      {"Reps": 60, "ContendedReps": 40}, observe=sampler)
        assert sampler.total_samples > 0
        names = {key[0] for key in sampler.weights}
        assert "main" in names
        flat = {frame for key in sampler.weights for frame in key}
        assert RUNTIME_FRAME in flat or len(flat) > 1

    def test_flame_cli_writes_folded_file(self, tmp_path, capsys):
        out = tmp_path / "sor.folded"
        rc = prof_main([
            "flame", "scimark.sor", "--runtime", "clr11",
            "--param", "N=10", "--param", "Iters=2",
            "--period", "500", "--out", str(out),
        ])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        text = out.read_text().strip()
        assert text
        sampler, _run = self._sample(period=500)
        assert text == sampler.collapsed()

    def test_flame_cli_stdout(self, capsys):
        rc = prof_main([
            "flame", "micro.arith", "--runtime", "clr-1.1",
            "--param", "Reps=300",
        ])
        assert rc == 0
        text = capsys.readouterr().out.strip()
        assert "ArithBench" in text
