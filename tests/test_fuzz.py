"""Tier-1 coverage for the differential fuzzing subsystem.

Four properties are pinned here:

* the generator is deterministic (same seed -> same program),
* a small fixed-seed campaign runs the full ablation matrix clean,
* every saved corpus repro replays clean (regressions stay fixed),
* the oracle actually *detects* broken passes — injected bugs in the
  simplify and inline passes must each produce divergences (mutation
  check), otherwise a silently weakened oracle would pass CI forever.

The heavyweight campaign (``repro-fuzz run --seed 42 --count 50``) and the
shrink-quality check live in CI, not here, to keep tier-1 fast.
"""

from pathlib import Path

import pytest

from repro.fuzz import (
    generate_program,
    inject_pass_bug,
    run_campaign,
    run_program,
    shrink_source,
)
from repro.fuzz.shrink import safe_predicate
from repro.lang import compile_source

CORPUS = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.cs"))

#: tiny order-sensitive program: Sub is small enough to inline on every
#: profile that inlines at all, and swapping its arguments changes Main's
#: return value (7 - 3*2 = 1 vs 3 - 7*2 = -11)
INLINE_WITNESS = """
class Fuzz {
    static int Sub(int a, int b) { return (a - (b * 2)); }
    static int Main() { return Sub(7, 3); }
}
"""


def test_generate_program_is_deterministic(rng_seed):
    first = generate_program(rng_seed, budget=20)
    second = generate_program(rng_seed, budget=20)
    assert first.source == second.source
    assert first.seed == second.seed == rng_seed


def test_small_campaign_is_clean():
    result = run_campaign(seed=42, count=5, budget=25)
    assert result.executed == 5
    assert not result.compile_failures, result.compile_failures
    assert result.ok, [
        str(d) for pr in result.failures for d in pr.divergences
    ]


def test_corpus_directory_is_populated():
    assert CORPUS_FILES, f"no corpus entries in {CORPUS}"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_replays_clean(path):
    divergences = run_program(path.read_text(), assembly_name=path.stem)
    assert not divergences, [str(d) for d in divergences]


def test_injected_simplify_bug_is_caught():
    witness = (CORPUS / "simplify_virtual_call.cs").read_text()
    with inject_pass_bug("simplify"):
        divergences = run_program(witness, assembly_name="mut_simplify")
    assert divergences, "broken constant folding went undetected"


def test_injected_inline_bug_is_caught():
    with inject_pass_bug("inline"):
        divergences = run_program(INLINE_WITNESS, assembly_name="mut_inline")
    assert divergences, "broken inliner argument binding went undetected"
    # profiles with inlining disabled must NOT be fooled by the inliner bug
    labels = {d.label for d in divergences}
    assert "mono-0.23" not in labels
    assert "sscli-1.0" not in labels


def test_shrinker_minimizes_while_preserving_predicate():
    padded = """
class Fuzz {
    static int Main()
    {
        int crc = 17;
        int junk = 5;
        junk = junk * 3;
        if (junk > 2) { crc = crc + 1; } else { crc = crc - 1; }
        VBase vv = new VBase();
        crc = vv.Vm(3);
        Console.WriteLine(junk);
        return crc;
    }
}
class VBase {
    virtual int Vm(int x)
    {
        return 3;
    }
}
"""

    def compiles_and_keeps_virtual_call(src):
        compile_source(src, assembly_name="shrink_t")
        return ".Vm(" in src

    small = shrink_source(
        padded, safe_predicate(compiles_and_keeps_virtual_call)
    )
    assert len(small) < len(padded)
    assert ".Vm(" in small
    # the junk arithmetic and the if/else must be gone
    assert "junk" not in small
    assert "if" not in small


class TestSafePredicateClassification:
    """Regression for the shrinker's failure handling: ``safe_predicate``
    used to swallow *every* exception, so a crashing oracle made the
    minimizer shrink toward "crashes the oracle" instead of "still
    reproduces the divergence"."""

    def test_toolchain_rejection_reads_as_false(self):
        from repro.errors import CompileError, ReproError

        def rejects(_src):
            raise CompileError("ill-typed candidate")

        assert safe_predicate(rejects)("class X {}") is False

        def verifier_refuses(_src):
            raise ReproError("reference interpreter failed")

        assert safe_predicate(verifier_refuses)("class X {}") is False

    def test_oracle_crash_propagates(self):
        def crashes(_src):
            raise RuntimeError("oracle bug: index out of range")

        with pytest.raises(RuntimeError, match="oracle bug"):
            safe_predicate(crashes)("class X {}")

    def test_shrink_reraises_mid_shrink_crash(self):
        """A predicate that accepts the initial program but crashes on a
        later candidate must abort the shrink loudly, not be treated as an
        uninteresting edit."""
        source = """
        class P {
            static int Main() {
                int junk = 40 + 2;
                int keep = junk;
                return keep;
            }
        }
        """
        seen = []

        def crash_after_first(src):
            seen.append(src)
            if len(seen) == 1:
                return True  # initial program holds
            raise ZeroDivisionError("engine crashed on a shrink candidate")

        with pytest.raises(ZeroDivisionError):
            shrink_source(source, safe_predicate(crash_after_first))
        assert len(seen) >= 2  # it really was a mid-shrink candidate
