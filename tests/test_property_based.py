"""Property-based tests (hypothesis) on core invariants.

* primitive value semantics (wrapping, float32 rounding) behave like
  two's-complement / IEEE-754 hardware;
* the guest RNGs match their reference implementations on any seed;
* IDEA en/decryption round-trips for arbitrary keys and plaintexts;
* randomly generated arithmetic expressions evaluate identically in the
  reference interpreter and the measured engine on every profile tier —
  the compile-once/run-everywhere invariant, fuzzed;
* the threaded engine's superinstruction fuser obeys its safety rules on
  arbitrary MIR shapes (never fuses into a branch target, an exception
  region boundary, or anything when a fault injector is armed), and fused
  execution is bit-identical to unfused and classic execution — state
  *and* cycles — on random programs.
"""

import math
import struct

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchmarks.scimark.common import PySciRandom
from repro.reference.grande_ref import (
    _idea_inv,
    _idea_mul,
    idea_cipher,
    idea_decryption_key,
    idea_encryption_key,
)
from repro.vm import values
from repro.vm.intrinsics import JavaRandom

ints = st.integers(min_value=-(2**70), max_value=2**70)


class TestValueSemantics:
    @given(ints)
    def test_i32_range_and_idempotence(self, v):
        w = values.i32(v)
        assert -(2**31) <= w < 2**31
        assert values.i32(w) == w
        assert (w - v) % (2**32) == 0

    @given(ints)
    def test_i64_range_and_idempotence(self, v):
        w = values.i64(v)
        assert -(2**63) <= w < 2**63
        assert values.i64(w) == w
        assert (w - v) % (2**64) == 0

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_i32_identity_in_range(self, v):
        assert values.i32(v) == v

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_r4_fixed_point_on_float32(self, v):
        # values already representable in float32 are unchanged
        assert values.r4(v) == v

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_r4_matches_struct_round_trip(self, v):
        try:
            expected = struct.unpack("f", struct.pack("f", v))[0]
        except OverflowError:
            expected = math.inf if v > 0 else -math.inf
        assert values.r4(v) == expected or (
            math.isnan(values.r4(v)) and math.isnan(expected)
        )

    @given(st.floats())
    def test_float_to_i32_always_in_range(self, v):
        w = values.float_to_i32(v)
        assert -(2**31) <= w < 2**31

    @given(st.floats(min_value=-(2.0**31) + 1, max_value=2.0**31 - 1,
                     allow_nan=False))
    def test_float_to_i32_truncates_toward_zero(self, v):
        assert values.float_to_i32(v) == int(v)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_small_int_wraps_compose(self, v):
        assert values.i8(values.i8(v)) == values.i8(v)
        assert 0 <= values.u8(v) < 256
        assert 0 <= values.u16(v) < 65536


class TestGuestRandoms:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_java_random_deterministic_per_seed(self, seed):
        a = JavaRandom(seed)
        b = JavaRandom(seed)
        for _ in range(5):
            assert a.next_double() == b.next_double()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_java_random_in_unit_interval(self, seed):
        rng = JavaRandom(seed)
        for _ in range(10):
            assert 0.0 <= rng.next_double() < 1.0

    @given(st.integers(min_value=1, max_value=2**31 - 1))
    def test_sci_random_in_unit_interval(self, seed):
        rng = PySciRandom(seed)
        for _ in range(20):
            x = rng.next_double()
            assert 0.0 <= x < 1.0

    @given(st.integers(min_value=1, max_value=2**31 - 1))
    def test_sci_random_state_table_bounds(self, seed):
        rng = PySciRandom(seed)
        assert len(rng.m) == 17
        for _ in range(40):
            rng.next_double()
        assert all(0 <= v <= rng.m1 for v in rng.m)


class TestIdeaCipher:
    @given(st.integers(min_value=0, max_value=65536))
    def test_mul_inverse_property(self, x):
        x &= 65535
        inv = _idea_inv(x)
        if x != 0:
            assert _idea_mul(x, inv) == 1

    @given(st.lists(st.integers(min_value=0, max_value=65535), min_size=8, max_size=8))
    def test_round_trip_any_key(self, user_key):
        z = idea_encryption_key(user_key)
        dk = idea_decryption_key(z)
        plain = [(i * 997 + 3) & 65535 for i in range(16)]
        assert idea_cipher(idea_cipher(plain, z), dk) == plain

    @given(
        st.lists(st.integers(min_value=0, max_value=65535), min_size=4, max_size=32),
    )
    def test_round_trip_any_plaintext(self, words):
        words = words[: len(words) - len(words) % 4]
        if not words:
            words = [1, 2, 3, 4]
        key = [7, 11, 13, 17, 19, 23, 29, 31]
        z = idea_encryption_key(key)
        dk = idea_decryption_key(z)
        assert idea_cipher(idea_cipher(words, z), dk) == words


# --------------------------------------------------------------------------
# fuzzing the full pipeline: random expressions, every profile tier
# --------------------------------------------------------------------------

_int_atoms = st.sampled_from(["3", "7", "11", "x", "y", "100", "-5"])


@st.composite
def int_expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_int_atoms)
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]))
    left = draw(int_expressions(depth=depth + 1))
    right = draw(int_expressions(depth=depth + 1))
    if op in ("/", "%"):
        right = f"(({right}) | 1)"  # keep divisors nonzero
    return f"(({left}) {op} ({right}))"


def _py_eval_c_semantics(expr, x, y):
    """Evaluate the expression with C#-int32 semantics (wrap, truncating
    division) by walking Python's ast over the same source text."""
    import ast

    from repro.vm.values import i32

    def cdiv(a, b):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q

    def walk(node):
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return i32(-walk(node.operand))
        if isinstance(node, ast.BinOp):
            a = walk(node.left)
            b = walk(node.right)
            if isinstance(node.op, ast.Add):
                return i32(a + b)
            if isinstance(node.op, ast.Sub):
                return i32(a - b)
            if isinstance(node.op, ast.Mult):
                return i32(a * b)
            if isinstance(node.op, ast.Div):
                return i32(cdiv(a, b))
            if isinstance(node.op, ast.Mod):
                return i32(a - cdiv(a, b) * b)
            if isinstance(node.op, ast.BitAnd):
                return i32(a & b)
            if isinstance(node.op, ast.BitOr):
                return i32(a | b)
            if isinstance(node.op, ast.BitXor):
                return i32(a ^ b)
        raise AssertionError(f"unexpected node {ast.dump(node)}")

    tree = ast.parse(expr.replace("x", str(x)).replace("y", str(y)), mode="eval")
    return walk(tree)


class TestExpressionFuzz:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        int_expressions(),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_random_int_expression_all_engines_agree(self, expr, x, y):
        from repro.lang import compile_source
        from repro.runtimes import CLR11, NATIVE_C, SSCLI10
        from repro.vm.interpreter import Interpreter
        from repro.vm.loader import LoadedAssembly
        from repro.vm.machine import Machine

        source = f"""
        class P {{ static int Main() {{
            int x = {x}; int y = {y};
            return {expr};
        }} }}"""
        assembly = compile_source(source)
        expected = _py_eval_c_semantics(expr, x, y)
        got_interp = Interpreter(LoadedAssembly(assembly)).run()
        assert got_interp == expected, f"interpreter: {expr=}"
        for profile in (NATIVE_C, CLR11, SSCLI10):
            got = Machine(LoadedAssembly(assembly), profile).run()
            assert got == expected, f"{profile.name}: {expr=}"

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        int_expressions(),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_fused_unfused_classic_identical_state_and_cycles(self, expr, x, y):
        """Random straight-line arithmetic (dense fusable runs, division
        included): the threaded engine with fusion, without fusion, and
        the classic loop agree on result, cycles, and instruction count
        bit for bit."""
        from repro.lang import compile_source
        from repro.runtimes import CLR11, NATIVE_C, SSCLI10
        from repro.vm.loader import LoadedAssembly
        from repro.vm.machine import Machine

        source = f"""
        class P {{ static int Main() {{
            int x = {x}; int y = {y};
            int a = {expr};
            int b = ((a * 3) ^ (x + y));
            double d = ((a * 0.5) + (b * 0.25));
            return ((a + b) ^ (a - b)) + ((int) d);
        }} }}"""
        assembly = compile_source(source)
        for profile in (NATIVE_C, CLR11, SSCLI10):
            prints = {}
            for engine in ("classic", "threaded", "threaded-nofuse"):
                machine = Machine(LoadedAssembly(assembly), profile,
                                  dispatch=engine)
                result = machine.run()
                prints[engine] = (
                    repr(result), repr(machine.cycles), machine.instructions
                )
            assert prints["threaded"] == prints["classic"], (
                f"{profile.name}: {expr=}"
            )
            assert prints["threaded-nofuse"] == prints["classic"], (
                f"{profile.name}: {expr=}"
            )


# --------------------------------------------------------------------------
# the superinstruction fuser: safety rules on arbitrary MIR shapes
# --------------------------------------------------------------------------


def _mir_modules():
    from repro.jit import mir
    from repro.vm import dispatch

    return mir, dispatch


def _synthetic_code(mir, ops):
    return [mir.MInstr(op=op) for op in ops]


_fusable_ops = st.sampled_from(("MOV", "LDI", "ADD", "MUL", "DIV", "CEQ"))
_terminal_ops = st.sampled_from(("JMP", "JTRUE", "JEQ"))
_opaque_ops = st.sampled_from(("CALL", "RET", "LDELEM", "NEWOBJ", "THROW"))
_any_ops = st.one_of(_fusable_ops, _terminal_ops, _opaque_ops)


class TestFusePlan:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(_any_ops, min_size=0, max_size=24),
        st.sets(st.integers(min_value=0, max_value=23)),
        st.integers(min_value=2, max_value=16),
    )
    def test_plan_obeys_all_safety_rules(self, ops, targets, max_run):
        mir, dispatch = _mir_modules()
        code = _synthetic_code(mir, [getattr(mir, o) for o in ops])
        regions = []
        if len(code) >= 4:
            regions.append(mir.MIRRegion(
                kind="catch", try_start=1, try_end=2,
                handler_start=len(code) - 2, handler_end=len(code) - 1,
            ))
        plan = dispatch.fuse_plan(code, regions, frozenset(targets),
                                  faults_armed=False, max_run=max_run)
        boundaries = set(targets)
        for reg in regions:
            boundaries.update((reg.try_start, reg.try_end,
                               reg.handler_start, reg.handler_end))
        prev_end = 0
        for start, length in plan:
            # non-overlapping, in order, and within bounds
            assert start >= prev_end
            assert 2 <= length <= max_run
            assert start + length <= len(code)
            prev_end = start + length
            # every element but the last always falls through
            for k in range(length - 1):
                assert code[start + k].op in dispatch.FUSABLE_FIRST
            assert code[start + length - 1].op in dispatch.FUSABLE_SECOND
            # entering a run sideways is impossible: no interior element
            # is a branch target or an exception region boundary
            for k in range(1, length):
                assert start + k not in boundaries, (start, length, k)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_fusable_ops, min_size=2, max_size=12))
    def test_fault_armed_site_is_never_fused(self, ops):
        mir, dispatch = _mir_modules()
        code = _synthetic_code(mir, [getattr(mir, o) for o in ops])
        assert dispatch.fuse_plan(code, [], frozenset(), faults_armed=True) == []
        # ... while the same shape without a fault injector fuses fully
        plan = dispatch.fuse_plan(code, [], frozenset(), faults_armed=False)
        assert plan and plan[0] == (0, min(len(code), dispatch.MAX_FUSE_RUN))

    def test_branch_target_splits_a_run(self):
        mir, dispatch = _mir_modules()
        code = _synthetic_code(mir, [mir.ADD] * 6)
        whole = dispatch.fuse_plan(code, [], frozenset(), faults_armed=False)
        assert whole == [(0, 6)]
        split = dispatch.fuse_plan(code, [], frozenset({3}), faults_armed=False)
        assert split == [(0, 3), (3, 3)]

    def test_handler_boundary_splits_a_run(self):
        mir, dispatch = _mir_modules()
        code = _synthetic_code(mir, [mir.ADD] * 6)
        region = mir.MIRRegion(kind="finally", try_start=0, try_end=2,
                               handler_start=4, handler_end=6)
        plan = dispatch.fuse_plan(code, [region], frozenset(),
                                  faults_armed=False)
        for start, length in plan:
            for k in range(1, length):
                assert start + k not in (0, 2, 4, 6)
