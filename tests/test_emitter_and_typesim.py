"""Tests for the pseudo-x86 emitter and the static type simulation."""

import pytest

from repro.cil import cts, opcodes as op
from repro.cil.typesim import annotate, kind_of, stack_shapes
from repro.jit.emitter import render_x86
from repro.jit.pipeline import JitCompiler
from repro.lang import compile_source
from repro.runtimes import CLR11, IBM131, MONO023, NATIVE_C, SSCLI10
from repro.vm.loader import LoadedAssembly

DIV_LOOP = """
class P { static int Main() {
    int size = 1000;
    int i1 = int.MaxValue;
    int i2 = 3;
    for (int i = 0; i < size; i++) {
        i1 = i1 / i2;
        if (i1 == 0) { i1 = int.MaxValue; }
    }
    return i1;
} }"""


def render(profile, source=DIV_LOOP):
    assembly = compile_source(source)
    fn = JitCompiler(LoadedAssembly(assembly), profile).compile(assembly.entry_point)
    return render_x86(fn, profile)


class TestEmitter:
    def test_clr_uses_registers_and_stages_constant(self):
        text = render(CLR11)
        assert "cdq" in text
        assert "idiv" in text
        # constant staged through a frame slot (the Table 6 quirk)
        assert "idiv    eax, dword ptr [ebp-" in text

    def test_ibm_keeps_division_in_registers(self):
        text = render(IBM131)
        assert "cdq" in text
        # divisor in a register (mov ecx, 3 then idiv eax, ecx)
        assert "mov     ecx, 3" in text
        assert "idiv    eax, ecx" in text

    def test_sscli_emulates_cdq(self):
        text = render(SSCLI10)
        assert "cdq" not in text.replace("sar", "")  # no real cdq emitted
        assert "sar     edx, 0x1f" in text

    def test_sscli_all_memory_traffic(self):
        text = render(SSCLI10)
        # everything staged through [ebp-...] slots
        assert text.count("[ebp-") > render(CLR11).count("[ebp-")

    def test_mono_between_the_two(self):
        mono = render(MONO023).count("[ebp-")
        clr = render(CLR11).count("[ebp-")
        sscli = render(SSCLI10).count("[ebp-")
        assert clr <= mono <= sscli

    def test_bounds_checks_rendered_when_present(self):
        src = """
        class P { static int Main() {
            int[] a = new int[8];
            int n = 8;
            int s = 0;
            for (int i = 0; i < n; i++) { s += a[i]; }
            return s;
        } }"""
        with_checks = render(MONO023, src)
        assert "jae     throw_range" in with_checks
        without = render(NATIVE_C, src)
        assert "jae     throw_range" not in without

    def test_header_reports_stats(self):
        text = render(CLR11)
        assert "enregistered" in text and "immediates" in text

    def test_labels_emitted_for_targets(self):
        text = render(CLR11)
        assert any(line.startswith("L") and line.endswith(":") for line in text.splitlines())


class TestTypesim:
    def _main(self, source):
        return compile_source(source).entry_point

    def test_kinds_for_arithmetic(self):
        method = self._main("""
            class P { static double Main() {
                int a = 1 + 2;
                long b = 3L * 4L;
                float c = 1.5f + 2.5f;
                double d = a + b + c + 0.5;
                return d;
            } }""")
        kinds = annotate(method)
        found = set(kinds.values())
        assert {"i4", "i8", "r4", "r8"} <= found

    def test_conv_records_source_kind(self):
        method = self._main("""
            class P { static int Main() { double d = 2.9; return (int)d; } }""")
        kinds = annotate(method)
        conv_kinds = [
            kinds[i] for i, ins in enumerate(method.body)
            if ins.opcode == op.CONV_I4
        ]
        assert "r8" in conv_kinds

    def test_shapes_at_merge_points(self):
        method = self._main("""
            class P { static int Main() {
                int x = 5;
                int y = x > 3 ? 10 : 20;
                return y;
            } }""")
        shapes = stack_shapes(method)
        # the ternary merge point carries one value on the stack
        assert any(len(s) == 1 for s in shapes.values())

    def test_kind_of_types(self):
        assert kind_of(cts.INT32) == "i4"
        assert kind_of(cts.BOOL) == "i4"
        assert kind_of(cts.INT64) == "i8"
        assert kind_of(cts.FLOAT32) == "r4"
        assert kind_of(cts.FLOAT64) == "r8"
        assert kind_of(cts.STRING) == "ref"
        assert kind_of(cts.array_of(cts.INT32)) == "ref"

    def test_annotation_cached(self):
        method = self._main("class P { static int Main() { return 1; } }")
        first = annotate(method)
        assert annotate(method) is first
