"""Behavioural tests of the full compile+interpret pipeline.

Each test is a small guest program whose return value encodes the expected
semantics; this doubles as the language conformance suite.
"""

import pytest

from repro.errors import ManagedException, TypeCheckError, VMError
from repro.errors import CompileError
from tests.conftest import interpret


def run(src, entry_class=None):
    return interpret(src, entry_class)[0]


class TestArithmetic:
    def test_int_wrapping(self):
        assert run("""
            class P { static int Main() {
                int x = int.MaxValue;
                x = x + 1;
                return x == int.MinValue ? 1 : 0;
            } }""") == 1

    def test_long_arithmetic(self):
        assert run("""
            class P { static long Main() {
                long a = 4000000000L;
                return a * 2L;
            } }""") == 8000000000

    def test_int_division_truncates_toward_zero(self):
        assert run("""
            class P { static int Main() { return (-7) / 2; } }""") == -3

    def test_int_remainder_sign(self):
        assert run("""
            class P { static int Main() { return (-7) % 2; } }""") == -1

    def test_divide_by_zero_throws(self):
        assert run("""
            class P { static int Main() {
                int z = 0;
                try { int q = 5 / z; return q; }
                catch (DivideByZeroException e) { return 42; }
            } }""") == 42

    def test_float_divide_by_zero_is_infinity(self):
        assert run("""
            class P { static int Main() {
                double z = 0.0;
                double q = 1.0 / z;
                return q > 1e308 ? 1 : 0;
            } }""") == 1

    def test_shift_masks_count(self):
        assert run("""
            class P { static int Main() { int one = 1; return one << 33; } }""") == 2

    def test_unsigned_shift_right_not_available_but_shr_sign_extends(self):
        assert run("""
            class P { static int Main() { int x = -8; return x >> 1; } }""") == -4

    def test_float32_rounding(self):
        # 0.1f is not exactly 0.1
        assert run("""
            class P { static int Main() {
                float f = 0.1f;
                double d = f;
                return d == 0.1 ? 0 : 1;
            } }""") == 1

    def test_mixed_promotion(self):
        assert run("""
            class P { static double Main() {
                int i = 3; double d = 0.5;
                return i * d;
            } }""") == 1.5

    def test_bitwise_ops(self):
        assert run("""
            class P { static int Main() {
                int a = 12; int b = 10;
                return (a & b) + (a | b) + (a ^ b) + (~a);
            } }""") == (12 & 10) + (12 | 10) + (12 ^ 10) + (~12)

    def test_conversions_narrowing(self):
        assert run("""
            class P { static int Main() {
                double d = 258.9;
                byte b = (byte)d;
                short s = (short)65538;
                return b * 1000 + s;
            } }""") == 2 * 1000 + 2

    def test_float_to_int_truncation(self):
        assert run("""
            class P { static int Main() { double d = -2.9; return (int)d; } }""") == -2


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        assert run("""
            class P { static int Main() {
                int total = 0;
                for (int i = 0; i < 10; i++) {
                    if (i == 7) break;
                    for (int j = 0; j < 10; j++) {
                        if (j % 2 == 0) continue;
                        total += 1;
                    }
                }
                return total;
            } }""") == 7 * 5

    def test_do_while_runs_once(self):
        assert run("""
            class P { static int Main() {
                int n = 0;
                do { n++; } while (false);
                return n;
            } }""") == 1

    def test_ternary_and_logical_short_circuit(self):
        assert run("""
            class P {
                static int calls;
                static bool Touch() { calls++; return true; }
                static int Main() {
                    bool b = false && Touch();
                    bool c = true || Touch();
                    return calls + (b ? 10 : 0) + (c ? 1 : 0);
                }
            }""") == 1

    def test_while_condition_bool_required(self):
        with pytest.raises(TypeCheckError, match="condition must be bool"):
            run("class P { static int Main() { while (1) { } return 0; } }")


class TestObjects:
    def test_fields_and_methods(self):
        assert run("""
            class Counter {
                int n;
                void Add(int k) { n += k; }
                int Get() { return n; }
            }
            class P { static int Main() {
                Counter c = new Counter();
                c.Add(3); c.Add(4);
                return c.Get();
            } }""") == 7

    def test_constructor_and_field_initializers(self):
        assert run("""
            class Box {
                int x = 10;
                static int counter = 100;
                Box(int y) { x += y; }
            }
            class P { static int Main() {
                Box b = new Box(5);
                return b.x + Box.counter;
            } }""") == 115

    def test_virtual_dispatch(self):
        assert run("""
            class Animal { virtual int Legs() { return 0; } }
            class Dog : Animal { override int Legs() { return 4; } }
            class Bird : Animal { override int Legs() { return 2; } }
            class P { static int Main() {
                Animal a = new Dog();
                Animal b = new Bird();
                return a.Legs() * 10 + b.Legs();
            } }""") == 42

    def test_base_call(self):
        assert run("""
            class A { virtual int F() { return 1; } }
            class B : A {
                override int F() { return base.F() + 10; }
            }
            class P { static int Main() { return new B().F(); } }""") == 11

    def test_base_ctor_chaining(self):
        assert run("""
            class A { int x; A(int v) { x = v; } }
            class B : A { B() : base(7) { } }
            class P { static int Main() { return new B().x; } }""") == 7

    def test_inherited_fields(self):
        assert run("""
            class A { int x; }
            class B : A { int y; }
            class P { static int Main() {
                B b = new B();
                b.x = 3; b.y = 4;
                return b.x + b.y;
            } }""") == 7

    def test_static_methods_and_fields(self):
        assert run("""
            class M {
                static int total;
                static void Bump() { total += 2; }
            }
            class P { static int Main() {
                M.Bump(); M.Bump();
                return M.total;
            } }""") == 4

    def test_overload_resolution(self):
        assert run("""
            class O {
                static int F(int x) { return 1; }
                static int F(double x) { return 2; }
                static int F(int x, int y) { return 3; }
            }
            class P { static int Main() {
                return O.F(1) * 100 + O.F(1.5) * 10 + O.F(1, 2);
            } }""") == 123

    def test_null_reference_throws(self):
        assert run("""
            class A { int x; }
            class P { static int Main() {
                A a = null;
                try { return a.x; }
                catch (NullReferenceException e) { return 5; }
            } }""") == 5

    def test_downcast_and_invalid_cast(self):
        assert run("""
            class A { }
            class B : A { int v = 9; }
            class P { static int Main() {
                A a = new B();
                B b = (B)a;
                object o = new A();
                try { B bad = (B)o; return 0; }
                catch (InvalidCastException e) { return b.v; }
            } }""") == 9


class TestStructs:
    def test_value_semantics_copy_on_assign(self):
        assert run("""
            struct Point { double x; double y; }
            class P { static int Main() {
                Point a = new Point();
                a.x = 1.0;
                Point b = a;
                b.x = 2.0;
                return a.x == 1.0 && b.x == 2.0 ? 1 : 0;
            } }""") == 1

    def test_struct_array_elements_are_distinct(self):
        assert run("""
            struct Cell { int v; }
            class P { static int Main() {
                Cell[] cells = new Cell[3];
                cells[0].v = 5;
                return cells[0].v * 10 + cells[1].v;
            } }""") == 50

    def test_struct_passed_by_value(self):
        assert run("""
            struct S { int v; }
            class P {
                static void Mutate(S s) { s.v = 99; }
                static int Main() {
                    S s = new S();
                    s.v = 1;
                    Mutate(s);
                    return s.v;
                }
            }""") == 1

    def test_struct_reference_field_rejected(self):
        with pytest.raises(TypeCheckError, match="must be primitive"):
            run("struct S { object o; } class P { static int Main() { return 0; } }")


class TestArrays:
    def test_jagged_arrays(self):
        assert run("""
            class P { static int Main() {
                int[][] j = new int[3][];
                for (int i = 0; i < 3; i++) { j[i] = new int[4]; }
                j[1][2] = 7;
                return j[1][2] + j[0].Length;
            } }""") == 11

    def test_md_array_round_trip(self):
        assert run("""
            class P { static double Main() {
                double[,] m = new double[3, 4];
                double total = 0.0;
                for (int i = 0; i < 3; i++)
                    for (int k = 0; k < 4; k++)
                        m[i, k] = i * 10 + k;
                for (int i = 0; i < 3; i++)
                    for (int k = 0; k < 4; k++)
                        total += m[i, k];
                return total;
            } }""") == sum(i * 10 + k for i in range(3) for k in range(4))

    def test_md_array_length_and_getlength(self):
        assert run("""
            class P { static int Main() {
                double[,] m = new double[3, 4];
                return m.Length * 100 + m.GetLength(0) * 10 + m.GetLength(1);
            } }""") == 1234

    def test_index_out_of_range(self):
        assert run("""
            class P { static int Main() {
                int[] a = new int[2];
                try { return a[5]; }
                catch (IndexOutOfRangeException e) { return 3; }
            } }""") == 3

    def test_md_bounds_checked_per_dimension(self):
        # index inside the flat data but outside dim bounds must throw
        assert run("""
            class P { static int Main() {
                int[,] m = new int[2, 3];
                try { return m[0, 5]; }
                catch (IndexOutOfRangeException e) { return 1; }
            } }""") == 1

    def test_array_of_objects(self):
        assert run("""
            class Node { int v; }
            class P { static int Main() {
                Node[] nodes = new Node[2];
                nodes[0] = new Node();
                nodes[0].v = 6;
                return nodes[0].v + (nodes[1] == null ? 1 : 0);
            } }""") == 7


class TestExceptions:
    def test_finally_runs_on_normal_path(self):
        assert run("""
            class P { static int Main() {
                int x = 0;
                try { x = 1; } finally { x += 10; }
                return x;
            } }""") == 11

    def test_finally_runs_on_exception_path(self):
        assert run("""
            class P {
                static int trace;
                static void Boom() {
                    try { throw new Exception("x"); }
                    finally { trace += 1; }
                }
                static int Main() {
                    try { Boom(); } catch (Exception e) { trace += 10; }
                    return trace;
                }
            }""") == 11

    def test_catch_selects_most_derived_handler_order(self):
        assert run("""
            class P { static int Main() {
                try { throw new DivideByZeroException("d"); }
                catch (DivideByZeroException e) { return 1; }
                catch (ArithmeticException e) { return 2; }
                catch (Exception e) { return 3; }
            } }""") == 1

    def test_base_class_catches_derived(self):
        assert run("""
            class P { static int Main() {
                try { throw new DivideByZeroException("d"); }
                catch (ArithmeticException e) { return 7; }
            } }""") == 7

    def test_rethrow_propagates(self):
        assert run("""
            class P { static int Main() {
                int path = 0;
                try {
                    try { throw new Exception("a"); }
                    catch (Exception e) { path += 1; throw; }
                }
                catch (Exception e) { path += 10; }
                return path;
            } }""") == 11

    def test_user_exception_class(self):
        assert run("""
            class AppError : Exception {
                int code;
                AppError(int c) { code = c; }
            }
            class P { static int Main() {
                try { throw new AppError(55); }
                catch (AppError e) { return e.code; }
            } }""") == 55

    def test_unhandled_exception_escapes(self):
        from repro.vm.exceptions import GuestException
        with pytest.raises(GuestException):
            run("""
                class P { static int Main() { throw new Exception("boom"); } }""")

    def test_exception_message_roundtrip(self):
        assert run("""
            class P { static int Main() {
                try { throw new Exception("hello"); }
                catch (Exception e) { return e.GetMessage().Length; }
            } }""") == 5

    def test_return_inside_try_runs_finally(self):
        assert run("""
            class P {
                static int effects;
                static int F() {
                    try { return 5; }
                    finally { effects = 7; }
                }
                static int Main() { return F() + effects; }
            }""") == 12


class TestBoxing:
    def test_implicit_box_and_unbox(self):
        assert run("""
            class P { static int Main() {
                object o = 42;
                int v = (int)o;
                return v;
            } }""") == 42

    def test_box_double(self):
        assert run("""
            class P { static int Main() {
                object o = 1.5;
                double d = (double)o;
                return d == 1.5 ? 1 : 0;
            } }""") == 1

    def test_unbox_wrong_type_throws(self):
        assert run("""
            class P { static int Main() {
                object o = 42;
                try { double d = (double)o; return 0; }
                catch (InvalidCastException e) { return 9; }
            } }""") == 9

    def test_box_struct(self):
        assert run("""
            struct S { int v; }
            class P { static int Main() {
                S s = new S();
                s.v = 5;
                object o = s;
                s.v = 6;
                S back = (S)o;
                return back.v;
            } }""") == 5


class TestIntrinsics:
    def test_math_functions(self):
        result, interp = interpret("""
            class P { static int Main() {
                double a = Math.Sqrt(16.0);
                double b = Math.Pow(2.0, 10.0);
                double c = Math.Abs(-3.5);
                int d = Math.Max(3, 9);
                long e = Math.Min(5L, 2L);
                return (int)a + (int)b + (int)c + d + (int)e;
            } }""")
        assert result == 4 + 1024 + 3 + 9 + 2

    def test_math_domain_edges(self):
        assert run("""
            class P { static int Main() {
                double nan = Math.Sqrt(-1.0);
                double ninf = Math.Log(0.0);
                int flags = 0;
                if (nan != nan) flags += 1;
                if (ninf < -1e308) flags += 2;
                return flags;
            } }""") == 3

    def test_math_random_deterministic(self):
        r1, _ = interpret("""
            class P { static double Main() { return Math.Random() + Math.Random(); } }""")
        r2, _ = interpret("""
            class P { static double Main() { return Math.Random() + Math.Random(); } }""")
        assert r1 == r2
        assert 0.0 < r1 < 2.0

    def test_console_output(self):
        _, interp = interpret("""
            class P { static void Main() {
                Console.WriteLine("x=" + 3);
                Console.WriteLine(2.5);
            } }""")
        assert interp.stdout == ["x=3", "2.5"]

    def test_string_equality_and_length(self):
        assert run("""
            class P { static int Main() {
                string a = "he" + "llo";
                int n = 0;
                if (a == "hello") n += 1;
                if (a != "world") n += 2;
                n += a.Length;
                return n;
            } }""") == 8

    def test_bench_sections(self):
        _, interp = interpret("""
            class P { static void Main() {
                Bench.Start("loop");
                int x = 0;
                for (int i = 0; i < 100; i++) x += i;
                Bench.Stop("loop");
                Bench.Ops("loop", 100L);
                Bench.Result("loop", x);
            } }""")
        section = interp.bench.sections["loop"]
        assert section.ops == 100
        assert section.total_cycles > 0
        assert section.results == [4950.0]

    def test_serializer_round_trip(self):
        assert run("""
            class Node { int v; Node next; }
            class P { static int Main() {
                Node a = new Node(); a.v = 1;
                Node b = new Node(); b.v = 2;
                a.next = b;
                int size = Serializer.WriteObject(a);
                Node copy = (Node)Serializer.ReadObject();
                copy.v = 99;
                return a.v * 100 + copy.next.v * 10 + (size > 0 ? 1 : 0);
            } }""") == 121

    def test_gc_total_allocated_grows(self):
        assert run("""
            class Blob { long a; long b; }
            class P { static int Main() {
                long before = GC.TotalAllocated();
                for (int i = 0; i < 10; i++) { Blob blob = new Blob(); blob.a = i; }
                long after = GC.TotalAllocated();
                return after > before ? 1 : 0;
            } }""") == 1


class TestTypeErrors:
    def err(self, src, match):
        with pytest.raises(CompileError, match=match):
            run(src)

    def test_unknown_name(self):
        self.err("class P { static int Main() { return nope; } }", "unknown name")

    def test_assign_incompatible(self):
        self.err(
            "class P { static int Main() { int x = 1.5; return x; } }",
            "cannot implicitly convert",
        )

    def test_missing_return(self):
        self.err(
            "class P { static int Main() { int x = 1; } }",
            "not all code paths return",
        )

    def test_call_wrong_arity(self):
        self.err(
            "class P { static int F(int a) { return a; } static int Main() { return F(); } }",
            "matches",
        )

    def test_break_outside_loop(self):
        self.err("class P { static void Main() { break; } }", "break outside loop")

    def test_throw_non_exception(self):
        self.err(
            "class A { } class P { static void Main() { throw new A(); } }",
            "must derive from Exception",
        )

    def test_duplicate_local(self):
        self.err(
            "class P { static void Main() { int x = 1; int x = 2; } }",
            "duplicate variable",
        )

    def test_override_without_virtual(self):
        self.err(
            "class A { int F() { return 1; } } class B : A { override int F() { return 2; } }"
            " class P { static void Main() { } }",
            "no virtual base method",
        )

    def test_instance_field_from_static(self):
        self.err(
            "class P { int x; static int Main() { return x; } }",
            "instance field",
        )

    def test_bool_int_cast_rejected(self):
        self.err(
            "class P { static int Main() { bool b = true; return (int)b; } }",
            "cannot cast",
        )


class TestFinallyGenerality:
    """The finally handler runs through the full dispatch loop: array ops,
    calls, arithmetic, even nested try/finally inside handlers."""

    def test_array_ops_in_finally(self):
        assert run("""
            class P { static int Main() {
                int[] a = new int[3];
                try { a[0] = 1; }
                finally { a[1] = 7; a[2] = a[0] * 2 - 1; }
                return a[0] + a[1] * 10 + a[2] * 100;
            } }""") == 171

    def test_calls_and_allocation_in_finally(self):
        assert run("""
            class Box { int v; }
            class P {
                static Box made;
                static int Bump(int x) { return x + 1; }
                static int Main() {
                    int r = 0;
                    try { r = 1; }
                    finally {
                        made = new Box();
                        made.v = Bump(r);
                    }
                    return made.v;
                }
            }""") == 2

    def test_nested_try_inside_finally(self):
        assert run("""
            class P { static int Main() {
                int trace = 0;
                try { trace += 1; }
                finally {
                    try { throw new Exception("inner"); }
                    catch (Exception e) { trace += 10; }
                    finally { trace += 100; }
                }
                return trace;
            } }""") == 111

    def test_finally_on_exception_path_with_loops(self):
        assert run("""
            class P {
                static int total;
                static void Boom() {
                    try { throw new ArithmeticException("x"); }
                    finally {
                        for (int i = 0; i < 5; i++) { total += i; }
                    }
                }
                static int Main() {
                    try { Boom(); } catch (Exception e) { total += 100; }
                    return total;
                }
            }""") == 110
