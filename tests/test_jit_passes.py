"""Unit tests for the JIT pass pipeline on hand-built and compiled MIR."""

import pytest

from repro.cil import assemble
from repro.jit import mir
from repro.jit.lowering import lower
from repro.jit.passes import (
    const_div_quirk,
    constant_fold,
    copy_propagate,
    dead_code_eliminate,
    eliminate_bounds_checks,
    enregister,
)
from repro.jit.pipeline import JitCompiler
from repro.lang import compile_source
from repro.runtimes import CLR11, MONO023, NATIVE_C, SSCLI10
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def compile_main(source, profile=CLR11):
    assembly = compile_source(source)
    jit = JitCompiler(LoadedAssembly(assembly), profile)
    return jit.compile(assembly.entry_point), assembly


def mir_ops(fn):
    return [ins.op for ins in fn.code]


class TestLowering:
    def test_straightline(self):
        fn, _ = compile_main("class P { static int Main() { return 1 + 2; } }",
                             profile=SSCLI10)  # no folding: see raw lowering
        ops = mir_ops(fn)
        assert mir.ADD in ops and mir.RET in ops

    def test_branch_targets_resolved(self):
        fn, _ = compile_main("""
            class P { static int Main() {
                int s = 0;
                for (int i = 0; i < 5; i++) { s += i; }
                return s;
            } }""", profile=SSCLI10)
        for ins in fn.code:
            if ins.target >= 0:
                assert 0 <= ins.target <= len(fn.code)

    def test_regions_mapped_to_mir(self):
        fn, _ = compile_main("""
            class P { static int Main() {
                try { throw new Exception("x"); }
                catch (Exception e) { return 1; }
            } }""", profile=SSCLI10)
        assert fn.regions
        region = fn.regions[0]
        assert region.kind == "catch"
        assert region.exc_vreg >= 0
        assert 0 <= region.try_start < region.try_end <= len(fn.code)

    def test_method_ends_with_terminator(self):
        fn, _ = compile_main("class P { static void Main() { } }")
        assert fn.code[-1].op in mir.TERMINATORS


class TestSimplifyPasses:
    def _lowered(self, source):
        assembly = compile_source(source)
        return lower(assembly.entry_point), assembly

    def test_copyprop_removes_stack_shuffle(self):
        src = """
        class P { static int Main() {
            int a = 1; int b = 2;
            int c = a + b;
            return c;
        } }"""
        fn, _ = self._lowered(src)
        raw_movs = sum(1 for i in fn.code if i.op == mir.MOV)
        copy_propagate(fn, CLR11)
        dead_code_eliminate(fn, CLR11)
        opt_movs = sum(1 for i in fn.code if i.op == mir.MOV)
        assert opt_movs < raw_movs

    def test_constant_fold_chains(self):
        fn, _ = self._lowered("class P { static int Main() { return 2 + 3 * 4; } }")
        constant_fold(fn, CLR11)
        copy_propagate(fn, CLR11)
        dead_code_eliminate(fn, CLR11)
        # the arithmetic should be folded away entirely
        assert not any(i.op in (mir.ADD, mir.MUL) for i in fn.code)

    def test_global_constant_visible_inside_loop(self):
        src = """
        class P { static int Main() {
            int d = 3;
            int x = 1000;
            for (int i = 0; i < 4; i++) { x = x / d; }
            return x;
        } }"""
        fn, _ = self._lowered(src)
        constant_fold(fn, CLR11)
        assert fn.stats.get("const_divisors"), "loop-invariant divisor not found"

    def test_dce_keeps_side_effects(self):
        src = """
        class P {
            static int calls;
            static int F() { calls++; return 1; }
            static void Main() { F(); }
        }"""
        assembly = compile_source(src)
        fn = lower(assembly.entry_point)
        before_calls = sum(1 for i in fn.code if i.op == mir.CALL)
        copy_propagate(fn, MONO023)
        dead_code_eliminate(fn, MONO023)
        assert sum(1 for i in fn.code if i.op == mir.CALL) == before_calls

    def test_passes_preserve_semantics(self):
        src = """
        class P { static long Main() {
            long acc = 7;
            int d = 3;
            for (int i = 1; i < 50; i++) {
                acc = acc * 31 + i;
                acc = acc / d;
                acc ^= i;
            }
            return acc;
        } }"""
        assembly = compile_source(src)
        expected = Interpreter(LoadedAssembly(assembly)).run()
        for profile in (CLR11, MONO023, SSCLI10, NATIVE_C):
            assert Machine(LoadedAssembly(assembly), profile).run() == expected


class TestBoundsCheckPass:
    def _compiled(self, source, profile):
        assembly = compile_source(source)
        return JitCompiler(LoadedAssembly(assembly), profile).compile(assembly.entry_point)

    LENGTH_LOOP = """
    class P { static int Main() {
        int[] a = new int[64];
        int s = 0;
        for (int i = 0; i < a.Length; i++) { s += a[i]; }
        return s;
    } }"""

    def test_eliminates_on_length_pattern(self):
        fn = self._compiled(self.LENGTH_LOOP, CLR11)
        assert fn.stats.get("bce_eliminated", 0) >= 1

    def test_not_on_local_bound(self):
        src = self.LENGTH_LOOP.replace("i < a.Length", "i < 64")
        fn = self._compiled(src, CLR11)
        assert fn.stats.get("bce_eliminated", 0) == 0

    def test_not_when_counter_mutated_oddly(self):
        src = """
        class P { static int Main() {
            int[] a = new int[64];
            int s = 0;
            for (int i = 0; i < a.Length; i++) {
                s += a[i];
                if (s > 100000) { i = i * 2; }
            }
            return s;
        } }"""
        fn = self._compiled(src, CLR11)
        assert fn.stats.get("bce_eliminated", 0) == 0

    def test_not_when_array_reassigned_in_loop(self):
        src = """
        class P { static int Main() {
            int[] a = new int[64];
            int s = 0;
            for (int i = 0; i < a.Length; i++) {
                s += a[i];
                a = new int[64];
            }
            return s;
        } }"""
        fn = self._compiled(src, CLR11)
        assert fn.stats.get("bce_eliminated", 0) == 0

    def test_native_clears_all_checks(self):
        fn = self._compiled(self.LENGTH_LOOP, NATIVE_C)
        for ins in fn.code:
            if ins.op in (mir.LDELEM, mir.STELEM):
                assert not ins.bounds_check

    def test_semantics_preserved_with_bce(self):
        # out-of-range access must still throw even when checks are "free"
        src = """
        class P { static int Main() {
            int[] a = new int[4];
            try { return a[9]; }
            catch (IndexOutOfRangeException e) { return -1; }
        } }"""
        for profile in (CLR11, NATIVE_C):
            assembly = compile_source(src)
            assert Machine(LoadedAssembly(assembly), profile).run() == -1


class TestEnregisterPass:
    def test_immediates_do_not_consume_budget(self):
        src = """
        class P { static int Main() {
            int s = 0;
            for (int i = 0; i < 100; i++) { s += 12345; }
            return s;
        } }"""
        assembly = compile_source(src)
        fn = JitCompiler(LoadedAssembly(assembly), CLR11).compile(assembly.entry_point)
        assert fn.stats.get("immediates", 0) >= 1

    def test_rotor_keeps_constants_in_memory(self):
        src = "class P { static int Main() { return 1 + 2; } }"
        assembly = compile_source(src)
        fn = JitCompiler(LoadedAssembly(assembly), SSCLI10).compile(assembly.entry_point)
        assert fn.stats.get("immediates", 0) == 0
        assert not any(fn.in_register)

    def test_64_local_tracking_limit(self):
        # 70 padding locals seeded from a non-constant so they survive
        # constant propagation; the hot accumulator lands at local slot 70
        decls = "\n".join(f"int v{i} = seed + {i};" for i in range(70))
        use = " + ".join(f"v{i}" for i in range(70))
        src = f"""
        class P {{ static int Main() {{
            int seed = Env.ThreadCount();
            {decls}
            int hot = 0;
            for (int i = 0; i < 100; i++) {{ hot += v69; }}
            return hot + {use};
        }} }}"""
        assembly = compile_source(src)
        fn_limited = JitCompiler(LoadedAssembly(assembly), CLR11).compile(assembly.entry_point)
        hot_slot = next(
            i for i, lv in enumerate(assembly.entry_point.locals)
            if lv.name.startswith("hot")
        )
        assert hot_slot >= 64
        # beyond the 64-local tracking window: stays in the frame on CLR 1.1
        assert not fn_limited.in_register[fn_limited.n_args + hot_slot]
        unlimited = CLR11.with_jit(max_tracked_locals=10_000)
        assembly2 = compile_source(src)
        fn_free = JitCompiler(LoadedAssembly(assembly2), unlimited).compile(assembly2.entry_point)
        assert fn_free.in_register[fn_free.n_args + hot_slot]


class TestInlinePass:
    SRC = """
    class P {
        static int Add(int a, int b) { return a + b; }
        static int Main() {
            int s = 0;
            for (int i = 0; i < 20; i++) { s = Add(s, i); }
            return s;
        }
    }"""

    def test_clr_inlines_and_preserves_result(self):
        assembly = compile_source(self.SRC)
        fn = JitCompiler(LoadedAssembly(assembly), CLR11).compile(assembly.entry_point)
        assert fn.stats.get("inlined_calls", 0) >= 1
        assert not any(ins.op == mir.CALL for ins in fn.code)
        assert Machine(LoadedAssembly(compile_source(self.SRC)), CLR11).run() == sum(range(20))

    def test_virtual_calls_not_inlined(self):
        src = """
        class A { virtual int F() { return 1; } }
        class P { static int Main() {
            A a = new A();
            return a.F();
        } }"""
        assembly = compile_source(src)
        fn = JitCompiler(LoadedAssembly(assembly), CLR11).compile(assembly.entry_point)
        assert any(ins.op == mir.CALL for ins in fn.code)

    def test_recursive_methods_not_inlined_into_themselves(self):
        src = """
        class P {
            static int Fib(int n) { return n < 2 ? n : Fib(n - 1) + Fib(n - 2); }
            static int Main() { return Fib(10); }
        }"""
        assert Machine(LoadedAssembly(compile_source(src)), CLR11).run() == 55


class TestQuirkPass:
    def test_staged_divisor_never_enregistered(self):
        src = """
        class P { static int Main() {
            int d = 7;
            int x = 1000000;
            for (int i = 0; i < 5; i++) { x = x / d; }
            return x;
        } }"""
        assembly = compile_source(src)
        fn = JitCompiler(LoadedAssembly(assembly), CLR11).compile(assembly.entry_point)
        staged = fn.stats.get("force_spill", set())
        assert staged
        for v in staged:
            assert not fn.in_register[v]

    def test_quirk_preserves_value(self):
        src = """
        class P { static int Main() {
            int d = 7;
            int x = 1000000;
            for (int i = 0; i < 5; i++) { x = x / d; }
            return x;
        } }"""
        expected = Interpreter(LoadedAssembly(compile_source(src))).run()
        assert Machine(LoadedAssembly(compile_source(src)), CLR11).run() == expected


class TestInlineCandidateCache:
    """Regression: a failed ``resolve_method`` must be cached as a negative
    answer, not re-resolved on every call site.  The cache used to do a
    ``get(key) or miss-path`` double lookup in which a stored ``None``
    (a *cached* negative) was indistinguishable from "never looked up"."""

    SRC = "class P { static int Main() { return 1; } }"

    def _jit_with_counting_resolver(self, fail=True):
        from repro.errors import CilError

        assembly = compile_source(self.SRC)
        loaded = LoadedAssembly(assembly)
        calls = []

        def resolver(ref):
            calls.append(ref)
            raise CilError(f"unresolvable: {ref.class_name}::{ref.name}")

        loaded.resolve_method = resolver
        return JitCompiler(loaded, CLR11), calls

    def test_failed_resolve_is_cached_negative(self):
        from repro.cil import cts
        from repro.cil.instructions import MethodRef

        jit, calls = self._jit_with_counting_resolver()
        ref = MethodRef("C", "Helper", (cts.INT32,), cts.INT32)
        assert jit._inline_candidate(ref) is None
        assert jit._inline_candidate(ref) is None
        assert len(calls) == 1, (
            "resolve_method ran %d times for one unresolvable ref; the "
            "negative result must be served from the inline cache" % len(calls)
        )

    def test_distinct_refs_resolve_independently(self):
        from repro.cil import cts
        from repro.cil.instructions import MethodRef

        jit, calls = self._jit_with_counting_resolver()
        a = MethodRef("C", "Helper", (cts.INT32,), cts.INT32)
        b = MethodRef("C", "Helper", (cts.FLOAT64,), cts.INT32)
        jit._inline_candidate(a)
        jit._inline_candidate(b)
        jit._inline_candidate(a)
        jit._inline_candidate(b)
        assert len(calls) == 2  # one per distinct (class, name, signature)
