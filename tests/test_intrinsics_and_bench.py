"""Unit tests for the intrinsic library semantics and the Bench recorder."""

import math

import pytest

from repro.errors import BenchmarkError
from repro.vm.bench import BenchRecorder
from repro.vm.intrinsics import INTRINSICS, JavaRandom


class _Host:
    """Minimal intrinsic host for direct table calls."""

    def __init__(self):
        self.stdout = []
        self.rng = JavaRandom()
        self.charges = []

    def charge_units(self, kind, n):
        self.charges.append((kind, n))


def call(cls, name, *args, host=None):
    fn = INTRINSICS[(cls, name, len(args))]
    return fn(host or _Host(), list(args))


class TestMathIntrinsics:
    def test_sqrt_negative_is_nan(self):
        assert math.isnan(call("System.Math", "Sqrt", -1.0))

    def test_log_edges(self):
        assert call("System.Math", "Log", 0.0) == -math.inf
        assert math.isnan(call("System.Math", "Log", -3.0))
        assert call("System.Math", "Log", math.e) == pytest.approx(1.0)

    def test_pow_overflow_is_inf(self):
        assert call("System.Math", "Pow", 10.0, 400.0) == math.inf

    def test_asin_domain(self):
        assert math.isnan(call("System.Math", "Asin", 2.0))
        assert call("System.Math", "Asin", 1.0) == pytest.approx(math.pi / 2)

    def test_rint_rounds_half_to_even(self):
        assert call("System.Math", "Rint", 2.5) == 2.0
        assert call("System.Math", "Rint", 3.5) == 4.0
        assert call("System.Math", "Rint", -0.5) == -0.0

    def test_floor_ceiling_infinities_pass_through(self):
        assert call("System.Math", "Floor", math.inf) == math.inf
        assert call("System.Math", "Ceiling", -math.inf) == -math.inf

    def test_trig_of_infinity_is_nan(self):
        assert math.isnan(call("System.Math", "Sin", math.inf))
        assert math.isnan(call("System.Math", "Cos", -math.inf))

    def test_min_max_ints(self):
        assert call("System.Math", "Max", 3, 9) == 9
        assert call("System.Math", "Min", -3, 2) == -3


class TestJavaRandom:
    def test_matches_java_util_random_reference(self):
        # java.util.Random(12345).nextDouble() well-known first values
        rng = JavaRandom(12345)
        first = rng.next_double()
        assert first == pytest.approx(0.3618031071604718, rel=0, abs=1e-15)

    def test_next_int_signed_range(self):
        rng = JavaRandom(1)
        for _ in range(20):
            v = rng.next_int()
            assert -(2**31) <= v < 2**31


class TestBenchRecorder:
    def _recorder(self):
        clock = {"t": 0}
        rec = BenchRecorder(lambda: clock["t"])
        return rec, clock

    def test_start_stop_accumulates(self):
        rec, clock = self._recorder()
        rec.start("s")
        clock["t"] = 100
        rec.stop("s")
        rec.start("s")
        clock["t"] = 150
        rec.stop("s")
        assert rec.sections["s"].total_cycles == 150

    def test_double_start_rejected(self):
        rec, _ = self._recorder()
        rec.start("s")
        with pytest.raises(BenchmarkError, match="started twice"):
            rec.start("s")

    def test_stop_without_start_rejected(self):
        rec, _ = self._recorder()
        with pytest.raises(BenchmarkError, match="not running"):
            rec.stop("s")

    def test_unclosed_section_fails_validation(self):
        rec, _ = self._recorder()
        rec.start("open")
        with pytest.raises(BenchmarkError, match="never stopped"):
            rec.require_valid()

    def test_failures_propagate(self):
        rec, _ = self._recorder()
        rec.fail("computation wrong")
        with pytest.raises(BenchmarkError, match="computation wrong"):
            rec.require_valid()

    def test_rates(self):
        rec, clock = self._recorder()
        rec.start("s")
        clock["t"] = 1000
        rec.stop("s")
        rec.add_ops("s", 500)
        rec.add_flops("s", 2_000_000)
        s = rec.sections["s"]
        assert s.ops_per_sec(1000.0) == 500.0          # 1000 cycles @ 1 kHz = 1 s
        assert s.mflops(1000.0) == pytest.approx(2.0)

    def test_zero_cycles_rates_are_zero(self):
        rec, _ = self._recorder()
        rec.add_ops("s", 10)
        assert rec.sections["s"].ops_per_sec(1e9) == 0.0


class TestInterpreterLimits:
    def test_instruction_budget_guards_infinite_loops(self):
        from repro.errors import VMError
        from repro.lang import compile_source
        from repro.vm.interpreter import Interpreter
        from repro.vm.loader import LoadedAssembly

        src = "class P { static void Main() { while (true) { } } }"
        interp = Interpreter(LoadedAssembly(compile_source(src)), max_instructions=10_000)
        with pytest.raises(VMError, match="budget exceeded"):
            interp.run()

    def test_threads_unsupported_in_interpreter(self):
        from repro.errors import VMError
        from repro.lang import compile_source
        from repro.vm.interpreter import Interpreter
        from repro.vm.loader import LoadedAssembly

        src = """
        class W { virtual void Run() { } }
        class P { static void Main() {
            int tid = Thread.Create(new W());
        } }"""
        with pytest.raises(VMError, match="threaded engine"):
            Interpreter(LoadedAssembly(compile_source(src))).run()

    def test_machine_cycle_guard(self):
        from repro.errors import VMError
        from repro.lang import compile_source
        from repro.runtimes import CLR11
        from repro.vm.loader import LoadedAssembly
        from repro.vm.machine import Machine

        src = "class P { static void Main() { while (true) { } } }"
        machine = Machine(LoadedAssembly(compile_source(src)), CLR11, max_cycles=100_000)
        with pytest.raises(VMError, match="cycle budget"):
            machine.run()
