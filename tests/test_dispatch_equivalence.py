"""Differential dispatch-equivalence harness: classic vs threaded engines.

The threaded-code engine (``repro.vm.dispatch``) re-implements the MIR hot
path as pre-bound closure arrays with superinstruction fusion.  Its whole
license to exist is this file's oracle: **every observable number is
bit-identical to the classic loop** — results, simulated cycles (including
float cost accumulation order), instruction counts, allocation/GC totals,
metrics snapshots, observe-profiles, and stdout.  Anything the classic
engine produces is ground truth; the threaded engine is only ever faster,
never different.

Three engine configurations are differenced everywhere: ``classic``,
``threaded`` (codegen + fusion), and ``threaded-nofuse`` (codegen singles,
no fusion) — the intermediate form localizes a divergence to either the
closure translation or the fuser.

Coverage: every registered benchmark x all eight runtime profiles (scaled
small), the fuzz corpus, observer-attached runs (zero-perturbation hooks
must compose), and the frame-locals aliasing regressions (a guest
exception caught mid-method — including mid-fused-run — must observe the
same local values under every engine).
"""

import json
from pathlib import Path

import pytest

from repro.benchmarks.registry import all_benchmarks
from repro.harness.runner import Runner
from repro.lang import compile_source
from repro.observe.report import profile_to_dict
from repro.runtimes import ALL_PROFILES, CLR11, NATIVE_C, SSCLI10
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

CORPUS = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.cs"))

#: the non-classic engines, each differenced against classic ground truth
ENGINES = ("threaded", "threaded-nofuse")

#: tiny per-benchmark workloads: the equivalence property is about engine
#: plumbing, not workload size, so every cell is scaled to run in tier-1
#: time while still reaching its steady-state loops at least once
SMALL_PARAMS = {
    "clispec.boxing": {"Reps": 60},
    "clispec.matrix": {"N": 8, "Reps": 1},
    "grande.crypt": {"Words": 32},
    "grande.euler": {"N": 4, "Steps": 1},
    "grande.fibonacci": {"N": 8},
    "grande.hanoi": {"Disks": 5},
    "grande.heapsort": {"N": 64},
    "grande.moldyn": {"MM": 2, "Steps": 1},
    "grande.raytracer": {"Size": 4, "Grid": 2},
    "grande.search": {"Depth": 2, "TTSize": 509},
    "grande.sieve": {"Limit": 200, "Reps": 1},
    "micro.arith": {"Reps": 60},
    "micro.assign": {"Reps": 60},
    "micro.cast": {"Reps": 60},
    "micro.create": {"Reps": 40},
    "micro.exception": {"Reps": 6, "Depth": 3},
    "micro.loop": {"Reps": 300},
    "micro.math": {"Reps": 30},
    "micro.method": {"Reps": 60},
    "micro.serial": {"Reps": 2, "Nodes": 8, "Payload": 4},
    "scimark.fft": {"N": 16, "Reps": 1, "Seed": 101010},
    "scimark.lu": {"N": 8, "Reps": 1, "Seed": 101010},
    "scimark.montecarlo": {"Samples": 50, "Seed": 101010},
    "scimark.montecarlo_mt": {"Samples": 40, "Threads": 2, "Seed": 101010},
    "scimark.sor": {"N": 8, "Iters": 1, "Seed": 101010},
    "scimark.sor_mt": {"N": 8, "Iters": 1, "Threads": 2, "Seed": 101010},
    "scimark.sparse": {"N": 20, "NZ": 60, "Reps": 1, "Seed": 101010},
    "threads.barrier": {"Threads": 2, "Crossings": 4},
    "threads.forkjoin": {"Reps": 2, "Threads": 2},
    "threads.lock": {"Reps": 20, "ContendedReps": 10},
    "threads.sync": {"Threads": 2, "Reps": 5},
    "threads.thread": {"Reps": 4},
}

#: one shared runner so each benchmark's source is compiled once for the
#: whole module (the per-profile JIT still runs per machine, as it must)
_runner = Runner(profiles=list(ALL_PROFILES))


def run_fingerprint(run):
    """Everything observable about a harness run, bitwise.

    Floats go through ``repr`` so the comparison is on the exact bit
    pattern (cycle accumulation order matters when costs are float), not
    on a tolerance.
    """
    return {
        "cycles": repr(run.total_cycles),
        "instructions": run.instructions,
        "allocated_bytes": run.allocated_bytes,
        "gc_collections": run.gc_collections,
        "stdout": list(run.stdout),
        "sections": {
            name: (repr(sec.cycles), sec.ops, sec.flops,
                   [repr(r) for r in sec.results])
            for name, sec in run.sections.items()
        },
        "metrics": json.dumps(run.metrics, sort_keys=True),
    }


def machine_fingerprint(machine, result):
    return {
        "result": repr(result),
        "cycles": repr(machine.cycles),
        "instructions": machine.instructions,
        "allocated_bytes": machine.allocated_bytes,
        "gc_collections": machine.gc_collections,
        "stdout": list(machine.stdout),
    }


# ------------------------------------------------- benchmarks x profiles


@pytest.mark.parametrize(
    "bench", sorted(SMALL_PARAMS), ids=lambda name: name
)
def test_benchmark_bit_identical_across_engines(bench):
    params = SMALL_PARAMS[bench]
    for profile in ALL_PROFILES:
        truth = run_fingerprint(
            _runner.run_on(bench, profile, params, metrics=True,
                           dispatch="classic")
        )
        for engine in ENGINES:
            got = run_fingerprint(
                _runner.run_on(bench, profile, params, metrics=True,
                               dispatch=engine)
            )
            assert got == truth, f"{bench} / {profile.name} / {engine}"


def test_every_registered_benchmark_is_covered():
    # a new benchmark must join the differential matrix to ship
    assert sorted(SMALL_PARAMS) == sorted(b.name for b in all_benchmarks())


# ----------------------------------------------------------- fuzz corpus


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_fuzz_corpus_bit_identical_across_engines(path):
    assembly = compile_source(path.read_text(), assembly_name=path.stem)
    for profile in (NATIVE_C, CLR11, SSCLI10):
        prints = {}
        for engine in ("classic",) + ENGINES:
            machine = Machine(LoadedAssembly(assembly), profile,
                              dispatch=engine)
            prints[engine] = machine_fingerprint(machine, machine.run())
        for engine in ENGINES:
            assert prints[engine] == prints["classic"], (
                f"{path.stem} / {profile.name} / {engine}"
            )


# ------------------------------------------- zero-perturbation observers


@pytest.mark.parametrize("bench,profile", [
    ("micro.exception", CLR11),
    ("micro.arith", SSCLI10),
    ("grande.sieve", NATIVE_C),
], ids=lambda v: v if isinstance(v, str) else v.name)
def test_observed_runs_identical_profiles_across_engines(bench, profile):
    """The cycle-attribution observer sees the same stream from every
    engine (per-instruction hook order included), and attaching it never
    perturbs the numbers the unobserved run produced."""
    params = SMALL_PARAMS[bench]
    plain = run_fingerprint(
        _runner.run_on(bench, profile, params, metrics=True,
                       dispatch="classic")
    )
    profiles = {}
    for engine in ("classic",) + ENGINES:
        run = _runner.run_on(bench, profile, params, observe=True,
                             metrics=True, dispatch=engine)
        observed = run_fingerprint(run)
        assert observed == plain, f"observer perturbed {engine}"
        profiles[engine] = json.dumps(
            profile_to_dict(run.observation, benchmark=bench), sort_keys=True
        )
    for engine in ENGINES:
        assert profiles[engine] == profiles["classic"], engine


# ------------------------------------- frame-locals aliasing regressions

#: a guest exception raised from the middle of a fusable straight-line
#: run: the catch handler must observe exactly the locals the classic
#: engine leaves behind (the fused DIV records the precise raising pc and
#: flushes its hoisted state before the throw)
MID_RUN_THROW = """
class P {
    static int Main() {
        int a = 1; int b = 2; int c = 3; int d = 0; int acc = 0;
        try {
            a = a + 40;
            b = b * 3;
            c = a + b;
            acc = c / d;
            a = 999;
        } catch (DivideByZeroException e) {
            acc = a * 1000 + b * 10 + c;
        }
        return acc;
    }
}
"""

#: two activations of the same method alive at once: after the inner one
#: throws, the outer activation's locals must be intact (slot frames are
#: per-activation, never shared through the translated code object)
RECURSIVE_CATCH = """
class P {
    static int F(int n) {
        int local = n * 10;
        if (n == 0) { throw new ArgumentException("deep"); }
        int got = 0;
        try { got = P.F(n - 1); } catch (ArgumentException e) { got = local + 1; }
        return got + local;
    }
    static int Main() { return P.F(3); }
}
"""


@pytest.mark.parametrize("source,expected,label", [
    (MID_RUN_THROW, 41107, "mid_run_throw"),
    (RECURSIVE_CATCH, 71, "recursive_catch"),
], ids=["mid_run_throw", "recursive_catch"])
def test_catch_observes_same_locals_under_every_engine(source, expected, label):
    assembly = compile_source(source, assembly_name=label)
    assert Interpreter(LoadedAssembly(assembly)).run() == expected
    for profile in (NATIVE_C, CLR11, SSCLI10):
        prints = {}
        for engine in ("classic",) + ENGINES:
            machine = Machine(LoadedAssembly(assembly), profile,
                              dispatch=engine)
            prints[engine] = machine_fingerprint(machine, machine.run())
        assert prints["classic"]["result"] == repr(expected), profile.name
        for engine in ENGINES:
            assert prints[engine] == prints["classic"], (
                f"{label} / {profile.name} / {engine}"
            )
