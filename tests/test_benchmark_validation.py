"""Validate every benchmark kernel's computation against the Python
reference oracles (paper section 3.4) and check interpreter/machine
agreement on the recorded results."""

import math

import pytest

from repro.benchmarks import all_benchmarks, get
from repro.lang import compile_source
from repro.reference import (
    crypt_reference,
    fft_reference,
    fibonacci_reference,
    hanoi_reference,
    heapsort_reference,
    lu_reference,
    moldyn_reference,
    montecarlo_reference,
    raytracer_reference,
    sieve_reference,
    sor_reference,
    sparse_reference,
)
from repro.runtimes import CLR11, SSCLI10
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def run_bench(name, overrides=None, profile=CLR11):
    bench = get(name)
    source = bench.build_source(overrides)
    machine = Machine(LoadedAssembly(compile_source(source)), profile)
    machine.run()
    machine.bench.require_valid()
    return machine


def results(machine, section):
    return machine.bench.sections[section].results


class TestSciMarkOracles:
    def test_fft_matches_reference(self):
        m = run_bench("scimark.fft", {"N": 64})
        rms, d0, dlast = fft_reference(64, reps=1)
        got = results(m, "SciMark:FFT")
        assert got[0] == rms
        assert got[1] == d0
        assert got[2] == dlast

    def test_sor_matches_reference(self):
        m = run_bench("scimark.sor", {"N": 16, "Iters": 3})
        assert results(m, "SciMark:SOR")[0] == sor_reference(16, 3)

    def test_montecarlo_matches_reference(self):
        m = run_bench("scimark.montecarlo", {"Samples": 500})
        assert results(m, "SciMark:MonteCarlo")[0] == montecarlo_reference(500)

    def test_sparse_matches_reference(self):
        m = run_bench("scimark.sparse", {"N": 50, "NZ": 250, "Reps": 2})
        assert results(m, "SciMark:Sparse")[0] == sparse_reference(50, 250, 2)

    def test_lu_matches_reference(self):
        m = run_bench("scimark.lu", {"N": 12})
        assert results(m, "SciMark:LU")[0] == lu_reference(12)

    def test_scimark_identical_across_runtimes(self):
        a = run_bench("scimark.lu", {"N": 10}, profile=CLR11)
        b = run_bench("scimark.lu", {"N": 10}, profile=SSCLI10)
        assert results(a, "SciMark:LU") == results(b, "SciMark:LU")


class TestGrandeOracles:
    def test_fibonacci(self):
        m = run_bench("grande.fibonacci", {"N": 15})
        assert results(m, "Grande:Fibonacci")[0] == float(fibonacci_reference(15))

    def test_sieve(self):
        m = run_bench("grande.sieve", {"Limit": 1000})
        assert results(m, "Grande:Sieve")[0] == float(sieve_reference(1000))

    def test_hanoi(self):
        m = run_bench("grande.hanoi", {"Disks": 10})
        assert results(m, "Grande:Hanoi")[0] == float(hanoi_reference(10))

    def test_heapsort(self):
        m = run_bench("grande.heapsort", {"N": 500})
        lo, hi = heapsort_reference(500)
        assert results(m, "Grande:HeapSort") == [float(lo), float(hi)]

    def test_crypt(self):
        m = run_bench("grande.crypt", {"Words": 128})
        assert results(m, "Grande:Crypt")[0] == crypt_reference(128)

    def test_moldyn(self):
        m = run_bench("grande.moldyn", {"MM": 2, "Steps": 2})
        e0, e1 = moldyn_reference(2, 2)
        got = results(m, "Grande:MolDyn")
        assert got[0] == e0
        assert got[1] == e1

    def test_raytracer(self):
        m = run_bench("grande.raytracer", {"Size": 8, "Grid": 2})
        checksum, rays = raytracer_reference(8, 2)
        got = results(m, "Grande:RayTracer")
        assert got[0] == checksum
        assert got[1] == float(rays)

    def test_euler_conserves_and_is_finite(self):
        m = run_bench("grande.euler", {"N": 6, "Steps": 2})
        got = results(m, "Grande:Euler")
        mass0, mass1, rho_mid = got
        assert math.isfinite(mass1)
        assert abs(mass1 - mass0) / mass0 < 0.05
        assert 0.1 < rho_mid < 10.0

    def test_search_deterministic(self):
        a = results(run_bench("grande.search", {"Depth": 3}), "Grande:Search")
        b = results(run_bench("grande.search", {"Depth": 3}, profile=SSCLI10), "Grande:Search")
        assert a == b
        assert a[1] > 50  # explored a real tree


class TestBenchmarkHygiene:
    def test_registry_complete(self):
        names = {b.name for b in all_benchmarks()}
        # one per Table 1-4 row (plus scimark splits and the section-3.4
        # planned parallel versions)
        assert len(names) == 32

    @pytest.mark.parametrize("name", [b.name for b in all_benchmarks()])
    def test_every_benchmark_declares_sections_and_sizes(self, name):
        bench = get(name)
        assert bench.sections, name
        assert bench.params, name
        assert bench.description

    def test_unknown_param_override_rejected(self):
        from repro.errors import BenchmarkError
        with pytest.raises(BenchmarkError, match="unknown params"):
            get("scimark.fft").build_source({"Bogus": 1})

    @pytest.mark.parametrize(
        "name",
        [b.name for b in all_benchmarks() if b.name not in ("grande.search",)],
    )
    def test_all_benchmarks_run_and_validate_on_clr(self, name):
        bench = get(name)
        machine = run_bench(name)
        for section in bench.sections:
            assert section in machine.bench.sections, f"missing {section}"
            sec = machine.bench.sections[section]
            assert sec.total_cycles > 0, f"{section} has no timing"
            assert sec.ops > 0 or sec.flops > 0, f"{section} has no work counter"


class TestParallelKernels:
    """The paper section 3.4's planned shared-memory parallel versions."""

    def test_parallel_sor_matches_serial_jacobi_reference(self):
        from repro.benchmarks.scimark.common import PySciRandom, RANDOM_SEED

        n, iters = 16, 4
        m = run_bench("scimark.sor_mt", {"N": n, "Iters": iters, "Threads": 4})
        got = results(m, "SciMark:SORMT")[0]

        rng = PySciRandom(RANDOM_SEED)
        g = [[rng.next_double() * 1.0e-6 for _ in range(n)] for _ in range(n)]
        h = [row[:] for row in g]
        omega = 1.25
        oof, omo = omega * 0.25, 1.0 - omega
        a, b = g, h
        for _ in range(iters):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    b[i][j] = oof * (a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1]) + omo * a[i][j]
            a, b = b, a
        result = g if iters % 2 == 0 else h
        expected = 0.0
        for i in range(n):
            for j in range(n):
                expected += result[i][j]
        assert got == expected

    def test_parallel_sor_schedule_independent(self):
        # different quantum -> different interleaving -> same checksum
        from repro.benchmarks import get
        from repro.lang import compile_source
        from repro.vm.loader import LoadedAssembly
        from repro.vm.machine import Machine

        bench = get("scimark.sor_mt")
        source = bench.build_source({"N": 14, "Iters": 3, "Threads": 3})
        outs = set()
        for quantum in (900, 5000, 50_000):
            machine = Machine(LoadedAssembly(compile_source(source)), CLR11,
                              quantum=quantum)
            machine.run()
            machine.bench.require_valid()
            outs.add(tuple(machine.bench.sections["SciMark:SORMT"].results))
        assert len(outs) == 1

    def test_parallel_mc_pi_matches_sample_count_invariant(self):
        m = run_bench("scimark.montecarlo_mt", {"Samples": 800, "Threads": 4})
        (pi,) = results(m, "SciMark:MonteCarloMT")
        assert 2.8 < pi < 3.5

    def test_parallel_mc_slower_than_serial_per_sample_on_clr(self):
        # the shared synchronized RNG makes the parallel version pay
        # contention: cycles/sample must exceed the serial kernel's
        serial = run_bench("scimark.montecarlo", {"Samples": 800})
        parallel = run_bench("scimark.montecarlo_mt", {"Samples": 800, "Threads": 4})
        s = serial.bench.sections["SciMark:MonteCarlo"].total_cycles / 800
        p = parallel.bench.sections["SciMark:MonteCarloMT"].total_cycles / 800
        assert p > s
