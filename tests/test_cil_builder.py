"""Unit tests for the CIL builder, metadata and max-stack computation."""

import pytest

from repro.cil import (
    Assembly,
    ClassDef,
    FieldDef,
    Label,
    MethodBuilder,
    MethodDef,
    MethodRef,
    cts,
    opcodes as op,
)
from repro.errors import CilError


def make_method(name="M", ret=cts.VOID, params=None, static=True):
    return MethodDef(name=name, param_types=params or [], return_type=ret, is_static=static)


class TestMethodBuilder:
    def test_emit_and_build(self):
        m = make_method(ret=cts.INT32)
        b = MethodBuilder(m)
        b.emit(op.LDC_I4, 42)
        b.emit(op.RET)
        built = b.build()
        assert [i.mnemonic for i in built.body] == ["ldc.i4", "ret"]
        assert built.max_stack == 1

    def test_forward_label_fixup(self):
        m = make_method(ret=cts.INT32)
        b = MethodBuilder(m)
        done = b.new_label("done")
        b.emit(op.LDC_I4, 1)
        b.emit_branch(op.BRTRUE, done)
        b.emit(op.LDC_I4, 0)
        b.emit(op.RET)
        b.mark_label(done)
        b.emit(op.LDC_I4, 99)
        b.emit(op.RET)
        built = b.build()
        assert built.body[1].operand == 4

    def test_unresolved_label_raises(self):
        m = make_method()
        b = MethodBuilder(m)
        dangling = b.new_label("nowhere")
        b.emit_branch(op.BR, dangling)
        with pytest.raises(CilError, match="unresolved"):
            b.build()

    def test_label_marked_twice_raises(self):
        m = make_method()
        b = MethodBuilder(m)
        lab = b.new_label()
        b.mark_label(lab)
        with pytest.raises(CilError, match="twice"):
            b.mark_label(lab)

    def test_non_branch_opcode_rejected_by_emit_branch(self):
        b = MethodBuilder(make_method())
        with pytest.raises(CilError, match="not a branch"):
            b.emit_branch(op.ADD, b.new_label())

    def test_declare_local_and_index(self):
        b = MethodBuilder(make_method())
        i = b.declare_local("x", cts.INT32)
        j = b.declare_local("y", cts.FLOAT64)
        assert (i, j) == (0, 1)
        assert b.local_index("y") == 1

    def test_duplicate_local_raises(self):
        b = MethodBuilder(make_method())
        b.declare_local("x", cts.INT32)
        with pytest.raises(CilError, match="duplicate local"):
            b.declare_local("x", cts.INT32)

    def test_unknown_local_raises(self):
        b = MethodBuilder(make_method())
        with pytest.raises(CilError, match="unknown local"):
            b.local_index("ghost")

    def test_max_stack_call(self):
        ref = MethodRef("C", "F", (cts.INT32, cts.INT32), cts.INT32)
        m = make_method(ret=cts.INT32)
        b = MethodBuilder(m)
        b.emit(op.LDC_I4, 1)
        b.emit(op.LDC_I4, 2)
        b.emit(op.CALL, ref)
        b.emit(op.RET)
        built = b.build()
        assert built.max_stack == 2

    def test_stack_underflow_detected(self):
        m = make_method()
        b = MethodBuilder(m)
        b.emit(op.POP)
        b.emit(op.RET)
        with pytest.raises(CilError, match="underflow"):
            b.build()

    def test_inconsistent_merge_depth_detected(self):
        m = make_method(ret=cts.INT32)
        b = MethodBuilder(m)
        join = b.new_label()
        b.emit(op.LDC_I4, 0)
        b.emit_branch(op.BRFALSE, join)
        b.emit(op.LDC_I4, 1)  # depth 1 on this edge
        b.mark_label(join)  # depth 0 on fallthrough edge
        b.emit(op.LDC_I4, 2)
        b.emit(op.RET)
        with pytest.raises(CilError, match="inconsistent stack depth"):
            b.build()

    def test_switch_fixups(self):
        m = make_method(ret=cts.INT32)
        b = MethodBuilder(m)
        l0, l1 = b.new_label(), b.new_label()
        b.emit(op.LDC_I4, 0)
        b.emit_switch([l0, l1])
        b.mark_label(l0)
        b.emit(op.LDC_I4, 10)
        b.emit(op.RET)
        b.mark_label(l1)
        b.emit(op.LDC_I4, 20)
        b.emit(op.RET)
        built = b.build()
        assert built.body[1].operand == [2, 4]


class TestMetadata:
    def test_duplicate_class_rejected(self):
        asm = Assembly("a")
        asm.add_class(ClassDef("C"))
        with pytest.raises(CilError, match="duplicate class"):
            asm.add_class(ClassDef("C"))

    def test_duplicate_field_rejected(self):
        cls = ClassDef("C")
        cls.add_field(FieldDef("x", cts.INT32))
        with pytest.raises(CilError, match="duplicate field"):
            cls.add_field(FieldDef("x", cts.FLOAT64))

    def test_duplicate_method_signature_rejected(self):
        cls = ClassDef("C")
        cls.add_method(make_method("F", params=[cts.INT32]))
        cls.add_method(make_method("F", params=[cts.FLOAT64]))  # overload ok
        with pytest.raises(CilError, match="duplicate method"):
            cls.add_method(make_method("F", params=[cts.INT32]))

    def test_entry_point_must_be_static(self):
        asm = Assembly("a")
        cls = ClassDef("C")
        cls.add_method(make_method("Main", static=False))
        asm.add_class(cls)
        with pytest.raises(CilError, match="static"):
            asm.set_entry_point("C", "Main")

    def test_find_method_missing(self):
        asm = Assembly("a")
        asm.add_class(ClassDef("C"))
        with pytest.raises(CilError, match="no method"):
            asm.find_method("C", "Nope")

    def test_missing_class(self):
        asm = Assembly("a")
        with pytest.raises(CilError, match="no class"):
            asm.get_class("Ghost")

    def test_arg_count_includes_this(self):
        m = make_method(params=[cts.INT32], static=False)
        assert m.arg_count == 2

    def test_instance_and_static_field_partition(self):
        cls = ClassDef("C")
        cls.add_field(FieldDef("a", cts.INT32))
        cls.add_field(FieldDef("b", cts.INT32, is_static=True))
        assert [f.name for f in cls.instance_fields()] == ["a"]
        assert [f.name for f in cls.static_fields()] == ["b"]


class TestCts:
    def test_primitives_interned(self):
        assert cts.BY_NAME["int"] is cts.INT32
        assert cts.BY_NAME["double"] is cts.FLOAT64

    def test_array_interning(self):
        assert cts.array_of(cts.INT32) is cts.array_of(cts.INT32)
        assert cts.array_of(cts.INT32, 2) is not cts.array_of(cts.INT32, 1)

    def test_named_interning(self):
        assert cts.named("Foo") is cts.named("Foo")

    def test_array_names(self):
        assert cts.array_of(cts.FLOAT64, 2).name == "float64[,]"
        jagged = cts.array_of(cts.array_of(cts.INT32))
        assert jagged.name == "int32[][]"

    def test_stack_type_widening(self):
        assert cts.stack_type(cts.BOOL) is cts.INT32
        assert cts.stack_type(cts.INT16) is cts.INT32
        assert cts.stack_type(cts.INT64) is cts.INT64

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            cts.ArrayType(cts.INT32, 0)

    def test_assignability(self):
        assert cts.is_assignable(cts.NULL, cts.STRING)
        assert cts.is_assignable(cts.named("C"), cts.OBJECT)
        assert not cts.is_assignable(cts.INT32, cts.FLOAT64)
        assert cts.is_assignable(cts.FLOAT32, cts.FLOAT64)
