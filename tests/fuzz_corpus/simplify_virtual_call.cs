// repro-fuzz mutation-check witness (shrunk from generated seed
// 986796162481576357): returns a constant through a virtual call, so the
// result flows through constant folding in the simplify pass.  Stock
// pipelines must agree with the interpreter; under an injected off-by-one
// in constant folding (`repro-fuzz run --inject-bug simplify`) every
// profile diverges.  tests/test_fuzz.py uses this file to prove the
// oracle actually detects a broken pass.
class Fuzz {
    static int Main()
    {
        int crc = 17;
        VBase vv19 = new VBase();
        crc = vv19.Vm(3);
        return crc;
    }
}
class VBase {
    virtual int Vm(int x)
    {
        return 3;
    }
}
