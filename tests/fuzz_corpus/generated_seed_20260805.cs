// repro-fuzz conformance seed: generated program (generator seed
// 20260805, budget 25), kept as a corpus entry so replay exercises the
// generator idioms (loops, arrays, helpers, checksum accumulation)
// against the full ablation matrix even on machines without the fuzzer
// in the loop.
class Fuzz {
    static int H0(int p0, double p1, long p2) {
        int crc = 1;
        object o1 = (object)(((978) + (crc)));
        crc = crc * 31 + (int)o1;
        Console.WriteLine((~((-1))));
        return (((((int)(p2))) + (p0))) + (((int)(p0))) + (((int)(p1))) + (((int)(p2)));
    }
    static int Main() {
        int crc = 17;
        double v2 = (-(((3.5) / (((((double)(crc))) + (((double)(crc))))))));
        bool v3 = true;
        double[,] arr4 = new double[4, 4];
        for (int i5 = 0; i5 < 4; i5++) for (int k6 = 0; k6 < 4; k6++) { arr4[i5, k6] = (double)((i5 + k6) * 2) * 0.5; }
        Bench.Start("fuzz:kernel");
        try {
            crc += (int)arr4[5, 0];
        } catch (IndexOutOfRangeException e7) {
            crc = crc * 31 + 11;
        } catch (Exception e8) {
            crc = crc * 31 + 13;
        }
        v3 = true;
        crc = crc * 31 + H0((~(7)), (-((-2.5))), (((-5L)) | (((long)(crc)))));
        object o9 = (object)(((((crc) != (((int)(v2))))) ? ((-974.598)) : (v2)));
        crc = crc * 31 + (int)((double)o9);
        Console.WriteLine(((2) & (6457)));
        crc = crc * 31 + H0(((100) - (1)), ((v2) + (v2)), ((((long)(crc))) & (0L)));
        SPack sp10 = new SPack();
        sp10.a = ((crc) * (0));
        sp10.b = ((0L) * ((-5L)));
        sp10.c = arr4[(crc & 3), 3];
        SPack sp11 = sp10;
        sp11.a += 1;
        crc = crc * 31 + sp10.a * 2 + sp11.a;
        VBase vv12 = new VDeriv();
        crc = crc * 31 + vv12.Vm(((crc) * (13)));
        object o13 = (object)(((v3) ? (6979) : ((-1))));
        crc = crc * 31 + (int)o13;
        v2 = 0.0;
        if (((1L) > (((((0L) ^ (((long)(v2))))) % (((((3L) | (((long)(v2)))))) | 1L))))) {
            for (int i14 = 0; i14 < 4; i14++) {
                crc++;
                if (v3) {
                    for (int i15 = 0; i15 < 2; i15++) {
                        VBase vv16 = new VDeriv();
                        crc = crc * 31 + vv16.Vm(((i14) / (((((int)(v2)))) | 1)));
                        double v17 = ((((((((((int)(v2))) >= (((int)(v2))))) || (v3))) ? (((3.5) + (0.0))) : (0.25))) - (((((v2) * (v2))) * (v2))));
                    }
                    try {
                        crc += (int)arr4[5, 0];
                    } catch (IndexOutOfRangeException e18) {
                        crc = crc * 31 + 11;
                    }
                }
                if (v3) {
                    crc = crc * 31 + H0((-(((int)(v2)))), ((v3) ? (280.6956) : (arr4[(i14 & 3), 0])), (((-5L)) & (1000L)));
                    crc--;
                } else {
                    int v19 = ((i14) - (((100) % ((((((-7)) << ((1) & 31)))) | 1))));
                }
            }
        }
        for (int i20 = 0; i20 < 5; i20++) {
            object o21 = (object)(((arr4[(i20 & 3), 3]) - (((double)(crc)))));
            crc = crc * 31 + (int)((double)o21);
            crc++;
        }
        Bench.Stop("fuzz:kernel");
        crc = crc * 31 + ((int)(v2));
        crc = crc * 31 + (v3 ? 1 : 0);
        for (int i22 = 0; i22 < 4; i22++) { crc = crc * 31 + ((int)(arr4[i22, 2])); }
        Bench.Result("fuzz:crc", (double)crc);
        return crc;
    }
}
struct SPack { int a; long b; double c; }
class VBase { VBase() {} virtual int Vm(int x) { return x * 3 - 1; } }
class VDeriv : VBase { VDeriv() : base() {} override int Vm(int x) { return x * 5 + (x >> 1); } }
