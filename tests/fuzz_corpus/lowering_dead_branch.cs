// repro-fuzz regression: JIT lowering resurrected branch targets inside
// unreachable CIL.  The front end folds `if (false)` into a plain `br`,
// leaving the guarded block (including the ternary's branch targets) as
// dead code the type simulation never reached; lowering restarted those
// positions with an empty stack and the STFLD popped from an empty list,
// crashing the Machine on every profile while the Interpreter was fine.
// Found by repro-fuzz, shrunk by repro-fuzz shrink.
class Fuzz {
    static int Main()
    {
        if (false) {
            SPack s = new SPack();
            s.c = ((false) ? (0.0) : (0));
        }
        return 17;
    }
}
class SPack {
    double c;
}
