"""Unit tests for the Kernel-C# lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.lang import parse, tokenize
from repro.lang import ast_nodes as ast
from repro.lang.tokens import (
    DOUBLE_LIT,
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    LONG_LIT,
    PUNCT,
    STRING_LIT,
)


class TestLexer:
    def kinds(self, src):
        return [t.kind for t in tokenize(src)]

    def test_empty(self):
        assert self.kinds("") == [EOF]

    def test_ints_and_suffixes(self):
        toks = tokenize("42 0x1F 7L 0xFFL")
        assert [(t.kind, t.value) for t in toks[:-1]] == [
            (INT_LIT, 42),
            (INT_LIT, 31),
            (LONG_LIT, 7),
            (LONG_LIT, 255),
        ]

    def test_floats(self):
        toks = tokenize("1.5 2.0e3 3f 4.5F 1e-6 7d")
        assert [(t.kind, t.value) for t in toks[:-1]] == [
            (DOUBLE_LIT, 1.5),
            (DOUBLE_LIT, 2000.0),
            (FLOAT_LIT, 3.0),
            (FLOAT_LIT, 4.5),
            (DOUBLE_LIT, 1e-6),
            (DOUBLE_LIT, 7.0),
        ]

    def test_string_escapes(self):
        toks = tokenize(r'"a\n\t\"b"')
        assert toks[0].kind == STRING_LIT
        assert toks[0].value == 'a\n\t"b'

    def test_char_literal(self):
        toks = tokenize("'A' '\\n'")
        assert toks[0].value == 65
        assert toks[1].value == 10

    def test_comments_skipped(self):
        toks = tokenize("a // line\n /* block\nmore */ b")
        assert [t.value for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated block comment"):
            tokenize("/* never ends")

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"abc')

    def test_maximal_munch_operators(self):
        toks = tokenize("a<<=b >>= == != <= >= && || ++ --")
        values = [t.value for t in toks if t.kind == PUNCT]
        assert values == ["<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "++", "--"]

    def test_keywords_vs_idents(self):
        toks = tokenize("class classy for fortune")
        assert [t.kind for t in toks[:-1]] == [KEYWORD, IDENT, KEYWORD, IDENT]

    def test_line_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")

    def test_hex_without_digits(self):
        with pytest.raises(LexError, match="malformed hex"):
            tokenize("0x")


class TestParser:
    def first_class(self, src):
        return parse(src).classes[0]

    def test_class_with_base(self):
        cls = self.first_class("class A : B { }")
        assert cls.name == "A" and cls.base_name == "B"

    def test_struct(self):
        cls = self.first_class("struct P { double x; double y; }")
        assert cls.is_struct and len(cls.fields) == 2

    def test_struct_with_base_rejected(self):
        with pytest.raises(ParseError, match="structs cannot have a base"):
            parse("struct P : Q { }")

    def test_method_modifiers(self):
        cls = self.first_class(
            "class A { static int F() { return 1; } virtual void G() { } }"
        )
        assert cls.methods[0].is_static
        assert cls.methods[1].is_virtual

    def test_constructor_with_base_args(self):
        cls = self.first_class("class A : B { A(int x) : base(x) { } }")
        ctor = cls.methods[0]
        assert ctor.is_ctor and len(ctor.base_args) == 1

    def test_field_multi_declarators(self):
        cls = self.first_class("class A { int x, y = 3; }")
        assert [f.name for f in cls.fields] == ["x", "y"]
        assert cls.fields[1].init is not None

    def test_array_type_ranks(self):
        cls = self.first_class("class A { double[,] m; int[][] j; }")
        assert cls.fields[0].type_expr.ranks == [2]
        assert cls.fields[1].type_expr.ranks == [1, 1]

    def test_for_statement(self):
        cls = self.first_class(
            "class A { void F() { for (int i = 0; i < 10; i++) { } } }"
        )
        body = cls.methods[0].body.statements[0]
        assert isinstance(body, ast.For)
        assert isinstance(body.init, ast.VarDecl)
        assert len(body.update) == 1

    def test_do_while(self):
        cls = self.first_class("class A { void F() { do { } while (true); } }")
        assert isinstance(cls.methods[0].body.statements[0], ast.DoWhile)

    def test_try_catch_finally(self):
        cls = self.first_class(
            "class A { void F() { try { } catch (Exception e) { } finally { } } }"
        )
        stmt = cls.methods[0].body.statements[0]
        assert isinstance(stmt, ast.Try)
        assert stmt.catches[0].type_name == "Exception"
        assert stmt.catches[0].var_name == "e"
        assert stmt.finally_body is not None

    def test_try_requires_handler(self):
        with pytest.raises(ParseError, match="try requires"):
            parse("class A { void F() { try { } } }")

    def test_lock_statement(self):
        cls = self.first_class("class A { void F(object o) { lock (o) { } } }")
        assert isinstance(cls.methods[0].body.statements[0], ast.Lock)

    def test_new_object_and_arrays(self):
        cls = self.first_class(
            "class A { void F() { object o = new A(); int[] a = new int[5]; "
            "double[,] m = new double[2, 3]; int[][] j = new int[4][]; } }"
        )
        stmts = cls.methods[0].body.statements
        assert isinstance(stmts[0].inits[0], ast.NewObject)
        assert isinstance(stmts[1].inits[0], ast.NewArray)
        assert len(stmts[2].inits[0].dims) == 2
        assert stmts[3].inits[0].extra_ranks == [1]

    def test_cast_vs_parenthesized(self):
        cls = self.first_class(
            "class A { int F(double d, int x) { int a = (int)d; int b = (x) + 1; return a + b; } }"
        )
        stmts = cls.methods[0].body.statements
        assert isinstance(stmts[0].inits[0], ast.Cast)
        assert isinstance(stmts[1].inits[0], ast.Binary)

    def test_class_type_cast(self):
        cls = self.first_class("class A { object F(object o) { return (A)o; } }")
        ret = cls.methods[0].body.statements[0]
        assert isinstance(ret.value, ast.Cast)

    def test_precedence(self):
        cls = self.first_class("class A { int F() { return 1 + 2 * 3; } }")
        value = cls.methods[0].body.statements[0].value
        assert value.op == "+"
        assert value.right.op == "*"

    def test_ternary(self):
        cls = self.first_class("class A { int F(bool b) { return b ? 1 : 2; } }")
        assert isinstance(cls.methods[0].body.statements[0].value, ast.Conditional)

    def test_compound_assign(self):
        cls = self.first_class("class A { void F() { int x = 0; x += 2; x <<= 1; } }")
        stmts = cls.methods[0].body.statements
        assert stmts[1].expr.op == "+"
        assert stmts[2].expr.op == "<<"

    def test_md_index(self):
        cls = self.first_class("class A { double F(double[,] m) { return m[1, 2]; } }")
        idx = cls.methods[0].body.statements[0].value
        assert isinstance(idx, ast.Index) and len(idx.indices) == 2

    def test_member_chain(self):
        cls = self.first_class("class A { int F(int[] a) { return a.Length; } }")
        assert isinstance(cls.methods[0].body.statements[0].value, ast.Member)

    def test_namespace_and_using_tolerated(self):
        program = parse(
            "using System; namespace Foo { class A { } class B { } } class C { }"
        )
        assert [c.name for c in program.classes] == ["A", "B", "C"]

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as err:
            parse("class A { void F() { int 5; } }")
        assert "expected identifier" in str(err.value)
