"""Tests for the repro.observe subsystem.

The load-bearing property is **zero perturbation**: attaching an
:class:`~repro.observe.Observer` must never change a machine's cycles,
instructions, or results — observed and unobserved runs are bit-identical.
The rest checks that what the observer records is complete (>= 95% cycle
attribution; in practice 100%), well-formed (Chrome trace structure,
balanced begin/end spans), and usable (report/diff text, CLI, harness
plumbing).
"""

import json
from pathlib import Path

import pytest

from repro.benchmarks import get as get_benchmark
from repro.harness.runner import Runner
from repro.lang import compile_source
from repro.observe import (
    CATEGORIES,
    Observer,
    coverage,
    diff_categories,
    profile_from_path,
    profile_to_dict,
    render_diff,
    render_diff_markdown,
    render_report,
)
from repro.observe.cli import main as prof_main, resolve_profile
from repro.runtimes import CLR11, MICRO_PROFILES, MONO023
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

CORPUS = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.cs"))

#: benchmark -> shrunk-but-representative parameter overrides
BENCH_CASES = {
    "micro.arith": {"Reps": 300},
    "grande.sieve": {"Limit": 600, "Reps": 1},
    "scimark.sor": {"N": 10, "Iters": 2},
}


def run_pair(assembly_source, profile, quantum=50_000):
    """Run one program observed and unobserved; return (plain, observed, obs)."""
    plain = Machine(
        LoadedAssembly(compile_source(assembly_source)), profile, quantum=quantum
    )
    plain_result = plain.run()
    obs = Observer()
    watched = Machine(
        LoadedAssembly(compile_source(assembly_source)),
        profile,
        quantum=quantum,
        observer=obs,
    )
    watched_result = watched.run()
    return plain, plain_result, watched, watched_result, obs


def bench_pair(name, profile, overrides):
    runner = Runner(profiles=[profile])
    plain = runner.run_on(name, profile, overrides)
    watched = runner.run_on(name, profile, overrides, observe=True)
    return plain, watched


class TestZeroPerturbation:
    @pytest.mark.parametrize("profile", MICRO_PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("bench", sorted(BENCH_CASES))
    def test_benchmarks_bit_identical(self, bench, profile):
        plain, watched = bench_pair(bench, profile, BENCH_CASES[bench])
        assert watched.total_cycles == plain.total_cycles
        assert watched.instructions == plain.instructions
        assert watched.stdout == plain.stdout
        for name, sec in plain.sections.items():
            wsec = watched.sections[name]
            assert wsec.cycles == sec.cycles
            assert wsec.results == sec.results
            assert wsec.ops == sec.ops

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=lambda p: p.stem
    )
    def test_fuzz_corpus_replay_bit_identical(self, path):
        source = path.read_text()
        plain, plain_result, watched, watched_result, _obs = run_pair(
            source, CLR11
        )
        assert watched_result == plain_result
        assert watched.cycles == plain.cycles
        assert watched.instructions == plain.instructions

    @pytest.mark.parametrize("profile", MICRO_PROFILES, ids=lambda p: p.name)
    def test_attribution_covers_all_cycles(self, profile):
        _plain, watched = bench_pair("micro.arith", profile, {"Reps": 300})
        profile_dict = profile_to_dict(watched.observation)
        assert coverage(profile_dict) >= 0.95
        # in practice the recorder accounts for every single cycle
        assert profile_dict["attributed_cycles"] == profile_dict["total_cycles"]
        assert sum(profile_dict["categories"].values()) == profile_dict["total_cycles"]

    def test_observer_instruction_count_matches_machine(self):
        _plain, watched = bench_pair("grande.sieve", CLR11, BENCH_CASES["grande.sieve"])
        obs = watched.observation
        assert obs.cycles.instructions() == obs.machine.instructions

    def test_observer_is_single_machine(self):
        obs = Observer()
        src = "class P { static int Main() { return 7; } }"
        Machine(LoadedAssembly(compile_source(src)), CLR11, observer=obs).run()
        with pytest.raises(ValueError):
            Machine(LoadedAssembly(compile_source(src)), CLR11, observer=obs)


class TestTimeline:
    def _trace(self, bench="micro.arith", profile=CLR11, overrides=None):
        _plain, watched = bench_pair(bench, profile, overrides or {"Reps": 300})
        obs = watched.observation
        return obs, obs.timeline.to_chrome_trace(profile.clock_hz, {"benchmark": bench})

    def test_chrome_trace_structure(self):
        obs, trace = self._trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["clock_hz"] == CLR11.clock_hz
        assert trace["traceEvents"], "timeline should not be empty"
        for ev in trace["traceEvents"]:
            assert ev["ph"] in ("B", "E", "I", "X")
            assert ev["ts"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        # must survive a JSON round-trip (what chrome://tracing loads)
        assert json.loads(json.dumps(trace)) == trace

    def test_begin_end_balanced_per_thread(self):
        obs, trace = self._trace(
            bench="scimark.sor", overrides=BENCH_CASES["scimark.sor"]
        )
        assert obs.timeline.open_spans() == 0
        depth = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "B":
                depth[ev["tid"]] = depth.get(ev["tid"], 0) + 1
            elif ev["ph"] == "E":
                depth[ev["tid"]] = depth.get(ev["tid"], 0) - 1
                assert depth[ev["tid"]] >= 0, "E without matching B"
        assert all(v == 0 for v in depth.values()), depth

    def test_event_cap_drops_pairs_not_ends(self):
        # virtual Step() defeats inlining, so every iteration is a real call
        src = """
        class C {
            virtual int Step(int x) { return x + 1; }
            static int Main() {
                C c = new C();
                int s = 0;
                for (int i = 0; i < 100; i++) { s = c.Step(s); }
                return s;
            }
        }"""
        obs = Observer(max_events=8)
        machine = Machine(
            LoadedAssembly(compile_source(src)), CLR11, observer=obs
        )
        assert machine.run() == 100
        assert obs.timeline.dropped > 0
        phases = [e[0] for e in obs.timeline.events]
        assert phases.count("B") == phases.count("E")  # never a lone end
        assert obs.timeline.open_spans() == 0


class TestJitTrace:
    def test_pass_sequence_and_inlining_recorded(self):
        _plain, watched = bench_pair("scimark.sor", CLR11, BENCH_CASES["scimark.sor"])
        trace = watched.observation.jit
        rec = trace.find("SOR::Execute")
        assert rec is not None
        pass_names = [p.name for p in rec.passes]
        assert "enregister" in pass_names
        assert "constant_fold" in pass_names
        assert rec.final_instrs > 0 and rec.lowered_instrs > 0
        assert rec.n_vregs >= rec.enregistered >= 0
        # clr-1.1 inlines: some method somewhere asked for candidates
        assert any(r.inline_decisions for r in trace.methods)
        # serialization is JSON-clean (force_spill sets become lists)
        json.dumps(trace.to_list())

    def test_tracing_does_not_change_generated_code(self):
        src = (CORPUS / "simplify_virtual_call.cs").read_text()
        plain, plain_result, watched, watched_result, obs = run_pair(src, MONO023)
        assert watched_result == plain_result
        assert watched.cycles == plain.cycles
        assert obs.jit.methods, "compilations should have been traced"


class TestReportAndDiff:
    def _profiles(self):
        _pa, wa = bench_pair("grande.sieve", CLR11, BENCH_CASES["grande.sieve"])
        _pb, wb = bench_pair("grande.sieve", MONO023, BENCH_CASES["grande.sieve"])
        return profile_to_dict(wa.observation), profile_to_dict(wb.observation)

    def test_report_text(self):
        a, _b = self._profiles()
        text = render_report(a)
        assert "cycle-attribution profile: grande.sieve @ clr-1.1" in text
        assert "by cost category:" in text
        assert "hot methods" in text
        assert "JIT compilation trace:" in text
        assert "100.00% of total" in text

    def test_diff_ranks_categories_by_gap(self):
        a, b = self._profiles()
        rows = diff_categories(a, b)
        assert rows, "diff should produce category rows"
        deltas = [abs(r["delta"]) for r in rows]
        assert deltas == sorted(deltas, reverse=True)
        gap = b["total_cycles"] - a["total_cycles"]
        assert sum(r["delta"] for r in rows) == gap
        assert all(r["category"] in CATEGORIES for r in rows)
        text = render_diff(a, b)
        assert "clr-1.1 vs mono-0.23" in text
        assert "gap share" in text
        md = render_diff_markdown(a, b)
        assert md.startswith("| category |")
        assert "**total**" in md

    def test_profile_json_round_trip(self, tmp_path):
        a, _b = self._profiles()
        path = tmp_path / "x.profile.json"
        path.write_text(json.dumps(a))
        loaded = profile_from_path(str(path))
        assert loaded["total_cycles"] == a["total_cycles"]
        assert loaded["categories"] == a["categories"]
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="schema"):
            profile_from_path(str(bad))


class TestHarnessPlumbing:
    def test_run_on_observe_true_attaches(self):
        runner = Runner(profiles=[CLR11])
        run = runner.run_on("micro.arith", CLR11, {"Reps": 300}, observe=True)
        assert run.observation is not None
        assert run.observation.benchmark == "micro.arith"
        assert run.observation.machine is not None
        assert run.observation.machine.cycles == run.total_cycles

    def test_run_observe_gives_each_profile_its_own_observer(self):
        runner = Runner(profiles=[CLR11, MONO023])
        runs = runner.run("micro.arith", {"Reps": 300}, observe=True)
        observers = [r.observation for r in runs.values()]
        assert all(o is not None for o in observers)
        assert observers[0] is not observers[1]

    def test_unobserved_run_has_no_observation(self):
        runner = Runner(profiles=[CLR11])
        run = runner.run_on("micro.arith", CLR11, {"Reps": 300})
        assert run.observation is None

    def test_disabled_passes_flow_into_machine(self):
        base = Runner(profiles=[CLR11]).run_on("scimark.sor", CLR11,
                                               BENCH_CASES["scimark.sor"])
        ablated_runner = Runner(profiles=[CLR11], disabled_passes=("enregister",))
        ablated = ablated_runner.run_on("scimark.sor", CLR11,
                                        BENCH_CASES["scimark.sor"])
        # semantics preserved, costs changed
        for name, sec in base.sections.items():
            assert ablated.sections[name].results == sec.results
        assert ablated.total_cycles != base.total_cycles
        # per-call override beats the runner-wide setting
        override = ablated_runner.run_on(
            "scimark.sor", CLR11, BENCH_CASES["scimark.sor"], disabled_passes=()
        )
        assert override.total_cycles == base.total_cycles

    def test_section_seconds(self):
        run = Runner(profiles=[CLR11]).run_on("micro.arith", CLR11, {"Reps": 300})
        for sec in run.sections.values():
            assert sec.seconds == pytest.approx(sec.cycles / run.clock_hz)


class TestCli:
    def test_resolve_profile_loose_names(self):
        assert resolve_profile("clr11") is CLR11
        assert resolve_profile("CLR-1.1") is CLR11
        assert resolve_profile("mono023") is MONO023
        with pytest.raises(SystemExit):
            resolve_profile("hotspot-99")

    def test_report_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        rc = prof_main([
            "report", "micro.arith", "--runtime", "clr11",
            "--param", "Reps=300", "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cycle-attribution profile" in text
        prof = out / "micro.arith.clr-1.1.profile.json"
        trace = out / "micro.arith.clr-1.1.trace.json"
        report = out / "micro.arith.clr-1.1.report.txt"
        assert prof.exists() and trace.exists() and report.exists()
        data = json.loads(prof.read_text())
        assert data["schema"] == "repro.observe/1"
        assert data["runtime"] == "clr-1.1"
        tdata = json.loads(trace.read_text())
        assert tdata["traceEvents"]

    def test_diff_live_and_saved(self, tmp_path, capsys):
        rc = prof_main([
            "diff", "clr11", "mono023",
            "--benchmark", "grande.sieve",
            "--param", "Limit=600", "--param", "Reps=1",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "clr-1.1 vs mono-0.23" in text
        assert "categories ranked by contribution" in text

    def test_export_trace(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        rc = prof_main([
            "export", "micro.arith", "--runtime", "clr-1.1",
            "--param", "Reps=300", "--out", str(out),
        ])
        assert rc == 0
        trace = json.loads(out.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
