"""Tests on the runtime-profile layer: registry, derivation, and the
calibration invariants DESIGN.md commits to."""

import dataclasses

import pytest

from repro.benchmarks.micro.math_bench import GROUP1, GROUP2, GROUP3
from repro.runtimes import (
    ALL_PROFILES,
    BY_NAME,
    CLI_PROFILES,
    CLR11,
    IBM131,
    JROCKIT81,
    JSHARP11,
    MICRO_PROFILES,
    MONO023,
    NATIVE_C,
    SSCLI10,
    SUN14,
    get_profile,
)


class TestRegistry:
    def test_eight_columns_in_graph9_order(self):
        # the paper's Graph 9 legend order
        assert [p.name for p in ALL_PROFILES] == [
            "native-c", "ibm-1.3.1", "clr-1.1", "jrockit-8.1",
            "jsharp-1.1", "sun-1.4", "mono-0.23", "sscli-1.0",
        ]

    def test_micro_profiles_are_the_four_vm_study(self):
        assert {p.name for p in MICRO_PROFILES} == {
            "ibm-1.3.1", "clr-1.1", "mono-0.23", "sscli-1.0",
        }

    def test_cli_profiles(self):
        assert all(p.kind == "cli" for p in CLI_PROFILES)
        assert len(CLI_PROFILES) == 3

    def test_lookup(self):
        assert get_profile("clr-1.1") is CLR11
        with pytest.raises(KeyError, match="unknown runtime profile"):
            get_profile("clr-9.9")

    def test_profiles_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CLR11.name = "hacked"


class TestDerivation:
    def test_with_jit_returns_new_profile(self):
        derived = CLR11.with_jit(boundscheck_elim="none")
        assert derived is not CLR11
        assert derived.jit.boundscheck_elim == "none"
        assert CLR11.jit.boundscheck_elim == "length-pattern"
        assert derived.costs is CLR11.costs

    def test_with_costs(self):
        derived = CLR11.with_costs(exception_throw=1)
        assert derived.costs.exception_throw == 1
        assert CLR11.costs.exception_throw > 1000

    def test_jsharp_derives_from_clr_jit(self):
        assert JSHARP11.jit == CLR11.jit
        assert JSHARP11.costs.math_default > CLR11.costs.math_default


class TestCalibrationInvariants:
    """The qualitative commitments behind the paper's findings, asserted on
    the raw parameters so miscalibration fails fast."""

    def test_cli_exceptions_cost_an_order_more_than_jvm(self):
        for cli in (CLR11, MONO023, SSCLI10):
            for jvm in (IBM131, SUN14, JROCKIT81):
                assert cli.costs.exception_throw > 4 * jvm.costs.exception_throw

    def test_clr_math_cheaper_than_every_jvm(self):
        routines = [s.split(":")[1] for s in GROUP2 + GROUP3 if s != "Math:Random"]
        for routine in ("Sin", "Cos", "Sqrt", "Exp", "Log", "Pow"):
            for jvm in (IBM131, SUN14, JROCKIT81):
                assert CLR11.math_cost(routine) < jvm.math_cost(routine), routine

    def test_math_tables_cover_all_routines(self):
        used = {s.split(":")[1].replace("Int", "").replace("Long", "")
                .replace("Float", "").replace("Double", "")
                for s in GROUP1 + GROUP2 + GROUP3}
        used.discard("Atan2")  # normalizes to Atan2 below
        for profile in ALL_PROFILES:
            for routine in ("Abs", "Max", "Min", "Sin", "Cos", "Tan",
                            "Asin", "Acos", "Atan", "Atan2", "Floor",
                            "Ceiling", "Sqrt", "Exp", "Log", "Pow",
                            "Rint", "Round", "Random"):
                assert routine in profile.costs.math, (profile.name, routine)

    def test_jit_quality_ladder(self):
        assert CLR11.jit.enreg_mode == "full"
        assert IBM131.jit.enreg_mode == "full"
        assert MONO023.jit.enreg_mode == "partial"
        assert SSCLI10.jit.enreg_mode == "none"
        assert CLR11.jit.max_tracked_locals == 64
        assert CLR11.jit.const_div_quirk and not IBM131.jit.const_div_quirk
        assert SSCLI10.jit.cdq_emulation
        assert not MONO023.jit.copy_propagation
        assert not SSCLI10.jit.constant_folding

    def test_only_native_skips_bounds_checks(self):
        for profile in ALL_PROFILES:
            assert profile.jit.boundscheck == (profile.kind != "native")

    def test_native_monitors_nearly_free(self):
        # section 5's MonteCarlo caveat: the C build has no real locking
        assert NATIVE_C.costs.monitor_enter < 10
        for profile in ALL_PROFILES:
            if profile.kind != "native":
                assert profile.costs.monitor_enter >= 40

    def test_jvm_large_model_penalty_exceeds_clr(self):
        for jvm in (IBM131, SUN14, JROCKIT81):
            assert jvm.costs.large_array_extra > CLR11.costs.large_array_extra

    def test_clock_is_the_paper_machine(self):
        for profile in ALL_PROFILES:
            assert profile.clock_hz == 2.8e9
