"""The wall-clock tracing layer: ids and header propagation, the tracer
and its sinks, Chrome two-clock-domain export, Prometheus exposition,
pool/collect span structure, and the end-to-end daemon invariants
(>= 95% wall coverage, zero orphan spans, zero artifact perturbation)."""

import json
import socket
import time
import urllib.request

import pytest

from repro.metrics import baseline
from repro.metrics.exposition import (
    parse_exposition,
    render_exposition,
    validate_exposition,
)
from repro.metrics.registry import MetricsRegistry
from repro.observe.timeline import Timeline
from repro.trace import (
    NULL_CONTEXT,
    TRACE_HEADER,
    JsonlSink,
    Span,
    Tracer,
    covered_seconds,
    format_trace_header,
    load_jsonl,
    merge_chrome_trace,
    new_span_id,
    new_trace_id,
    orphan_spans,
    parse_trace_header,
    spans_to_events,
)

from tests.test_service import SMALL, DaemonHarness


class TestIdsAndHeader:
    def test_id_shapes(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and len(span_id) == 16
        int(trace_id, 16), int(span_id, 16)
        assert new_trace_id() != trace_id

    def test_header_round_trip(self):
        assert parse_trace_header(format_trace_header("abc123")) == ("abc123", None)
        assert parse_trace_header(format_trace_header("abc123", "def9")) == (
            "abc123", "def9",
        )

    @pytest.mark.parametrize("value", [
        None, "", "not-hex", "xyz:123", "g" * 32, "a" * 65,
    ])
    def test_hostile_headers_rejected(self, value):
        assert parse_trace_header(value) == (None, None)

    def test_bad_parent_is_dropped_not_fatal(self):
        assert parse_trace_header("abc123:not-hex") == ("abc123", None)


class TestTracer:
    def test_record_and_snapshot(self):
        tracer = Tracer()
        span = tracer.record("work", "t1", t0=1.0, dur=0.5, attrs={"k": "v"})
        assert span.span_id and span.trace_id == "t1"
        assert [s.name for s in tracer.snapshot("t1")] == ["work"]
        assert tracer.snapshot("other") == []
        assert tracer.trace_ids() == ["t1"]

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            tracer.record(f"s{index}", "t1")
        assert len(tracer.snapshot()) == 3 and tracer.dropped == 2

    def test_child_nesting_links_parents(self):
        tracer = Tracer()
        ctx = tracer.context()
        with ctx.child("outer") as outer:
            with outer.child("inner", depth=2) as inner:
                inner.set(extra=True)
        spans = {s.name: s for s in tracer.snapshot()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].attrs == {"depth": 2, "extra": True}
        assert spans["inner"].t0 >= spans["outer"].t0
        assert orphan_spans(spans.values()) == []

    def test_events_are_zero_duration_points(self):
        tracer = Tracer()
        ctx = tracer.context()
        ctx.event("retry", attempt=1)
        (span,) = tracer.snapshot()
        assert span.kind == "event" and span.dur == 0.0

    def test_null_context_is_inert(self):
        assert not NULL_CONTEXT.enabled
        with NULL_CONTEXT.child("x", a=1) as child:
            assert child is NULL_CONTEXT
        NULL_CONTEXT.record("y", t0=0.0, dur=1.0)
        NULL_CONTEXT.event("z")
        NULL_CONTEXT.set(k="v")
        assert NULL_CONTEXT.header() is None

    def test_span_dict_round_trip(self):
        span = Span("t", "s", "p", "n", 1.5, 0.25, "event", {"a": 1})
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()


class TestJsonlSink:
    def test_sink_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "sub" / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sinks=(sink,))
        ctx = tracer.context()
        with ctx.child("outer"):
            pass
        ctx.event("mark", note="hi")
        sink.close()
        spans = load_jsonl(path)
        assert [s.name for s in spans] == ["outer", "mark"]
        assert spans[0].to_dict() == tracer.snapshot()[0].to_dict()

    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        # daemon executor threads and the event loop both flush spans
        # through one sink; under the lock every JSONL line must stay a
        # complete, parseable record with no torn or interleaved writes
        import threading

        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(max_spans=10_000, sinks=(sink,))
        threads_n, spans_n = 8, 200

        def body(worker):
            ctx = tracer.context()
            for index in range(spans_n):
                ctx.event(f"w{worker}.s{index}", worker=worker)

        threads = [
            threading.Thread(target=body, args=(worker,))
            for worker in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        sink.close()
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == threads_n * spans_n
        names = {json.loads(line)["name"] for line in lines}  # every line parses
        assert names == {
            f"w{worker}.s{index}"
            for worker in range(threads_n)
            for index in range(spans_n)
        }


class TestAnalysis:
    def test_orphans_flagged_per_trace(self):
        ok = Span("t1", "a", None, "root", 0, 1)
        child = Span("t1", "b", "a", "child", 0, 1)
        orphan = Span("t1", "c", "missing", "lost", 0, 1)
        cross = Span("t2", "d", "a", "wrong-trace", 0, 1)
        assert {s.span_id for s in orphan_spans([ok, child, orphan, cross])} == {
            "c", "d",
        }

    def test_covered_seconds_unions_overlaps(self):
        spans = [
            Span("t", "a", None, "x", 0.0, 2.0),
            Span("t", "b", None, "y", 1.0, 2.0),  # overlaps [1,2]
            Span("t", "c", None, "z", 5.0, 1.0),  # gap [3,5]
        ]
        assert covered_seconds(spans, 0.0, 6.0) == pytest.approx(4.0)
        # clamped at the window edges: [2.5,3] from b plus [5,5.5] from c
        assert covered_seconds(spans, 2.5, 5.5) == pytest.approx(1.0)
        assert covered_seconds([], 0.0, 1.0) == 0.0


class TestChromeMerge:
    def _spans(self):
        return [
            Span("t", "a", None, "http.request", 10.0, 0.5,
                 attrs={"track": "http"}),
            Span("t", "b", "a", "cell:x@y", 10.1, 0.2,
                 attrs={"track": "worker-42"}),
            Span("t", "c", "a", "retry", 10.3, 0.0, kind="event",
                 attrs={"track": "worker-42"}),
        ]

    def test_spans_to_events_tracks_and_phases(self):
        events = spans_to_events(self._spans())
        named = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in named} == {"http", "worker-42"}
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"http.request", "cell:x@y"}
        assert all(e["pid"] == 2 for e in events)
        instant = next(e for e in events if e["ph"] == "I")
        assert instant["name"] == "retry" and "dur" not in instant
        root = next(e for e in xs if e["name"] == "http.request")
        assert root["ts"] == 0.0 and root["dur"] == pytest.approx(0.5e6)

    def test_merge_keeps_domains_in_separate_pids(self):
        timeline = Timeline()
        timeline.complete("guest", 0, 100, tid=0)
        sim = timeline.to_chrome_trace(1e6, label="micro.arith@clr-1.1")
        merged = merge_chrome_trace(self._spans(), [sim])
        pids = {e.get("pid") for e in merged["traceEvents"]}
        assert pids == {2, 10}
        names = {
            e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            "service (wall clock)",
            "micro.arith@clr-1.1 (simulated clock)",
        }
        domains = merged["otherData"]["clock_domains"]
        assert set(domains) == {"pid 2", "pid 10"}
        assert "1e+06" in domains["pid 10"] or "1000000" in domains["pid 10"]

    def test_legacy_timeline_export_is_unchanged(self):
        timeline = Timeline()
        timeline.begin("m", 0, tid=0)
        timeline.end("m", 10, tid=0)
        trace = timeline.to_chrome_trace(1e6)
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert "label" not in trace["otherData"]
        assert all(e["pid"] == 1 for e in trace["traceEvents"])
        relabeled = timeline.to_chrome_trace(1e6, pid=7, label="x")
        assert all(e["pid"] == 7 for e in relabeled["traceEvents"])
        assert relabeled["otherData"]["label"] == "x"


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs").add(3)
        registry.gauge("service.queue_depth").set(2)
        hist = registry.histogram("service.http_latency_us", (10, 100))
        hist.observe(5)
        hist.observe(50)
        hist.observe(5000)
        return registry

    def test_render_is_valid_and_parses_back(self):
        text = render_exposition(self._registry())
        samples = validate_exposition(text)
        assert samples["repro_service_jobs"] == [("", 3.0)]
        assert samples["repro_service_queue_depth"] == [("", 2.0)]
        buckets = dict(samples["repro_service_http_latency_us_bucket"])
        assert buckets['le="10.0"'] == 1.0
        assert buckets['le="100.0"'] == 2.0
        assert buckets['le="+Inf"'] == 3.0
        assert samples["repro_service_http_latency_us_count"] == [("", 3.0)]
        assert samples["repro_service_http_latency_us_sum"] == [("", 5055.0)]

    def test_hierarchical_names_flatten(self):
        text = render_exposition(self._registry())
        assert "service.jobs" not in text.split("# HELP")[0]
        assert "repro_service_jobs 3" in text

    @pytest.mark.parametrize("bad", [
        "not a metric line\n",
        "# BOGUS comment\n",
        'x_bucket{le="+Inf"} 1\n# TYPE x histogram\n',  # missing _sum/_count
        "# TYPE x gizmo\n",
    ])
    def test_invalid_documents_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_non_cumulative_histogram_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 9\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_exposition(text)


class TestPoolSpans:
    def _spec(self):
        return {"kind": "harness", "metrics": True, "cache_dir": None,
                "plan": None, "cell_timeout": None, "dispatch": None}

    def _cells(self):
        suite = baseline.resolve_suite("micro.arith,grande.sieve", 0.0)
        return [
            (name, params or None, profile)
            for name, params in suite
            for profile in ("clr-1.1", "native-c")
        ]

    def test_serial_fanout_records_cell_spans(self):
        from repro.parallel import run_cells

        tracer = Tracer()
        ctx = tracer.context()
        payloads, _report = run_cells(self._spec(), self._cells(), jobs=1,
                                      trace=ctx)
        spans = tracer.snapshot()
        assert orphan_spans(spans) == []
        pool = next(s for s in spans if s.name == "pool.run_cells")
        cell_spans = [s for s in spans if s.name.startswith("cell:")]
        assert len(cell_spans) == len(payloads) == 4
        assert {s.name for s in cell_spans} == {
            "cell:micro.arith@clr-1.1", "cell:micro.arith@native-c",
            "cell:grande.sieve@clr-1.1", "cell:grande.sieve@native-c",
        }
        for span in cell_spans:
            assert span.parent_id == pool.span_id
            assert span.attrs["track"] == "serial"
            assert pool.t0 <= span.t0 and span.dur > 0

    def test_parallel_fanout_stamps_worker_tracks(self):
        from repro.parallel import run_cells

        tracer = Tracer()
        payloads, report = run_cells(self._spec(), self._cells(), jobs=2,
                                     trace=tracer.context())
        assert report.jobs == 2
        spans = tracer.snapshot()
        assert orphan_spans(spans) == []
        cell_spans = [s for s in spans if s.name.startswith("cell:")]
        assert len(cell_spans) == 4
        tracks = {s.attrs["track"] for s in cell_spans}
        assert all(t.startswith("worker-") for t in tracks)
        # worker-stamped monotonic starts land inside the pool span
        pool = next(s for s in spans if s.name == "pool.run_cells")
        for span in cell_spans:
            assert pool.t0 <= span.t0 <= pool.t0 + pool.dur

    def test_untraced_run_is_byte_identical(self):
        suite = baseline.resolve_suite("micro.arith", 0.0)
        profiles = baseline.resolve_profiles("clr-1.1,native-c")
        plain = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                 git_sha="cafe", jobs=2)
        tracer = Tracer()
        traced = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                  git_sha="cafe", jobs=2,
                                  trace=tracer.context())
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )
        assert any(s.name.startswith("cell:") for s in tracer.snapshot())


#: big enough (~1.5s of execution) that fixed client-side slop — connect
#: overhead plus one poll interval after completion — stays under the 5%
#: the coverage gate allows
MEDIUM = {
    "benchmarks": "micro.arith,grande.sieve,scimark.sor,scimark.fft",
    "scale": 0.5,
    "git_sha": "cafe",
}


class TestDaemonTracing:
    def test_submission_trace_covers_wall_time(self, tmp_path):
        log = str(tmp_path / "trace.jsonl")
        harness = DaemonHarness(tmp_path, trace_log=log)
        try:
            trace_id = new_trace_id()
            from repro.service import ServiceClient

            client = ServiceClient(harness.url, trace_id=trace_id)
            t0 = time.monotonic()
            job = client.submit(MEDIUM)
            done = client.wait(job["id"], poll=0.02)
            client.result(job["id"])
            t1 = time.monotonic()
            assert done["status"] == "done"
            assert done["trace_id"] == trace_id
            assert client.last_trace.startswith(trace_id)

            spans = self._settled_spans(log, trace_id, t1)
            assert orphan_spans(spans) == []
            names = {s.name for s in spans}
            assert {"http.request", "job.queue_wait", "job.execute",
                    "store.lookup", "pool.run_cells", "store.record"} <= names
            assert sum(1 for s in spans if s.name.startswith("cell:")) == 32
            coverage = covered_seconds(
                [s for s in spans if s.kind == "span"], t0, t1
            ) / (t1 - t0)
            assert coverage >= 0.95, f"trace covers only {coverage:.1%}"

            # the server-side buffer serves the same trace over HTTP; it
            # is read later than the JSONL snapshot, so it may have
            # accumulated extra poll-request spans in between
            served = client.trace(trace_id)
            assert {s.span_id for s in spans} <= {
                s["span"] for s in served["spans"]
            }
        finally:
            harness.close()

    @staticmethod
    def _settled_spans(log, trace_id, t1, timeout=5.0):
        """Spans for one trace once the daemon has flushed everything up
        to the client-observed end (the final http.request span lands
        just *after* the client reads its response)."""
        deadline = time.monotonic() + timeout
        while True:
            spans = [s for s in load_jsonl(log) if s.trace_id == trace_id]
            latest = max((s.t0 + s.dur for s in spans), default=0.0)
            if latest >= t1 - 0.05 or time.monotonic() > deadline:
                return spans
            time.sleep(0.05)

    def test_warm_submission_traces_memo_path(self, tmp_path):
        log = str(tmp_path / "trace.jsonl")
        harness = DaemonHarness(tmp_path, trace_log=log)
        try:
            from repro.service import ServiceClient

            cold_id, warm_id = new_trace_id(), new_trace_id()
            cold = ServiceClient(harness.url, trace_id=cold_id)
            cold.wait(cold.submit(SMALL)["id"], poll=0.02)
            warm = ServiceClient(harness.url, trace_id=warm_id)
            done = warm.wait(warm.submit(SMALL)["id"], poll=0.02)
            assert done["stats"]["hits"] == 4
            time.sleep(0.2)
            spans = [s for s in load_jsonl(log) if s.trace_id == warm_id]
            lookup = next(s for s in spans if s.name == "store.lookup")
            assert lookup.attrs["hits"] == 4
            pool = next(s for s in spans if s.name == "pool.run_cells")
            assert pool.attrs["memoized"] == 4
            # memo-served cells execute nothing, so no cell spans
            assert not any(s.name.startswith("cell:") for s in spans)
        finally:
            harness.close()

    def test_artifacts_byte_identical_with_and_without_tracing(self, tmp_path):
        traced = DaemonHarness(tmp_path / "a",
                               trace_log=str(tmp_path / "a" / "t.jsonl"))
        plain = DaemonHarness(tmp_path / "b")
        try:
            from repro.service import ServiceClient

            client_a = ServiceClient(traced.url, trace_id=new_trace_id())
            client_b = plain.client
            job_a = client_a.wait(client_a.submit(SMALL)["id"])
            job_b = client_b.wait(client_b.submit(SMALL)["id"])
            blob_a = json.dumps(client_a.result(job_a["id"]), sort_keys=True)
            blob_b = json.dumps(client_b.result(job_b["id"]), sort_keys=True)
            assert blob_a == blob_b
        finally:
            traced.close()
            plain.close()

    def test_trace_endpoints(self, daemon):
        daemon.client.health()
        traces = daemon.client._call("GET", "/v1/traces")["traces"]
        assert traces, "healthz request should have left a trace"
        payload = daemon.client.trace(traces[0])
        assert payload["spans"][0]["trace"] == traces[0]
        with pytest.raises(Exception) as err:
            daemon.client.trace("feedfeedfeedfeed")
        assert getattr(err.value, "status", None) == 404

    def test_response_carries_trace_header(self, daemon):
        request = urllib.request.Request(daemon.url + "/healthz")
        with urllib.request.urlopen(request, timeout=10) as response:
            value = response.headers.get(TRACE_HEADER)
        trace_id, parent = parse_trace_header(value)
        assert trace_id and parent  # daemon minted both ids


@pytest.fixture
def daemon(tmp_path):
    harness = DaemonHarness(tmp_path)
    yield harness
    harness.close()


class TestPortFile:
    def test_port_file_is_atomic_and_clean(self, tmp_path):
        from repro.service.daemon import write_port_file

        path = str(tmp_path / "port")
        write_port_file(path, 8642)
        assert open(path).read() == "8642\n"
        write_port_file(path, 9000)  # overwrite is atomic too
        assert open(path).read() == "9000\n"
        leftovers = [p for p in tmp_path.iterdir() if p.name != "port"]
        assert leftovers == []


class TestTraceCli:
    def _write_log(self, tmp_path):
        log = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sinks=(JsonlSink(log),))
        ctx = tracer.context()
        with ctx.child("http.request", track="http") as request_span:
            with request_span.child("job.execute", track="executor"):
                time.sleep(0.01)
        return log, ctx.trace_id

    def test_ls_and_show(self, tmp_path, capsys):
        from repro.trace.cli import main

        log, trace_id = self._write_log(tmp_path)
        assert main(["ls", log]) == 0
        out = capsys.readouterr().out
        assert trace_id in out and "http.request" in out
        assert main(["show", log, "--trace", trace_id[:8]]) == 0
        out = capsys.readouterr().out
        assert "job.execute" in out and "ORPHANED" not in out

    def test_export_merges_observe_traces(self, tmp_path, capsys):
        from repro.trace.cli import main

        log, _trace_id = self._write_log(tmp_path)
        timeline = Timeline()
        timeline.complete("guest", 0, 500, tid=0)
        sim_path = str(tmp_path / "sim.json")
        with open(sim_path, "w") as handle:
            json.dump(timeline.to_chrome_trace(1e6, label="cell"), handle)
        out_path = str(tmp_path / "merged.json")
        assert main(["export", log, "--observe", sim_path,
                     "--out", out_path]) == 0
        merged = json.load(open(out_path))
        pids = {e.get("pid") for e in merged["traceEvents"]}
        assert pids == {2, 10}
        assert set(merged["otherData"]["clock_domains"]) == {"pid 2", "pid 10"}

    def test_unknown_trace_errors(self, tmp_path):
        from repro.trace.cli import main

        log, _ = self._write_log(tmp_path)
        with pytest.raises(SystemExit, match="no spans"):
            main(["show", log, "--trace", "feedbead"])
