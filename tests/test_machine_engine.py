"""Tests for the measured engine (JIT pipeline + MIR executor).

The key invariant: for every program, every runtime profile computes the
*same values* as the reference interpreter — profiles may only differ in
simulated cycles.  (Paper section 3: same CIL on every runtime.)
"""

import pytest

from repro.errors import ManagedException, VMError
from repro.lang import compile_source
from repro.runtimes import (
    ALL_PROFILES,
    CLR11,
    IBM131,
    MONO023,
    NATIVE_C,
    SSCLI10,
)
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def run_all(source, profiles=None):
    """Compile once; run on the interpreter and each profile; assert
    identical results; return {name: (result, machine)}."""
    assembly = compile_source(source)
    reference = Interpreter(LoadedAssembly(assembly)).run()
    out = {}
    for p in profiles or (NATIVE_C, CLR11, IBM131, MONO023, SSCLI10):
        machine = Machine(LoadedAssembly(compile_source(source)), p)
        result = machine.run()
        assert result == reference, f"{p.name}: {result} != {reference}"
        out[p.name] = (result, machine)
    return reference, out


DIFFERENTIAL_PROGRAMS = {
    "arith_mix": """
        class P { static long Main() {
            long acc = 0;
            for (int i = 1; i < 200; i++) {
                acc += i * 3 - (i / 7) + (i % 5);
                acc ^= (long)i << (i % 13);
            }
            return acc;
        } }""",
    "float_kernel": """
        class P { static double Main() {
            double s = 0.0;
            for (int i = 0; i < 100; i++) {
                double x = i * 0.01;
                s += Math.Sin(x) * Math.Cos(x) + Math.Sqrt(x + 1.0);
            }
            return Math.Floor(s * 1000.0);
        } }""",
    "virtual_chain": """
        class Shape { virtual double Area() { return 0.0; } }
        class Square : Shape {
            double side;
            Square(double s) { side = s; }
            override double Area() { return side * side; }
        }
        class Circle : Shape {
            double r;
            Circle(double r0) { r = r0; }
            override double Area() { return 3.14159 * r * r; }
        }
        class P { static double Main() {
            Shape[] shapes = new Shape[10];
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 0) { shapes[i] = new Square(i); }
                else { shapes[i] = new Circle(i); }
            }
            double total = 0.0;
            for (int i = 0; i < 10; i++) { total += shapes[i].Area(); }
            return Math.Floor(total);
        } }""",
    "exception_dance": """
        class P {
            static int Inner(int k) {
                try {
                    if (k % 3 == 0) throw new ArithmeticException("x");
                    if (k % 3 == 1) throw new Exception("y");
                    return k;
                } finally { counter++; }
            }
            static int counter;
            static int Main() {
                int total = 0;
                for (int k = 0; k < 30; k++) {
                    try { total += Inner(k); }
                    catch (ArithmeticException e) { total += 1; }
                    catch (Exception e) { total += 2; }
                }
                return total * 100 + counter;
            }
        }""",
    "struct_matrix": """
        struct Vec { double x; double y; }
        class P { static double Main() {
            Vec[] vs = new Vec[50];
            for (int i = 0; i < vs.Length; i++) {
                vs[i].x = i; vs[i].y = 2 * i;
            }
            Vec acc = new Vec();
            for (int i = 0; i < vs.Length; i++) {
                Vec v = vs[i];
                acc.x += v.x; acc.y += v.y;
            }
            return acc.x + acc.y;
        } }""",
    "md_vs_jagged": """
        class P { static double Main() {
            int n = 12;
            double[,] md = new double[n, n];
            double[][] jag = new double[n][];
            for (int i = 0; i < n; i++) { jag[i] = new double[n]; }
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++) {
                    md[i, j] = i * n + j;
                    jag[i][j] = md[i, j] * 2.0;
                }
            double s = 0.0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    s += md[i, j] + jag[i][j];
            return s;
        } }""",
    "boxing_loop": """
        class P { static int Main() {
            int total = 0;
            for (int i = 0; i < 50; i++) {
                object o = i;
                total += (int)o;
            }
            object d = 1.25;
            return total + (int)((double)d * 4.0);
        } }""",
    "string_building": """
        class P { static int Main() {
            string s = "";
            for (int i = 0; i < 10; i++) { s = s + i; }
            return s.Length;
        } }""",
    "recursion": """
        class P {
            static int Fib(int n) { return n < 2 ? n : Fib(n - 1) + Fib(n - 2); }
            static int Main() { return Fib(15); }
        }""",
    "serializer": """
        class Node { int v; Node next; }
        class P { static int Main() {
            Node head = null;
            for (int i = 0; i < 5; i++) {
                Node n = new Node(); n.v = i; n.next = head; head = n;
            }
            Serializer.WriteObject(head);
            Node copy = (Node)Serializer.ReadObject();
            int s = 0;
            while (copy != null) { s = s * 10 + copy.v; copy = copy.next; }
            return s;
        } }""",
}


@pytest.mark.parametrize("name", sorted(DIFFERENTIAL_PROGRAMS))
def test_differential_all_profiles(name):
    reference, results = run_all(DIFFERENTIAL_PROGRAMS[name], profiles=ALL_PROFILES)
    assert reference is not None or name  # identical results asserted inside


class TestPerformanceOrdering:
    """Structural performance relations the paper reports, asserted on the
    cycle counts (not on specific numbers)."""

    def _cycles(self, source, profiles):
        _ref, results = run_all(source, profiles)
        return {name: m.cycles for name, (_r, m) in results.items()}

    def test_register_quality_ordering_on_add_loop(self):
        src = """
        class P { static int Main() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            for (int i = 0; i < 30000; i++) { a = b + c; b = c + d; c = d + a; d = a + b; }
            return a + b + c + d;
        } }"""
        cycles = self._cycles(src, (CLR11, MONO023, SSCLI10, IBM131))
        # paper: Mono ~ half of CLR; Rotor 5-10x slower; CLR ~ IBM
        assert cycles["mono-0.23"] > cycles["clr-1.1"] * 1.5
        assert cycles["sscli-1.0"] > cycles["clr-1.1"] * 3.0
        assert cycles["sscli-1.0"] > cycles["mono-0.23"]
        ratio = cycles["clr-1.1"] / cycles["ibm-1.3.1"]
        assert 0.5 < ratio < 2.0

    def test_exceptions_cli_much_slower_than_jvm(self):
        src = """
        class P { static int Main() {
            int n = 0;
            for (int i = 0; i < 200; i++) {
                try { throw new Exception("x"); } catch (Exception e) { n++; }
            }
            return n;
        } }"""
        cycles = self._cycles(src, (CLR11, IBM131, MONO023, SSCLI10))
        assert cycles["clr-1.1"] > cycles["ibm-1.3.1"] * 4
        assert cycles["mono-0.23"] > cycles["ibm-1.3.1"] * 4
        assert cycles["sscli-1.0"] > cycles["ibm-1.3.1"] * 4

    def test_math_library_clr_faster_than_jvm(self):
        src = """
        class P { static double Main() {
            double s = 0.0;
            for (int i = 0; i < 2000; i++) { s += Math.Sin(i * 0.001); }
            return Math.Floor(s);
        } }"""
        cycles = self._cycles(src, (CLR11, IBM131))
        assert cycles["clr-1.1"] < cycles["ibm-1.3.1"]

    def test_multidim_slower_than_jagged_on_clr(self):
        md = """
        class P { static double Main() {
            int n = 40;
            double[,] m = new double[n, n];
            double s = 0.0;
            for (int it = 0; it < 20; it++)
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++) { m[i, j] = i + j; s += m[i, j]; }
            return s;
        } }"""
        jag = """
        class P { static double Main() {
            int n = 40;
            double[][] m = new double[n][];
            for (int i = 0; i < n; i++) { m[i] = new double[n]; }
            double s = 0.0;
            for (int it = 0; it < 20; it++)
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++) { m[i][j] = i + j; s += m[i][j]; }
            return s;
        } }"""
        md_cycles = self._cycles(md, (CLR11,))["clr-1.1"]
        jag_cycles = self._cycles(jag, (CLR11,))["clr-1.1"]
        assert md_cycles > jag_cycles * 1.5

    def test_native_baseline_fastest(self):
        src = DIFFERENTIAL_PROGRAMS["arith_mix"]
        cycles = self._cycles(src, ALL_PROFILES)
        fastest = min(cycles, key=cycles.get)
        assert fastest == "native-c"


class TestBoundsCheckElimination:
    def test_length_pattern_faster_than_local_bound_on_clr(self):
        length_src = """
        class P { static int Main() {
            int[] a = new int[2000];
            int s = 0;
            for (int it = 0; it < 20; it++)
                for (int i = 0; i < a.Length; i++) { s += a[i]; }
            return s;
        } }"""
        local_src = """
        class P { static int Main() {
            int[] a = new int[2000];
            int n = 2000;
            int s = 0;
            for (int it = 0; it < 20; it++)
                for (int i = 0; i < n; i++) { s += a[i]; }
            return s;
        } }"""
        _r, out1 = run_all(length_src, (CLR11,))
        _r, out2 = run_all(local_src, (CLR11,))
        assert out1["clr-1.1"][1].cycles < out2["clr-1.1"][1].cycles

    def test_elimination_reported_in_stats(self):
        src = """
        class P { static int Main() {
            int[] a = new int[100];
            int s = 0;
            for (int i = 0; i < a.Length; i++) { s += a[i]; }
            return s;
        } }"""
        assembly = compile_source(src)
        loaded = LoadedAssembly(assembly)
        machine = Machine(loaded, CLR11)
        machine.run()
        fn = machine.jit.compile(assembly.entry_point)
        assert fn.stats.get("bce_eliminated", 0) >= 1

    def test_no_elimination_on_mono(self):
        src = """
        class P { static int Main() {
            int[] a = new int[100];
            int s = 0;
            for (int i = 0; i < a.Length; i++) { s += a[i]; }
            return s;
        } }"""
        assembly = compile_source(src)
        machine = Machine(LoadedAssembly(assembly), MONO023)
        machine.run()
        fn = machine.jit.compile(assembly.entry_point)
        assert fn.stats.get("bce_eliminated", 0) == 0


class TestThreading:
    def test_fork_join(self):
        src = """
        class Worker {
            int result;
            int n;
            virtual void Run() {
                int s = 0;
                for (int i = 0; i <= n; i++) { s += i; }
                result = s;
            }
        }
        class P { static int Main() {
            Worker[] ws = new Worker[4];
            int[] tids = new int[4];
            for (int i = 0; i < 4; i++) {
                ws[i] = new Worker();
                ws[i].n = (i + 1) * 10;
                tids[i] = Thread.Create(ws[i]);
                Thread.Start(tids[i]);
            }
            int total = 0;
            for (int i = 0; i < 4; i++) {
                Thread.Join(tids[i]);
                total += ws[i].result;
            }
            return total;
        } }"""
        for profile in (CLR11, IBM131):
            machine = Machine(LoadedAssembly(compile_source(src)), profile)
            assert machine.run() == 55 + 210 + 465 + 820

    def test_lock_contention(self):
        src = """
        class Shared { int count; }
        class Bumper {
            Shared target;
            virtual void Run() {
                for (int i = 0; i < 100; i++) {
                    lock (target) { target.count = target.count + 1; }
                }
            }
        }
        class P { static int Main() {
            Shared s = new Shared();
            int[] tids = new int[3];
            Bumper[] bs = new Bumper[3];
            for (int i = 0; i < 3; i++) {
                bs[i] = new Bumper();
                bs[i].target = s;
                tids[i] = Thread.Create(bs[i]);
                Thread.Start(tids[i]);
            }
            for (int i = 0; i < 3; i++) { Thread.Join(tids[i]); }
            return s.count;
        } }"""
        machine = Machine(LoadedAssembly(compile_source(src)), CLR11, quantum=777)
        assert machine.run() == 300

    def test_monitor_wait_pulse(self):
        src = """
        class Box { int value; bool ready; }
        class Producer {
            Box box;
            virtual void Run() {
                lock (box) {
                    box.value = 42;
                    box.ready = true;
                    Monitor.PulseAll(box);
                }
            }
        }
        class P { static int Main() {
            Box box = new Box();
            Producer p = new Producer();
            p.box = box;
            int tid = Thread.Create(p);
            Thread.Start(tid);
            int got = 0;
            lock (box) {
                while (!box.ready) { Monitor.Wait(box); }
                got = box.value;
            }
            Thread.Join(tid);
            return got;
        } }"""
        machine = Machine(LoadedAssembly(compile_source(src)), CLR11, quantum=500)
        assert machine.run() == 42

    def test_deterministic_interleaving(self):
        src = """
        class Appender {
            static int trace;
            int digit;
            virtual void Run() {
                for (int i = 0; i < 3; i++) { trace = trace * 10 + digit; Thread.Yield(); }
            }
        }
        class P { static int Main() {
            int[] tids = new int[2];
            for (int i = 0; i < 2; i++) {
                Appender a = new Appender();
                a.digit = i + 1;
                tids[i] = Thread.Create(a);
                Thread.Start(tids[i]);
            }
            for (int i = 0; i < 2; i++) { Thread.Join(tids[i]); }
            return Appender.trace;
        } }"""
        runs = set()
        for _ in range(3):
            machine = Machine(LoadedAssembly(compile_source(src)), CLR11, quantum=400)
            runs.add(machine.run())
        assert len(runs) == 1  # deterministic

    def test_deadlock_detected(self):
        src = """
        class Sleeper {
            object a; object b;
            virtual void Run() {
                lock (b) { for (int i = 0; i < 2000; i++) { } lock (a) { } }
            }
        }
        class P { static int Main() {
            object a = new Sleeper();
            object b = new Sleeper();
            Sleeper s = new Sleeper();
            s.a = a; s.b = b;
            int tid = Thread.Create(s);
            lock (a) {
                Thread.Start(tid);
                for (int i = 0; i < 2000; i++) { }
                lock (b) { }
            }
            Thread.Join(tid);
            return 0;
        } }"""
        machine = Machine(LoadedAssembly(compile_source(src)), CLR11, quantum=100)
        with pytest.raises(VMError, match="deadlock"):
            machine.run()


class TestMachineMisc:
    def test_unhandled_exception_raises_managed(self):
        src = 'class P { static int Main() { throw new Exception("kaboom"); } }'
        machine = Machine(LoadedAssembly(compile_source(src)), CLR11)
        with pytest.raises(ManagedException, match="kaboom"):
            machine.run()

    def test_bench_sections_cycle_based(self):
        src = """
        class P { static void Main() {
            Bench.Start("a");
            for (int i = 0; i < 1000; i++) { }
            Bench.Stop("a");
            Bench.Start("b");
            for (int i = 0; i < 5000; i++) { }
            Bench.Stop("b");
        } }"""
        machine = Machine(LoadedAssembly(compile_source(src)), CLR11)
        machine.run()
        a = machine.bench.sections["a"].total_cycles
        b = machine.bench.sections["b"].total_cycles
        assert b > a * 3

    def test_inlining_reported_on_clr_not_mono(self):
        src = """
        class P {
            static int Add(int a, int b) { return a + b; }
            static int Main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { s = Add(s, i); }
                return s;
            }
        }"""
        assembly = compile_source(src)
        m1 = Machine(LoadedAssembly(assembly), CLR11)
        m1.run()
        fn = m1.jit.compile(assembly.entry_point)
        assert fn.stats.get("inlined_calls", 0) >= 1
        assembly2 = compile_source(src)
        m2 = Machine(LoadedAssembly(assembly2), MONO023)
        m2.run()
        fn2 = m2.jit.compile(assembly2.entry_point)
        assert fn2.stats.get("inlined_calls", 0) == 0

    def test_clr_const_div_quirk_staged(self):
        src = """
        class P { static int Main() {
            int x = int.MaxValue;
            int d = 3;
            for (int i = 0; i < 10; i++) { x = x / d; if (x == 0) { x = int.MaxValue; } }
            return x;
        } }"""
        assembly = compile_source(src)
        machine = Machine(LoadedAssembly(assembly), CLR11)
        machine.run()
        fn = machine.jit.compile(assembly.entry_point)
        assert fn.stats.get("const_div_staged", 0) >= 1

    def test_enregistration_counts_differ(self):
        src = """
        class P { static int Main() {
            int a = 1; int b = 2; int c = 3;
            for (int i = 0; i < 100; i++) { a += b; b += c; c += a; }
            return a;
        } }"""
        placements = {}
        for p in (CLR11, MONO023, SSCLI10):
            assembly = compile_source(src)
            machine = Machine(LoadedAssembly(assembly), p)
            machine.run()
            fn = machine.jit.compile(assembly.entry_point)
            n_locals = len(assembly.entry_point.locals)
            local_regs = sum(1 for v in range(n_locals) if fn.in_register[v])
            placements[p.name] = (fn.stats.get("enregistered", 0), local_regs)
        # Rotor enregisters nothing; Mono keeps named locals in the frame
        # (only scratch temps get registers); the CLR enregisters locals too
        assert placements["sscli-1.0"] == (0, 0)
        assert placements["mono-0.23"][1] == 0
        assert placements["clr-1.1"][1] > 0

class TestTwoPassUnwindFaults:
    """Two-pass exception handling under hostile unwind shapes: finally
    blocks that themselves throw must *replace* the in-flight exception
    (ECMA-335 behavior), with enclosing finallies still running — identical
    on the interpreter and every machine profile."""

    def test_finally_that_throws_replaces_inflight_exception(self):
        src = """
        class P {
            static int Trace;
            static void Inner() {
                try { throw new ArgumentException("original"); }
                finally {
                    P.Trace = P.Trace + 1;
                    throw new ArithmeticException("from finally");
                }
            }
            static int Main() {
                int caught = 0;
                try { P.Inner(); }
                catch (ArithmeticException e) { caught = 1; }
                catch (ArgumentException e) { caught = 2; }
                return caught * 10 + P.Trace;
            }
        }"""
        reference, _runs = run_all(src)
        assert reference == 11  # finally ran once; its exception won

    def test_outer_finally_runs_after_inner_finally_throws(self):
        src = """
        class P {
            static int Trace;
            static void Inner() {
                try {
                    try { throw new ArgumentException("original"); }
                    finally {
                        P.Trace = P.Trace + 1;
                        throw new ArithmeticException("mid-unwind");
                    }
                } finally { P.Trace = P.Trace + 10; }
            }
            static int Main() {
                int caught = 0;
                try { P.Inner(); }
                catch (ArithmeticException e) { caught = 1; }
                catch (ArgumentException e) { caught = 2; }
                return caught * 100 + P.Trace;
            }
        }"""
        reference, _runs = run_all(src)
        assert reference == 111  # replacement exception; both finallies ran

    def test_finally_throw_on_normal_exit_propagates(self):
        src = """
        class P {
            static int Calls;
            static int Quiet() {
                try { P.Calls = P.Calls + 1; return 7; }
                finally {
                    if (P.Calls > 1) { throw new ArithmeticException("late"); }
                }
            }
            static int Main() {
                int first = P.Quiet();
                int second = 0;
                try { second = P.Quiet(); }
                catch (ArithmeticException e) { second = 42; }
                return first * 100 + second;
            }
        }"""
        reference, _runs = run_all(src)
        assert reference == 742  # normal exit once, finally-thrown once
