"""The experiment daemon, its client, and the shared execution-args
wiring: daemon-vs-direct byte identity, the zero-work warm path, HTTP
error handling, and cache GC."""

import argparse
import asyncio
import json
import os
import threading

import pytest

from repro.lang.compiler import COMPILE_STATS
from repro.metrics import baseline
from repro.parallel import (
    ExecutionConfig,
    add_execution_args,
    execution_from_args,
)
from repro.service import ExperimentService, ServiceClient, ServiceError


class DaemonHarness:
    """One live daemon on an ephemeral port, event loop on a thread."""

    def __init__(self, tmp_path, **kwargs):
        self.store_path = str(tmp_path / "exp.sqlite")
        self.cache_dir = str(tmp_path / "cache")
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache_dir", self.cache_dir)
        self.service = ExperimentService(self.store_path, **kwargs)
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        def body():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start("127.0.0.1", 0))
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=body, daemon=True)
        self.thread.start()
        assert ready.wait(30), "daemon failed to start"
        host, port = self.service.address
        self.url = f"http://{host}:{port}"
        self.client = ServiceClient(self.url)

    def close(self):
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def daemon(tmp_path):
    harness = DaemonHarness(tmp_path)
    yield harness
    harness.close()


SMALL = {"benchmarks": "micro.arith,grande.sieve",
         "profiles": "clr-1.1,native-c", "scale": 0.0, "git_sha": "cafe"}


class TestDaemon:
    def test_health_and_stats_shape(self, daemon):
        health = daemon.client.health()
        assert health["ok"] and health["store"] == daemon.store_path
        stats = daemon.client.stats()
        assert set(stats) >= {"metrics", "compile_stats", "store", "queue_depth"}

    def test_full_matrix_matches_direct_serial_run(self, daemon):
        request = {"scale": 0.0, "git_sha": "cafe"}  # full suite, all profiles
        job = daemon.client.submit(request)
        done = daemon.client.wait(job["id"], timeout=600)
        assert done["status"] == "done", done["error"]
        served = daemon.client.result(job["id"])
        direct = baseline.collect(
            profiles=baseline.resolve_profiles(None),
            suite=baseline.resolve_suite(None, 0.0),
            scale=0.0, git_sha="cafe", jobs=1,
        )
        assert json.dumps(served, sort_keys=True) == json.dumps(direct, sort_keys=True)

    def test_repeat_submission_executes_nothing(self, daemon):
        cold = daemon.client.wait(daemon.client.submit(SMALL)["id"])
        assert cold["stats"]["hits"] == 0
        before = COMPILE_STATS["compile_source_calls"]
        warm = daemon.client.wait(daemon.client.submit(SMALL)["id"])
        stats = warm["stats"]
        assert stats["hits"] == stats["cells"] == 4
        assert stats["cells_executed"] == 0
        assert stats["compile_calls"] == 0
        assert COMPILE_STATS["compile_source_calls"] == before
        blob = lambda j: json.dumps(daemon.client.result(j["id"]), sort_keys=True)
        assert blob(cold) == blob(warm)
        counters = daemon.client.stats()["metrics"]["counters"]
        assert counters["service.cache_hits"] == 4
        assert counters["service.jobs"] == 2

    def test_trends_reflect_recorded_runs(self, daemon):
        daemon.client.wait(daemon.client.submit(SMALL)["id"])
        rows = daemon.client.trends(benchmark="micro.arith",
                                    profile="native-c")["rows"]
        assert len(rows) == 1 and rows[0]["ratio"] is not None

    def test_error_statuses(self, daemon):
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"benchmarks": "no.such"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"profiles": "no-such"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"dispatch": "warp-drive"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"plan": {"seed": 1}})
        assert err.value.status == 409
        with pytest.raises(ServiceError) as err:
            daemon.client.status(999)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            daemon.client.result(999)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            daemon.client._call("GET", "/v1/nonsense")
        assert err.value.status == 404

    def test_result_before_done_is_404_not_crash(self, daemon):
        job = daemon.client.submit(SMALL)
        try:
            daemon.client.result(job["id"])
        except ServiceError as err:
            # job was still queued/running — the route answers 404, the
            # daemon stays up (the wait below proves it)
            assert err.status == 404
        final = daemon.client.wait(job["id"])
        assert final["status"] == "done"


class TestJobTiming:
    def test_finished_job_carries_lifecycle_stamps(self, daemon):
        done = daemon.client.wait(daemon.client.submit(SMALL)["id"])
        assert done["submitted_at"] <= done["started_at"] <= done["finished_at"]
        assert done["queue_wait_seconds"] >= 0.0
        assert done["run_seconds"] > 0.0
        assert done["queue_position"] is None
        assert done["trace_id"]  # daemon-minted even without a client header

    def test_queued_job_reports_its_position(self, daemon):
        first = daemon.client.submit(SMALL)
        second = daemon.client.submit(dict(SMALL, scale=0.0, git_sha="beef"))
        view = daemon.client.status(second["id"])
        if view["status"] == "queued":  # first may already have drained
            assert view["queue_position"] >= 1
            assert view["started_at"] is None and view["finished_at"] is None
        daemon.client.wait(first["id"])
        daemon.client.wait(second["id"])

    def test_status_cli_prints_timing_line(self, daemon, capsys):
        from repro.service.cli import client_main

        daemon.client.wait(daemon.client.submit(SMALL)["id"])
        assert client_main(["--url", daemon.url, "status", "1"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays machine-readable
        assert "job 1 done" in captured.err
        assert "ran" in captured.err and "trace" in captured.err


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_counters_move(self, daemon):
        from repro.metrics import validate_exposition

        cold = validate_exposition(daemon.client.metrics())
        # the request counter lands *after* each response is written, so
        # the very first scrape may or may not see itself — only movement
        # is asserted
        cold_http = dict(
            cold.get("repro_service_http_requests", [("", 0.0)])
        ).get("", 0.0)
        daemon.client.wait(daemon.client.submit(SMALL)["id"])
        daemon.client.wait(daemon.client.submit(SMALL)["id"])
        warm = validate_exposition(daemon.client.metrics())
        assert dict(warm["repro_service_cells"])[""] == 8.0
        assert dict(warm["repro_service_cache_hits"])[""] == 4.0
        assert dict(warm["repro_service_jobs"])[""] == 2.0
        assert (dict(warm["repro_service_http_requests"])[""]
                > cold_http)
        # latency histograms observed every request and both job phases
        assert dict(warm["repro_service_http_latency_us_count"])[""] >= 4.0
        assert dict(warm["repro_service_job_exec_us_count"])[""] == 2.0
        assert dict(warm["repro_service_job_queue_wait_us_count"])[""] == 2.0
        buckets = warm["repro_service_http_latency_us_bucket"]
        assert any('le="+Inf"' in labels for labels, _v in buckets)

    def test_content_type_is_prometheus_text(self, daemon):
        import urllib.request

        from repro.metrics import EXPOSITION_CONTENT_TYPE

        with urllib.request.urlopen(daemon.url + "/metrics", timeout=10) as rsp:
            assert rsp.headers["Content-Type"] == EXPOSITION_CONTENT_TYPE

    def test_stats_carries_job_and_trace_summary(self, daemon):
        daemon.client.wait(daemon.client.submit(SMALL)["id"])
        stats = daemon.client.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["inflight"] == 0
        assert stats["uptime_seconds"] > 0.0
        assert stats["trace"]["buffered_spans"] > 0
        assert stats["trace"]["dropped_spans"] == 0

    def test_metrics_cli_prints_exposition(self, daemon, capsys):
        from repro.metrics import validate_exposition
        from repro.service.cli import client_main

        assert client_main(["--url", daemon.url, "metrics"]) == 0
        validate_exposition(capsys.readouterr().out)


def _raw_request(url: str, blob: bytes) -> bytes:
    """Speak raw bytes to the daemon (malformed-input tests bypass urllib)."""
    import socket
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    with socket.create_connection((parts.hostname, parts.port), timeout=10) as s:
        try:
            s.sendall(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # daemon may answer-and-close before we finish sending
        response = b""
        while True:
            try:
                chunk = s.recv(65536)
            except ConnectionResetError:
                break
            if not chunk:
                break
            response += chunk
    return response


class TestHttpRobustness:
    def test_malformed_request_line_gets_400(self, daemon):
        response = _raw_request(daemon.url, b"GARBAGE\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")
        assert b"x-repro-trace:" in response.lower()

    def test_oversized_header_block_gets_400(self, daemon):
        blob = (b"GET /healthz HTTP/1.1\r\nX-Junk: " + b"a" * 70_000)
        response = _raw_request(daemon.url, blob)
        assert response.startswith(b"HTTP/1.1 400")

    def test_oversized_body_gets_400(self, daemon):
        blob = (b"POST /v1/jobs HTTP/1.1\r\n"
                b"Content-Length: 9000000\r\n\r\n")
        response = _raw_request(daemon.url, blob)
        assert response.startswith(b"HTTP/1.1 400")
        assert b"body too large" in response

    def test_bad_content_length_gets_400(self, daemon):
        blob = (b"POST /v1/jobs HTTP/1.1\r\n"
                b"Content-Length: banana\r\n\r\n")
        response = _raw_request(daemon.url, blob)
        assert response.startswith(b"HTTP/1.1 400")

    def test_disconnect_mid_request_leaves_daemon_healthy(self, daemon):
        import socket
        from urllib.parse import urlsplit

        parts = urlsplit(daemon.url)
        for _ in range(3):
            s = socket.create_connection((parts.hostname, parts.port),
                                         timeout=10)
            s.sendall(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
            s.close()  # hang up before the body arrives
        assert daemon.client.health()["ok"]

    def test_error_responses_carry_trace_ids(self, daemon):
        with pytest.raises(ServiceError):
            daemon.client.status(999)
        assert daemon.client.last_trace  # 404 still echoes X-Repro-Trace
        client = ServiceClient(daemon.url, trace_id="feedface")
        with pytest.raises(ServiceError):
            client.status(999)
        assert client.last_trace.startswith("feedface:")


class TestCacheGc:
    def _orphan(self, cache_dir):
        path = os.path.join(cache_dir, "asm", "de", "adbeef.tmp")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("torn write")
        return path

    def test_startup_sweep_reaps_orphans(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        orphan = self._orphan(cache_dir)
        harness = DaemonHarness(tmp_path)
        try:
            assert not os.path.exists(orphan)
            assert harness.service.swept_tmp_files == 1
        finally:
            harness.close()

    def test_admin_gc_reaps_orphans(self, daemon):
        orphan = self._orphan(daemon.cache_dir)
        payload = daemon.client.admin_gc()
        assert payload["reaped_tmp_files"] == 1
        assert not os.path.exists(orphan)
        counters = daemon.client.stats()["metrics"]["counters"]
        assert counters["service.gc_runs"] == 1


class TestClientCli:
    def test_submit_wait_out_and_result(self, daemon, tmp_path, capsys):
        from repro.service.cli import client_main

        cold = str(tmp_path / "cold.json")
        warm = str(tmp_path / "warm.json")
        base = ["--url", daemon.url, "submit",
                "--benchmarks", "micro.arith", "--profiles", "clr-1.1,native-c",
                "--scale", "0.0", "--git-sha", "cafe", "--wait"]
        assert client_main(base + ["--out", cold]) == 0
        assert client_main(base + ["--out", warm]) == 0
        assert open(cold, "rb").read() == open(warm, "rb").read()
        assert client_main(["--url", daemon.url, "status", "1"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "done"
        assert client_main(["--url", daemon.url, "result", "2"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact == json.load(open(cold))

    def test_bare_trace_flag_before_subcommand(self, daemon, capsys):
        # argparse's nargs="?" would otherwise eat "stats" as the trace id
        from repro.service.cli import client_main

        assert client_main(["--url", daemon.url, "--trace", "stats"]) == 0
        captured = capsys.readouterr()
        assert "repro-client: trace " in captured.err
        minted = captured.err.split("repro-client: trace ")[1].split()[0]
        assert len(minted) == 32  # a fresh full trace id was minted
        json.loads(captured.out)  # stats still ran and printed JSON

        # an explicit id is passed through untouched
        assert client_main(
            ["--url", daemon.url, "--trace", "feedface", "stats"]) == 0
        assert "repro-client: trace feedface" in capsys.readouterr().err

    def test_armed_fault_plan_fails_before_http(self, tmp_path):
        from repro.service.cli import client_main

        with pytest.raises(SystemExit, match="fault plans"):
            client_main(["--url", "http://127.0.0.1:1", "submit",
                         "--fault-seed", "3", "--wait"])

    def test_unreachable_daemon_is_a_clean_error(self):
        from repro.service.cli import client_main

        with pytest.raises(SystemExit, match="cannot reach"):
            client_main(["--url", "http://127.0.0.1:1", "stats"])


class TestExecutionArgs:
    def _parse(self, argv, **kwargs):
        parser = argparse.ArgumentParser()
        add_execution_args(parser, **kwargs)
        return parser.parse_args(argv)

    def test_defaults_round_trip(self):
        execution = execution_from_args(self._parse([]))
        assert isinstance(execution, ExecutionConfig)
        assert execution.jobs is None
        assert execution.use_compile_cache and execution.cache is not None
        assert execution.dispatch is None and execution.plan is None

    def test_flags_map_through(self, tmp_path):
        execution = execution_from_args(self._parse([
            "--jobs", "4", "--cache-dir", str(tmp_path), "--dispatch",
            "threaded", "--fault-seed", "7", "--fault-sites", "alloc_oom",
        ]))
        assert execution.jobs == "4"
        assert execution.cache.root.startswith(str(tmp_path))
        assert execution.dispatch == "threaded"
        assert execution.plan is not None and execution.plan.seed == 7

    def test_no_compile_cache_disables_cache(self):
        execution = execution_from_args(self._parse(["--no-compile-cache"]))
        assert execution.cache is None

    def test_bare_fault_prefix(self):
        args = self._parse(["--seed", "3"], fault_prefix="")
        assert execution_from_args(args).plan.seed == 3

    def test_include_faults_false_has_no_plan(self):
        execution = execution_from_args(self._parse([], include_faults=False))
        assert execution.plan is None

    def test_as_request_rejects_armed_plan(self):
        execution = execution_from_args(self._parse(["--fault-seed", "1"]))
        with pytest.raises(ValueError):
            execution.as_request()

    @pytest.mark.parametrize("build, argv", [
        ("repro.metrics.cli", ["run", "--jobs", "2", "--dispatch", "threaded",
                               "--fault-seed", "5", "--store", "x.sqlite"]),
        ("repro.faults.cli", ["run", "--seed", "5", "--jobs", "2",
                              "--dispatch", "threaded"]),
        ("repro.service.cli", ["submit", "--jobs", "2", "--dispatch",
                               "threaded", "--fault-seed", "5"]),
    ])
    def test_every_cli_accepts_the_shared_flags(self, build, argv):
        import importlib

        module = importlib.import_module(build)
        if build == "repro.service.cli":
            args = module.build_client_parser().parse_args(argv)
        else:
            args = module.build_parser().parse_args(argv)
        execution = execution_from_args(args)
        assert execution.jobs == "2" and execution.dispatch == "threaded"
        assert execution.plan is not None

    def test_hpcnet_run_accepts_the_shared_flags(self, tmp_path, capsys):
        from repro.harness.cli import main

        rc = main(["run", "micro.arith", "--profiles", "clr-1.1",
                   "--param", "Reps=50", "--jobs", "1",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--dispatch", "threaded"])
        assert rc == 0
        assert "micro.arith" in capsys.readouterr().out
