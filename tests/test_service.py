"""The experiment daemon, its client, and the shared execution-args
wiring: daemon-vs-direct byte identity, the zero-work warm path, HTTP
error handling, and cache GC."""

import argparse
import asyncio
import json
import os
import threading

import pytest

from repro.lang.compiler import COMPILE_STATS
from repro.metrics import baseline
from repro.parallel import (
    ExecutionConfig,
    add_execution_args,
    execution_from_args,
)
from repro.service import ExperimentService, ServiceClient, ServiceError


class DaemonHarness:
    """One live daemon on an ephemeral port, event loop on a thread."""

    def __init__(self, tmp_path, **kwargs):
        self.store_path = str(tmp_path / "exp.sqlite")
        self.cache_dir = str(tmp_path / "cache")
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache_dir", self.cache_dir)
        self.service = ExperimentService(self.store_path, **kwargs)
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        def body():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start("127.0.0.1", 0))
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=body, daemon=True)
        self.thread.start()
        assert ready.wait(30), "daemon failed to start"
        host, port = self.service.address
        self.url = f"http://{host}:{port}"
        self.client = ServiceClient(self.url)

    def close(self):
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def daemon(tmp_path):
    harness = DaemonHarness(tmp_path)
    yield harness
    harness.close()


SMALL = {"benchmarks": "micro.arith,grande.sieve",
         "profiles": "clr-1.1,native-c", "scale": 0.0, "git_sha": "cafe"}


class TestDaemon:
    def test_health_and_stats_shape(self, daemon):
        health = daemon.client.health()
        assert health["ok"] and health["store"] == daemon.store_path
        stats = daemon.client.stats()
        assert set(stats) >= {"metrics", "compile_stats", "store", "queue_depth"}

    def test_full_matrix_matches_direct_serial_run(self, daemon):
        request = {"scale": 0.0, "git_sha": "cafe"}  # full suite, all profiles
        job = daemon.client.submit(request)
        done = daemon.client.wait(job["id"], timeout=600)
        assert done["status"] == "done", done["error"]
        served = daemon.client.result(job["id"])
        direct = baseline.collect(
            profiles=baseline.resolve_profiles(None),
            suite=baseline.resolve_suite(None, 0.0),
            scale=0.0, git_sha="cafe", jobs=1,
        )
        assert json.dumps(served, sort_keys=True) == json.dumps(direct, sort_keys=True)

    def test_repeat_submission_executes_nothing(self, daemon):
        cold = daemon.client.wait(daemon.client.submit(SMALL)["id"])
        assert cold["stats"]["hits"] == 0
        before = COMPILE_STATS["compile_source_calls"]
        warm = daemon.client.wait(daemon.client.submit(SMALL)["id"])
        stats = warm["stats"]
        assert stats["hits"] == stats["cells"] == 4
        assert stats["cells_executed"] == 0
        assert stats["compile_calls"] == 0
        assert COMPILE_STATS["compile_source_calls"] == before
        blob = lambda j: json.dumps(daemon.client.result(j["id"]), sort_keys=True)
        assert blob(cold) == blob(warm)
        counters = daemon.client.stats()["metrics"]["counters"]
        assert counters["service.cache_hits"] == 4
        assert counters["service.jobs"] == 2

    def test_trends_reflect_recorded_runs(self, daemon):
        daemon.client.wait(daemon.client.submit(SMALL)["id"])
        rows = daemon.client.trends(benchmark="micro.arith",
                                    profile="native-c")["rows"]
        assert len(rows) == 1 and rows[0]["ratio"] is not None

    def test_error_statuses(self, daemon):
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"benchmarks": "no.such"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"profiles": "no-such"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"dispatch": "warp-drive"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"plan": {"seed": 1}})
        assert err.value.status == 409
        with pytest.raises(ServiceError) as err:
            daemon.client.status(999)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            daemon.client.result(999)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            daemon.client._call("GET", "/v1/nonsense")
        assert err.value.status == 404

    def test_result_before_done_is_404_not_crash(self, daemon):
        job = daemon.client.submit(SMALL)
        try:
            daemon.client.result(job["id"])
        except ServiceError as err:
            # job was still queued/running — the route answers 404, the
            # daemon stays up (the wait below proves it)
            assert err.status == 404
        final = daemon.client.wait(job["id"])
        assert final["status"] == "done"


class TestCacheGc:
    def _orphan(self, cache_dir):
        path = os.path.join(cache_dir, "asm", "de", "adbeef.tmp")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("torn write")
        return path

    def test_startup_sweep_reaps_orphans(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        orphan = self._orphan(cache_dir)
        harness = DaemonHarness(tmp_path)
        try:
            assert not os.path.exists(orphan)
            assert harness.service.swept_tmp_files == 1
        finally:
            harness.close()

    def test_admin_gc_reaps_orphans(self, daemon):
        orphan = self._orphan(daemon.cache_dir)
        payload = daemon.client.admin_gc()
        assert payload["reaped_tmp_files"] == 1
        assert not os.path.exists(orphan)
        counters = daemon.client.stats()["metrics"]["counters"]
        assert counters["service.gc_runs"] == 1


class TestClientCli:
    def test_submit_wait_out_and_result(self, daemon, tmp_path, capsys):
        from repro.service.cli import client_main

        cold = str(tmp_path / "cold.json")
        warm = str(tmp_path / "warm.json")
        base = ["--url", daemon.url, "submit",
                "--benchmarks", "micro.arith", "--profiles", "clr-1.1,native-c",
                "--scale", "0.0", "--git-sha", "cafe", "--wait"]
        assert client_main(base + ["--out", cold]) == 0
        assert client_main(base + ["--out", warm]) == 0
        assert open(cold, "rb").read() == open(warm, "rb").read()
        assert client_main(["--url", daemon.url, "status", "1"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "done"
        assert client_main(["--url", daemon.url, "result", "2"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact == json.load(open(cold))

    def test_armed_fault_plan_fails_before_http(self, tmp_path):
        from repro.service.cli import client_main

        with pytest.raises(SystemExit, match="fault plans"):
            client_main(["--url", "http://127.0.0.1:1", "submit",
                         "--fault-seed", "3", "--wait"])

    def test_unreachable_daemon_is_a_clean_error(self):
        from repro.service.cli import client_main

        with pytest.raises(SystemExit, match="cannot reach"):
            client_main(["--url", "http://127.0.0.1:1", "stats"])


class TestExecutionArgs:
    def _parse(self, argv, **kwargs):
        parser = argparse.ArgumentParser()
        add_execution_args(parser, **kwargs)
        return parser.parse_args(argv)

    def test_defaults_round_trip(self):
        execution = execution_from_args(self._parse([]))
        assert isinstance(execution, ExecutionConfig)
        assert execution.jobs is None
        assert execution.use_compile_cache and execution.cache is not None
        assert execution.dispatch is None and execution.plan is None

    def test_flags_map_through(self, tmp_path):
        execution = execution_from_args(self._parse([
            "--jobs", "4", "--cache-dir", str(tmp_path), "--dispatch",
            "threaded", "--fault-seed", "7", "--fault-sites", "alloc_oom",
        ]))
        assert execution.jobs == "4"
        assert execution.cache.root.startswith(str(tmp_path))
        assert execution.dispatch == "threaded"
        assert execution.plan is not None and execution.plan.seed == 7

    def test_no_compile_cache_disables_cache(self):
        execution = execution_from_args(self._parse(["--no-compile-cache"]))
        assert execution.cache is None

    def test_bare_fault_prefix(self):
        args = self._parse(["--seed", "3"], fault_prefix="")
        assert execution_from_args(args).plan.seed == 3

    def test_include_faults_false_has_no_plan(self):
        execution = execution_from_args(self._parse([], include_faults=False))
        assert execution.plan is None

    def test_as_request_rejects_armed_plan(self):
        execution = execution_from_args(self._parse(["--fault-seed", "1"]))
        with pytest.raises(ValueError):
            execution.as_request()

    @pytest.mark.parametrize("build, argv", [
        ("repro.metrics.cli", ["run", "--jobs", "2", "--dispatch", "threaded",
                               "--fault-seed", "5", "--store", "x.sqlite"]),
        ("repro.faults.cli", ["run", "--seed", "5", "--jobs", "2",
                              "--dispatch", "threaded"]),
        ("repro.service.cli", ["submit", "--jobs", "2", "--dispatch",
                               "threaded", "--fault-seed", "5"]),
    ])
    def test_every_cli_accepts_the_shared_flags(self, build, argv):
        import importlib

        module = importlib.import_module(build)
        if build == "repro.service.cli":
            args = module.build_client_parser().parse_args(argv)
        else:
            args = module.build_parser().parse_args(argv)
        execution = execution_from_args(args)
        assert execution.jobs == "2" and execution.dispatch == "threaded"
        assert execution.plan is not None

    def test_hpcnet_run_accepts_the_shared_flags(self, tmp_path, capsys):
        from repro.harness.cli import main

        rc = main(["run", "micro.arith", "--profiles", "clr-1.1",
                   "--param", "Reps=50", "--jobs", "1",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--dispatch", "threaded"])
        assert rc == 0
        assert "micro.arith" in capsys.readouterr().out
