"""Tests for VES runtime services: loader/linker, allocation accounting,
monitors, serializer edges, guest-visible clock, verifier rejections."""

import pytest

from repro.cil import (
    Assembly,
    ClassDef,
    FieldDef,
    MethodBuilder,
    MethodDef,
    assemble,
    cts,
    opcodes as op,
    verify_method,
)
from repro.errors import LoadError, ManagedException, VerifyError, VMError
from repro.lang import compile_source
from repro.runtimes import CLR11, MONO023, NATIVE_C
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def machine_for(source, profile=CLR11, **kwargs):
    return Machine(LoadedAssembly(compile_source(source)), profile, **kwargs)


class TestLoader:
    def test_field_layout_base_first(self):
        source = """
        class A { int a1; int a2; }
        class B : A { int b1; }
        class P { static void Main() { } }"""
        loaded = LoadedAssembly(compile_source(source))
        b = loaded.get_class("B")
        assert b.field_slots["a1"] == 0
        assert b.field_slots["a2"] == 1
        assert b.field_slots["b1"] == 2

    def test_vtable_override_resolution(self):
        source = """
        class A { virtual int F() { return 1; } virtual int G() { return 2; } }
        class B : A { override int F() { return 10; } }
        class P { static void Main() { } }"""
        loaded = LoadedAssembly(compile_source(source))
        b = loaded.get_class("B")
        assert b.resolve_virtual("F", ()).declaring_class == "B"
        assert b.resolve_virtual("G", ()).declaring_class == "A"

    def test_unknown_base_class(self):
        asm = Assembly("x")
        asm.add_class(ClassDef("C", base_name="Ghost"))
        with pytest.raises(LoadError, match="unknown base"):
            LoadedAssembly(asm)

    def test_field_shadowing_rejected(self):
        asm = Assembly("x")
        a = ClassDef("A")
        a.add_field(FieldDef("v", cts.INT32))
        b = ClassDef("B", base_name="A")
        b.add_field(FieldDef("v", cts.INT32))
        asm.add_class(a)
        asm.add_class(b)
        with pytest.raises(LoadError, match="shadows"):
            LoadedAssembly(asm)

    def test_statics_fresh_per_load(self):
        source = """
        class P {
            static int counter;
            static int Main() { counter += 1; return counter; }
        }"""
        assembly = compile_source(source)
        assert Machine(LoadedAssembly(assembly), CLR11).run() == 1
        # a fresh loader starts from zeroed statics (new AppDomain)
        assert Machine(LoadedAssembly(assembly), CLR11).run() == 1


class TestAllocationAccounting:
    def test_allocation_grows_with_work(self):
        small = machine_for("""
            class Blob { long a; }
            class P { static void Main() {
                for (int i = 0; i < 10; i++) { Blob b = new Blob(); b.a = i; }
            } }""")
        small.run()
        big = machine_for("""
            class Blob { long a; }
            class P { static void Main() {
                for (int i = 0; i < 100; i++) { Blob b = new Blob(); b.a = i; }
            } }""")
        big.run()
        assert big.allocated_bytes > small.allocated_bytes

    def test_large_working_set_flag_flips(self):
        m = machine_for("""
            class P { static void Main() {
                double[] big = new double[20000];
                big[0] = 1.0;
            } }""")
        m.run()
        assert m.large_working_set

    def test_small_working_set_stays_small(self):
        m = machine_for("""
            class P { static void Main() {
                double[] small = new double[100];
                small[0] = 1.0;
            } }""")
        m.run()
        assert not m.large_working_set

    def test_allocation_is_costed(self):
        lean = machine_for("class P { static void Main() { } }")
        lean.run()
        chunky = machine_for("""
            class P { static void Main() {
                for (int i = 0; i < 200; i++) { int[] a = new int[64]; }
            } }""")
        chunky.run()
        assert chunky.cycles > lean.cycles + 200 * CLR11.costs.alloc_base


class TestMonitorErrors:
    def test_exit_without_enter_throws_managed(self):
        source = """
        class P { static int Main() {
            object o = new Exception("target");
            try { Monitor.Exit(o); return 0; }
            catch (SynchronizationException e) { return 7; }
        } }"""
        assert machine_for(source).run() == 7

    def test_wait_without_ownership_throws(self):
        source = """
        class P { static int Main() {
            object o = new Exception("t");
            try { Monitor.Wait(o); return 0; }
            catch (SynchronizationException e) { return 3; }
        } }"""
        assert machine_for(source).run() == 3

    def test_monitor_on_null_throws(self):
        source = """
        class P { static int Main() {
            object o = null;
            try { Monitor.Enter(o); return 0; }
            catch (NullReferenceException e) { return 9; }
        } }"""
        assert machine_for(source).run() == 9


class TestSerializerEdges:
    def test_cyclic_graph_round_trips(self):
        source = """
        class Node { Node next; int v; }
        class P { static int Main() {
            Node a = new Node(); a.v = 1;
            Node b = new Node(); b.v = 2;
            a.next = b;
            b.next = a;   // cycle
            Serializer.WriteObject(a);
            Node copy = (Node)Serializer.ReadObject();
            return copy.v * 100 + copy.next.v * 10
                 + (copy.next.next == copy ? 1 : 0);
        } }"""
        assert machine_for(source).run() == 121

    def test_shared_subobject_identity_preserved(self):
        source = """
        class Leaf { int v; }
        class Pair { Leaf left; Leaf right; }
        class P { static int Main() {
            Leaf shared = new Leaf(); shared.v = 5;
            Pair pair = new Pair();
            pair.left = shared;
            pair.right = shared;
            Serializer.WriteObject(pair);
            Pair copy = (Pair)Serializer.ReadObject();
            copy.left.v = 9;
            return copy.right.v;   // 9 only if identity survived
        } }"""
        assert machine_for(source).run() == 9

    def test_read_from_empty_stream_fails(self):
        source = """
        class P { static void Main() {
            Serializer.Reset();
            object o = Serializer.ReadObject();
        } }"""
        with pytest.raises(VMError, match="empty stream"):
            machine_for(source).run()

    def test_serialize_cost_scales_with_size(self):
        def cycles(n):
            m = machine_for(f"""
                class P {{ static void Main() {{
                    int[] data = new int[{n}];
                    Serializer.WriteObject(data);
                }} }}""")
            m.run()
            return m.cycles
        assert cycles(400) > cycles(10)


class TestGuestClock:
    def test_env_clock_monotonic_in_guest(self):
        source = """
        class P { static int Main() {
            long t0 = Env.Clock();
            int s = 0;
            for (int i = 0; i < 1000; i++) { s += i; }
            long t1 = Env.Clock();
            return t1 > t0 ? 1 : 0;
        } }"""
        assert machine_for(source).run() == 1

    def test_thread_count_visible(self):
        source = """
        class W { virtual void Run() { for (int i = 0; i < 5000; i++) { } } }
        class P { static int Main() {
            int tid = Thread.Create(new W());
            Thread.Start(tid);
            int seen = Env.ThreadCount();
            Thread.Join(tid);
            return seen;
        } }"""
        assert machine_for(source, quantum=500).run() == 2


class TestVerifierRejections:
    def _method(self, ret=cts.VOID):
        return MethodDef(name="M", param_types=[], return_type=ret, is_static=True)

    def test_type_confusion_rejected(self):
        m = self._method(ret=cts.INT32)
        b = MethodBuilder(m)
        b.emit(op.LDC_R8, 1.5)
        b.emit(op.LDC_I4, 1)
        b.emit(op.ADD)  # float + int without conversion
        b.emit(op.RET)
        built = b.build()
        with pytest.raises(VerifyError, match="mismatch"):
            verify_method(built)

    def test_fall_off_end_rejected(self):
        from repro.cil.instructions import Instruction

        m = self._method()
        # bypass the builder (which already rejects this at build time);
        # the verifier reports it as an out-of-range fallthrough target
        m.body = [Instruction(op.NOP)]
        with pytest.raises(VerifyError, match="out of range|falls off end"):
            verify_method(m)

    def test_branch_out_of_range_rejected(self):
        text = """
.assembly bad
.class C
{
  .method static void C::M()
  {
    .maxstack 1
    IL_0000: br           IL_00ff
  }
}
"""
        asm = assemble(text)
        with pytest.raises(Exception):
            verify_method(asm.find_method("C", "M"))

    def test_rethrow_outside_catch_rejected(self):
        m = self._method()
        b = MethodBuilder(m)
        b.emit(op.RETHROW)
        b.emit(op.RET)
        built = b.build()
        with pytest.raises(VerifyError, match="rethrow outside"):
            verify_method(built)

    def test_bad_return_type_rejected(self):
        m = self._method(ret=cts.INT32)
        b = MethodBuilder(m)
        b.emit(op.LDSTR, "oops")
        b.emit(op.RET)
        built = b.build()
        with pytest.raises(VerifyError, match="return type"):
            verify_method(built)


class TestUnhandledExceptions:
    def test_managed_exception_carries_object(self):
        source = 'class P { static void Main() { throw new ArgumentException("nope"); } }'
        with pytest.raises(ManagedException) as err:
            machine_for(source).run()
        assert err.value.type_name == "ArgumentException"
        assert err.value.managed_message == "nope"
        assert err.value.exc_object is not None

    def test_worker_thread_exception_reported_at_join(self):
        # an exception escaping a worker kills that thread; Join returns
        # and the main thread observes the missing side effect
        source = """
        class Bad {
            static int flag;
            virtual void Run() {
                throw new Exception("worker died");
            }
        }
        class P { static int Main() {
            int tid = Thread.Create(new Bad());
            Thread.Start(tid);
            Thread.Join(tid);
            return Bad.flag;
        } }"""
        assert machine_for(source).run() == 0


class TestGcCollect:
    def test_live_census_counts_reachable_graph(self):
        source = """
        class Node { Node next; }
        class P {
            static Node head;
            static void Main() {
                for (int i = 0; i < 10; i++) {
                    Node n = new Node();
                    n.next = head;
                    head = n;
                }
                Node garbage = new Node();
                garbage = null;
                GC.Collect();
            }
        }"""
        m = machine_for(source)
        m.run()
        assert m.gc_collections == 1
        # the 10-node list hangs off the static root; at least those live
        assert m.gc_live_objects >= 10

    def test_collect_cost_scales_with_live_set(self):
        def cycles_with(n):
            m = machine_for(f"""
                class Node {{ Node next; }}
                class P {{
                    static Node head;
                    static void Main() {{
                        for (int i = 0; i < {n}; i++) {{
                            Node x = new Node();
                            x.next = head;
                            head = x;
                        }}
                        long before = Env.Clock();
                        GC.Collect();
                    }}
                }}""")
            m.run()
            return m.gc_live_objects
        assert cycles_with(200) > cycles_with(10)
