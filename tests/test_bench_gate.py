"""Tests for the BENCH_* benchmark-trajectory artifacts and regression gate.

The engine is deterministic, so the gate's contract is exact: collecting
twice at the same commit produces artifacts that self-compare clean, and
any injected drift beyond tolerance must flip ``repro-bench compare`` to a
nonzero exit with a table naming the benchmark, profile, and metric.
"""

import copy
import json

import pytest

from repro.metrics import baseline
from repro.metrics.baseline import (
    BENCH_SCHEMA,
    DEFAULT_TOLERANCES,
    compare,
    graph_suite,
    load_artifact,
    next_seq,
    regressions,
    render_compare,
    write_artifact,
)
from repro.metrics.cli import main as bench_main
from repro.runtimes import ALL_PROFILES, CLR11, MONO023

#: one tiny real collection shared by the whole module (deterministic, so
#: collecting once is enough to exercise self-compare)
SUITE = [("micro.arith", {"Reps": 120}), ("grande.sieve", {"Limit": 300, "Reps": 1})]


@pytest.fixture(scope="module")
def artifact():
    return baseline.collect(
        profiles=[CLR11, MONO023], suite=SUITE, scale=0.01, git_sha="testsha"
    )


def perturbed(artifact, bench, profile, factor):
    """Deep copy with one profile's cycles scaled, ratios recomputed the
    way collect() computes them."""
    art = copy.deepcopy(artifact)
    entry = art["benchmarks"][bench]
    entry["profiles"][profile]["cycles"] = int(
        entry["profiles"][profile]["cycles"] * factor
    )
    base_name = "clr-1.1" if "clr-1.1" in entry["profiles"] else art["profiles"][0]
    base_cycles = entry["profiles"][base_name]["cycles"]
    entry["ratios"] = {
        f"{p}/{base_name}": e["cycles"] / base_cycles
        for p, e in entry["profiles"].items()
        if p != base_name
    }
    return art


class TestArtifact:
    def test_schema_and_coverage(self, artifact):
        assert artifact["schema"] == BENCH_SCHEMA
        assert artifact["git_sha"] == "testsha"
        assert artifact["profiles"] == ["clr-1.1", "mono-0.23"]
        assert sorted(artifact["benchmarks"]) == ["grande.sieve", "micro.arith"]
        for bench in artifact["benchmarks"].values():
            assert set(bench["profiles"]) == {"clr-1.1", "mono-0.23"}
            assert list(bench["ratios"]) == ["mono-0.23/clr-1.1"]
            for entry in bench["profiles"].values():
                assert entry["cycles"] > 0
                assert entry["instructions"] > 0
                assert entry["metrics"]["gauges"]["machine.cycles"] == entry["cycles"]
                assert entry["sections"]

    def test_collection_is_deterministic(self, artifact):
        again = baseline.collect(
            profiles=[CLR11, MONO023], suite=SUITE, scale=0.01, git_sha="testsha"
        )
        assert json.dumps(again, sort_keys=True) == json.dumps(
            artifact, sort_keys=True
        )

    def test_graph_suite_covers_every_default_profile(self):
        # the real (scale=1) suite must exist in the benchmark registry
        from repro.benchmarks import get as get_benchmark

        suite = graph_suite()
        assert len(suite) >= 8
        for name, params in suite:
            bench = get_benchmark(name)  # raises on unknown name
            assert bench is not None
            assert params
        assert len(ALL_PROFILES) == 8  # artifact spans all runtimes by default

    def test_write_and_load_roundtrip(self, artifact, tmp_path):
        out = str(tmp_path)
        assert next_seq(out) == 0
        path = write_artifact(artifact, out)
        assert path.endswith("BENCH_0.json")
        assert next_seq(out) == 1
        path2 = write_artifact(artifact, out)
        assert path2.endswith("BENCH_1.json")
        loaded = load_artifact(path)
        assert loaded["seq"] == 0
        assert loaded["benchmarks"].keys() == artifact["benchmarks"].keys()

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "BENCH_9.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="repro.bench/1"):
            load_artifact(str(bad))


class TestCompare:
    def test_self_compare_is_clean(self, artifact):
        rows = compare(artifact, artifact)
        assert rows
        assert not regressions(rows)
        assert all(r["status"] == "ok" for r in rows)
        text = render_compare(rows, artifact, artifact)
        assert "VERDICT: ok" in text
        assert "0 regressed" in text

    def test_regression_beyond_tolerance_flagged(self, artifact):
        worse = perturbed(artifact, "micro.arith", "mono-0.23", 1.20)
        rows = compare(artifact, worse)
        bad = regressions(rows)
        assert bad
        flagged = {(r["benchmark"], r["profile"], r["metric"]) for r in bad}
        assert ("micro.arith", "mono-0.23", "cycles") in flagged
        # the cross-runtime ratio moved too
        assert ("micro.arith", "mono-0.23/clr-1.1", "ratio") in flagged
        text = render_compare(rows, artifact, worse)
        assert "REGRESSION" in text
        assert "micro.arith" in text and "mono-0.23" in text

    def test_within_tolerance_passes(self, artifact):
        slightly = perturbed(artifact, "micro.arith", "mono-0.23", 1.005)
        assert not regressions(compare(artifact, slightly))

    def test_improvement_never_fails_the_gate(self, artifact):
        faster = perturbed(artifact, "micro.arith", "mono-0.23", 0.5)
        rows = compare(artifact, faster, tolerances={"ratio": 10.0})
        assert not regressions(rows)
        assert any(r["status"] == "improved" for r in rows)

    def test_ratio_shift_is_two_sided(self, artifact):
        # a big speedup on one runtime shifts the paper's ratio: flagged
        faster = perturbed(artifact, "micro.arith", "mono-0.23", 0.5)
        rows = compare(artifact, faster)
        assert any(
            r["metric"] == "ratio" and r["status"] == "regression" for r in rows
        )

    def test_removed_benchmark_is_coverage_regression(self, artifact):
        shrunk = copy.deepcopy(artifact)
        del shrunk["benchmarks"]["grande.sieve"]
        rows = compare(artifact, shrunk)
        bad = regressions(rows)
        assert any(
            r["benchmark"] == "grande.sieve" and r["status"] == "removed"
            for r in bad
        )
        # the reverse direction is informational, not failing
        rows = compare(shrunk, artifact)
        assert not regressions(rows)
        assert any(r["status"] == "added" for r in rows)

    def test_tolerance_overrides(self, artifact):
        worse = perturbed(artifact, "micro.arith", "mono-0.23", 1.20)
        relaxed = compare(
            artifact, worse, tolerances={"cycles": 0.5, "ratio": 0.5}
        )
        assert not regressions(relaxed)
        with pytest.raises(ValueError, match="unknown tolerance"):
            compare(artifact, worse, tolerances={"nope": 0.1})
        assert DEFAULT_TOLERANCES["cycles"] < 0.5  # overrides actually relaxed


class TestCli:
    def test_run_writes_artifact_and_compare_gates(self, tmp_path, capsys):
        out = str(tmp_path / "bench")
        argv_common = [
            "--out", out, "--scale", "0.01",
            "--profiles", "clr-1.1,mono-0.23",
            "--benchmarks", "micro.arith",
            "--git-sha", "cli-test",
        ]
        assert bench_main(["run"] + argv_common) == 0
        assert bench_main(["run"] + argv_common) == 0
        capsys.readouterr()
        base = f"{out}/BENCH_0.json"
        new = f"{out}/BENCH_1.json"
        data = load_artifact(base)
        assert data["git_sha"] == "cli-test"
        assert data["schema"] == BENCH_SCHEMA

        # identical collections: the gate passes
        assert bench_main(["compare", base, new]) == 0
        assert "VERDICT: ok" in capsys.readouterr().out

        # inject a regression: the gate fails with a readable table
        art = perturbed(load_artifact(new), "micro.arith", "mono-0.23", 1.25)
        doctored = tmp_path / "BENCH_bad.json"
        doctored.write_text(json.dumps(art))
        assert bench_main(["compare", base, str(doctored)]) == 1
        text = capsys.readouterr().out
        assert "REGRESSION" in text and "micro.arith" in text

        # ...unless tolerances say otherwise
        assert bench_main([
            "compare", base, str(doctored),
            "--tolerance", "cycles=0.5", "--tolerance", "ratio=0.5",
        ]) == 0

    def test_run_rejects_unknown_benchmark(self, tmp_path):
        with pytest.raises(SystemExit, match="not in the graph suite"):
            bench_main([
                "run", "--out", str(tmp_path), "--benchmarks", "micro.nope",
            ])

    def test_compare_rejects_bad_tolerance_syntax(self, tmp_path, artifact):
        path = write_artifact(artifact, str(tmp_path))
        with pytest.raises(SystemExit, match="tolerance"):
            bench_main(["compare", path, path, "--tolerance", "cycles"])


class TestStoreGate:
    """``compare --store``: gate a candidate artifact directly against
    store history instead of a checked-in BENCH file."""

    def _run(self, out, db, sha):
        assert bench_main([
            "run", "--out", out, "--scale", "0.01",
            "--profiles", "clr-1.1,mono-0.23", "--benchmarks", "micro.arith",
            "--git-sha", sha, "--store", db,
        ]) == 0

    def _history(self, tmp_path):
        out, db = str(tmp_path / "bench"), str(tmp_path / "exp.sqlite")
        self._run(out, db, "shaA")  # store run 1
        self._run(out, db, "shaB")  # store run 2 (all memo hits)
        return out, db

    def test_clean_candidate_passes_and_skips_own_sha(self, tmp_path, capsys):
        out, db = self._history(tmp_path)
        candidate = f"{out}/BENCH_1.json"  # git_sha shaB
        assert bench_main(["compare", candidate, "--store", db]) == 0
        captured = capsys.readouterr()
        # the rerun-of-HEAD rule: shaB's own run is skipped as baseline
        assert "baseline = store run 1 (git shaA)" in captured.err
        assert "VERDICT: ok" in captured.out

    def test_base_sha_pins_the_baseline(self, tmp_path, capsys):
        out, db = self._history(tmp_path)
        candidate = f"{out}/BENCH_0.json"
        assert bench_main(["compare", candidate, "--store", db,
                           "--base-sha", "shaB"]) == 0
        assert "baseline = store run 2 (git shaB)" in capsys.readouterr().err
        with pytest.raises(SystemExit, match="no run with git sha"):
            bench_main(["compare", candidate, "--store", db,
                        "--base-sha", "nope"])

    def test_injected_regression_fails_the_gate(self, tmp_path, capsys):
        out, db = self._history(tmp_path)
        doctored = perturbed(
            load_artifact(f"{out}/BENCH_1.json"), "micro.arith", "mono-0.23",
            1.25,
        )
        doctored["git_sha"] = "shaC"
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(doctored))
        assert bench_main(["compare", str(bad), "--store", db]) == 1
        captured = capsys.readouterr()
        assert "baseline = store run 2" in captured.err  # latest non-shaC run
        assert "REGRESSION" in captured.out
        assert "micro.arith" in captured.out

    def test_argument_errors(self, tmp_path, artifact):
        path = write_artifact(artifact, str(tmp_path))
        db = str(tmp_path / "exp.sqlite")
        with pytest.raises(SystemExit, match="takes one artifact"):
            bench_main(["compare", path, path, "--store", db])
        with pytest.raises(SystemExit, match="needs BASE.json"):
            bench_main(["compare", path])

    def test_empty_store_is_a_clean_error(self, tmp_path, artifact):
        from repro.store import ExperimentStore

        path = write_artifact(artifact, str(tmp_path))
        db = str(tmp_path / "exp.sqlite")
        ExperimentStore(db).close()
        with pytest.raises(SystemExit, match="no runs"):
            bench_main(["compare", path, "--store", db])
