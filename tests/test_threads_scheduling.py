"""Scheduler/threading tests for the measured engine (vm/threads.py).

Covers the thread state machine (NEW -> RUNNABLE -> BLOCKED -> FINISHED),
round-robin quantum fairness, and the determinism of context-switch
charges — the properties DESIGN.md section 6 promises.
"""

import pytest

from repro.errors import VMError
from repro.lang import compile_source
from repro.runtimes import CLR11, MONO023
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine
from repro.vm.threads import BLOCKED, FINISHED, NEW, RUNNABLE


def make(src, profile=CLR11, quantum=50_000):
    return Machine(LoadedAssembly(compile_source(src)), profile, quantum=quantum)


WORKER = """
class Worker {
    int n;
    int result;
    virtual void Run() {
        int s = 0;
        for (int i = 0; i < n; i++) { s += i; }
        result = s;
    }
}
"""


class TestStateMachine:
    def test_created_but_never_started_stays_new(self):
        src = WORKER + """
        class P { static int Main() {
            Worker w = new Worker();
            w.n = 10;
            int tid = Thread.Create(w);
            return tid;
        } }"""
        machine = make(src)
        machine.run()
        assert len(machine.threads) == 2
        worker = machine.threads[1]
        assert worker.state is NEW
        assert worker.cycles == 0  # never scheduled

    def test_started_and_joined_workers_finish(self):
        src = WORKER + """
        class P { static int Main() {
            int[] tids = new int[3];
            Worker[] ws = new Worker[3];
            for (int i = 0; i < 3; i++) {
                ws[i] = new Worker();
                ws[i].n = 50;
                tids[i] = Thread.Create(ws[i]);
                Thread.Start(tids[i]);
            }
            int total = 0;
            for (int i = 0; i < 3; i++) {
                Thread.Join(tids[i]);
                total += ws[i].result;
            }
            return total;
        } }"""
        machine = make(src, quantum=600)
        assert machine.run() == 3 * sum(range(50))
        assert all(t.state is FINISHED for t in machine.threads)
        # every started worker was actually scheduled (NEW -> RUNNABLE)
        assert all(t.cycles > 0 for t in machine.threads[1:])

    def test_deadlocked_threads_report_blocked(self):
        # Main waits on a monitor nobody will ever pulse
        src = """
        class Box { int x; }
        class P { static int Main() {
            Box o = new Box();
            lock (o) { Monitor.Wait(o); }
            return 0;
        } }"""
        machine = make(src)
        with pytest.raises(VMError, match="deadlock"):
            machine.run()
        assert machine.threads[0].state is BLOCKED
        assert machine.threads[0].waiting_on is not None

    def test_join_blocks_until_worker_finishes(self):
        src = WORKER + """
        class P { static int Main() {
            Worker w = new Worker();
            w.n = 2000;
            int tid = Thread.Create(w);
            Thread.Start(tid);
            Thread.Join(tid);
            return w.result;
        } }"""
        machine = make(src, quantum=300)  # worker needs many quanta
        assert machine.run() == sum(range(2000))
        assert machine.threads[1].state is FINISHED
        # main stalled while the worker ran: worker earned its own cycles
        assert machine.threads[1].cycles > 300


class TestFairness:
    def _fair_run(self, quantum):
        src = WORKER + """
        class P { static int Main() {
            int[] tids = new int[4];
            Worker[] ws = new Worker[4];
            for (int i = 0; i < 4; i++) {
                ws[i] = new Worker();
                ws[i].n = 3000;
                tids[i] = Thread.Create(ws[i]);
                Thread.Start(tids[i]);
            }
            for (int i = 0; i < 4; i++) { Thread.Join(tids[i]); }
            return ws[0].result;
        } }"""
        machine = make(src, quantum=quantum)
        assert machine.run() == sum(range(3000))
        return machine

    def test_equal_workers_get_equal_cycles(self):
        quantum = 2000
        machine = self._fair_run(quantum)
        worker_cycles = [t.cycles for t in machine.threads[1:]]
        assert len(worker_cycles) == 4
        # round-robin: identical work => per-thread totals within ~one
        # quantum of each other (a turn can overshoot by one instruction)
        spread = max(worker_cycles) - min(worker_cycles)
        assert spread <= 2 * quantum, (worker_cycles, spread)

    def test_all_workers_interleave(self):
        machine = self._fair_run(1500)
        # with a quantum far below per-worker work, everyone ran many turns
        for t in machine.threads[1:]:
            assert t.cycles > 3 * 1500


class TestDeterminism:
    SRC = WORKER + """
    class P { static int Main() {
        int[] tids = new int[3];
        Worker[] ws = new Worker[3];
        for (int i = 0; i < 3; i++) {
            ws[i] = new Worker();
            ws[i].n = 400 * (i + 1);
            tids[i] = Thread.Create(ws[i]);
            Thread.Start(tids[i]);
        }
        int total = 0;
        for (int i = 0; i < 3; i++) {
            Thread.Join(tids[i]);
            total += ws[i].result;
        }
        return total;
    } }"""

    def test_identical_cycles_across_runs(self):
        runs = []
        for _ in range(3):
            machine = make(self.SRC, quantum=900)
            machine.run()
            runs.append(
                (machine.cycles, machine.instructions,
                 tuple(t.cycles for t in machine.threads))
            )
        assert len(set(runs)) == 1, runs

    @pytest.mark.parametrize("profile", [CLR11, MONO023], ids=lambda p: p.name)
    def test_switch_charges_are_exact_multiples(self, profile):
        cost = profile.costs.thread_switch
        assert cost > 0
        with_switch = make(self.SRC, profile=profile, quantum=900)
        with_switch.run()
        free = make(self.SRC, profile=profile.with_costs(thread_switch=0),
                    quantum=900)
        free.run()
        delta = with_switch.cycles - free.cycles
        # scheduling is identical in both runs, so the whole difference is
        # N context switches at the profile's fixed price
        assert delta > 0
        assert delta % cost == 0, (delta, cost)
        assert delta // cost >= 4  # several rotations actually happened
