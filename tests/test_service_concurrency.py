"""The daemon's concurrency surface: multi-worker execution with per-job
compile isolation, submission coalescing, queue-membership positions,
the pooled keep-alive client, and the N-worker byte-identity invariant
(concurrent mixed submissions serve exactly the artifacts a direct
serial run produces)."""

import json
import threading

import pytest

from repro.metrics import baseline
from repro.service import ExperimentService, ServiceClient, ServiceError

from tests.test_service import SMALL, DaemonHarness

#: a second matrix, disjoint from SMALL, so the pair never coalesces
OTHER = {"benchmarks": "micro.loop,scimark.sor",
         "profiles": "clr-1.1,native-c", "scale": 0.0, "git_sha": "cafe"}


def _blob(client, job_id):
    return json.dumps(client.result(job_id), sort_keys=True)


def _direct(matrix):
    """The matrix run directly and serially — the identity reference."""
    return json.dumps(baseline.collect(
        profiles=baseline.resolve_profiles(matrix["profiles"]),
        suite=baseline.resolve_suite(matrix["benchmarks"], matrix["scale"]),
        scale=matrix["scale"], git_sha=matrix["git_sha"], jobs=1,
    ), sort_keys=True)


class TestCompileIsolation:
    def test_concurrent_cold_jobs_report_their_own_compiles(self, tmp_path):
        # reference: each matrix cold, serially, in its own daemon
        serial_dir = tmp_path / "serial"
        serial_dir.mkdir()
        serial = DaemonHarness(serial_dir)
        try:
            expected = {}
            for tag, matrix in (("a", SMALL), ("b", OTHER)):
                done = serial.client.wait(serial.client.submit(matrix)["id"])
                assert done["status"] == "done", done["error"]
                expected[tag] = done["stats"]["compile_calls"]
            assert expected["a"] > 0 and expected["b"] > 0
        finally:
            serial.close()

        # the same two matrices submitted back-to-back against a fresh
        # 2-worker daemon: overlapping executions, yet each job reports
        # exactly its own compile count (measured inside its subprocess),
        # not a smeared sample of a shared counter
        conc_dir = tmp_path / "concurrent"
        conc_dir.mkdir()
        conc = DaemonHarness(conc_dir, workers=2)
        try:
            job_a = conc.client.submit(SMALL)
            job_b = conc.client.submit(OTHER)
            done_a = conc.client.wait(job_a["id"])
            done_b = conc.client.wait(job_b["id"])
            assert done_a["status"] == done_b["status"] == "done"
            assert done_a["stats"]["compile_calls"] == expected["a"]
            assert done_b["stats"]["compile_calls"] == expected["b"]
        finally:
            conc.close()


@pytest.fixture
def stalled(tmp_path, monkeypatch):
    """A 2-worker daemon whose job executions finish their real work and
    then stall until released — a deterministic window in which the
    primary is ``running`` and identical submissions must coalesce."""
    import repro.service.daemon as daemon_mod

    real = daemon_mod._run_job_subprocess
    running = threading.Event()
    release = threading.Event()

    def slow(config):
        payload = real(config)
        running.set()
        release.wait(60)
        return payload

    monkeypatch.setattr(daemon_mod, "_run_job_subprocess", slow)
    harness = DaemonHarness(tmp_path, workers=2)
    harness.running, harness.release = running, release
    yield harness
    release.set()
    harness.close()


class TestCoalescing:
    def test_identical_inflight_submissions_attach_to_one_execution(
        self, stalled
    ):
        client = stalled.client
        primary = client.submit(SMALL)
        assert stalled.running.wait(120), "primary never started"
        followers = [client.submit(SMALL) for _ in range(3)]
        for follower in followers:
            view = client.status(follower["id"])
            assert view["coalesced_with"] == primary["id"]
            assert view["queue_position"] is None
            assert view["status"] == "running"  # tracks the primary
        # a *different* matrix in the same window does not coalesce
        other = client.submit(OTHER)
        assert client.status(other["id"])["coalesced_with"] is None
        # fault-plan submissions are rejected before coalescing sees them
        with pytest.raises(ServiceError) as err:
            client.submit(dict(SMALL, plan={"seed": 1}))
        assert err.value.status == 409

        stalled.release.set()
        done = client.wait(primary["id"], timeout=300)
        assert done["status"] == "done", done["error"]
        reference = _blob(client, primary["id"])
        for follower in followers:
            view = client.wait(follower["id"], timeout=300)
            assert view["status"] == "done"
            assert view["followers"] == []
            # served entirely from the primary's execution: zero
            # compiles, zero guest cycles of their own
            stats = view["stats"]
            assert stats["compile_calls"] == 0
            assert stats["cells_executed"] == 0
            assert stats["hits"] == stats["cells"]
            assert _blob(client, follower["id"]) == reference
        client.wait(other["id"], timeout=300)

        stats = client.stats()
        assert stats["coalesced_total"] == 3
        counters = stats["metrics"]["counters"]
        assert counters["service.coalesced_total"] == 3
        assert counters["service.jobs"] == 5
        # the counter is scrapeable on /metrics too
        from repro.metrics import validate_exposition

        parsed = validate_exposition(client.metrics())
        assert dict(parsed["repro_service_coalesced_total"])[""] == 3.0

    def test_primary_failure_propagates_to_followers(self, stalled, monkeypatch):
        import repro.service.daemon as daemon_mod

        def boom(config):
            stalled.running.set()
            stalled.release.wait(60)
            raise daemon_mod._RemoteJobError("RuntimeError: injected")

        monkeypatch.setattr(daemon_mod, "_run_job_subprocess", boom)
        client = stalled.client
        primary = client.submit(SMALL)
        assert stalled.running.wait(120)
        follower = client.submit(SMALL)
        assert client.status(follower["id"])["coalesced_with"] == primary["id"]
        stalled.release.set()
        assert client.wait(primary["id"])["status"] == "failed"
        view = client.wait(follower["id"])
        assert view["status"] == "failed"
        assert f"coalesced with job {primary['id']}" in view["error"]
        assert "RuntimeError: injected" in view["error"]


class TestQueuePosition:
    def _service(self, tmp_path):
        # handlers poked directly on an unstarted instance: submissions
        # queue up but nothing drains, so positions are deterministic
        return ExperimentService(str(tmp_path / "exp.sqlite"),
                                 cache_dir=str(tmp_path / "cache"))

    def test_position_comes_from_queue_membership(self, tmp_path):
        service = self._service(tmp_path)
        jobs = [
            service._submit(dict(SMALL, git_sha=sha))
            for sha in ("aaaa", "bbbb", "cccc")
        ]
        assert [service._job_view(j)["queue_position"] for j in jobs] == [1, 2, 3]

        # a drain task picks up job 1 and it fails: an id-order status
        # scan would leave the survivors' positions unshifted (or count
        # the failed job); queue membership gets both right
        service._pending.remove(jobs[0]["id"])
        jobs[0]["status"] = "failed"
        assert service._job_view(jobs[0])["queue_position"] is None
        assert service._job_view(jobs[1])["queue_position"] == 1
        assert service._job_view(jobs[2])["queue_position"] == 2

    def test_coalesced_followers_hold_no_position(self, tmp_path):
        service = self._service(tmp_path)
        primary = service._submit(dict(SMALL, git_sha="aaaa"))
        follower = service._submit(dict(SMALL, git_sha="aaaa"))
        behind = service._submit(dict(SMALL, git_sha="bbbb"))
        assert follower["coalesced_with"] == primary["id"]
        assert service._job_view(follower)["queue_position"] is None
        # the follower occupies no queue slot, so it shifts nobody
        assert service._job_view(behind)["queue_position"] == 2


class TestClientPool:
    def test_sequential_calls_reuse_one_connection(self, daemon):
        with ServiceClient(daemon.url) as client:
            client.health()
            client.stats()
            client.health()
            stats = client.pool_stats()
            assert stats["created"] == 1
            assert stats["reused"] >= 2
            assert stats["idle"] == 1

    def test_trace_propagates_on_reused_connections(self, daemon):
        with ServiceClient(daemon.url, trace_id="feedface") as client:
            for _ in range(3):
                client.health()
                assert client.last_trace.startswith("feedface:")
            assert client.pool_stats()["created"] == 1

    def test_stale_pooled_connection_retries_fresh(self, tmp_path):
        harness = DaemonHarness(tmp_path)
        client = ServiceClient(harness.url)
        try:
            client.health()
            # daemon restarts on a new port; re-point the client so its
            # pooled (now dead) connection is the thing under test
            harness.close()
            harness = DaemonHarness(tmp_path)
            client._host, client._port = harness.service.address
            assert client.health()["ok"]  # stale conn retried, not fatal
        finally:
            client.close()
            harness.close()


@pytest.fixture
def daemon(tmp_path):
    harness = DaemonHarness(tmp_path)
    yield harness
    harness.close()


class TestFourWorkerIdentity:
    def test_concurrent_mixed_submissions_match_direct_serial_runs(
        self, tmp_path
    ):
        """The acceptance invariant: a 4-worker daemon under eight
        concurrent cold/warm/coalesced submissions serves artifacts
        byte-identical to direct serial runs."""
        harness = DaemonHarness(tmp_path, workers=4)
        try:
            matrices = [SMALL, SMALL, SMALL, OTHER, OTHER, SMALL, OTHER, SMALL]
            results = [None] * len(matrices)

            def submit(slot, matrix):
                job = harness.client.submit(matrix)
                results[slot] = harness.client.wait(job["id"], timeout=600)

            threads = [
                threading.Thread(target=submit, args=(slot, matrix))
                for slot, matrix in enumerate(matrices)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(600)

            direct = {"a": _direct(SMALL), "b": _direct(OTHER)}
            for matrix, view in zip(matrices, results):
                assert view is not None and view["status"] == "done", view
                tag = "a" if matrix is SMALL else "b"
                assert _blob(harness.client, view["id"]) == direct[tag]
                if view["coalesced_with"] is not None:
                    # coalesced duplicates did zero work of their own
                    assert view["stats"]["compile_calls"] == 0
                    assert view["stats"]["cells_executed"] == 0

            stats = harness.client.stats()
            assert stats["workers"] == 4
            assert stats["journal_mode"] == "wal"
            assert stats["jobs"]["done"] == len(matrices)
            assert stats["read_pool"]["created"] >= 1
        finally:
            harness.close()
