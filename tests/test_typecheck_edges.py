"""Edge-case tests for the type checker (conversion rules, overloads,
inheritance validation, scoping)."""

import pytest

from repro.errors import TypeCheckError
from tests.conftest import interpret


def run(src):
    return interpret(src)[0]


def err(src, match):
    with pytest.raises(TypeCheckError, match=match):
        run(src)


class TestConversions:
    def test_int_to_double_implicit_everywhere(self):
        assert run("""
            class P {
                static double Half(double x) { return x / 2.0; }
                static double Main() { return Half(7); }
            }""") == 3.5

    def test_long_to_int_requires_cast(self):
        err("class P { static int Main() { long l = 5L; return l; } }",
            "cannot implicitly convert")

    def test_double_to_float_requires_cast(self):
        err("class P { static void Main() { float f = 1.5; } }",
            "cannot implicitly convert")

    def test_float_to_double_implicit(self):
        assert run("class P { static double Main() { float f = 0.5f; double d = f; return d; } }") == 0.5

    def test_bool_not_an_int(self):
        err("class P { static int Main() { bool b = true; return b + 1; } }",
            "cannot apply")

    def test_null_assignable_to_reference_only(self):
        err("class P { static void Main() { int x = null; } }",
            "cannot implicitly convert")

    def test_small_int_storage_round_trip(self):
        assert run("""
            class P { static int Main() {
                byte b = (byte)300;       // wraps to 44
                short s = (short)70000;   // wraps to 4464
                return b * 10000 + s;
            } }""") == 44 * 10000 + 4464

    def test_char_arithmetic_widens_to_int(self):
        assert run("class P { static int Main() { char c = 'A'; return c + 1; } }") == 66


class TestOverloadsAndCalls:
    def test_exact_match_beats_convertible(self):
        assert run("""
            class O {
                static int F(int x) { return 1; }
                static int F(long x) { return 2; }
                static int F(double x) { return 3; }
            }
            class P { static int Main() {
                return O.F(1) * 100 + O.F(1L) * 10 + O.F(1.0);
            } }""") == 123

    def test_ambiguity_resolved_by_fewest_conversions(self):
        # int arg: (long) needs 1 conversion, (double) needs 1 -> first
        # minimal-score candidate wins deterministically
        assert run("""
            class O {
                static int F(long x) { return 1; }
                static int F(double x) { return 2; }
            }
            class P { static int Main() { return O.F(3); } }""") in (1, 2)

    def test_static_call_on_instance_method_rejected(self):
        err("""
            class A { int F() { return 1; } }
            class P { static int Main() { return A.F(); } }""",
            "no static method")

    def test_void_in_expression_rejected(self):
        err("""
            class P {
                static void F() { }
                static int Main() { return F() + 1; }
            }""", "cannot apply")

    def test_derived_argument_accepted_for_base_parameter(self):
        assert run("""
            class A { virtual int Tag() { return 1; } }
            class B : A { override int Tag() { return 2; } }
            class P {
                static int Probe(A a) { return a.Tag(); }
                static int Main() { return Probe(new B()); }
            }""") == 2


class TestInheritanceValidation:
    def test_inheritance_cycle_detected(self):
        err("""
            class A : B { }
            class B : A { }
            class P { static void Main() { } }""",
            "inheritance cycle")

    def test_override_return_type_mismatch(self):
        err("""
            class A { virtual int F() { return 1; } }
            class B : A { override double F() { return 2.0; } }
            class P { static void Main() { } }""",
            "changes return type")

    def test_virtual_on_struct_rejected(self):
        err("struct S { virtual int F() { return 1; } } class P { static void Main() { } }",
            "cannot be virtual")

    def test_struct_as_base_rejected(self):
        # parser already blocks `struct S : X`; class : struct dies in checking
        err("""
            struct S { int v; }
            class C : S { }
            class P { static void Main() { } }""",
            "cannot inherit from a struct")

    def test_base_call_without_base_class(self):
        err("""
            class A { int F() { return base.F(); } }
            class P { static void Main() { } }""",
            "base call with no base class")


class TestScoping:
    def test_block_scopes_are_disjoint(self):
        assert run("""
            class P { static int Main() {
                int total = 0;
                { int x = 1; total += x; }
                { int x = 2; total += x; }
                return total;
            } }""") == 3

    def test_for_variable_scoped_to_loop(self):
        assert run("""
            class P { static int Main() {
                int total = 0;
                for (int i = 0; i < 3; i++) { total += i; }
                for (int i = 0; i < 3; i++) { total += i; }
                return total;
            } }""") == 6

    def test_catch_variable_scoped_to_handler(self):
        err("""
            class P { static int Main() {
                try { } catch (Exception e) { }
                return e == null ? 1 : 0;
            } }""", "unknown name")

    def test_shadowing_in_same_scope_rejected(self):
        err("""
            class P { static void Main() {
                for (int i = 0; i < 2; i++) { int i = 5; }
            } }""", "duplicate variable")

    def test_field_vs_local_resolution(self):
        # a local shadows the instance field, like C#
        assert run("""
            class C {
                int v = 10;
                int F() { int v = 1; return v; }
                int G() { return v; }
            }
            class P { static int Main() {
                C c = new C();
                return c.F() + c.G();
            } }""") == 11


class TestExpressionEdges:
    def test_conditional_branch_promotion(self):
        assert run("""
            class P { static double Main() {
                bool b = true;
                return b ? 1 : 2.5;
            } }""") == 1.0

    def test_chained_assignment_value(self):
        assert run("""
            class P { static int Main() {
                int a; int b;
                a = b = 21;
                return a + b;
            } }""") == 42

    def test_compound_shift(self):
        assert run("""
            class P { static int Main() {
                int x = 1;
                x <<= 4;
                x >>= 1;
                return x;
            } }""") == 8

    def test_string_compound_concat(self):
        assert run("""
            class P { static int Main() {
                string s = "ab";
                s += "cd";
                s += 5;
                return s.Length;
            } }""") == 5

    def test_postfix_vs_prefix_value(self):
        assert run("""
            class P { static int Main() {
                int i = 5;
                int a = i++;   // 5, i=6
                int b = ++i;   // 7
                return a * 100 + b * 10 + i;
            } }""") == 5 * 100 + 7 * 10 + 7

    def test_postfix_on_array_element(self):
        assert run("""
            class P { static int Main() {
                int[] a = new int[2];
                a[0] = 3;
                int old = a[0]++;
                return old * 10 + a[0];
            } }""") == 34

    def test_negative_literal_min_int(self):
        assert run("class P { static int Main() { return int.MinValue + int.MaxValue; } }") == -1
