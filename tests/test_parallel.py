"""Parallel experiment-matrix execution and the persistent compile cache.

The contract under test is stronger than "parallel is probably fine":
because every measured number lives on the simulated clock and the pool
shards cells statically and merges by index, a parallel run must be
**bit-identical** to a serial run — the full graph-experiment matrix and a
fuzz campaign are compared as serialized bytes at ``--jobs 2`` and
``--jobs 4``.  The compile cache carries the same burden the other way
around: a warm rerun must be byte-identical to a cold one while performing
*zero* ``compile_source`` calls (asserted via the compiler's call counter).
"""

import json

import pytest

from repro.cil import cts
from repro.cil.metadata import Assembly
from repro.errors import CilError
from repro.fuzz.oracle import run_campaign
from repro.harness.runner import Runner
from repro.lang import compile_source
from repro.lang.compiler import COMPILE_STATS
from repro.metrics import MetricsRegistry, baseline
from repro.parallel import CompileCache, PoolError, resolve_jobs, run_cells
from repro.parallel.pool import PoolReport
from repro.runtimes import ALL_PROFILES, CLR11
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def campaign_fingerprint(result):
    """Everything comparable about a campaign (order included), minus the
    operational pool report."""
    return (
        result.campaign_seed,
        result.budget,
        result.executed,
        tuple(result.compile_failures),
        tuple(
            (pr.seed, pr.source, tuple(str(d) for d in pr.divergences))
            for pr in result.failures
        ),
    )


# ------------------------------------------------------- assembly round-trip


class TestAssemblyRoundTrip:
    def test_execution_is_bit_identical_after_roundtrip(self):
        from repro.benchmarks import get as get_benchmark

        bench = get_benchmark("micro.arith")
        source = bench.build_source({"Reps": 60})
        assembly = compile_source(source, assembly_name="micro.arith")
        clone = Assembly.from_bytes(assembly.to_bytes())
        a = Machine(LoadedAssembly(assembly), CLR11)
        b = Machine(LoadedAssembly(clone), CLR11)
        a.run()
        b.run()
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert list(a.stdout) == list(b.stdout)

    def test_roundtrip_reinterns_types(self):
        source = """
        struct Pt { int x; }
        class T {
            static Pt[] grid;
            static int Main() { grid = new Pt[3]; double d = 1.5; return grid.Length; }
        }
        """
        assembly = compile_source(source, assembly_name="interned")
        clone = Assembly.from_bytes(assembly.to_bytes())
        for method in clone.all_methods():
            for t in list(method.param_types) + [method.return_type]:
                if isinstance(t, cts.PrimitiveType):
                    assert t is cts.BY_NAME[t.name]
                elif isinstance(t, cts.NamedType):
                    assert t is cts.named(t.name)
        # the struct hint survives into the interned instance: value-type
        # array semantics in the engines depend on it
        pt = cts.named("Pt")
        assert pt.value_type_hint is True

    def test_bad_payloads_rejected(self):
        with pytest.raises(CilError):
            Assembly.from_bytes(b"definitely not an assembly")
        import pickle

        from repro.cil.metadata import ASSEMBLY_WIRE_FORMAT

        with pytest.raises(CilError):
            Assembly.from_bytes(ASSEMBLY_WIRE_FORMAT + pickle.dumps({"not": "asm"}))
        with pytest.raises(CilError):
            Assembly.from_bytes(ASSEMBLY_WIRE_FORMAT + b"\x80corrupt")


# ------------------------------------------------------------- compile cache


class TestCompileCache:
    SOURCE = "class T { static int Main() { return 40 + 2; } }"

    def test_miss_then_hit_and_persistence(self, tmp_path):
        cache = CompileCache(str(tmp_path / "cc"))
        a = cache.get_or_compile(self.SOURCE, assembly_name="t")
        assert (cache.hits, cache.misses) == (0, 1)
        b = cache.get_or_compile(self.SOURCE, assembly_name="t")
        assert (cache.hits, cache.misses) == (1, 1)
        assert b.name == a.name
        # a fresh instance over the same directory is warm too
        fresh = CompileCache(str(tmp_path / "cc"))
        before = COMPILE_STATS["compile_source_calls"]
        fresh.get_or_compile(self.SOURCE, assembly_name="t")
        assert (fresh.hits, fresh.misses) == (1, 0)
        assert COMPILE_STATS["compile_source_calls"] == before

    def test_key_separates_source_name_and_version(self, tmp_path, monkeypatch):
        cache = CompileCache(str(tmp_path))
        base = cache.key_for(self.SOURCE, "t")
        assert cache.key_for(self.SOURCE + " ", "t") != base
        assert cache.key_for(self.SOURCE, "u") != base
        from repro.lang import compiler

        monkeypatch.setattr(compiler, "COMPILER_VERSION", "kernel-cs/next")
        assert cache.key_for(self.SOURCE, "t") != base

    def test_corrupt_entry_reads_as_miss_and_is_repaired(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        key = cache.key_for(self.SOURCE, "t")
        cache.get_or_compile(self.SOURCE, assembly_name="t")
        path = cache._path(key)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        assert cache.load(key) is None
        cache.get_or_compile(self.SOURCE, assembly_name="t")
        assert cache.misses == 2
        assert cache.load(key) is not None

    def test_runner_uses_cache(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        Runner(profiles=[CLR11], compile_cache=cache).run("micro.arith", {"Reps": 50})
        assert (cache.hits, cache.misses) == (0, 1)
        # a *new* runner (fresh in-memory dict) hits the persistent layer
        before = COMPILE_STATS["compile_source_calls"]
        runs = Runner(profiles=[CLR11], compile_cache=cache).run(
            "micro.arith", {"Reps": 50}
        )
        assert cache.hits == 1
        assert COMPILE_STATS["compile_source_calls"] == before
        assert runs["clr-1.1"].total_cycles > 0


# ------------------------------------------------------------------ the pool


class TestPool:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs("4") == 4
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_jobs("many")

    def test_worker_crash_surfaces_as_pool_error(self):
        spec = {"kind": "no-such-kind"}
        with pytest.raises(PoolError):
            run_cells(spec, [1, 2], jobs=2)

    def test_report_records_into_registry(self):
        report = PoolReport(cells=4, jobs=2, wall_seconds=2.0,
                            worker_pids=(11, 12, 11), cache_hits=3,
                            cache_misses=1, cell_wall=[0.5, 0.5, 0.5, 0.5])
        registry = MetricsRegistry()
        report.record(registry)
        assert registry.value("parallel.cells") == 4
        assert registry.value("parallel.cache.hits") == 3
        assert registry.value("parallel.cache.misses") == 1
        assert registry.value("parallel.jobs") == 2
        assert registry.value("parallel.workers") == 2
        assert registry.get("parallel.cell_wall_us").count == 4
        assert report.cells_per_sec == 2.0
        summary = report.summary()
        assert "cells/sec" in summary and "cache 3 hits / 1 misses" in summary


# ----------------------------------------------- bit-identity: graph matrix


class TestBenchMatrixBitIdentity:
    """Full graph-experiment suite x all 8 profiles (80 cells) at floor
    problem sizes: serial, --jobs 2 and --jobs 4 must serialize to the
    same bytes, and a warm-cache rerun to the same bytes as a cold run."""

    @pytest.fixture(scope="class")
    def suite(self):
        return baseline.graph_suite(0.0)  # every benchmark at its floor size

    @pytest.fixture(scope="class")
    def serial(self, suite):
        return baseline.collect(
            profiles=ALL_PROFILES, suite=suite, scale=0.0, git_sha="parallel-test"
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_matches_serial_bytes(self, suite, serial, jobs, tmp_path):
        cache = CompileCache(str(tmp_path / f"cc{jobs}"))
        parallel = baseline.collect(
            profiles=ALL_PROFILES, suite=suite, scale=0.0,
            git_sha="parallel-test", jobs=jobs, cache=cache,
        )
        assert json.dumps(parallel, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )
        report = baseline.collect.last_report
        assert report is not None
        assert report.cells == len(suite) * len(ALL_PROFILES)
        # the acceptance criterion: cells actually fanned out to >1 worker
        assert report.workers_used > 1
        assert report.cache_misses > 0

    def test_warm_cache_rerun_is_byte_identical_with_zero_compiles(
        self, suite, serial, tmp_path
    ):
        cache = CompileCache(str(tmp_path / "warm"))
        cold = baseline.collect(
            profiles=ALL_PROFILES, suite=suite, scale=0.0,
            git_sha="parallel-test", cache=cache,
        )
        assert cache.misses == len(suite)
        before = COMPILE_STATS["compile_source_calls"]
        warm = baseline.collect(
            profiles=ALL_PROFILES, suite=suite, scale=0.0,
            git_sha="parallel-test", cache=cache,
        )
        assert COMPILE_STATS["compile_source_calls"] == before, (
            "a warm compile cache must eliminate every compile_source call"
        )
        assert cache.hits == len(suite)
        assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)
        assert json.dumps(warm, sort_keys=True) == json.dumps(serial, sort_keys=True)


# --------------------------------------------- bit-identity: fuzz campaign


class TestFuzzCampaignBitIdentity:
    SEED, COUNT, BUDGET = 42, 25, 25

    @pytest.fixture(scope="class")
    def serial(self):
        return run_campaign(seed=self.SEED, count=self.COUNT, budget=self.BUDGET)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_campaign_matches_serial(self, serial, jobs, tmp_path):
        cache = CompileCache(str(tmp_path / "cc"))
        parallel = run_campaign(
            seed=self.SEED, count=self.COUNT, budget=self.BUDGET,
            jobs=jobs, cache=cache,
        )
        assert campaign_fingerprint(parallel) == campaign_fingerprint(serial)
        assert parallel.report is not None
        assert parallel.report.workers_used > 1

    def test_on_program_order_matches_serial(self):
        serial_order = []
        run_campaign(seed=self.SEED, count=8, budget=self.BUDGET,
                     on_program=lambda pr: serial_order.append(pr.seed))
        parallel_order = []
        run_campaign(seed=self.SEED, count=8, budget=self.BUDGET, jobs=2,
                     on_program=lambda pr: parallel_order.append(pr.seed))
        assert parallel_order == serial_order

    def test_warm_cache_campaign_recompiles_nothing(self, tmp_path):
        cache = CompileCache(str(tmp_path / "cc"))
        cold = run_campaign(seed=self.SEED, count=8, budget=self.BUDGET, cache=cache)
        assert cache.misses == 8 and cache.hits == 0
        before = COMPILE_STATS["compile_source_calls"]
        warm = run_campaign(seed=self.SEED, count=8, budget=self.BUDGET, cache=cache)
        assert COMPILE_STATS["compile_source_calls"] == before
        assert cache.hits == 8
        assert campaign_fingerprint(warm) == campaign_fingerprint(cold)

    def test_injected_bug_detected_through_the_pool(self, tmp_path):
        """The mutation check holds under parallel execution: pool workers
        apply the pass bug themselves (a parent-side context manager cannot
        reach a forked-before or spawned worker deterministically)."""
        result = run_campaign(seed=7, count=6, budget=30, jobs=2,
                              inject_bug="simplify")
        assert result.failures, "injected simplify bug went undetected via pool"
        serial = run_campaign(seed=7, count=6, budget=30, inject_bug="simplify")
        assert campaign_fingerprint(result) == campaign_fingerprint(serial)


# ----------------------------------------------------- hpcnet run --jobs


class TestHarnessCliParallel:
    def test_run_jobs_matches_serial_output(self, tmp_path, capsys):
        from repro.harness.cli import main as cli_main

        argv = ["run", "micro.arith", "--param", "Reps=60", "--csv",
                "--cache-dir", str(tmp_path / "cc")]
        assert cli_main(argv) == 0
        serial_csv = capsys.readouterr().out
        assert cli_main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical CSV body after the pool's operational summary line
        parallel_csv = "\n".join(
            line for line in parallel_out.splitlines()
            if not line.startswith("hpcnet: parallel")
        ) + "\n"
        assert parallel_csv == serial_csv

    def test_bench_cli_jobs_writes_identical_artifact(self, tmp_path, capsys):
        from repro.metrics.cli import main as bench_main

        common = ["run", "--scale", "0.01", "--profiles", "clr-1.1,mono-0.23",
                  "--benchmarks", "micro.arith", "--git-sha", "t",
                  "--cache-dir", str(tmp_path / "cc")]
        assert bench_main(common + ["--out", str(tmp_path / "a")]) == 0
        assert bench_main(common + ["--out", str(tmp_path / "b"), "--jobs", "2"]) == 0
        capsys.readouterr()
        a = (tmp_path / "a" / "BENCH_0.json").read_bytes()
        b = (tmp_path / "b" / "BENCH_0.json").read_bytes()
        assert a == b

# -------------------------------------------------- cache crash consistency


class TestCacheCrashConsistency:
    """A worker killed mid-store must never poison the cache: at worst an
    orphaned ``*.tmp`` remains, which load() cannot see and sweep() reaps."""

    SOURCE = TestCompileCache.SOURCE

    def test_writer_killed_mid_store_leaves_no_partial_entry(self, tmp_path):
        import glob
        import os
        import signal
        import subprocess
        import sys
        import textwrap

        root = str(tmp_path / "cc")
        # the child reproduces store() up to (but not including) os.replace,
        # then SIGKILLs itself: exactly the on-disk state a kill can leave
        child = textwrap.dedent(
            f"""
            import os, signal, tempfile
            from repro.lang import compile_source
            from repro.parallel import CompileCache

            source = {self.SOURCE!r}
            cache = CompileCache({root!r})
            path = cache._path(cache.key_for(source, "t"))
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            payload = compile_source(source, assembly_name="t").to_bytes()
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload[: len(payload) // 2])
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", child], env=dict(os.environ), timeout=120
        )
        assert proc.returncode == -signal.SIGKILL

        cache = CompileCache(root)
        key = cache.key_for(self.SOURCE, "t")
        assert cache.load(key) is None  # the orphan is invisible
        orphans = glob.glob(os.path.join(root, "asm", "**", "*.tmp"), recursive=True)
        assert len(orphans) == 1
        assert cache.sweep() == 1
        assert not glob.glob(os.path.join(root, "asm", "**", "*.tmp"), recursive=True)
        # the next writer repairs the entry
        cache.get_or_compile(self.SOURCE, assembly_name="t")
        assert cache.load(key) is not None

    def test_truncated_final_entry_reads_as_miss(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        key = cache.key_for(self.SOURCE, "t")
        cache.get_or_compile(self.SOURCE, assembly_name="t")
        path = cache._path(key)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])  # torn storage
        fresh = CompileCache(str(tmp_path))
        fresh.get_or_compile(self.SOURCE, assembly_name="t")
        assert (fresh.hits, fresh.misses, fresh.corrupted) == (0, 1, 1)
        assert fresh.load(key) is not None  # repaired in place

    def test_store_failure_leaves_no_stray_tmp(self, tmp_path, monkeypatch):
        import glob
        import os

        def refuse(_src, _dst):
            raise OSError("simulated ENOSPC")

        monkeypatch.setattr(os, "replace", refuse)
        cache = CompileCache(str(tmp_path))
        key = cache.key_for(self.SOURCE, "t")
        cache.get_or_compile(self.SOURCE, assembly_name="t")  # store swallowed
        monkeypatch.undo()
        assert cache.load(key) is None  # nothing reached the final path
        assert not glob.glob(
            os.path.join(str(tmp_path), "asm", "**", "*.tmp"), recursive=True
        )
