"""Round-trip tests: disassemble -> assemble -> disassemble must be a fixed
point, and assembled images must execute identically."""

import pytest

from repro.benchmarks import get
from repro.cil.assembler import assemble
from repro.cil.disassembler import disassemble_assembly, disassemble_method
from repro.cil.verifier import verify_assembly
from repro.errors import AssembleError
from repro.lang import compile_source
from repro.runtimes import CLR11
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

PROGRAMS = {
    "arith": """
        class P { static int Main() {
            int total = 0;
            for (int i = 0; i < 50; i++) { total += i * 3 - i / 2; }
            return total;
        } }""",
    "objects": """
        class Animal { virtual int Legs() { return 0; } }
        class Dog : Animal { override int Legs() { return 4; } }
        class P { static int Main() {
            Animal a = new Dog();
            return a.Legs();
        } }""",
    "exceptions": """
        class P { static int Main() {
            int x = 0;
            try {
                try { throw new ArithmeticException("inner"); }
                finally { x += 1; }
            } catch (Exception e) { x += 10; }
            return x;
        } }""",
    "arrays": """
        class P { static double Main() {
            double[,] m = new double[3, 3];
            double[][] j = new double[3][];
            for (int i = 0; i < 3; i++) { j[i] = new double[3]; }
            for (int i = 0; i < 3; i++)
                for (int k = 0; k < 3; k++) { m[i, k] = i + k; j[i][k] = i * k; }
            double s = 0.0;
            for (int i = 0; i < 3; i++)
                for (int k = 0; k < 3; k++) { s += m[i, k] + j[i][k]; }
            return s;
        } }""",
    "strings_and_box": """
        class P { static int Main() {
            object o = 41;
            string s = "x" + 1;
            return (int)o + s.Length;
        } }""",
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_round_trip_fixed_point(name):
    original = compile_source(PROGRAMS[name], assembly_name=name)
    text1 = disassemble_assembly(original)
    rebuilt = assemble(text1)
    text2 = disassemble_assembly(rebuilt)
    assert text1 == text2


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_round_trip_verifies_and_executes(name):
    original = compile_source(PROGRAMS[name], assembly_name=name)
    expected = Interpreter(LoadedAssembly(original)).run()
    rebuilt = assemble(disassemble_assembly(original))
    verify_assembly(rebuilt)
    assert Interpreter(LoadedAssembly(rebuilt)).run() == expected
    assert Machine(LoadedAssembly(rebuilt), CLR11).run() == expected


def test_round_trip_on_a_real_benchmark():
    bench = get("scimark.lu")
    original = compile_source(bench.build_source({"N": 8}), assembly_name="lu")
    text = disassemble_assembly(original)
    rebuilt = assemble(text)
    m1 = Interpreter(LoadedAssembly(original))
    m1.run()
    m2 = Interpreter(LoadedAssembly(rebuilt))
    m2.run()
    assert (
        m1.bench.sections["SciMark:LU"].results
        == m2.bench.sections["SciMark:LU"].results
    )


HAND_WRITTEN = """
.assembly hand
.entrypoint Prog::Main

.class Prog
{
  .method static int32 Prog::Main()
  {
    .maxstack 2
    .locals (int32 x)
    IL_0000: ldc.i4       5
    IL_0001: stloc        0
    IL_0002: ldloc        0
    IL_0003: ldc.i4       37
    IL_0004: add
    IL_0005: ret
  }
}
"""


class TestHandWrittenIL:
    def test_assemble_and_run(self):
        assembly = assemble(HAND_WRITTEN)
        verify_assembly(assembly)
        assert Interpreter(LoadedAssembly(assembly)).run() == 42

    def test_unknown_opcode_rejected(self):
        bad = HAND_WRITTEN.replace("add", "frobnicate")
        with pytest.raises(AssembleError, match="unknown opcode"):
            assemble(bad)

    def test_out_of_order_offsets_rejected(self):
        bad = HAND_WRITTEN.replace("IL_0003: ldc.i4       37", "IL_0007: ldc.i4       37")
        with pytest.raises(AssembleError, match="out of order"):
            assemble(bad)

    def test_missing_header_rejected(self):
        with pytest.raises(AssembleError, match="expected .assembly"):
            assemble(".class Foo\n{\n}")

    def test_bad_field_rejected(self):
        bad = ".assembly a\n.class C\n{\n  .field int32\n}\n"
        with pytest.raises(AssembleError, match="bad field"):
            assemble(bad)

    def test_disassembler_renders_hand_il(self):
        assembly = assemble(HAND_WRITTEN)
        method = assembly.find_method("Prog", "Main")
        text = disassemble_method(method)
        assert "ldc.i4" in text and ".maxstack" in text
