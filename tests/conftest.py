"""Shared test helpers."""

import pytest

from repro.lang import compile_source
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly


def interpret(source: str, entry_class=None):
    """Compile + interpret; returns (result, interpreter)."""
    assembly = compile_source(source, entry_class=entry_class)
    loaded = LoadedAssembly(assembly)
    interp = Interpreter(loaded)
    return interp.run(), interp


@pytest.fixture
def run_main():
    def _run(source, entry_class=None):
        return interpret(source, entry_class)[0]

    return _run
