"""Shared test helpers."""

import random

import pytest

from repro.lang import compile_source
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="fix the seed returned by the rng_seed fixture (reproduce a "
        "randomized-test failure: the failing run prints the seed to use)",
    )


@pytest.fixture
def rng_seed(request):
    """A per-test randomization seed.

    Fresh each run unless pinned with ``--repro-seed``.  When a test using
    this fixture fails, the seed is printed in the report so the exact run
    can be replayed with ``pytest --repro-seed=<seed>``.
    """
    seed = request.config.getoption("--repro-seed")
    if seed is None:
        seed = random.SystemRandom().randrange(2**63)
    request.node._repro_seed = seed
    return seed


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    seed = getattr(item, "_repro_seed", None)
    if seed is not None and report.failed:
        report.sections.append(
            (
                "randomized seed",
                f"this test used rng_seed={seed}; "
                f"replay with: pytest {item.nodeid!r} --repro-seed={seed}",
            )
        )


def interpret(source: str, entry_class=None):
    """Compile + interpret; returns (result, interpreter)."""
    assembly = compile_source(source, entry_class=entry_class)
    loaded = LoadedAssembly(assembly)
    interp = Interpreter(loaded)
    return interp.run(), interp


@pytest.fixture
def run_main():
    def _run(source, entry_class=None):
        return interpret(source, entry_class)[0]

    return _run
