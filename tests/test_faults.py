"""Deterministic fault injection and the resilient experiment harness.

Three contracts under test:

* **Determinism from the plan.**  Every fault decision is a pure function
  of (seed, cell index, site), so an identical FaultPlan produces a
  byte-identical failure-annotation report at ``--jobs`` 1, 2 and 4 —
  including under injected worker crashes and hangs.
* **Containment.**  Guest resource limits surface as *guest* exceptions
  through the real two-pass unwind path (catchable by guest handlers);
  every cell-level failure crosses the pool boundary as a structured
  :class:`CellFailure`, never an unhandled exception.
* **Zero perturbation.**  With no plan (or an armed-but-unfired spec),
  cycles, instructions, and results are bit-identical to a machine built
  without the fault layer.
"""

import json

import pytest

from repro.errors import CellTimeout, JitError, ManagedException, VMError
from repro.faults import (
    ALL_SITES,
    CellFailure,
    FaultPlan,
    MachineFaults,
    annotate_cells,
    load_report,
)
from repro.fuzz.oracle import run_campaign
from repro.harness.runner import Runner
from repro.lang import compile_source
from repro.metrics import baseline
from repro.parallel import run_cells
from repro.parallel.cache import CompileCache
from repro.runtimes import CLR11, MONO023
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def run_machine(source, faults=None, profile=CLR11):
    machine = Machine(LoadedAssembly(compile_source(source)), profile, faults=faults)
    return machine.run(), machine


# ------------------------------------------------------------------ the plan


class TestFaultPlan:
    def test_decisions_are_pure_functions_of_seed(self):
        a = FaultPlan(seed=11, sites=("alloc_oom", "worker_crash"), rate=0.5)
        b = FaultPlan(seed=11, sites=("alloc_oom", "worker_crash"), rate=0.5)
        c = FaultPlan(seed=12, sites=("alloc_oom", "worker_crash"), rate=0.5)
        picture = lambda p: [
            (i, s, p.site_armed(i, s)) for i in range(40) for s in ALL_SITES
        ]
        assert picture(a) == picture(b)
        assert picture(a) != picture(c)
        armed = sum(1 for _i, _s, on in picture(a) if on)
        assert 0 < armed < 80  # rate-gated, not all-or-nothing

    def test_pinned_overrides_rate(self):
        plan = FaultPlan(seed=1, rate=0.0, pinned=((3, "worker_hang"),))
        assert plan.site_armed(3, "worker_hang")
        assert not plan.site_armed(2, "worker_hang")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1, sites=("no_such_site",))
        with pytest.raises(ValueError):
            FaultPlan(seed=1, rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=1, max_retries=-1)

    def test_fault_record_outcomes_split_by_budget(self):
        plan = FaultPlan(seed=5, sites=("worker_crash",), rate=1.0, max_retries=1)
        outcomes = set()
        for i in range(30):
            record = plan.fault_record(i)
            assert record is not None
            assert 1 <= record.fail_attempts <= plan.max_retries + 1
            assert record.retries == min(record.fail_attempts, plan.max_retries)
            outcomes.add(record.outcome)
        assert outcomes == {"recovered", "quarantined"}

    def test_machine_faults_none_when_nothing_armed(self):
        plan = FaultPlan(seed=1, sites=("worker_crash",), rate=1.0)
        assert plan.machine_faults(0) is None  # worker site only
        limited = FaultPlan(seed=1, cycle_limit=1000)
        spec = limited.machine_faults(0)
        assert spec is not None and spec.cycle_limit == 1000


# ------------------------------------------------- guest limits & injection


class TestGuestLimits:
    def test_guest_oom_caught_by_guest_handler(self):
        # the injected OOM travels the real two-pass unwind path, so an
        # ordinary guest catch clause contains it
        source = """
        class P { static int Main() {
            int caught = 0;
            try {
                int[] a = new int[64];
                a[0] = 1;
            } catch (OutOfMemoryException e) { caught = 1; }
            return caught;
        } }"""
        result, machine = run_machine(source, MachineFaults(oom_at_alloc=1))
        assert result == 1
        assert machine.faults.fired == {"alloc_oom": 1}

    def test_heap_limit_raises_guest_oom(self):
        source = """
        class P { static int Main() {
            long[] a = new long[4096];
            return a.Length;
        } }"""
        machine = Machine(
            LoadedAssembly(compile_source(source)),
            CLR11,
            faults=MachineFaults(heap_limit=128),
        )
        with pytest.raises(ManagedException) as info:
            machine.run()
        assert info.value.type_name == "OutOfMemoryException"
        assert machine.faults.fired == {"heap_limit": 1}

    def test_stack_limit_raises_guest_stackoverflow(self):
        source = """
        class P {
            static int Deep(int n) { if (n <= 0) { return 0; } return 1 + P.Deep(n - 1); }
            static int Main() {
                int caught = 0;
                try { int r = P.Deep(1000); } catch (StackOverflowException e) { caught = 1; }
                return caught;
            }
        }"""
        result, machine = run_machine(source, MachineFaults(stack_limit=16))
        assert result == 1
        assert machine.faults.fired == {"stack_limit": 1}

    def test_cycle_watchdog_is_structured_cell_timeout(self):
        source = """
        class P { static int Main() {
            int i = 0;
            while (true) { i = i + 1; }
            return i;
        } }"""
        with pytest.raises(CellTimeout) as info:
            run_machine(source, MachineFaults(cycle_limit=50_000))
        assert isinstance(info.value, VMError)  # legacy handlers still catch it
        assert info.value.limit == 50_000
        assert info.value.cycles > 50_000

    def test_oom_during_unwind_replaces_inflight_exception(self):
        # nested try/finally; the in-flight ArgumentException is replaced
        # by the injected OOM while the first unwind finally runs, so the
        # outer OOM handler (not the ArgumentException one) takes it and
        # the outer finally still executes
        source = """
        class P {
            static int Leak;
            static void Inner() {
                try {
                    try { throw new ArgumentException("original"); }
                    finally { P.Leak = P.Leak + 1; }
                } finally { P.Leak = P.Leak + 10; }
            }
            static int Main() {
                int caught = 0;
                try { P.Inner(); }
                catch (OutOfMemoryException e) { caught = 1; }
                catch (ArgumentException e) { caught = 2; }
                return caught * 100 + P.Leak;
            }
        }"""
        plain, _machine = run_machine(source)
        assert plain == 211  # no injection: both finallies ran
        result, machine = run_machine(source, MachineFaults(throw_during_unwind=1))
        assert result == 110  # replaced mid-unwind; outer finally ran
        assert machine.faults.fired == {"unwind_throw": 1}

    def test_monitor_and_compile_injection(self):
        runner = Runner()
        with pytest.raises(ManagedException) as info:
            runner.run_on("threads.lock", CLR11, faults=MachineFaults(monitor_fail_at=1))
        assert info.value.type_name == "SynchronizationException"
        with pytest.raises(JitError) as jit_info:
            Runner().run_on("micro.arith", CLR11, faults=MachineFaults(compile_fail_at=1))
        assert jit_info.value.fault_fired == {"compile_fail": 1}

    def test_armed_but_unfired_is_zero_perturbation(self):
        plain = Runner().run_on("micro.exception", CLR11)
        armed = Runner().run_on(
            "micro.exception",
            CLR11,
            faults=MachineFaults(
                heap_limit=10**15, stack_limit=10**6, cycle_limit=10**15
            ),
        )
        assert armed.total_cycles == plain.total_cycles
        assert armed.instructions == plain.instructions
        assert armed.faults is None


# ------------------------------------------------------------- cell failures


class TestCellFailure:
    def test_classification(self):
        timeout = CellFailure.from_exception(0, CellTimeout(100, 50))
        assert timeout.status == "cell_timeout"
        guest = CellFailure.from_exception(1, ManagedException("OutOfMemoryException"))
        assert guest.status == "guest_exception"
        assert guest.exception == "OutOfMemoryException"
        compile_fault = CellFailure.from_exception(2, JitError("injected"))
        assert compile_fault.status == "compile_fault"
        assert not compile_fault.attributed  # nothing fired, no worker fault
        exc = ManagedException("OutOfMemoryException")
        exc.fault_fired = {"alloc_oom": 1}
        attributed = CellFailure.from_exception(3, exc)
        assert attributed.attributed
        assert attributed.fired == (("alloc_oom", 1),)


# --------------------------------------------------------- resilient fan-out

CELLS = [
    ("micro.arith", {"Reps": 60}, "clr-1.1"),
    ("micro.arith", {"Reps": 60}, "mono-0.23"),
    ("micro.exception", {"Reps": 12, "Depth": 4}, "clr-1.1"),
    ("micro.exception", {"Reps": 12, "Depth": 4}, "mono-0.23"),
    ("micro.create", {"Reps": 40}, "clr-1.1"),
    ("micro.create", {"Reps": 40}, "mono-0.23"),
]
META = [(bench, profile) for bench, _params, profile in CELLS]


def chaos_report(plan, jobs, cell_timeout=3.0, dispatch=None):
    spec = {
        "kind": "harness",
        "metrics": False,
        "plan": plan,
        "cell_timeout": cell_timeout,
        "dispatch": dispatch,
    }
    payloads, pool_report = run_cells(spec, CELLS, jobs=jobs)
    return annotate_cells(META, payloads, plan), pool_report


class TestResilientPool:
    def test_machine_fault_contained_as_cell_failure(self):
        plan = FaultPlan(seed=3, pinned=((4, "alloc_oom"),))
        report, _pool = chaos_report(plan, jobs=1)
        cell = report.cells[4]
        assert cell["status"] == "guest_exception"
        assert cell["exception"] == "OutOfMemoryException"
        assert report.contained
        assert [c["status"] for c in report.cells].count("ok") == 5

    def test_worker_crash_recovers_or_quarantines_identically(self):
        plan = FaultPlan(
            seed=9,
            sites=("worker_crash",),
            rate=0.6,
            pinned=((1, "worker_crash"),),
            max_retries=1,
        )
        blobs = {}
        for jobs in (1, 2, 4):
            report, _pool = chaos_report(plan, jobs=jobs)
            blobs[jobs] = report.to_json()
        assert blobs[1] == blobs[2] == blobs[4]
        data = json.loads(blobs[1])
        assert data["contained"]
        # every cell's outcome is exactly what the plan dictates
        for cell in data["cells"]:
            record = plan.fault_record(cell["index"])
            if record is None:
                assert cell["status"] == "ok" and cell["retries"] == 0
            elif record.outcome == "quarantined":
                assert cell["status"] == "quarantined"
                assert cell["retries"] == plan.max_retries
            else:
                assert cell["status"] == "ok"
                assert cell["retries"] == record.retries

    def test_crash_hang_and_guest_oom_matrix_is_deterministic(self):
        plan = FaultPlan(
            seed=21,
            pinned=((0, "worker_crash"), (3, "worker_hang"), (4, "alloc_oom")),
            max_retries=1,
        )
        blobs = {}
        for jobs in (1, 2, 4):
            report, _pool = chaos_report(plan, jobs=jobs, cell_timeout=2.0)
            blobs[jobs] = report.to_json()
        assert blobs[1] == blobs[2] == blobs[4]
        data = json.loads(blobs[1])
        assert data["contained"]
        by_index = {c["index"]: c for c in data["cells"]}
        assert by_index[0]["fault"] == "worker_crash"
        assert by_index[3]["fault"] == "worker_hang"
        assert by_index[4]["status"] == "guest_exception"
        for cell in data["cells"]:
            if cell["fault"] and cell["status"] == "quarantined":
                assert cell["retries"] == plan.max_retries
                assert cell["backoff_cycles"] > 0

    def test_dispatch_engines_chaos_parity_jobs_1_and_2(self):
        """The threaded engine is invisible to the fault layer: a pinned
        plan covering guest OOM, stack overflow, and a cycle-budget
        timeout produces byte-identical failure-annotation reports under
        ``classic`` and ``threaded`` at ``--jobs`` 1 and 2 — same fire
        sites, same counts, same annotations.  (With a fault injector
        armed the fuser stands down entirely, so every pc stays an
        individually attributable fire site.)"""
        cells = [
            ("micro.arith", {"Reps": 60}, "clr-1.1"),
            ("micro.create", {"Reps": 40}, "clr-1.1"),
            ("micro.exception", {"Reps": 12, "Depth": 4}, "clr-1.1"),
            ("micro.exception", {"Reps": 2, "Depth": 40}, "mono-0.23"),
            ("grande.sieve", {"Limit": 200, "Reps": 1}, "sscli-1.0"),
        ]
        meta = [(bench, profile) for bench, _params, profile in cells]
        plan = FaultPlan(seed=17, pinned=((1, "alloc_oom"),),
                         stack_limit=20, cycle_limit=400_000, max_retries=0)
        blobs = {}
        for engine in ("classic", "threaded"):
            for jobs in (1, 2):
                spec = {"kind": "harness", "metrics": False, "plan": plan,
                        "cell_timeout": 10.0, "dispatch": engine}
                payloads, _pool = run_cells(spec, cells, jobs=jobs)
                report = annotate_cells(meta, payloads, plan)
                blobs[(engine, jobs)] = report.to_json()
        assert len(set(blobs.values())) == 1, sorted(blobs)
        data = json.loads(blobs[("classic", 1)])
        by_index = {c["index"]: c for c in data["cells"]}
        assert by_index[1]["exception"] == "OutOfMemoryException"
        assert by_index[2]["status"] == "cell_timeout"
        assert by_index[3]["fired"] == {"stack_limit": 2}

    def test_dispatch_engines_unwind_injection_parity(self):
        """No benchmark has ``finally`` blocks, so the unwind-injection
        site is differenced at machine level: the injected mid-unwind OOM
        fires at the same finally, replaces the same in-flight exception,
        and leaves identical cycles under every dispatch engine."""
        source = """
        class P {
            static int Leak;
            static void Inner() {
                try {
                    try { throw new ArgumentException("original"); }
                    finally { P.Leak = P.Leak + 1; }
                } finally { P.Leak = P.Leak + 10; }
            }
            static int Main() {
                int caught = 0;
                try { P.Inner(); }
                catch (OutOfMemoryException e) { caught = 1; }
                catch (ArgumentException e) { caught = 2; }
                return caught * 100 + P.Leak;
            }
        }"""
        assembly = compile_source(source)
        prints = {}
        for engine in ("classic", "threaded", "threaded-nofuse"):
            machine = Machine(
                LoadedAssembly(assembly), CLR11,
                faults=MachineFaults(throw_during_unwind=1),
                dispatch=engine,
            )
            result = machine.run()
            prints[engine] = (result, dict(machine.faults.fired),
                              repr(machine.cycles), machine.instructions)
        assert prints["classic"][0] == 110
        assert prints["classic"][1] == {"unwind_throw": 1}
        assert prints["threaded"] == prints["classic"]
        assert prints["threaded-nofuse"] == prints["classic"]

    def test_no_plan_pool_payloads_unchanged(self):
        spec = {"kind": "harness", "metrics": False}
        payloads, _report = run_cells(spec, CELLS[:2], jobs=2)
        assert all(not isinstance(p, CellFailure) for p in payloads)
        serial_payloads, _r = run_cells(spec, CELLS[:2], jobs=1)
        assert [p.total_cycles for p in payloads] == [
            p.total_cycles for p in serial_payloads
        ]


# ------------------------------------------------------ cache fault injection


class TestCacheFaults:
    SOURCE = "class T { static int Main() { return 40 + 2; } }"

    def test_injected_corrupt_load_is_miss_and_counted(self, tmp_path):
        warm = CompileCache(str(tmp_path))
        warm.get_or_compile(self.SOURCE, assembly_name="t")
        cache = CompileCache(str(tmp_path), corrupt_loads=(1,))
        cache.get_or_compile(self.SOURCE, assembly_name="t")
        assert cache.misses == 1 and cache.corrupted == 1
        assert cache.stats()["corrupted"] == 1
        # the corrupted read repaired the entry; next load is clean
        cache.get_or_compile(self.SOURCE, assembly_name="t")
        assert cache.hits == 1

    def test_plan_derives_corrupt_loads(self):
        plan = FaultPlan(seed=2, sites=("cache_corrupt",))
        loads = plan.cache_corrupt_loads()
        assert loads and all(n >= 1 for n in loads)
        assert FaultPlan(seed=2, sites=("alloc_oom",)).cache_corrupt_loads() == ()


# ----------------------------------------------------- partial bench artifact


class TestPartialArtifact:
    def test_collect_returns_partial_results_with_failures(self, tmp_path):
        plan = FaultPlan(seed=4, pinned=((0, "worker_crash"),), max_retries=0)
        suite = [("micro.arith", {"Reps": 60}), ("micro.loop", {"Reps": 200})]
        profiles = [CLR11, MONO023]
        artifact = baseline.collect(
            profiles=profiles, suite=suite, git_sha="test", plan=plan
        )
        assert baseline.collect.last_faults is not None
        failures = artifact["failures"]
        assert [f["index"] for f in failures] == [0]
        assert failures[0]["status"] == "quarantined"
        # the failed (benchmark, profile) cell is absent; the rest survive
        arith = artifact["benchmarks"]["micro.arith"]["profiles"]
        assert "clr-1.1" not in arith and "mono-0.23" in arith
        loop = artifact["benchmarks"]["micro.loop"]["profiles"]
        assert set(loop) == {"clr-1.1", "mono-0.23"}
        assert baseline.collect.last_faults.contained

    def test_collect_without_plan_has_no_failures_key(self):
        suite = [("micro.arith", {"Reps": 60})]
        artifact = baseline.collect(profiles=[CLR11], suite=suite, git_sha="test")
        assert "failures" not in artifact


# ----------------------------------------------------------- fuzz + deadline


class TestFuzzDeadline:
    def test_expired_budget_is_structured_deadline_not_tuple(self):
        result = run_campaign(seed=7, count=3, jobs=2, time_limit=0.0)
        # every cell hit the deadline: nothing executed, nothing raised
        assert result.executed == 0
        assert result.failures == [] and result.compile_failures == []


# -------------------------------------------------------------- repro-chaos


class TestChaosCli:
    def test_run_writes_report_and_exit_policy(self, tmp_path, capsys):
        from repro.faults.cli import main

        out = tmp_path / "report.json"
        code = main([
            "run", "--seed", "6",
            "--pin", "0:worker_crash",
            "--max-retries", "0",
            "--benchmarks", "micro.arith",
            "--scale", "0.02",
            "--no-compile-cache",
            "--out", str(out),
        ])
        assert code == 0  # quarantine is attributed -> contained
        report = load_report(str(out))
        assert report.contained
        assert report.cells[0]["status"] == "quarantined"

        # blank the attribution: the same failures become uncontained
        data = json.loads(out.read_text())
        for cell in data["cells"]:
            cell["fault"] = ""
            cell.pop("fired", None)
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(data))
        assert main(["check", str(doctored)]) == 1
        assert main(["check", str(out)]) == 0
        capsys.readouterr()

    def test_report_roundtrip_and_schema_guard(self, tmp_path):
        plan = FaultPlan(seed=1, pinned=((1, "worker_crash"),), max_retries=0)
        report, _pool = chaos_report(plan, jobs=1)
        path = tmp_path / "r.json"
        path.write_text(report.to_json())
        loaded = load_report(str(path))
        assert loaded.contained == report.contained
        assert len(loaded.cells) == len(report.cells)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError):
            load_report(str(bad))


# ---------------------------------------------------------- hpcnet fault run


class TestHarnessCliFaults:
    def test_run_with_plan_reports_partial_results(self, capsys):
        from repro.harness.cli import main

        code = main([
            "run", "micro.arith",
            "--param", "Reps=60",
            "--profiles", "clr-1.1", "mono-0.23",
            "--fault-seed", "8",
            "--fault-pin", "0:worker_crash",
            "--max-retries", "0",
            "--no-compile-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0  # contained
        assert "quarantined" in out
        assert "mono-0.23" in out  # surviving profile still charted
