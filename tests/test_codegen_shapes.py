"""Tests that the Kernel-C# code generator emits the IL *shapes* csc 7.10
produced — the paper's analysis (Tables 5-8) depends on these exact
patterns reaching the JITs."""

import pytest

from repro.cil import cts, opcodes as op
from repro.cil.disassembler import disassemble_body
from repro.lang import compile_source


def main_body(source, method="Main", cls=None):
    assembly = compile_source(source)
    if cls is None:
        m = assembly.entry_point or next(
            mm for c in assembly.classes.values() for mm in c.methods if mm.name == method
        )
    else:
        m = assembly.find_method(cls, method)
    return m


def mnemonics(method):
    return [i.mnemonic for i in method.body]


class TestLoopShapes:
    def test_for_loop_tests_at_bottom(self):
        m = main_body("""
            class P { static int Main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { s += i; }
                return s;
            } }""")
        ops = mnemonics(m)
        # csc shape: unconditional br to the test, body first, blt back edge
        assert "br" in ops
        assert "blt" in ops
        br_index = ops.index("br")
        blt_index = ops.index("blt")
        assert m.body[blt_index].operand < blt_index  # backedge
        assert m.body[br_index].operand > br_index    # forward to the test

    def test_condition_uses_fused_compare_branch(self):
        m = main_body("""
            class P { static int Main(){ int x = 3; if (x < 5) { return 1; } return 0; } }""")
        ops = mnemonics(m)
        # comparisons in conditions use bge/blt forms, not clt+brtrue
        assert "clt" not in ops
        assert "bge" in ops or "blt" in ops

    def test_comparison_as_value_uses_compare_ops(self):
        m = main_body("""
            class P { static bool Main(){ int x = 3; bool b = x < 5; return b; } }""")
        assert "clt" in mnemonics(m)

    def test_division_loop_matches_paper_table5(self):
        m = main_body("""
            class P { static int Main() {
                int size = 10000;
                int i1 = int.MaxValue;
                int i2 = 3;
                for (int i = 0; i < size; i++) { i1 = i1 / i2; }
                return i1;
            } }""")
        text = "\n".join(disassemble_body(m))
        # the exact Table 5 extract: ldc 0x2710, 0x7fffffff, 3; ldloc/ldloc/div/stloc
        assert "ldc.i4       0x2710" in text
        assert "ldc.i4       0x7fffffff" in text
        assert "div" in text
        div_index = next(i for i, ins in enumerate(m.body) if ins.mnemonic == "div")
        assert m.body[div_index - 1].mnemonic == "ldloc"
        assert m.body[div_index - 2].mnemonic == "ldloc"
        assert m.body[div_index + 1].mnemonic == "stloc"


class TestExceptionShapes:
    def test_try_catch_finally_nesting(self):
        m = main_body("""
            class P { static int Main() {
                int x = 0;
                try { x = 1; }
                catch (Exception e) { x = 2; }
                finally { x += 10; }
                return x;
            } }""")
        kinds = [r.kind for r in m.regions]
        assert kinds.count("catch") == 1
        assert kinds.count("finally") == 1
        catch = next(r for r in m.regions if r.kind == "catch")
        fin = next(r for r in m.regions if r.kind == "finally")
        # finally wraps try+catch (outer region)
        assert fin.try_start <= catch.try_start
        assert fin.try_end >= catch.handler_end

    def test_leave_not_br_exits_protected_region(self):
        m = main_body("""
            class P { static void Main() {
                try { int x = 1; } finally { int y = 2; }
            } }""")
        ops = mnemonics(m)
        assert "leave" in ops
        assert "endfinally" in ops

    def test_return_inside_try_routes_through_local(self):
        m = main_body("""
            class P { static int Main() {
                try { return 5; } finally { int y = 2; }
            } }""")
        names = [v.name for v in m.locals]
        assert "$retval" in names

    def test_lock_lowered_to_monitor_pair_in_finally(self):
        m = main_body("""
            class P { static void Main() {
                object o = new Exception("x");
                lock (o) { int z = 1; }
            } }""")
        calls = [i.operand.name for i in m.body if i.mnemonic == "call"]
        assert "Enter" in calls and "Exit" in calls
        assert any(r.kind == "finally" for r in m.regions)


class TestCallShapes:
    SRC = """
    class A {
        int v;
        virtual int V() { return v; }
        int I() { return v; }
        static int S() { return 1; }
    }
    class P { static int Main() {
        A a = new A();
        return a.V() + a.I() + A.S();
    } }"""

    def test_dispatch_opcodes(self):
        m = main_body(self.SRC)
        pairs = [(i.mnemonic, i.operand.name) for i in m.body
                 if i.mnemonic in ("call", "callvirt")]
        assert ("callvirt", "V") in pairs
        assert ("call", "I") in pairs
        assert ("call", "S") in pairs

    def test_unused_return_value_popped(self):
        m = main_body("""
            class P {
                static int F() { return 3; }
                static void Main() { F(); }
            }""")
        ops = mnemonics(m)
        assert ops[ops.index("call") + 1] == "pop"


class TestValueTypeShapes:
    def test_struct_assignment_copies(self):
        m = main_body("""
            struct S { int v; }
            class P { static int Main() {
                S a = new S();
                S b = a;
                return b.v;
            } }""")
        assert "struct.copy" in mnemonics(m)

    def test_boxing_emitted_for_object_assignment(self):
        m = main_body("""
            class P { static int Main() {
                object o = 42;
                return (int)o;
            } }""")
        ops = mnemonics(m)
        assert "box" in ops and "unbox" in ops

    def test_md_array_opcodes(self):
        m = main_body("""
            class P { static double Main() {
                double[,] m2 = new double[2, 3];
                m2[1, 2] = 5.0;
                return m2[1, 2];
            } }""")
        ops = mnemonics(m)
        assert "newarr.md" in ops
        assert "ldelem.md" in ops and "stelem.md" in ops


class TestCctorAndInit:
    def test_static_initializers_become_cctor(self):
        assembly = compile_source("""
            class C { static int seed = 42; }
            class P { static int Main() { return C.seed; } }""")
        cctor = assembly.get_class("C").find_method(".cctor")
        assert cctor is not None
        assert any(i.mnemonic == "stsfld" for i in cctor.body)

    def test_instance_initializers_run_in_every_ctor(self):
        assembly = compile_source("""
            class C {
                int v = 7;
                C() { }
                C(int x) { v += x; }
            }
            class P { static int Main() {
                return new C().v + new C(1).v;
            } }""")
        for ctor in [m for m in assembly.get_class("C").methods if m.is_ctor]:
            assert any(i.mnemonic == "stfld" for i in ctor.body)

    def test_default_ctor_synthesized_when_needed(self):
        assembly = compile_source("""
            class C { int v = 3; }
            class P { static int Main() { return new C().v; } }""")
        assert assembly.get_class("C").find_method(".ctor") is not None
