"""Registry-wide assembler/disassembler round-trip.

Every benchmark in the registry — not just the hand-picked programs in
``test_cil_assembler_disassembler.py`` — must survive
``assemble(disassemble(asm))`` as a textual fixed point, and the rebuilt
image must still pass the verifier.  This pins the external CIL syntax for
the whole corpus the paper's tables are computed from: any assembler or
disassembler regression that loses a construct used by a real benchmark
shows up here immediately.

Compilation only (no execution), so the full registry stays fast.
"""

import pytest

from repro.benchmarks import all_benchmarks, get
from repro.cil.assembler import assemble
from repro.cil.disassembler import disassemble_assembly
from repro.cil.verifier import verify_assembly
from repro.lang import compile_source

ALL_NAMES = sorted(b.name for b in all_benchmarks())

#: tiny sizes: the embedded Params class is part of the round-tripped
#: image, so use the smallest sensible values to keep source size down
TINY = {
    "micro.serial": {"Reps": 1, "Nodes": 4},
    "clispec.matrix": {"N": 4, "Reps": 1},
    "scimark.fft": {"N": 8},
    "scimark.sor": {"N": 4, "Iters": 1},
    "scimark.sparse": {"N": 8, "NZ": 16, "Reps": 1},
    "scimark.lu": {"N": 4},
    "grande.sieve": {"Limit": 50},
    "grande.heapsort": {"N": 20},
    "grande.crypt": {"Words": 8},
    "grande.moldyn": {"MM": 2, "Steps": 1},
    "grande.euler": {"N": 4, "Steps": 1},
    "grande.raytracer": {"Size": 4, "Grid": 2},
}


def _tiny_overrides(name):
    overrides = TINY.get(name)
    if overrides is not None:
        return overrides
    bench = get(name)
    out = {}
    for key, value in bench.params.items():
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        out[key] = min(value, 4)
    return out


@pytest.mark.parametrize("name", ALL_NAMES)
def test_registry_roundtrip_fixed_point(name):
    bench = get(name)
    original = compile_source(
        bench.build_source(_tiny_overrides(name)), assembly_name=name.replace(".", "_")
    )
    text1 = disassemble_assembly(original)
    rebuilt = assemble(text1)
    verify_assembly(rebuilt)
    text2 = disassemble_assembly(rebuilt)
    assert text1 == text2, f"{name}: disassembly is not a fixed point"
