"""Tests for the harness layer: runner, charts, experiment plumbing, CLI."""

import pytest

from repro.harness.charts import bar_chart, format_sci, table, to_csv
from repro.harness.cli import main as cli_main
from repro.harness.results import ExperimentCheck, ExperimentResult
from repro.harness.runner import Runner
from repro.runtimes import CLR11, IBM131, SSCLI10


@pytest.fixture(scope="module")
def runner():
    return Runner(profiles=[CLR11, SSCLI10], clock_hz=2.8e9)


class TestRunner:
    def test_compile_is_cached(self, runner):
        a = runner.compile_benchmark("micro.loop", {"Reps": 100})
        b = runner.compile_benchmark("micro.loop", {"Reps": 100})
        assert a is b
        c = runner.compile_benchmark("micro.loop", {"Reps": 200})
        assert c is not a

    def test_run_produces_all_sections(self, runner):
        runs = runner.run("micro.loop", {"Reps": 500})
        assert set(runs) == {"clr-1.1", "sscli-1.0"}
        for run in runs.values():
            assert {"Loop:For", "Loop:ReverseFor", "Loop:While"} <= set(run.sections)
            for section in run.sections.values():
                assert section.cycles > 0
                assert section.ops_per_sec > 0

    def test_cross_runtime_result_mismatch_detected(self, runner):
        # same benchmark: results agree, so no error
        runner.run("scimark.montecarlo", {"Samples": 300})

    def test_clock_override_scales_rates(self):
        fast = Runner(profiles=[CLR11], clock_hz=2.8e9)
        slow = Runner(profiles=[CLR11], clock_hz=1.4e9)
        a = fast.run("micro.loop", {"Reps": 500})["clr-1.1"].section("Loop:For")
        b = slow.run("micro.loop", {"Reps": 500})["clr-1.1"].section("Loop:For")
        assert a.ops_per_sec == pytest.approx(2 * b.ops_per_sec)

    def test_missing_section_raises_keyerror(self, runner):
        run = runner.run_on("micro.loop", CLR11, {"Reps": 100})
        with pytest.raises(KeyError, match="no section"):
            run.section("Nope")

    def test_deterministic_cycles(self):
        r1 = Runner(profiles=[IBM131]).run_on("micro.cast", IBM131, {"Reps": 300})
        r2 = Runner(profiles=[IBM131]).run_on("micro.cast", IBM131, {"Reps": 300})
        assert r1.total_cycles == r2.total_cycles
        for s in r1.sections:
            assert r1.sections[s].cycles == r2.sections[s].cycles


class TestCharts:
    SERIES = {
        "SectionA": {"vm1": 100.0, "vm2": 50.0},
        "SectionB": {"vm1": 10.0, "vm2": 80.0},
    }

    def test_bar_chart_contains_all(self):
        text = bar_chart(self.SERIES, unit="widgets/sec", title="Demo")
        assert "Demo" in text
        assert "SectionA" in text and "SectionB" in text
        assert "vm1" in text and "vm2" in text
        assert "widgets/sec" in text

    def test_bar_chart_scales_to_peak(self):
        text = bar_chart(self.SERIES)
        lines = [l for l in text.splitlines() if "vm1" in l and "#" in l]
        peak_bar = max(l.count("#") for l in lines)
        assert peak_bar >= 40  # peak value fills most of the bar width

    def test_table_alignment_and_missing_cells(self):
        rows = {"r1": {"c1": 1.5}, "r2": {"c1": 2.0, "c2": 3.0}}
        text = table(rows, columns=["c1", "c2"])
        assert "1.50" in text and "3.00" in text
        assert "-" in text  # missing r1/c2

    def test_to_csv(self):
        csv = to_csv(self.SERIES, profile_order=["vm1", "vm2"])
        lines = csv.splitlines()
        assert lines[0] == "section,vm1,vm2"
        assert lines[1].startswith("SectionA,")

    def test_format_sci(self):
        assert format_sci(0) == "0"
        assert format_sci(123456789.0) == "1.23e+8"


class TestExperimentResult:
    def test_all_passed(self):
        r = ExperimentResult(experiment="x", title="t")
        r.checks.append(ExperimentCheck("ok", True))
        assert r.all_passed
        r.checks.append(ExperimentCheck("bad", False, "why"))
        assert not r.all_passed
        rendered = r.checks[1].render()
        assert "FAIL" in rendered and "why" in rendered


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scimark.fft" in out and "micro.arith" in out

    def test_profiles(self, capsys):
        assert cli_main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "clr-1.1" in out and "sscli-1.0" in out

    def test_run_with_params(self, capsys):
        code = cli_main([
            "run", "micro.loop", "--profiles", "clr-1.1", "--param", "Reps=300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Loop:For" in out

    def test_experiment_tables(self, capsys):
        assert cli_main(["experiment", "tables5-8"]) == 0
        out = capsys.readouterr().out
        assert "idiv" in out and "ldc.i4" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            cli_main(["experiment", "graph99"])

    def test_bad_param_format(self):
        with pytest.raises(SystemExit, match="bad --param"):
            cli_main(["run", "micro.loop", "--param", "Oops"])

    def test_disasm(self, capsys):
        assert cli_main(["disasm"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out


class TestCliCsv:
    def test_run_csv_output(self, capsys):
        code = cli_main([
            "run", "micro.loop", "--profiles", "clr-1.1", "ibm-1.3.1",
            "--param", "Reps=300", "--csv",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines[0] == "section,clr-1.1,ibm-1.3.1"
        assert any(l.startswith("Loop:For,") for l in lines)


class TestCompileKey:
    """Regression for the runner's memo key: ``tuple(sorted(dict.items()))``
    raised an opaque TypeError on unhashable override values and collided
    1 / 1.0 / True.  ``compile_key`` canonicalizes values and names the
    offending key when one genuinely cannot be cached."""

    def test_unhashable_value_raises_named_error(self):
        from repro.errors import BenchmarkError
        from repro.harness.runner import compile_key

        with pytest.raises(BenchmarkError, match=r"'Reps'"):
            compile_key("micro.arith", {"Reps": {"nested": 1}})
        with pytest.raises(BenchmarkError, match="micro.arith"):
            compile_key("micro.arith", {"Reps": {"nested": 1}})

    def test_numeric_types_do_not_collide(self):
        from repro.harness.runner import compile_key

        keys = {
            compile_key("b", {"X": 1}),
            compile_key("b", {"X": 1.0}),
            compile_key("b", {"X": True}),
        }
        assert len(keys) == 3

    def test_list_values_are_keyable_and_order_sensitive(self):
        from repro.harness.runner import compile_key

        a = compile_key("b", {"Xs": [1, 2, 3]})
        assert a == compile_key("b", {"Xs": [1, 2, 3]})
        assert a == compile_key("b", {"Xs": (1, 2, 3)})  # canon form is a tuple
        assert a != compile_key("b", {"Xs": [3, 2, 1]})

    def test_key_is_order_insensitive_over_params(self):
        from repro.harness.runner import compile_key

        assert compile_key("b", {"A": 1, "B": 2}) == compile_key(
            "b", {"B": 2, "A": 1}
        )

    def test_runner_surfaces_the_same_error(self):
        from repro.errors import BenchmarkError

        runner = Runner(profiles=[CLR11])
        with pytest.raises(BenchmarkError, match=r"'Reps'"):
            runner.compile_benchmark("micro.arith", {"Reps": [1, [2, {"x": 3}]]})
