"""Smoke tests: every example script runs to completion and prints what its
docstring promises."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    for name in ("ibm-1.3.1", "clr-1.1", "mono-0.23", "sscli-1.0"):
        assert name in out
    # same result on every line
    values = [line.split()[1] for line in out.splitlines()
              if line.startswith(("ibm", "clr", "mono", "sscli"))]
    assert len(set(values)) == 1


def test_jit_code_comparison():
    out = run_example("jit_code_comparison.py", "clr-1.1", "sscli-1.0")
    assert "ldc.i4" in out            # Table 5 CIL
    assert "idiv" in out              # the division
    assert "sar     edx, 0x1f" in out  # Rotor's emulated cdq


def test_matrix_styles():
    out = run_example("matrix_styles.py")
    assert "multidim/jagged ratio" in out
    assert "Matrix:Jagged" in out


def test_grande_suite_fast():
    out = run_example("grande_suite.py", "--fast")
    assert "validated" in out
    assert "Grande:RayTracer" in out


def test_scimark_shootout_fast():
    out = run_example("scimark_shootout.py", "--fast", timeout=480)
    assert "small memory model" in out
    assert "composite" in out


def test_examples_exist_and_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        head = script.read_text().split('"""')[1]
        assert len(head) > 40, f"{script.name} lacks a docstring"
