"""The daemon's overload/robustness surface: admission control (429 +
Retry-After, memo-only degradation, the failure breaker), job deadlines
with process-group reaping, lease-fenced store writes across rival
daemons, graceful drain, and the client's retry/poll-backoff behavior."""

import json
import os
import threading
import time

import pytest

from repro.service import ExperimentService, ServiceClient, ServiceError
from repro.store import ExperimentStore, LeaseLost, WriterLease

from tests.test_service import SMALL, DaemonHarness
from tests.test_store import append_run

#: a second matrix, disjoint from SMALL, so the pair never coalesces
OTHER = {"benchmarks": "micro.loop,scimark.sor",
         "profiles": "clr-1.1,native-c", "scale": 0.0, "git_sha": "cafe"}


def _distinct(tag):
    """A cold SMALL-shaped matrix that coalesces with nothing else."""
    return dict(SMALL, git_sha=f"distinct-{tag}")


@pytest.fixture
def stalled(tmp_path, monkeypatch):
    """A 1-worker daemon whose job executions finish their real work and
    then stall until released — a deterministic saturation window."""
    import repro.service.daemon as daemon_mod

    real = daemon_mod._run_job_subprocess
    running = threading.Event()
    release = threading.Event()

    def slow(config):
        payload = real(config)
        running.set()
        release.wait(60)
        return payload

    monkeypatch.setattr(daemon_mod, "_run_job_subprocess", slow)
    harness = DaemonHarness(tmp_path, workers=1, max_queue=1,
                            drain_grace=10.0)
    harness.running, harness.release = running, release
    yield harness
    release.set()
    harness.close()


# ---------------------------------------------------------------- admission


class TestAdmission:
    def test_max_queue_accepts_cli_strings(self, tmp_path):
        # argparse hands the daemon strings, not ints ("--max-queue 3")
        path = str(tmp_path / "store.db")
        svc = ExperimentService(path, workers=2, max_queue="3")
        assert svc.max_queue == 3
        svc = ExperimentService(path, workers=2, max_queue="auto")
        assert svc.max_queue == 8
        svc = ExperimentService(path, workers=2, max_queue=None)
        assert svc.max_queue is None
        with pytest.raises(ValueError, match="bad max_queue"):
            ExperimentService(path, workers=2, max_queue="bogus")
        with pytest.raises(ValueError, match=">= 1"):
            ExperimentService(path, workers=2, max_queue="0")

    def test_queue_full_rejects_429_with_retry_after(self, stalled):
        client = stalled.client
        primary = client.submit(_distinct("run"))
        assert stalled.running.wait(120), "primary never started"
        queued = client.submit(_distinct("q1"))  # fills max_queue=1
        with pytest.raises(ServiceError) as err:
            client.submit(_distinct("q2"))
        exc = err.value
        assert exc.status == 429
        assert exc.fields["reason"] == "queue_full"
        assert exc.fields["max_queue"] == 1
        # Retry-After is a real header, parseable, and within the clamp
        assert exc.retry_after is not None
        assert 1 <= exc.retry_after <= 120
        stats = client.stats()["admission"]
        assert stats["rejected_total"] >= 1
        assert stats["rejected"]["queue_full"] >= 1
        from repro.metrics import validate_exposition

        parsed = validate_exposition(client.metrics())
        assert dict(parsed["repro_service_rejected_total"])[""] >= 1.0

        stalled.release.set()
        assert client.wait(primary["id"])["status"] == "done"
        assert client.wait(queued["id"])["status"] == "done"

    def test_degraded_daemon_serves_warm_refuses_cold(self, tmp_path):
        warm = DaemonHarness(tmp_path)
        try:
            done = warm.client.wait(warm.client.submit(SMALL)["id"])
            assert done["status"] == "done", done["error"]
        finally:
            warm.close()

        degraded = DaemonHarness(tmp_path, degraded=True)
        try:
            # healthz reports the memo-only *reason* (None when serving
            # cold work normally)
            assert degraded.client.health()["memo_only"] == "degraded"
            # every cell warm: served memo-only, nothing executed
            view = degraded.client.wait(degraded.client.submit(SMALL)["id"])
            assert view["status"] == "done", view["error"]
            assert view["memo_only"] is True
            stats = view["stats"]
            assert stats["hits"] == stats["cells"]
            assert stats["cells_executed"] == 0
            # cold work: structured 503, never enqueued
            with pytest.raises(ServiceError) as err:
                degraded.client.submit(OTHER)
            assert err.value.status == 503
            assert err.value.fields["reason"] == "degraded"
            assert err.value.fields["memo_only"] is True
            assert err.value.retry_after is not None
        finally:
            degraded.close()

    def test_breaker_trips_to_memo_only_after_consecutive_failures(
        self, tmp_path, monkeypatch
    ):
        import repro.service.daemon as daemon_mod

        def boom(config):
            raise daemon_mod._RemoteJobError("RuntimeError: injected")

        monkeypatch.setattr(daemon_mod, "_run_job_subprocess", boom)
        harness = DaemonHarness(tmp_path, breaker_threshold=2,
                                breaker_cooldown=3600.0)
        try:
            client = harness.client
            for i in range(2):
                view = client.wait(client.submit(_distinct(i))["id"])
                assert view["status"] == "failed"
                assert view["failure"]["kind"] == "error"
            breaker = client.stats()["breaker"]
            assert breaker["state"] == "open"
            assert breaker["trips"] == 1
            with pytest.raises(ServiceError) as err:
                client.submit(_distinct("post-trip"))
            assert err.value.status == 503
            assert err.value.fields["reason"] == "breaker"
            from repro.metrics import validate_exposition

            parsed = validate_exposition(client.metrics())
            assert dict(parsed["repro_service_breaker_open"])[""] == 1.0
        finally:
            harness.close()


# ---------------------------------------------------------------- deadlines


def _pgid_members(pgid):
    """Live pids whose process group is ``pgid`` (via /proc)."""
    members = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as handle:
                fields = handle.read().rsplit(")", 1)[1].split()
            if int(fields[2]) == pgid:  # field 5 overall: pgrp
                members.append(int(entry))
        except (OSError, IndexError, ValueError):
            continue
    return members


class TestDeadlines:
    def test_deadline_kill_is_structured_and_reaps_the_group(
        self, tmp_path, monkeypatch
    ):
        import repro.service.daemon as daemon_mod

        real = daemon_mod._run_job_subprocess
        pids = []

        def spying(config):
            orig_reap = daemon_mod._reap_job_process

            def reap(proc, grace=2.0):
                pids.append(proc.pid)
                return orig_reap(proc, grace)

            monkeypatch.setattr(daemon_mod, "_reap_job_process", reap)
            return real(config)

        monkeypatch.setattr(daemon_mod, "_run_job_subprocess", spying)
        harness = DaemonHarness(tmp_path)
        try:
            # jobs=2 makes the job subprocess fork grandchildren (pool
            # workers), so group reaping actually has something to reap
            request = dict(_distinct("deadline"), deadline=0.001, jobs=2)
            view = harness.client.wait(harness.client.submit(request)["id"])
            assert view["status"] == "failed"
            assert view["failure"]["kind"] == "deadline"
            assert view["failure"]["deadline_seconds"] == 0.001
            assert view["deadline_seconds"] == 0.001
            assert "deadline" in view["error"]
            counters = harness.client.stats()["metrics"]["counters"]
            assert counters["service.deadline_kills"] >= 1
            assert harness.client.stats()["deadline"]["kills"] >= 1
            # the job led its own process group; nothing survives in it
            assert pids, "shepherd never reaped a process"
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                strays = [p for pid in pids for p in _pgid_members(pid)]
                if not strays:
                    break
                time.sleep(0.1)
            assert strays == [], f"stray pids in killed job groups: {strays}"
        finally:
            harness.close()

    def test_client_deadline_capped_by_daemon(self, tmp_path):
        harness = DaemonHarness(tmp_path, job_deadline=50.0)
        try:
            view = harness.client.submit(
                dict(_distinct("cap"), deadline=99999.0)
            )
            assert view["deadline_seconds"] == 50.0
            # daemon default applies when the client names none
            view = harness.client.submit(_distinct("default"))
            assert view["deadline_seconds"] == 50.0
            with pytest.raises(ServiceError) as err:
                harness.client.submit(dict(_distinct("bad"), deadline=-1))
            assert err.value.status == 400
        finally:
            harness.close()


# ------------------------------------------------------------------- client


class _ScriptedWait(ServiceClient):
    """status() returns queued until a wall deadline, counting calls —
    wait()'s polling behavior measured without a daemon."""

    def __init__(self, busy_seconds):
        super().__init__("http://127.0.0.1:9")
        self._until = time.monotonic() + busy_seconds
        self.polls = 0

    def status(self, job_id):
        self.polls += 1
        state = "done" if time.monotonic() >= self._until else "queued"
        return {"id": job_id, "status": state}


class TestClientResilience:
    def test_wait_poll_backoff_cuts_request_count(self):
        fixed = _ScriptedWait(1.5)
        fixed.wait(1, timeout=30, poll=0.1, poll_cap=0.1)  # old behavior
        backoff = _ScriptedWait(1.5)
        backoff.wait(1, timeout=30)  # 0.1 -> 2.0 exponential default
        assert backoff.polls < fixed.polls / 2, (
            f"backoff {backoff.polls} polls vs fixed {fixed.polls}"
        )

    def test_retry_honors_retry_after_and_is_seeded(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", max_retries=3,
                               backoff_seed=42)
        calls = {"n": 0}

        def flaky(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ServiceError(429, "queue full", retry_after=1.25)
            return {"ok": True}

        slept = []
        monkeypatch.setattr(client, "_call_once", flaky)
        monkeypatch.setattr(
            "repro.service.client.time.sleep", slept.append
        )
        assert client._call("POST", "/v1/jobs", {}) == {"ok": True}
        assert client.retries_performed == 2
        assert len(slept) == 2
        for delay in slept:
            assert delay >= 1.25  # Retry-After is the floor
        # deterministic for a seed, desynchronized across seeds
        again = ServiceClient("http://127.0.0.1:9", backoff_seed=42)
        other = ServiceClient("http://127.0.0.1:9", backoff_seed=7)
        assert slept[0] == again._backoff_delay(0, 1.25)
        assert again._backoff_delay(0, 1.25) != other._backoff_delay(0, 1.25)

    def test_non_retryable_status_raises_immediately(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", max_retries=5)

        def nope(method, path, payload=None):
            raise ServiceError(400, "bad request")

        monkeypatch.setattr(client, "_call_once", nope)
        with pytest.raises(ServiceError):
            client._call("GET", "/healthz")
        assert client.retries_performed == 0


# ------------------------------------------------------------------- drain


class TestGracefulDrain:
    def test_sigterm_drain_contract(self, tmp_path, monkeypatch):
        """One running + two queued at drain time: the running job
        completes within the grace, the queued jobs become structured
        shed failures served as 503-on-poll, the trace log is flushed
        and parseable, and the lease row is released."""
        import asyncio

        import repro.service.daemon as daemon_mod

        real = daemon_mod._run_job_subprocess
        running = threading.Event()
        release = threading.Event()

        def slow(config):
            payload = real(config)
            running.set()
            release.wait(60)
            return payload

        monkeypatch.setattr(daemon_mod, "_run_job_subprocess", slow)
        trace_log = str(tmp_path / "drain-trace.jsonl")
        harness = DaemonHarness(tmp_path, workers=1, trace_log=trace_log,
                                drain_grace=15.0)
        client = ServiceClient(harness.url)
        try:
            active = client.submit(_distinct("active"))
            assert running.wait(120), "job never started"
            queued = [client.submit(_distinct(f"q{i}")) for i in (1, 2)]

            drain_future = asyncio.run_coroutine_threadsafe(
                harness.service.drain(), harness.loop
            )
            # admission stops the moment drain begins
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    client.submit(_distinct("late"))
                except ServiceError as exc:
                    assert exc.status == 503
                    assert exc.fields["reason"] == "draining"
                    break
                time.sleep(0.05)
            else:
                pytest.fail("submissions never started draining")

            # queued jobs were shed with structured, attributed failures
            for job in queued:
                view = client.status(job["id"])
                assert view["status"] == "failed"
                assert view["failure"]["kind"] == "shed"
                with pytest.raises(ServiceError) as err:
                    client.result(job["id"])
                assert err.value.status == 503
                assert err.value.retry_after is not None
                assert err.value.fields["failure"]["kind"] == "shed"

            release.set()
            drain_future.result(60)

            # the running job was allowed to finish inside the grace
            assert harness.service._jobs[active["id"]]["status"] == "done"
            # trace sinks were flushed: every line parses, and the drain
            # left job spans on disk
            with open(trace_log) as handle:
                spans = [json.loads(line) for line in handle]
            assert spans, "trace log empty after drain"
            # the lease row was released on the way out
            with WriterLease(harness.store_path, holder="probe") as probe:
                row = probe.info()
            assert row["holder"] is None
        finally:
            release.set()
            client.close()
            harness.loop.call_soon_threadsafe(harness.loop.stop)
            harness.thread.join(10)
            harness.loop.close()


# -------------------------------------------------------------------- lease


class TestWriterLease:
    def test_acquire_renew_release_cycle(self, tmp_path):
        path = str(tmp_path / "lease.sqlite")
        a = WriterLease(path, holder="a", ttl=30.0)
        b = WriterLease(path, holder="b", ttl=30.0)
        try:
            assert a.try_acquire() is True
            token = a.token
            assert a.held and token >= 1
            assert b.try_acquire() is False and not b.held
            assert a.renew() is True
            assert a.token == token  # renewal keeps the fencing token
            a.release()
            assert not a.held
            assert b.try_acquire() is True
            assert b.token == token + 1  # ownership change bumps it
        finally:
            a.close()
            b.close()

    def test_expired_lease_is_taken_over(self, tmp_path):
        path = str(tmp_path / "lease.sqlite")
        a = WriterLease(path, holder="a", ttl=30.0)
        b = WriterLease(path, holder="b", ttl=30.0)
        try:
            assert a.try_acquire(now=1000.0)
            assert not b.try_acquire(now=1010.0)  # still live
            assert b.try_acquire(now=1031.0)  # expired: takeover
            assert b.token == a.token + 1
            assert a.renew(now=1032.0) is False  # loser learns on renew
            assert not a.held
        finally:
            a.close()
            b.close()

    def test_backoff_delay_is_deterministic_and_capped(self, tmp_path):
        path = str(tmp_path / "lease.sqlite")
        a = WriterLease(path, holder="a")
        b = WriterLease(path, holder="b")
        try:
            assert a.backoff_delay(3) == a.backoff_delay(3)
            assert a.backoff_delay(3) != b.backoff_delay(3)  # jittered
            assert a.backoff_delay(50) <= 30.0
        finally:
            a.close()
            b.close()

    def test_stale_writer_append_refused_inside_transaction(self, tmp_path):
        """The fencing acceptance test: a writer that lost the lease has
        its append aborted by the token check inside record_collection's
        transaction — nothing it wrote survives."""
        path = str(tmp_path / "exp.sqlite")
        lease = WriterLease(path, holder="victim", ttl=30.0)
        thief = WriterLease(path, holder="thief", ttl=30.0)
        try:
            assert lease.try_acquire()
            with ExperimentStore(path) as store:
                store.set_write_fence("victim", lease.token)
                append_run(store, git_sha="fenced-ok")  # fence holds: fine
                thief.steal()  # rival takes over between transactions
                with pytest.raises(LeaseLost):
                    append_run(store, git_sha="fenced-stale")
            with ExperimentStore(path, read_only=True) as check:
                shas = [row["git_sha"] for row in check.runs()]
            assert "fenced-ok" in shas
            assert "fenced-stale" not in shas
        finally:
            lease.close()
            thief.close()

    def test_two_daemons_one_lease_holder_with_takeover(self, tmp_path):
        first = DaemonHarness(tmp_path, lease_ttl=2.0)
        second = None
        try:
            # warm the shared store so the lease loser can still serve
            done = first.client.wait(first.client.submit(SMALL)["id"])
            assert done["status"] == "done", done["error"]

            second = DaemonHarness(tmp_path, lease_ttl=2.0)
            held = [h.client.stats()["lease"]["held"] for h in (first, second)]
            assert held == [True, False], "exactly one daemon holds the lease"

            # the loser is memo-only: warm work served, cold work refused
            view = second.client.wait(second.client.submit(SMALL)["id"])
            assert view["status"] == "done" and view["memo_only"] is True
            with pytest.raises(ServiceError) as err:
                second.client.submit(OTHER)
            assert err.value.status == 503
            assert err.value.fields["reason"] == "lease"

            # holder goes away; the survivor takes over within a few TTLs
            first.close()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if second.client.stats()["lease"]["held"]:
                    break
                time.sleep(0.25)
            else:
                pytest.fail("surviving daemon never took the lease over")
            done = second.client.wait(second.client.submit(OTHER)["id"])
            assert done["status"] == "done", done["error"]
        finally:
            if second is not None:
                second.close()
