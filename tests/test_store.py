"""The SQLite experiment store: migrations, append-only enforcement,
memoization identity, import/export round-trips, concurrency and crash
consistency."""

import json
import multiprocessing
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.lang.compiler import COMPILE_STATS
from repro.metrics import baseline
from repro.store import (
    MIGRATIONS,
    RECORD_SCHEMA,
    SCHEMA_VERSION,
    ExperimentStore,
    StoreError,
    StoreReadPool,
    apply_migrations,
    cell_key,
    entry_from_record,
    run_from_record,
    run_to_record,
    schema_version,
)


def fake_record(bench="micro.arith", profile="clr-1.1", cycles=1000):
    return {
        "schema": RECORD_SCHEMA,
        "benchmark": bench,
        "profile": profile,
        "clock_hz": 1.0e9,
        "total_cycles": cycles,
        "allocated_bytes": 64,
        "instructions": cycles // 2,
        "gc_collections": 0,
        "gc_live_objects": 3,
        "stdout": ["ok"],
        "metrics": {"counters": {"vm.instructions": float(cycles // 2)},
                    "gauges": {"heap.bytes": 64.0}, "histograms": {}},
        "faults": None,
        "sections": {
            "main": {"cycles": cycles, "ops": 10, "flops": 0,
                     "ops_per_sec": 123.5, "mflops": 0.0,
                     "seconds": 0.25, "results": [42]},
        },
    }


def append_run(store, git_sha="aaaa", bench="micro.arith",
               profiles=("clr-1.1", "native-c"), cycles=(1000, 250)):
    novel = []
    cell_keys = {}
    for profile, cyc in zip(profiles, cycles):
        key = cell_key(bench, profile, {"N": 4})
        cell_keys[f"{bench}@{profile}"] = key
        novel.append({"key": key, "benchmark": bench, "profile": profile,
                      "params": {"N": 4},
                      "record": fake_record(bench, profile, cyc)})
    return store.record_collection(
        git_sha=git_sha, scale=0.0, profiles=list(profiles),
        suite=[(bench, {"N": 4})], cell_keys=cell_keys, novel=novel,
    )


class TestMigrations:
    def test_fresh_store_is_at_head(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            assert store.version == SCHEMA_VERSION

    @pytest.mark.parametrize("start", [v for v, _ in MIGRATIONS])
    def test_upgrade_from_every_historical_version(self, tmp_path, start):
        path = str(tmp_path / "e.sqlite")
        conn = sqlite3.connect(path)
        apply_migrations(conn, target=start)
        assert schema_version(conn) == start
        conn.close()
        # opening the store applies the remaining migrations
        with ExperimentStore(path) as store:
            assert store.version == SCHEMA_VERSION
            append_run(store)
        # idempotent: a second open re-applies nothing and data survives
        with ExperimentStore(path) as store:
            assert store.version == SCHEMA_VERSION
            assert store.counts()["cells"] == 2

    def test_newer_store_than_build_is_refused(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        ExperimentStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE schema_meta SET version = ?",
                         (SCHEMA_VERSION + 1,))
        conn.close()
        with pytest.raises(StoreError):
            ExperimentStore(path)


class TestAppendOnly:
    @pytest.mark.parametrize("statement", [
        "UPDATE cells SET record = '{}' WHERE id = 1",
        "DELETE FROM cells WHERE id = 1",
        "UPDATE runs SET git_sha = 'rewritten' WHERE id = 1",
        "DELETE FROM runs WHERE id = 1",
    ])
    def test_mutation_is_rejected(self, tmp_path, statement):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as store:
            append_run(store)
        conn = sqlite3.connect(path)
        with pytest.raises(sqlite3.IntegrityError):
            conn.execute(statement)
        conn.close()


class TestCellKey:
    def test_param_types_do_not_collide(self):
        keys = {
            cell_key("micro.arith", "clr-1.1", {"N": 1}),
            cell_key("micro.arith", "clr-1.1", {"N": 1.0}),
            cell_key("micro.arith", "clr-1.1", {"N": True}),
        }
        assert len(keys) == 3

    def test_dispatch_none_is_classic(self):
        assert cell_key("b", "p", dispatch=None) == cell_key("b", "p", dispatch="classic")
        assert cell_key("b", "p", dispatch="threaded") != cell_key("b", "p")

    def test_profile_benchmark_seed_separate(self):
        assert cell_key("b", "p1") != cell_key("b", "p2")
        assert cell_key("b1", "p") != cell_key("b2", "p")
        assert cell_key("b", "p", seed=1) != cell_key("b", "p")


class TestCodec:
    def test_record_round_trip_and_entry_agreement(self):
        from repro.harness.runner import Runner
        from repro.runtimes import get_profile

        suite = baseline.resolve_suite("micro.arith", 0.0)
        name, params = suite[0]
        runner = Runner(profiles=[get_profile("clr-1.1")])
        run = runner.run(name, params or None, metrics=True)["clr-1.1"]
        record = run_to_record(run)
        # the record survives a JSON wire trip exactly
        wired = json.loads(json.dumps(record))
        rebuilt = run_from_record(wired)
        assert run_to_record(rebuilt) == record
        # and the artifact entry derived either way is identical
        assert entry_from_record(wired) == baseline.entry_from_run(run)


class TestMemoization:
    def test_warm_collection_serves_all_cells_with_zero_compiles(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "e.sqlite"))
        profiles = baseline.resolve_profiles("clr-1.1,native-c")
        suite = baseline.resolve_suite("micro.arith,grande.sieve", 0.0)
        cold = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                git_sha="cafe", store=store)
        assert baseline.collect.last_store["misses"] == 4
        before = COMPILE_STATS["compile_source_calls"]
        warm = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                git_sha="cafe", store=store)
        assert COMPILE_STATS["compile_source_calls"] == before, (
            "a warm store collection must not compile anything"
        )
        stats = baseline.collect.last_store
        assert stats["hits"] == 4 and stats["misses"] == 0
        # zero guest cycles: every cell was merged from the memo
        assert baseline.collect.last_report.memoized == 4
        direct = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                  git_sha="cafe")
        blob = lambda a: json.dumps(a, sort_keys=True)
        assert blob(cold) == blob(direct)
        assert blob(warm) == blob(direct)
        store.close()

    def test_store_with_fault_plan_is_rejected(self, tmp_path):
        from repro.faults import FaultPlan

        store = ExperimentStore(str(tmp_path / "e.sqlite"))
        with pytest.raises(ValueError):
            baseline.collect(
                profiles=baseline.resolve_profiles("clr-1.1"),
                suite=baseline.resolve_suite("micro.arith", 0.0),
                scale=0.0, git_sha="x", store=store,
                plan=FaultPlan(seed=1, sites=("alloc_oom",)),
            )
        store.close()

    def test_imported_records_are_never_served(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "e.sqlite"))
        profiles = baseline.resolve_profiles("clr-1.1")
        suite = baseline.resolve_suite("micro.arith", 0.0)
        artifact = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                    git_sha="cafe")
        store.import_artifact(artifact)
        baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                         git_sha="cafe", store=store)
        # partial imported records must not satisfy the memo lookup
        assert baseline.collect.last_store["hits"] == 0
        store.close()


class TestImportExport:
    def test_export_after_import_is_byte_identical(self, tmp_path):
        profiles = baseline.resolve_profiles("clr-1.1,native-c")
        suite = baseline.resolve_suite("micro.arith", 0.0)
        artifact = baseline.collect(profiles=profiles, suite=suite, scale=0.0,
                                    git_sha="feedface")
        artifact["seq"] = 7
        src = tmp_path / "BENCH_7.json"
        with open(src, "w") as handle:
            json.dump(artifact, handle, indent=1, sort_keys=True)
            handle.write("\n")
        db = str(tmp_path / "e.sqlite")
        out = str(tmp_path / "exported.json")
        env = dict(os.environ, PYTHONPATH="src")
        subprocess.run(
            [sys.executable, "-m", "repro.store.cli", "--db", db,
             "import", str(src)],
            check=True, env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        subprocess.run(
            [sys.executable, "-m", "repro.store.cli", "--db", db,
             "export", "--seq", "7", "--out", out],
            check=True, env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        assert open(out, "rb").read() == open(src, "rb").read()

    def test_round_trip_preserves_failures_block(self, tmp_path):
        artifact = baseline.collect(
            profiles=baseline.resolve_profiles("clr-1.1"),
            suite=baseline.resolve_suite("micro.arith", 0.0),
            scale=0.0, git_sha="feedface",
        )
        artifact["seq"] = 1
        artifact["failures"] = [
            {"index": 3, "benchmark": "micro.exception", "profile": "mono-0.23",
             "status": "fault", "error": "OutOfMemoryException", "fired": True},
        ]
        blob = json.dumps(artifact, indent=1, sort_keys=True) + "\n"
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            run_id = store.import_artifact(json.loads(blob))
            exported = store.export_artifact(run_id)
        assert json.dumps(exported, indent=1, sort_keys=True) + "\n" == blob

    def test_import_rejects_foreign_schema(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            with pytest.raises(StoreError):
                store.import_artifact({"schema": "something/else"})


def _writer(path, tag, count):
    with ExperimentStore(path) as store:
        for i in range(count):
            append_run(store, git_sha=f"{tag}-{i}")


class TestConcurrencyAndCrashes:
    def test_two_interleaved_writers_both_land(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        ExperimentStore(path).close()
        procs = [
            multiprocessing.Process(target=_writer, args=(path, tag, 8))
            for tag in ("left", "right")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        with ExperimentStore(path) as store:
            shas = [r["git_sha"] for r in store.runs()]
            assert sorted(shas) == sorted(
                [f"left-{i}" for i in range(8)] + [f"right-{i}" for i in range(8)]
            )
            assert store.counts()["cells"] == 32

    def test_kill_mid_commit_leaves_store_readable(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as store:
            append_run(store, git_sha="survivor")
        script = (
            "import sqlite3, os, sys\n"
            "conn = sqlite3.connect(sys.argv[1])\n"
            "conn.execute('BEGIN')\n"
            "conn.execute(\"INSERT INTO runs (git_sha, scale, bench_schema,"
            " profiles, suite, cell_keys, source, store_hits, created_unix)"
            " VALUES ('torn', 0.0, 's', '[]', '[]', '{}', 'live', 0, 0)\")\n"
            "os._exit(9)\n"  # die inside the open transaction
        )
        proc = subprocess.run([sys.executable, "-c", script, path])
        assert proc.returncode == 9
        with ExperimentStore(path) as store:
            shas = [r["git_sha"] for r in store.runs()]
            assert shas == ["survivor"], "the torn transaction must roll back"
            append_run(store, git_sha="after")  # still writable


class TestBaselineSelection:
    def test_latest_run_filters(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            assert store.latest_run() is None
            first = append_run(store, git_sha="aaa")
            second = append_run(store, git_sha="bbb")
            third = append_run(store, git_sha="bbb")
            assert store.latest_run() == third
            assert store.latest_run(git_sha="bbb") == third
            assert store.latest_run(git_sha="aaa") == first
            # a rerun of HEAD gates against the last *different* revision
            assert store.latest_run(exclude_sha="bbb") == first
            assert store.latest_run(git_sha="zzz") is None
            assert second < third

    def test_resolve_cells_follows_memo_keys(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            append_run(store, git_sha="cold", cycles=(1000, 250))
            # a fully-warm run records no cells of its own, only the keys
            cell_keys = {
                f"micro.arith@{profile}": cell_key("micro.arith", profile,
                                                   {"N": 4})
                for profile in ("clr-1.1", "native-c")
            }
            warm = store.record_collection(
                git_sha="warm", scale=0.0,
                profiles=["clr-1.1", "native-c"],
                suite=[("micro.arith", {"N": 4})],
                cell_keys=cell_keys, novel=[], store_hits=2,
            )
            resolved = store.resolve_cells(warm)
            assert set(resolved) == {("micro.arith", "clr-1.1"),
                                     ("micro.arith", "native-c")}
            assert resolved[("micro.arith", "clr-1.1")]["total_cycles"] == 1000
            assert resolved[("micro.arith", "native-c")]["total_cycles"] == 250

    def test_unknown_run_raises(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            with pytest.raises(StoreError):
                store.resolve_cells(99)
            with pytest.raises(StoreError):
                store.attribute(1, 99)


class TestAttribution:
    def test_injected_regression_names_cell_and_movers(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            base = append_run(store, git_sha="base", cycles=(1000, 250))
            # clr-1.1 grows 10% (and with it vm.instructions); native-c flat
            new = append_run(store, git_sha="new", cycles=(1100, 250))
            attribution = store.attribute(base, new)
        assert attribution["base_sha"] == "base"
        assert attribution["new_sha"] == "new"
        assert attribution["flagged_cells"] == ["micro.arith@clr-1.1"]
        cell = next(b for b in attribution["cells"]
                    if b["profile"] == "clr-1.1")
        delta = cell["deltas"]["total_cycles"]
        assert delta["flagged"] and delta["rel"] == pytest.approx(0.10)
        assert delta["base"] == 1000 and delta["new"] == 1100
        # the metric-snapshot evidence names what moved inside the cell
        assert [m["metric"] for m in cell["movers"]] == ["vm.instructions"]
        assert cell["movers"][0]["rel"] == pytest.approx(0.10)
        # the unflagged sibling carries deltas but no movers
        flat = next(b for b in attribution["cells"]
                    if b["profile"] == "native-c")
        assert not flat["flagged"] and flat["movers"] == []
        # the anchored ratio drifted (two-sided: improvement counts too)
        assert attribution["flagged_ratios"] == ["micro.arith@native-c"]
        (ratio,) = attribution["ratios"]
        assert ratio["base_ratio"] == pytest.approx(0.25)
        assert ratio["new_ratio"] == pytest.approx(250 / 1100)
        assert ratio["rel"] == pytest.approx(-1 / 11)

    def test_identical_runs_flag_nothing(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            base = append_run(store, git_sha="one")
            new = append_run(store, git_sha="two")
            attribution = store.attribute(base, new)
        assert attribution["flagged_cells"] == []
        assert attribution["flagged_ratios"] == []
        assert all(not block["flagged"] for block in attribution["cells"])

    def test_within_tolerance_growth_is_not_flagged(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            base = append_run(store, cycles=(1000, 250))
            new = append_run(store, cycles=(1010, 250))  # +1% < 2% bound
            attribution = store.attribute(base, new)
        assert attribution["flagged_cells"] == []
        # ...and a custom tolerance tightens the gate
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            tightened = store.attribute(base, new,
                                        tolerances={"cycles": 0.005})
        assert tightened["flagged_cells"] == ["micro.arith@clr-1.1"]

    def test_coverage_changes_are_reported(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            base = append_run(store, bench="micro.arith", git_sha="b1")
            new = append_run(store, bench="grande.sieve", git_sha="b2")
            attribution = store.attribute(base, new)
        assert attribution["cells"] == [] and attribution["ratios"] == []
        assert attribution["only_in_base"] == [
            "micro.arith@clr-1.1", "micro.arith@native-c"]
        assert attribution["only_in_new"] == [
            "grande.sieve@clr-1.1", "grande.sieve@native-c"]


class TestReportCli:
    def _seed(self, db):
        with ExperimentStore(db) as store:
            append_run(store, git_sha="r1", cycles=(1000, 250))
            append_run(store, git_sha="r2", cycles=(1000, 200))
            append_run(store, git_sha="r3", cycles=(1100, 200))

    def test_sparkline_shapes(self):
        from repro.store.cli import SPARK_BLOCKS, sparkline

        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == SPARK_BLOCKS[3] * 2  # flat != bottom
        ramp = sparkline([0.0, 0.5, 1.0])
        assert ramp[0] == SPARK_BLOCKS[0] and ramp[-1] == SPARK_BLOCKS[-1]

    def test_report_renders_trend_ladder(self, tmp_path, capsys):
        from repro.store.cli import SPARK_BLOCKS, main as store_main

        db = str(tmp_path / "e.sqlite")
        self._seed(db)
        assert store_main(["--db", db, "report"]) == 0
        out = capsys.readouterr().out
        assert "anchored-ratio trend" in out
        assert "micro.arith/native-c" in out
        assert any(block in out for block in SPARK_BLOCKS)
        assert "over 3 runs" in out
        # the raw-cycles ladder is a different lens over the same runs
        assert store_main(["--db", db, "report", "--cycles"]) == 0
        out = capsys.readouterr().out
        assert "cycles trend" in out and " cycles " in out
        assert "micro.arith/clr-1.1" in out  # the anchor rows appear here

    def test_report_attributes_injected_regression(self, tmp_path, capsys):
        from repro.store.cli import main as store_main

        db = str(tmp_path / "e.sqlite")
        self._seed(db)
        assert store_main(["--db", db, "report",
                           "--attribute", "1", "3"]) == 0
        out = capsys.readouterr().out
        assert "attribution: run 1" in out
        assert "REGRESSED micro.arith@clr-1.1" in out
        assert "total_cycles: 1000 -> 1100 (+10.00%)" in out
        assert "mover vm.instructions" in out
        assert "RATIO DRIFT micro.arith@native-c" in out

    def test_report_clean_pair_says_so(self, tmp_path, capsys):
        from repro.store.cli import main as store_main

        db = str(tmp_path / "e.sqlite")
        with ExperimentStore(db) as store:
            append_run(store, git_sha="r1")
            append_run(store, git_sha="r2")
        assert store_main(["--db", db, "report",
                           "--attribute", "1", "2"]) == 0
        assert "no cell exceeds the tolerance policy" in capsys.readouterr().out

    def test_report_json_contract(self, tmp_path, capsys):
        from repro.store.cli import main as store_main

        db = str(tmp_path / "e.sqlite")
        self._seed(db)
        assert store_main(["--db", db, "report", "--json",
                           "--attribute", "1", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"rows", "attribution"}
        assert payload["attribution"]["flagged_cells"] == [
            "micro.arith@clr-1.1"]
        assert payload["rows"]  # trend rows ride along for tooling

    def test_report_unknown_run_is_a_clean_error(self, tmp_path):
        from repro.store.cli import main as store_main

        db = str(tmp_path / "e.sqlite")
        self._seed(db)
        with pytest.raises(SystemExit, match="no run"):
            store_main(["--db", db, "report", "--attribute", "1", "99"])


class TestQueries:
    def test_trend_ratio_ladder(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            append_run(store, git_sha="r1", cycles=(1000, 250))
            append_run(store, git_sha="r2", cycles=(1000, 200))
            rows = store.trend(benchmark="micro.arith", profile="native-c")
            assert [row["ratio"] for row in rows] == [0.25, 0.2]
            base_rows = store.trend(profile="clr-1.1")
            assert all(row["ratio"] is None for row in base_rows)

    def test_metric_trend(self, tmp_path):
        with ExperimentStore(str(tmp_path / "e.sqlite")) as store:
            append_run(store, git_sha="r1", cycles=(1000, 250))
            rows = store.metric_trend("vm.instructions", benchmark="micro.arith")
            assert [row["value"] for row in rows] == [500.0, 125.0]


class TestWalAndReadOnly:
    def test_store_opens_in_wal_mode(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as store:
            assert store.journal_mode == "wal"
        # the mode is persistent: a raw reopen still reports WAL
        conn = sqlite3.connect(path)
        try:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        finally:
            conn.close()

    def test_read_only_reader_sees_committed_writes(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as writer:
            append_run(writer, git_sha="r1")
            with ExperimentStore(path, read_only=True) as reader:
                assert len(reader.runs()) == 1
                # a write landing while the reader is open becomes
                # visible on its next query (WAL snapshot semantics)
                append_run(writer, git_sha="r2", cycles=(1000, 200))
                assert len(reader.runs()) == 2

    def test_read_only_refuses_writes_and_missing_files(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with pytest.raises(StoreError, match="read-only"):
            ExperimentStore(path, read_only=True)  # refuses to create
        with ExperimentStore(path) as writer:
            append_run(writer)
        with ExperimentStore(path, read_only=True) as reader:
            with pytest.raises(StoreError, match="read-only"):
                append_run(reader)

    def test_read_only_refuses_future_schema(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as store:
            store._conn.execute(
                "UPDATE schema_meta SET version = ?", (SCHEMA_VERSION + 1,)
            )
            store._conn.commit()
        with pytest.raises(StoreError, match="newer"):
            ExperimentStore(path, read_only=True)


class TestStoreReadPool:
    def test_connections_are_reused_and_counted(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as writer:
            append_run(writer)
        pool = StoreReadPool(path, size=2)
        try:
            for _ in range(3):
                with pool.connection() as store:
                    assert store.read_only
                    assert len(store.runs()) == 1
            stats = pool.stats()
            assert stats["created"] == 1
            assert stats["reused"] == 2
            assert stats["idle"] == 1
        finally:
            pool.close()

    def test_burst_beyond_size_degrades_without_blocking(self, tmp_path):
        path = str(tmp_path / "e.sqlite")
        with ExperimentStore(path) as writer:
            append_run(writer)
        pool = StoreReadPool(path, size=1)
        try:
            first = pool.acquire()
            second = pool.acquire()  # over the cap: opened fresh, not queued
            assert pool.stats()["created"] == 2
            pool.release(first)
            pool.release(second)  # idle cap reached — closed, not pooled
            assert pool.stats()["idle"] == 1
        finally:
            pool.close()
        with pytest.raises(StoreError, match="closed"):
            pool.acquire()
