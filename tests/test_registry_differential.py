"""Registry-wide differential test: every single-threaded benchmark computes
identical recorded results on the reference interpreter and on two extreme
profile tiers of the measured engine (best JIT vs no JIT).

This is the strongest whole-system invariant: every optimization pass, cost
model and engine behaviour may change cycles, never values.
"""

import pytest

from repro.benchmarks import all_benchmarks, get
from repro.lang import compile_source
from repro.runtimes import CLR11, NATIVE_C, SSCLI10
from repro.vm.interpreter import Interpreter
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

#: benchmarks needing real threads (the interpreter is single-threaded)
THREADED = {
    "threads.barrier", "threads.forkjoin", "threads.sync", "threads.thread",
    "threads.lock", "scimark.montecarlo_mt", "scimark.sor_mt",
}

#: smaller-than-default sizes to keep the triple execution quick
FAST = {
    "micro.arith": {"Reps": 400},
    "micro.assign": {"Reps": 400},
    "micro.cast": {"Reps": 400},
    "micro.create": {"Reps": 200},
    "micro.exception": {"Reps": 40},
    "micro.loop": {"Reps": 2000},
    "micro.math": {"Reps": 300},
    "micro.method": {"Reps": 300},
    "micro.serial": {"Reps": 3, "Nodes": 10},
    "clispec.boxing": {"Reps": 300},
    "clispec.matrix": {"N": 10, "Reps": 2},
    "scimark.fft": {"N": 32},
    "scimark.sor": {"N": 12, "Iters": 2},
    "scimark.montecarlo": {"Samples": 300},
    "scimark.sparse": {"N": 40, "NZ": 200, "Reps": 2},
    "scimark.lu": {"N": 10},
    "grande.fibonacci": {"N": 12},
    "grande.sieve": {"Limit": 1000},
    "grande.hanoi": {"Disks": 8},
    "grande.heapsort": {"N": 300},
    "grande.crypt": {"Words": 64},
    "grande.moldyn": {"MM": 2, "Steps": 1},
    "grande.euler": {"N": 6, "Steps": 1},
    "grande.search": {"Depth": 3},
    "grande.raytracer": {"Size": 6, "Grid": 2},
}

SERIAL_BENCHMARKS = sorted(
    b.name for b in all_benchmarks() if b.name not in THREADED
)


@pytest.mark.parametrize("name", SERIAL_BENCHMARKS)
def test_interpreter_and_both_engine_extremes_agree(name):
    bench = get(name)
    source = bench.build_source(FAST.get(name))
    assembly = compile_source(source, assembly_name=name)

    interp = Interpreter(LoadedAssembly(assembly))
    interp.run()
    interp.bench.require_valid()
    reference = {
        s: tuple(sec.results) for s, sec in interp.bench.sections.items()
    }

    for profile in (NATIVE_C, SSCLI10):
        machine = Machine(LoadedAssembly(assembly), profile)
        machine.run()
        machine.bench.require_valid()
        got = {
            s: tuple(sec.results) for s, sec in machine.bench.sections.items()
        }
        assert got == reference, f"{name} diverged on {profile.name}"


#: smaller threaded sizes for the double execution
FAST_THREADED = {
    "threads.barrier": {"Threads": 3, "Crossings": 6},
    "threads.forkjoin": {"Reps": 3, "Threads": 3},
    "threads.sync": {"Threads": 3, "Reps": 20},
    "threads.thread": {"Reps": 6},
    "threads.lock": {"Reps": 60, "ContendedReps": 20},
    "scimark.montecarlo_mt": {"Samples": 400, "Threads": 3},
    "scimark.sor_mt": {"N": 12, "Iters": 2, "Threads": 3},
}


@pytest.mark.parametrize("name", sorted(THREADED))
def test_threaded_benchmarks_are_deterministic(name):
    """The paper's timing claims need repeatable runs even under the
    machine's simulated preemptive scheduler: two executions of the same
    image on the same profile must produce byte-identical recorded results
    AND identical cycle counts, or cross-runtime comparisons would be
    noise."""
    bench = get(name)
    source = bench.build_source(FAST_THREADED.get(name))
    assembly = compile_source(source, assembly_name=name)

    def observe():
        machine = Machine(LoadedAssembly(assembly), CLR11)
        machine.run()
        machine.bench.require_valid()
        return {
            s: (tuple(sec.results), sec.total_cycles, sec.ops)
            for s, sec in machine.bench.sections.items()
        }

    first = observe()
    second = observe()
    assert first == second, f"{name}: non-deterministic across identical runs"
