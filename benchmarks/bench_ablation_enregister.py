"""Ablation: the CLR 1.1 64-local enregistration limit (paper section 5).

    "the CLR 1.0 and 1.1 JITs only consider a maximum of 64 local variables
    for enregistration (tracking local variables for storage in registers),
    and all the remaining variable will be located in the stack frame."

A kernel whose hot loop runs over locals declared *after* 70 padding locals
loses enregistration on stock CLR 1.1 but not on a derived profile with the
limit removed.
"""

from repro.lang import compile_source
from repro.runtimes import CLR11
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

_PAD = "\n        ".join(f"int pad{i} = {i};" for i in range(70))
_PAD_USE = " + ".join(f"pad{i}" for i in range(70))

MANY_LOCALS = f"""
class Kernel {{
    static int Main() {{
        {_PAD}
        int a = 1; int b = 2; int c = 3;
        for (int i = 0; i < 30000; i++) {{ a = b + c; b = c + a; c = a + b; }}
        int guard = {_PAD_USE};
        return a + b + c + guard;
    }}
}}
"""


def _cycles(profile):
    machine = Machine(LoadedAssembly(compile_source(MANY_LOCALS)), profile)
    result = machine.run()
    return machine.cycles, result


def run_ablation():
    limited_cycles, r1 = _cycles(CLR11)
    unlimited = CLR11.with_jit(max_tracked_locals=10_000)
    unlimited_cycles, r2 = _cycles(unlimited)
    assert r1 == r2
    return {
        "clr_64limit_cycles": limited_cycles,
        "clr_unlimited_cycles": unlimited_cycles,
        "cliff_penalty": limited_cycles / unlimited_cycles - 1.0,
    }


def test_enregistration_cliff(benchmark):
    stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 4) for k, v in stats.items()})
    # the hot locals past slot 64 fall out of registers: a real penalty
    assert stats["cliff_penalty"] > 0.3, stats
