"""The Grande/DHPC application suite (paper Table 4 rows outside SciMark):
per-kernel ops/sec on the four micro-section VMs."""

from conftest import record_series

from repro.harness.results import ExperimentResult

GRANDE = (
    "grande.fibonacci", "grande.sieve", "grande.hanoi", "grande.heapsort",
    "grande.crypt", "grande.moldyn", "grande.euler", "grande.search",
    "grande.raytracer",
)


def run_grande_suite(runner):
    result = ExperimentResult(
        experiment="grande-suite",
        title="Table 4 applications: Grande/DHPC kernels (ops/sec)",
        unit="ops/sec",
    )
    for name in GRANDE:
        runs = runner.run(name)
        sample = next(iter(runs.values()))
        for section in sample.sections:
            result.series[section] = {
                p: r.section(section).ops_per_sec for p, r in runs.items()
            }
    return result


def test_grande_suite(benchmark, micro_runner):
    result = benchmark.pedantic(
        run_grande_suite, args=(micro_runner,), rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    # the JIT-quality ladder holds on application code too
    for section, per_profile in result.series.items():
        assert per_profile["sscli-1.0"] <= per_profile["clr-1.1"], section
