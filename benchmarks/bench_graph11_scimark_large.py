"""Regenerates paper Graph 11 (SciMark kernels vs C, large memory model)."""

from conftest import record_series

from repro.harness.experiments import graph10_11_kernels


def test_graph11_scimark_large(benchmark, full_runner):
    result = benchmark.pedantic(
        graph10_11_kernels.run,
        kwargs={"scale": 1.0, "runner": full_runner, "model": "large"},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
