"""Ablation: the paper's bounds-check elimination experiment (section 5).

    "In CLR 1.1, we can easily force this optimization by using the
    array.Length property as the bounds in the loop; if we introduce this
    for example in the sparse matrix multiply kernel of the SciMark
    benchmark instead of using a separate variable, we see an instant
    performance improvement of 15% or more."

Two variants of a sparse-style inner loop — one bounded by a local, one by
``val.Length`` — run on CLR 1.1 and on a derived profile with the optimizer
disabled, isolating the pass itself.
"""

from repro.lang import compile_source
from repro.runtimes import CLR11, MONO023
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

LOCAL_BOUND = """
class Kernel {
    static double Main() {
        int n = 2000;
        double[] val = new double[n];
        double[] x = new double[n];
        int[] col = new int[n];
        for (int i = 0; i < n; i++) { val[i] = i * 0.5; x[i] = i * 0.25; col[i] = (i * 7) % n; }
        double total = 0.0;
        for (int reps = 0; reps < 30; reps++) {
            for (int i = 0; i < n; i++) { total += x[col[i]] * val[i]; }
        }
        return total;
    }
}
"""

LENGTH_BOUND = LOCAL_BOUND.replace(
    "for (int i = 0; i < n; i++) { total += x[col[i]] * val[i]; }",
    "for (int i = 0; i < val.Length; i++) { total += x[col[i]] * val[i]; }",
)


def _cycles(source, profile):
    machine = Machine(LoadedAssembly(compile_source(source)), profile)
    result = machine.run()
    return machine.cycles, result


def run_ablation():
    local_cycles, r1 = _cycles(LOCAL_BOUND, CLR11)
    length_cycles, r2 = _cycles(LENGTH_BOUND, CLR11)
    assert r1 == r2, "variants must compute identical sums"
    speedup = local_cycles / length_cycles - 1.0

    # same rewrite on a JIT without the optimization: no effect expected
    mono_local, _ = _cycles(LOCAL_BOUND, MONO023)
    mono_length, _ = _cycles(LENGTH_BOUND, MONO023)
    mono_delta = abs(mono_local / mono_length - 1.0)
    return {
        "clr_local_cycles": local_cycles,
        "clr_length_cycles": length_cycles,
        "clr_speedup": speedup,
        "mono_delta": mono_delta,
    }


def test_boundscheck_ablation(benchmark):
    stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 4) for k, v in stats.items()})
    # paper: "an instant performance improvement of 15% or more"
    assert stats["clr_speedup"] >= 0.10, stats
    # and the rewrite is roughly neutral where the JIT cannot exploit it
    assert stats["mono_delta"] < 0.10, stats
