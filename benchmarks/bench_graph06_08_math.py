"""Regenerates paper Graphs 6-8 (the 26 Math library routines)."""

from conftest import record_series

from repro.harness.experiments import graph06_08_math


def test_graph06_08_math(benchmark, micro_runner):
    result = benchmark.pedantic(
        graph06_08_math.run,
        kwargs={"scale": 1.0, "runner": micro_runner},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
