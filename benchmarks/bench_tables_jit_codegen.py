"""Regenerates paper Tables 5-8 (the per-JIT code listings for the integer
division loop)."""

from conftest import record_series

from repro.harness.experiments import tables_jit


def test_tables5_8_codegen(benchmark):
    result = benchmark.pedantic(tables_jit.run, rounds=1, iterations=1)
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
