"""Ablation: attributing the Graph 5 gap to exception-dispatch cost.

The paper root-causes the CLI's exception slowness to Windows SEH-style
two-pass dispatch.  Swapping ONLY the exception cost rows of the CLR
profile for the IBM JVM's values must close (most of) the Graph 5 gap while
leaving arithmetic throughput untouched — demonstrating the profiles'
factor separation (no hidden cross-talk between cost rows).
"""

from repro.benchmarks import get
from repro.lang import compile_source
from repro.runtimes import CLR11, IBM131
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine


def _throw_cycles(profile):
    bench = get("micro.exception")
    source = bench.build_source({"Reps": 150})
    machine = Machine(LoadedAssembly(compile_source(source)), profile)
    machine.run()
    machine.bench.require_valid()
    return machine.bench.sections["Exception:Throw"].total_cycles


def _arith_cycles(profile):
    bench = get("micro.arith")
    source = bench.build_source({"Reps": 1500})
    machine = Machine(LoadedAssembly(compile_source(source)), profile)
    machine.run()
    return machine.bench.sections["Arith:Add:Int"].total_cycles


def run_ablation():
    clr_throw = _throw_cycles(CLR11)
    ibm_throw = _throw_cycles(IBM131)
    hybrid = CLR11.with_costs(
        exception_throw=IBM131.costs.exception_throw,
        exception_frame=IBM131.costs.exception_frame,
        exception_new=IBM131.costs.exception_new,
    )
    hybrid_throw = _throw_cycles(hybrid)
    return {
        "clr_throw": clr_throw,
        "ibm_throw": ibm_throw,
        "hybrid_throw": hybrid_throw,
        "gap_closed": (clr_throw - hybrid_throw) / (clr_throw - ibm_throw),
        "arith_unchanged": _arith_cycles(hybrid) == _arith_cycles(CLR11),
    }


def test_exception_cost_attribution(benchmark):
    stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in stats.items()}
    )
    # swapping the exception rows closes at least 80% of the Graph 5 gap...
    assert stats["gap_closed"] > 0.8, stats
    # ...without perturbing anything else
    assert stats["arith_unchanged"], stats
