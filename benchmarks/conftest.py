"""Shared fixtures for the benchmark harness (pytest-benchmark)."""

import pytest

from repro.harness.runner import Runner
from repro.runtimes import ALL_PROFILES, MICRO_PROFILES


@pytest.fixture(scope="session")
def micro_runner():
    return Runner(profiles=MICRO_PROFILES, clock_hz=2.8e9)


@pytest.fixture(scope="session")
def full_runner():
    return Runner(profiles=ALL_PROFILES, clock_hz=2.2e9)


def record_series(benchmark, result):
    """Attach the regenerated graph data + check outcomes to the report."""
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["series"] = {
        s: {p: round(v, 1) for p, v in per.items()}
        for s, per in result.series.items()
    }
    benchmark.extra_info["checks"] = {
        c.description: ("PASS" if c.passed else "FAIL") for c in result.checks
    }
