"""Regenerates paper Graph 5 (exception handling cost)."""

from conftest import record_series

from repro.harness.experiments import graph05_exceptions


def test_graph05_exceptions(benchmark, micro_runner):
    result = benchmark.pedantic(
        graph05_exceptions.run,
        kwargs={"scale": 1.0, "runner": micro_runner},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
