"""Regenerates paper Graph 9 (SciMark composite MFlops, small + large
memory models, all eight columns)."""

from conftest import record_series

from repro.harness.experiments import graph09_scimark


def test_graph09_scimark_composite(benchmark, full_runner):
    result = benchmark.pedantic(
        graph09_scimark.run,
        kwargs={"scale": 1.0, "runner": full_runner},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
