"""Regenerates paper Graphs 1-2 (integer arithmetic across four VMs)."""

from conftest import record_series

from repro.harness.experiments import graph01_02_int_arith


def test_graph01_02_int_arith(benchmark, micro_runner):
    result = benchmark.pedantic(
        graph01_02_int_arith.run,
        kwargs={"scale": 1.0, "runner": micro_runner},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
