"""The multithreaded micro suite (paper Table 2 + Table 3 thread rows):
barrier styles, fork-join, synchronized method/block, thread startup,
lock contention — across the four micro VMs."""

from conftest import record_series

from repro.harness.results import ExperimentResult
from repro.runtimes import MICRO_PROFILES


def run_threads_suite(runner):
    result = ExperimentResult(
        experiment="threads-micro",
        title="Tables 2-3: multithreaded micro benchmarks (ops/sec)",
        unit="ops/sec",
    )
    specs = [
        ("threads.barrier", None),
        ("threads.forkjoin", None),
        ("threads.sync", None),
        ("threads.thread", None),
        ("threads.lock", None),
    ]
    for name, overrides in specs:
        runs = runner.run(name, overrides)
        sample = next(iter(runs.values()))
        for section in sample.sections:
            result.series[section] = {
                p: r.section(section).ops_per_sec for p, r in runs.items()
            }
    return result


def test_threads_micro(benchmark, micro_runner):
    result = benchmark.pedantic(
        run_threads_suite, args=(micro_runner,), rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    # JVM thin locks beat every CLI on uncontended monitors
    uncontended = result.series["Lock:Uncontended"]
    assert uncontended["ibm-1.3.1"] > uncontended["clr-1.1"]
    assert uncontended["clr-1.1"] > uncontended["sscli-1.0"]
    # the lock-free tournament barrier beats the monitor barrier everywhere
    simple = result.series["Barrier:Simple"]
    tournament = result.series["Barrier:Tournament"]
    assert all(tournament[p] > simple[p] for p in simple)
