"""Regenerates paper Graph 3 (floating point arithmetic)."""

from conftest import record_series

from repro.harness.experiments import graph03_fp_arith


def test_graph03_fp_arith(benchmark, micro_runner):
    result = benchmark.pedantic(
        graph03_fp_arith.run,
        kwargs={"scale": 1.0, "runner": micro_runner},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
