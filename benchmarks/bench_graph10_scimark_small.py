"""Regenerates paper Graph 10 (SciMark kernels vs C, small memory model)."""

from conftest import record_series

from repro.harness.experiments import graph10_11_kernels


def test_graph10_scimark_small(benchmark, full_runner):
    result = benchmark.pedantic(
        graph10_11_kernels.run,
        kwargs={"scale": 1.0, "runner": full_runner, "model": "small"},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
