"""Regenerates paper Graph 12 (matrix styles on CLR 1.1)."""

from conftest import record_series

from repro.harness.experiments import graph12_matrix


def test_graph12_matrix(benchmark):
    result = benchmark.pedantic(
        graph12_matrix.run, kwargs={"scale": 1.0}, rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
