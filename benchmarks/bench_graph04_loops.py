"""Regenerates paper Graph 4 (loop overheads)."""

from conftest import record_series

from repro.harness.experiments import graph04_loops


def test_graph04_loops(benchmark, micro_runner):
    result = benchmark.pedantic(
        graph04_loops.run,
        kwargs={"scale": 1.0, "runner": micro_runner},
        rounds=1, iterations=1,
    )
    record_series(benchmark, result)
    assert result.all_passed, [c.render() for c in result.checks if not c.passed]
