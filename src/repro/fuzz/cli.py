"""``repro-fuzz`` command-line interface.

Subcommands::

    repro-fuzz run --seed 42 --count 50        # differential campaign
    repro-fuzz run --seed 42 --count 200 --time-limit 60
    repro-fuzz run --seed 42 --count 200 --jobs auto   # process-pool fan-out
    repro-fuzz run --seed 7 --count 20 --inject-bug simplify   # mutation check
    repro-fuzz shrink --seed 123456            # minimize one diverging seed
    repro-fuzz shrink --file repro.cs
    repro-fuzz replay                          # re-run tests/fuzz_corpus/
    repro-fuzz replay path/to/prog.cs ...

``run`` exits non-zero on any divergence (or on a generated program that
fails to compile).  With ``--shrink-failures`` every diverging program is
minimized and written into the corpus directory so the regression is kept.
``replay`` re-checks saved repros — corpus entries must stay green, which is
what CI enforces.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .genprog import generate_program
from .oracle import (
    AblationPoint,
    Divergence,
    default_matrix,
    inject_pass_bug,
    run_campaign,
    run_program,
)
from .shrink import safe_predicate, shrink_source

DEFAULT_CORPUS = Path("tests") / "fuzz_corpus"


def _failing_matrix(divergences: Sequence[Divergence]) -> List[AblationPoint]:
    """The sub-matrix containing only the points that diverged — shrinking
    against it is much cheaper than re-running the full matrix per candidate."""
    labels = {d.label for d in divergences}
    return [p for p in default_matrix() if p.label in labels]


def _shrink_diverging(source: str, divergences: Sequence[Divergence]) -> str:
    matrix = _failing_matrix(divergences)

    def still_diverges(src: str) -> bool:
        return bool(run_program(src, matrix=matrix))

    return shrink_source(source, safe_predicate(still_diverges))


def _write_repro(corpus: Path, seed: int, source: str, divergences: Sequence[Divergence]) -> Path:
    corpus.mkdir(parents=True, exist_ok=True)
    path = corpus / f"seed_{seed}.cs"
    header = [f"// repro-fuzz repro, seed {seed}"]
    header += [f"// {d}" for d in divergences]
    path.write_text("\n".join(header) + "\n" + source)
    return path


def cmd_run(args) -> int:
    from ..parallel import CompileCache

    def report(pr) -> None:
        status = "DIVERGED" if pr.divergences else "ok"
        if args.verbose or pr.divergences:
            print(f"  seed {pr.seed}: {status}")
        for d in pr.divergences:
            print(f"    {d}")

    print(
        f"repro-fuzz: campaign seed={args.seed} count={args.count} "
        f"budget={args.budget}"
        + (f" jobs={args.jobs}" if args.jobs else "")
        + (f" inject-bug={args.inject_bug}" if args.inject_bug else "")
    )
    cache = None if args.no_compile_cache else CompileCache(args.cache_dir)
    result = run_campaign(
        seed=args.seed,
        count=args.count,
        budget=args.budget,
        time_limit=args.time_limit,
        on_program=report,
        jobs=args.jobs,
        cache=cache,
        inject_bug=args.inject_bug,
    )
    if result.report is not None:
        print(f"repro-fuzz: parallel {result.report.summary()}")

    print(
        f"repro-fuzz: {result.executed} programs executed, "
        f"{len(result.compile_failures)} compile failures, "
        f"{len(result.failures)} diverging"
    )
    for pseed, message in result.compile_failures:
        print(f"  seed {pseed}: COMPILE FAILURE: {message}")

    if args.shrink_failures and result.failures:
        for pr in result.failures:
            if args.inject_bug:
                with inject_pass_bug(args.inject_bug):
                    small = _shrink_diverging(pr.source, pr.divergences)
            else:
                small = _shrink_diverging(pr.source, pr.divergences)
            path = _write_repro(Path(args.corpus), pr.seed, small, pr.divergences)
            print(f"  seed {pr.seed}: shrunk to {len(small.splitlines())} lines -> {path}")

    if args.inject_bug:
        # mutation check: the injected bug MUST be caught
        if result.failures:
            print("repro-fuzz: mutation check OK — injected bug was caught")
            return 0
        print("repro-fuzz: MUTATION CHECK FAILED — injected bug went undetected")
        return 1
    return 0 if result.ok else 1


def cmd_shrink(args) -> int:
    if args.file:
        try:
            source = Path(args.file).read_text()
        except OSError as exc:
            print(f"repro-fuzz: cannot read {args.file}: {exc}", file=sys.stderr)
            return 1
        origin = args.file
        seed = 0
    else:
        prog = generate_program(args.seed, budget=args.budget)
        source = prog.source
        origin = f"seed {args.seed}"
        seed = args.seed

    if args.inject_bug:
        ctx = inject_pass_bug(args.inject_bug)
    else:
        from contextlib import nullcontext

        ctx = nullcontext()
    with ctx:
        divergences = run_program(source)
        if not divergences:
            print(f"repro-fuzz: {origin} does not diverge; nothing to shrink")
            return 1
        for d in divergences:
            print(f"  {d}")
        small = _shrink_diverging(source, divergences)

    print(f"repro-fuzz: shrunk {origin}: "
          f"{len(source.splitlines())} -> {len(small.splitlines())} lines")
    if args.out:
        Path(args.out).write_text(small)
        print(f"repro-fuzz: wrote {args.out}")
    else:
        path = _write_repro(Path(args.corpus), seed, small, divergences)
        print(f"repro-fuzz: wrote {path}")
    print()
    print(small)
    return 0


def cmd_replay(args) -> int:
    from ..parallel import CompileCache

    cache = None if args.no_compile_cache else CompileCache(args.cache_dir)
    paths: List[Path]
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        corpus = Path(args.corpus)
        paths = sorted(corpus.glob("*.cs")) if corpus.is_dir() else []
    if not paths:
        print("repro-fuzz: no corpus entries to replay")
        return 0
    bad = 0
    for path in paths:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"repro-fuzz: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        divergences = run_program(text, assembly_name=path.stem, cache=cache)
        if divergences:
            bad += 1
            print(f"  {path}: DIVERGED")
            for d in divergences:
                print(f"    {d}")
        else:
            print(f"  {path}: ok")
    print(f"repro-fuzz: replayed {len(paths)} corpus entries, {bad} diverging")
    return 1 if bad else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzer: generated Kernel-C# programs, "
        "interpreter-vs-machine oracle, pass-ablation matrix.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a fuzzing campaign")
    p_run.add_argument("--seed", type=int, default=42, help="campaign seed")
    p_run.add_argument("--count", type=int, default=50, help="programs to generate")
    p_run.add_argument("--budget", type=int, default=40, help="statement budget per program")
    p_run.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                       help="stop generating new programs after this long")
    p_run.add_argument("--inject-bug", choices=("simplify", "inline"),
                       help="mutation check: break a pass and require the oracle to notice")
    p_run.add_argument("--shrink-failures", action="store_true",
                       help="minimize each diverging program into the corpus")
    p_run.add_argument("--corpus", default=str(DEFAULT_CORPUS), help="corpus directory")
    p_run.add_argument("--verbose", action="store_true", help="print every program")
    from ..parallel import add_jobs_argument, default_cache_dir

    add_jobs_argument(p_run)
    p_run.add_argument("--cache-dir", default=default_cache_dir(), metavar="DIR",
                       help="persistent compile cache location "
                            "(default: $REPRO_CACHE_DIR or .repro-cache)")
    p_run.add_argument("--no-compile-cache", action="store_true",
                       help="compile from scratch; do not read or write the cache")
    p_run.set_defaults(func=cmd_run)

    p_shrink = sub.add_parser("shrink", help="minimize one diverging program")
    group = p_shrink.add_mutually_exclusive_group(required=True)
    group.add_argument("--seed", type=int, help="program seed (as printed by `run`)")
    group.add_argument("--file", help="path to a Kernel-C# source file")
    p_shrink.add_argument("--budget", type=int, default=40, help="statement budget")
    p_shrink.add_argument("--inject-bug", choices=("simplify", "inline"),
                          help="shrink under an injected pass bug")
    p_shrink.add_argument("--out", help="write the minimized repro here")
    p_shrink.add_argument("--corpus", default=str(DEFAULT_CORPUS),
                          help="corpus directory (used when --out is not given)")
    p_shrink.set_defaults(func=cmd_shrink)

    p_replay = sub.add_parser("replay", help="re-run saved corpus repros")
    p_replay.add_argument("paths", nargs="*", help="specific files (default: corpus dir)")
    p_replay.add_argument("--corpus", default=str(DEFAULT_CORPUS), help="corpus directory")
    p_replay.add_argument("--cache-dir", default=default_cache_dir(), metavar="DIR",
                          help="persistent compile cache location")
    p_replay.add_argument("--no-compile-cache", action="store_true",
                          help="compile from scratch; do not read or write the cache")
    p_replay.set_defaults(func=cmd_replay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
