"""Differential fuzzing & conformance subsystem.

The paper's argument rests on one invariant: a single CIL image produces
identical *results* on every runtime, so timing differences are
attributable to JIT code quality alone.  This package checks that
invariant systematically instead of only on the hand-written registry
benchmarks:

* :mod:`repro.fuzz.genprog` — seeded, grammar-directed generator of
  well-typed Kernel-C# programs;
* :mod:`repro.fuzz.oracle` — compiles each program once (verifier in the
  loop), runs it on the reference interpreter and on the measured engine
  under a profile x pass-ablation matrix, and reports any divergence in
  return value, recorded bench results, stdout, or guest exception type;
* :mod:`repro.fuzz.shrink` — greedy AST-level minimizer that reduces a
  diverging program to a small repro for the corpus;
* :mod:`repro.fuzz.cli` — the ``repro-fuzz`` console entry point
  (``run`` / ``shrink`` / ``replay``).
"""

from .genprog import generate_program, program_seed
from .oracle import (
    AblationPoint,
    CampaignResult,
    Divergence,
    default_matrix,
    inject_pass_bug,
    run_campaign,
    run_program,
)
from .shrink import shrink_source

__all__ = [
    "AblationPoint",
    "CampaignResult",
    "Divergence",
    "default_matrix",
    "generate_program",
    "inject_pass_bug",
    "program_seed",
    "run_campaign",
    "run_program",
    "shrink_source",
]
