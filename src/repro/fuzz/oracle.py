"""Differential oracle: interpreter vs machine under a profile/pass matrix.

Each program is compiled exactly once (the verifier runs as part of
compilation, so verifier acceptance is part of the conformance check), then
executed on the reference :class:`~repro.vm.interpreter.Interpreter` and on
:class:`~repro.vm.machine.Machine` at every point of an *ablation matrix*:
every runtime profile with its stock pipeline, plus a fully-optimizing
profile with each JIT pass individually disabled.  Any difference in

* the entry point's return value,
* recorded bench-section results,
* guest stdout, or
* the escaped guest-exception type

is a :class:`Divergence` — i.e. a bug in the compiler, the verifier, a JIT
pass, or one of the engines, since every pass is required to be
semantics-preserving.

:func:`inject_pass_bug` deliberately breaks a pass (mutation testing): a
healthy oracle must catch each injected bug, which is how we know zero
divergences means something.
"""

from __future__ import annotations

import math
import struct
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ManagedException, ReproError
from ..faults.report import CellFailure
from ..jit import mir
from ..lang import compile_source
from ..runtimes import ALL_PROFILES, CLR11
from ..runtimes.profile import RuntimeProfile
from ..vm.exceptions import GuestException
from ..vm.interpreter import Interpreter
from ..vm.loader import LoadedAssembly
from ..vm.machine import Machine
from .genprog import generate_program, program_seed

#: the passes the matrix ablates one at a time (see jit.pipeline)
SINGLE_PASS_ABLATIONS = ("boundscheck", "enregister", "inline", "simplify", "quirks")


@dataclass(frozen=True)
class AblationPoint:
    """One (profile, disabled-passes) cell of the conformance matrix."""

    profile: RuntimeProfile
    disabled: FrozenSet[str] = frozenset()

    @property
    def label(self) -> str:
        if not self.disabled:
            return self.profile.name
        return f"{self.profile.name}[-{','.join(sorted(self.disabled))}]"


def default_matrix(
    profiles: Optional[Sequence[RuntimeProfile]] = None,
    ablation_profile: RuntimeProfile = CLR11,
) -> List[AblationPoint]:
    """All profile tiers stock, plus each pass singly disabled on the
    fully-optimizing ``ablation_profile``."""
    points = [AblationPoint(p) for p in (profiles or ALL_PROFILES)]
    for name in SINGLE_PASS_ABLATIONS:
        points.append(AblationPoint(ablation_profile, frozenset({name})))
    return points


# --------------------------------------------------------------- outcomes


@dataclass
class Outcome:
    """Observable behaviour of one execution, in comparable form."""

    value: object = None
    sections: Dict[str, Tuple] = field(default_factory=dict)
    stdout: Tuple[str, ...] = ()
    exception: Optional[str] = None
    #: host-side failure (engine crash) — always a divergence when unequal
    engine_error: Optional[str] = None


def _canon(v: object) -> object:
    """Canonical comparable form; float NaNs compare equal bit-for-bit."""
    if isinstance(v, bool):
        return ("b", v)
    if isinstance(v, float):
        return ("f", struct.pack("<d", v))
    if isinstance(v, int):
        return ("i", v)
    if isinstance(v, (list, tuple)):
        return tuple(_canon(x) for x in v)
    return v


def _outcome_of(run: Callable[[], object], engine) -> Outcome:
    out = Outcome()
    try:
        out.value = _canon(run())
    except GuestException as exc:  # interpreter: guest exception escaped
        out.exception = exc.type_name
    except ManagedException as exc:  # machine: guest exception escaped
        out.exception = exc.type_name
    except ReproError as exc:
        out.engine_error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # host crash (e.g. a pass bug broke the engine)
        out.engine_error = f"host {type(exc).__name__}: {exc}"
    out.sections = {
        name: _canon(tuple(sec.results)) for name, sec in engine.bench.sections.items()
    }
    out.stdout = tuple(engine.stdout)
    return out


@dataclass
class Divergence:
    """One observed disagreement between reference and a matrix point."""

    label: str
    field: str  # 'value' | 'sections' | 'stdout' | 'exception' | 'engine'
    expected: object
    got: object

    def __str__(self) -> str:
        return f"{self.label}: {self.field} diverged: expected {self.expected!r}, got {self.got!r}"


def _compare(reference: Outcome, got: Outcome, label: str) -> List[Divergence]:
    out: List[Divergence] = []
    if reference.engine_error or got.engine_error:
        if reference.engine_error != got.engine_error:
            out.append(
                Divergence(label, "engine", reference.engine_error, got.engine_error)
            )
            return out
    if reference.exception != got.exception:
        out.append(Divergence(label, "exception", reference.exception, got.exception))
    if reference.value != got.value:
        out.append(Divergence(label, "value", reference.value, got.value))
    if reference.sections != got.sections:
        out.append(Divergence(label, "sections", reference.sections, got.sections))
    if reference.stdout != got.stdout:
        out.append(Divergence(label, "stdout", reference.stdout, got.stdout))
    return out


# ------------------------------------------------------------ single program


def run_program(
    source: str,
    matrix: Optional[Sequence[AblationPoint]] = None,
    assembly_name: str = "fuzzprog",
    cache=None,
) -> List[Divergence]:
    """Compile ``source`` once, run the full matrix, return all divergences.

    A compile/verify failure is *not* a divergence (the program never made
    it to either engine) and raises instead.  ``cache`` may be a
    :class:`repro.parallel.CompileCache`; replaying a corpus (or re-running
    a campaign seed) with a warm cache then skips compilation entirely.
    """
    matrix = default_matrix() if matrix is None else matrix
    if cache is not None:
        assembly = cache.get_or_compile(source, assembly_name=assembly_name)
    else:
        assembly = compile_source(source, assembly_name=assembly_name)

    interp = Interpreter(LoadedAssembly(assembly))
    reference = _outcome_of(interp.run, interp)
    if reference.engine_error is not None:
        # reference crash: surface loudly, comparing against it is useless
        raise ReproError(f"reference interpreter failed: {reference.engine_error}")

    divergences: List[Divergence] = []
    for point in matrix:
        machine = Machine(
            LoadedAssembly(assembly),
            point.profile,
            disabled_passes=point.disabled,
        )
        got = _outcome_of(machine.run, machine)
        divergences.extend(_compare(reference, got, point.label))
    return divergences


# ---------------------------------------------------------------- campaigns


@dataclass
class ProgramResult:
    seed: int
    source: str
    divergences: List[Divergence]


@dataclass
class CampaignResult:
    campaign_seed: int
    budget: int
    executed: int = 0
    compile_failures: List[Tuple[int, str]] = field(default_factory=list)
    failures: List[ProgramResult] = field(default_factory=list)
    #: operational fan-out summary (repro.parallel.PoolReport) — wall-clock
    #: telemetry only, never part of the campaign's comparable outcome
    report: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.failures and not self.compile_failures


def _matrix_spec(matrix: Sequence[AblationPoint]) -> List[Tuple[str, Tuple[str, ...]]]:
    """Picklable (profile name, disabled passes) form of a matrix; pool
    workers rebuild the points from the runtime registry."""
    return [(p.profile.name, tuple(sorted(p.disabled))) for p in matrix]


def run_campaign(
    seed: int,
    count: int,
    budget: int = 40,
    matrix: Optional[Sequence[AblationPoint]] = None,
    time_limit: Optional[float] = None,
    on_program: Optional[Callable[[ProgramResult], None]] = None,
    jobs=None,
    cache=None,
    inject_bug: Optional[str] = None,
) -> CampaignResult:
    """Generate and differentially execute ``count`` programs.

    Program ``i`` uses the derived seed ``program_seed(seed, i)``, so any
    failure is reproducible from (campaign seed, index) alone.  A generated
    program that fails to compile is recorded as a failure too: the
    generator promises well-typed output, so a compile error is a generator
    (or front-end) bug either way.

    ``jobs`` (int or ``"auto"``) shards the programs across a process pool
    (:mod:`repro.parallel`); without a ``time_limit`` the merged result is
    bit-identical to a serial run, because every program's outcome is a
    pure function of its seed and the matrix.  ``cache`` is an optional
    :class:`repro.parallel.CompileCache` shared by all workers.
    ``inject_bug`` applies :func:`inject_pass_bug` around every program
    (including inside pool workers, where a caller's context manager could
    not reach).
    """
    from ..parallel import resolve_jobs, run_cells
    from ..parallel.cache import CompileCache

    matrix = default_matrix() if matrix is None else matrix
    result = CampaignResult(campaign_seed=seed, budget=budget)

    if resolve_jobs(jobs) > 1 and count > 1:
        spec = {
            "kind": "fuzz",
            "seed": seed,
            "budget": budget,
            "matrix_spec": _matrix_spec(matrix),
            "inject_bug": inject_bug,
            "cache_dir": None if cache is None else cache.root,
            "deadline": None if time_limit is None else time.monotonic() + time_limit,
        }
        payloads, report = run_cells(spec, list(range(count)), jobs=jobs)
        result.report = report
        for payload in payloads:
            if isinstance(payload, CellFailure):
                # "deadline" mirrors the serial path's time-budget break:
                # the cell simply never ran.  Any other contained failure
                # is still a campaign-visible program failure.
                if payload.status != "deadline":
                    result.compile_failures.append((None, payload.error))
                    result.executed += 1
                continue
            if payload[0] == "compile_failure":
                result.compile_failures.append((payload[1], payload[2]))
                result.executed += 1
                continue
            _, pseed, source, divergences = payload
            result.executed += 1
            pr = ProgramResult(seed=pseed, source=source, divergences=divergences)
            if divergences:
                result.failures.append(pr)
            if on_program is not None:
                on_program(pr)
        return result

    from contextlib import nullcontext

    started = time.monotonic()
    with inject_pass_bug(inject_bug) if inject_bug else nullcontext():
        for i in range(count):
            if time_limit is not None and time.monotonic() - started > time_limit:
                break
            pseed = program_seed(seed, i)
            prog = generate_program(pseed, budget=budget)
            try:
                divergences = run_program(
                    prog.source, matrix, assembly_name=f"fuzz{i}", cache=cache
                )
            except ReproError as exc:
                result.compile_failures.append((pseed, f"{type(exc).__name__}: {exc}"))
                result.executed += 1
                continue
            result.executed += 1
            pr = ProgramResult(seed=pseed, source=prog.source, divergences=divergences)
            if divergences:
                result.failures.append(pr)
            if on_program is not None:
                on_program(pr)
    return result


# ----------------------------------------------------------- mutation check


@contextmanager
def inject_pass_bug(name: str):
    """Deliberately break one JIT pass for the duration of the context.

    Used by the mutation check: with a bug injected, the oracle *must*
    report divergences — otherwise the oracle itself is broken.

    * ``"simplify"`` — constant folding produces an off-by-one int32
      constant (classic miscompiled-literal bug);
    * ``"inline"`` — the inliner binds the callee's first two parameters
      in swapped order (classic argument-rebasing bug).

    The bounds-check eliminator deliberately has no mutation: in this
    simulation the ``bounds_check`` flag is cost-model-only (the engine
    always range-checks at execution time, as the reference semantics
    require), so no bug in that pass can be *semantically* visible — its
    effect is covered by the cycle-cost benchmarks instead.
    """
    from ..jit import pipeline

    if name == "simplify":
        orig = pipeline.constant_fold

        def buggy_fold(fn, profile):
            orig(fn, profile)
            for ins in fn.code:
                if ins.op == mir.LDI and isinstance(ins.a, int) and not isinstance(ins.a, bool):
                    ins.a = ins.a + 1
                    break

        pipeline.constant_fold = buggy_fold
        try:
            yield
        finally:
            pipeline.constant_fold = orig
    elif name == "inline":
        orig = pipeline.inline_small_methods

        def buggy_inline(fn, profile, compile_callee):
            def swapped(ref):
                callee = compile_callee(ref)
                if callee is None or callee.n_args < 2:
                    return callee
                # rename vreg 0 <-> vreg 1 throughout a copy of the body:
                # equivalent to binding the first two arguments in the
                # wrong order at every inlined call site
                from dataclasses import replace as _replace

                clone = _replace(callee)
                remap = {0: 1, 1: 0}
                new_code = []
                for ins in callee.code:
                    cins = _replace(ins)
                    if cins.op != mir.LDI:
                        for f in ("a", "b", "c"):
                            v = getattr(cins, f)
                            if isinstance(v, int) and v in remap and not (
                                cins.op == mir.RET and f in ("b", "c")
                            ):
                                setattr(cins, f, remap[v])
                    if cins.dst in remap:
                        cins.dst = remap[cins.dst]
                    if cins.args:
                        cins.args = [remap.get(v, v) for v in cins.args]
                    new_code.append(cins)
                clone.code = new_code
                return clone

            orig(fn, profile, swapped)

        pipeline.inline_small_methods = buggy_inline
        try:
            yield
        finally:
            pipeline.inline_small_methods = orig
    else:
        raise ValueError(f"no mutation defined for pass {name!r}")
