"""Greedy structural minimizer for diverging Kernel-C# programs.

Works on the parsed AST rather than on text: each candidate edit (delete a
statement, unwrap a loop, drop a catch clause, replace an expression by a
subexpression or a literal) is applied in place, the tree is rendered back
to source, and the caller's *interestingness predicate* — typically "the
differential oracle still reports the divergence" — decides whether to keep
it.  Ill-typed candidates are harmless: the predicate's compile step fails
and the edit is simply undone.

The loop is a greedy fixpoint: keep scanning for an accepted edit until a
full pass over the tree finds none (or the test budget runs out).  That is
the classic ddmin-style trade-off — not globally minimal, but small enough
for a corpus entry, with a bounded number of oracle runs.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import ReproError
from ..lang import ast_nodes as ast
from ..lang.parser import parse
from .render import render_program

#: (description, apply, undo)
_Edit = Tuple[str, Callable[[], None], Callable[[], None]]


def _list_slot(lst: list, index: int):
    def get():
        return lst[index]

    def set_(value):
        lst[index] = value

    return get, set_


def _attr_slot(obj: object, attr: str):
    def get():
        return getattr(obj, attr)

    def set_(value):
        setattr(obj, attr, value)

    return get, set_


def _replace_edits(get, set_, expr: ast.Expr) -> Iterator[_Edit]:
    """Edits replacing the expression in a slot with something simpler."""

    def swap(new: ast.Expr, desc: str) -> _Edit:
        old = expr

        def apply():
            set_(new)

        def undo():
            set_(old)

        return (desc, apply, undo)

    if isinstance(expr, (ast.Binary, ast.Logical)):
        yield swap(expr.left, "binary->left")
        yield swap(expr.right, "binary->right")
    elif isinstance(expr, ast.Conditional):
        yield swap(expr.then, "cond->then")
        yield swap(expr.other, "cond->else")
    elif isinstance(expr, (ast.Unary, ast.Cast)):
        yield swap(expr.operand, "unwrap-unary")
    elif isinstance(expr, ast.IncDec):
        yield swap(expr.target, "incdec->target")
    if not isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.NullLit)):
        yield swap(ast.IntLit(value=0), "->0")
        yield swap(ast.IntLit(value=1), "->1")
        yield swap(ast.IntLit(value=0, is_long=True), "->0L")
        yield swap(ast.FloatLit(value=0.0), "->0.0")
        yield swap(ast.BoolLit(value=False), "->false")


def _expr_slots(node) -> Iterator[Tuple[Callable, Callable, ast.Expr]]:
    """Every (get, set, expr) expression slot reachable from ``node``,
    including nested subexpressions."""

    def visit_slot(get, set_):
        expr = get()
        if not isinstance(expr, ast.Expr):
            return
        yield (get, set_, expr)
        yield from walk_children(expr)

    def walk_children(obj):
        for attr, value in list(vars(obj).items()):
            if attr == "ctype":
                continue
            if isinstance(value, ast.Expr):
                g, s = _attr_slot(obj, attr)
                yield from visit_slot(g, s)
            elif isinstance(value, list):
                for i, item in enumerate(value):
                    if isinstance(item, ast.Expr):
                        g, s = _list_slot(value, i)
                        yield from visit_slot(g, s)
                    elif isinstance(item, (ast.Stmt, ast.CatchClause)):
                        yield from walk_children(item)
            elif isinstance(value, (ast.Stmt, ast.CatchClause)):
                yield from walk_children(value)

    yield from walk_children(node)


def _stmt_edits(block: ast.Block) -> Iterator[_Edit]:
    """Deletions and unwraps for every statement under ``block``."""
    for i in range(len(block.statements) - 1, -1, -1):
        stmt = block.statements[i]

        def make_delete(index: int, old: ast.Stmt) -> _Edit:
            def apply():
                del block.statements[index]

            def undo():
                block.statements.insert(index, old)

            return ("delete-stmt", apply, undo)

        yield make_delete(i, stmt)

        def make_swap(index: int, old: ast.Stmt, new: ast.Stmt, desc: str) -> _Edit:
            def apply():
                block.statements[index] = new

            def undo():
                block.statements[index] = old

            return (desc, apply, undo)

        if isinstance(stmt, ast.If):
            yield make_swap(i, stmt, _as_block(stmt.then), "if->then")
            if stmt.other is not None:
                yield make_swap(i, stmt, _as_block(stmt.other), "if->else")
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For, ast.Lock)):
            yield make_swap(i, stmt, _as_block(stmt.body), "loop->body")
        elif isinstance(stmt, ast.Try):
            yield make_swap(i, stmt, _as_block(stmt.body), "try->body")
            if stmt.finally_body is not None and stmt.catches:
                g, s = _attr_slot(stmt, "finally_body")
                old_fin = stmt.finally_body
                yield (
                    "drop-finally",
                    lambda s=s: s(None),
                    lambda s=s, v=old_fin: s(v),
                )
            if len(stmt.catches) > 1 or (stmt.catches and stmt.finally_body is not None):
                for ci in range(len(stmt.catches) - 1, -1, -1):
                    clause = stmt.catches[ci]
                    yield (
                        "drop-catch",
                        lambda c=stmt.catches, j=ci: c.pop(j),
                        lambda c=stmt.catches, j=ci, v=clause: c.insert(j, v),
                    )

    # recurse into nested blocks
    for stmt in list(block.statements):
        yield from _nested_stmt_edits(stmt)


def _nested_stmt_edits(stmt: ast.Stmt) -> Iterator[_Edit]:
    if isinstance(stmt, ast.Block):
        yield from _stmt_edits(stmt)
    elif isinstance(stmt, ast.If):
        for child in (stmt.then, stmt.other):
            if isinstance(child, ast.Block):
                yield from _stmt_edits(child)
            elif child is not None:
                yield from _nested_stmt_edits(child)
    elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For, ast.Lock)):
        if isinstance(stmt.body, ast.Block):
            yield from _stmt_edits(stmt.body)
        elif stmt.body is not None:
            yield from _nested_stmt_edits(stmt.body)
    elif isinstance(stmt, ast.Try):
        yield from _stmt_edits(stmt.body)
        for clause in stmt.catches:
            yield from _stmt_edits(clause.body)
        if stmt.finally_body is not None:
            yield from _stmt_edits(stmt.finally_body)


def _as_block(stmt: Optional[ast.Stmt]) -> ast.Block:
    if isinstance(stmt, ast.Block):
        return stmt
    block = ast.Block()
    if stmt is not None:
        block.statements.append(stmt)
    return block


def _program_edits(program: ast.Program) -> Iterator[_Edit]:
    # whole-declaration deletions first: they shrink fastest
    for cls in list(program.classes):
        has_main = any(m.name == "Main" and m.is_static for m in cls.methods)
        if not has_main:
            yield (
                f"drop-class-{cls.name}",
                lambda c=cls: program.classes.remove(c),
                lambda c=cls, i=program.classes.index(cls): program.classes.insert(i, c),
            )
        for m in list(cls.methods):
            if m.name == "Main":
                continue
            yield (
                f"drop-method-{m.name}",
                lambda c=cls, mm=m: c.methods.remove(mm),
                lambda c=cls, mm=m, i=cls.methods.index(m): c.methods.insert(i, mm),
            )
        for f in list(cls.fields):
            yield (
                f"drop-field-{f.name}",
                lambda c=cls, ff=f: c.fields.remove(ff),
                lambda c=cls, ff=f, i=cls.fields.index(f): c.fields.insert(i, ff),
            )
    # statement-level edits
    for cls in program.classes:
        for m in cls.methods:
            if m.body is not None:
                yield from _stmt_edits(m.body)
    # expression-level simplifications last
    for cls in program.classes:
        for m in cls.methods:
            if m.body is not None:
                for get, set_, expr in _expr_slots(m.body):
                    yield from _replace_edits(get, set_, expr)


def shrink_source(
    source: str,
    predicate: Callable[[str], bool],
    max_tests: int = 3000,
) -> str:
    """Minimize ``source`` while ``predicate(rendered)`` stays true.

    ``predicate`` must be robust to arbitrary candidate programs — it
    should return ``False`` (not raise) for candidates that no longer
    compile; :func:`safe_predicate` wraps an oracle call accordingly.
    Returns the minimized source (the original if nothing could be
    removed).
    """
    program = parse(source)
    # canonical starting point: the renderer's own output, so accepted
    # edits always compare against like-rendered text
    best = render_program(program)
    if not predicate(best):
        raise ValueError("predicate does not hold on the initial program")
    tests = 0
    improved = True
    while improved and tests < max_tests:
        improved = False
        for _desc, apply, undo in _program_edits(program):
            if tests >= max_tests:
                break
            apply()
            try:
                candidate = render_program(program)
            except TypeError:
                undo()
                continue
            tests += 1
            if len(candidate) < len(best) and predicate(candidate):
                best = candidate
                improved = True
                break  # re-enumerate on the mutated tree
            undo()
    return best


def safe_predicate(check: Callable[[str], bool]) -> Callable[[str], bool]:
    """Wrap an oracle-backed check, classifying its failures.

    A shrink candidate is routinely ill-typed or otherwise *rejected* by
    the toolchain — any :class:`~repro.errors.ReproError` (compile/verify
    failure, reference-interpreter refusal) just means "not interesting"
    and the edit is undone.  Anything else is a genuine **crash** of the
    oracle or shrinker itself and is re-raised: swallowing it would make
    the minimizer silently shrink toward "makes the oracle crash" instead
    of "still reproduces the divergence", which is the wrong predicate.
    """

    def wrapped(src: str) -> bool:
        try:
            return check(src)
        except ReproError:
            return False

    return wrapped
