"""Grammar-directed random Kernel-C# program generator.

Programs are generated from a seeded PRNG under a statement budget, and are
well-typed by construction: every expression is built for a specific static
type, with explicit casts at the leaves, so the front end accepts ~100% of
the output and fuzzing time is spent on the verifier, the JIT passes and
both engines rather than on compile errors.

Generated programs deliberately exercise the constructs the optimization
passes pattern-match on:

* int32/int64/float32/float64 arithmetic with wrapping, shifts, guarded
  division, and explicit casts (constant folding, enregistration);
* ``for (i = 0; i < a.Length; i++)`` walks (the bounds-check-elimination
  length pattern) next to masked random-index accesses;
* jagged vs rectangular arrays;
* struct copies plus box/unbox through ``object`` locals;
* virtual/non-virtual/static calls (inlining, vtable dispatch);
* nested try/catch/finally, both always-throwing and never-throwing,
  including guest exceptions that escape ``Main`` entirely.

Safety rules keeping every program deterministic and terminating: loops are
counted with small constant bounds, helper calls only go to lower-numbered
helpers (no recursion), integer divisors are forced odd via ``| 1``, and
random array indices are masked with ``& (len - 1)`` on power-of-two sized
arrays.  Deliberately out-of-range accesses and division by a
self-cancelling term are generated *inside* try/catch only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

INT, LONG, FLOAT, DOUBLE, BOOL = "int", "long", "float", "double", "bool"
NUMERIC = (INT, LONG, FLOAT, DOUBLE)

#: power-of-two sizes so ``expr & (size-1)`` is always a valid index
ARRAY_SIZES = (4, 8, 16)

_SUFFIX = {INT: "", LONG: "L", FLOAT: "f", DOUBLE: ""}


def program_seed(campaign_seed: int, index: int) -> int:
    """Derive the per-program seed for ``index`` within a campaign.

    Splitmix-style derivation so neighbouring campaign seeds do not produce
    overlapping program streams.
    """
    z = (campaign_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (
        (1 << 64) - 1
    )
    z = ((z ^ (z >> 30)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return z ^ (z >> 31)


@dataclass
class GeneratedProgram:
    """A generated program plus the metadata a repro needs."""

    seed: int
    source: str
    budget: int

    @property
    def header(self) -> str:
        return f"// repro-fuzz generated program (seed={self.seed}, budget={self.budget})\n"


@dataclass
class _Var:
    name: str
    type: str
    #: loop counters are readable but never assignment targets — a random
    #: store into an induction variable turns a bounded loop into a
    #: near-infinite one
    mutable: bool = True


@dataclass
class _Array:
    name: str
    elem: str  # INT or DOUBLE
    size: int
    kind: str  # 'sz' | 'rect' | 'jagged'


@dataclass
class _Helper:
    name: str
    params: List[str]
    ret: str


@dataclass
class _Scope:
    vars: List[_Var] = field(default_factory=list)
    arrays: List[_Array] = field(default_factory=list)

    def of_type(self, t: str) -> List[_Var]:
        return [v for v in self.vars if v.type == t]


class _Gen:
    def __init__(self, seed: int, budget: int) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.budget = budget
        self._name_counter = 0
        self.helpers: List[_Helper] = []
        self.lines: List[str] = []
        self.indent = 0
        self.loop_depth = 0
        self.in_try = 0
        self.in_helper = False
        self.struct_fields = [("a", INT), ("b", LONG), ("c", DOUBLE)]

    # ------------------------------------------------------------- plumbing

    def fresh(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def spend(self, n: int = 1) -> bool:
        if self.budget < n:
            return False
        self.budget -= n
        return True

    # ---------------------------------------------------------- expressions

    def literal(self, t: str) -> str:
        r = self.rng
        if t == INT:
            v = r.choice([0, 1, 2, 3, 5, 7, 13, 100, -1, -7, r.randint(-9999, 9999)])
            return str(v) if v >= 0 else f"({v})"
        if t == LONG:
            v = r.choice([0, 1, 3, 9, 1000, -5, r.randint(-10**8, 10**8)])
            return f"{v}L" if v >= 0 else f"({v}L)"
        if t == FLOAT:
            v = r.choice([0.0, 0.5, 1.5, 2.25, -0.75, round(r.uniform(-100, 100), 3)])
            return f"{v}f" if v >= 0 else f"({v}f)"
        if t == DOUBLE:
            v = r.choice([0.0, 0.25, 1.0, 3.5, -2.5, round(r.uniform(-1000, 1000), 4)])
            return str(v) if v >= 0 else f"({v})"
        return r.choice(["true", "false"])

    def var_as(self, t: str, scope: _Scope) -> Optional[str]:
        """A variable readable at type ``t``, cast explicitly if needed."""
        r = self.rng
        same = scope.of_type(t)
        if same and r.random() < 0.7:
            return r.choice(same).name
        if t in NUMERIC:
            others = [v for v in scope.vars if v.type in NUMERIC and v.type != t]
            if others:
                v = r.choice(others)
                return f"(({t})({v.name}))"
        if same:
            return r.choice(same).name
        return None

    def atom(self, t: str, scope: _Scope) -> str:
        r = self.rng
        roll = r.random()
        if roll < 0.45:
            v = self.var_as(t, scope)
            if v is not None:
                return v
        if t in (INT, DOUBLE) and roll < 0.60:
            loads = self._array_load_candidates(t, scope)
            if loads:
                return r.choice(loads)
        return self.literal(t)

    def _array_load_candidates(self, t: str, scope: _Scope) -> List[str]:
        out = []
        ints = scope.of_type(INT)
        for a in scope.arrays:
            if a.elem != t:
                continue
            idx = (
                f"({self.rng.choice(ints).name} & {a.size - 1})"
                if ints
                else str(self.rng.randrange(a.size))
            )
            if a.kind == "sz":
                out.append(f"{a.name}[{idx}]")
            elif a.kind == "rect":
                out.append(f"{a.name}[{idx}, {self.rng.randrange(a.size)}]")
            else:
                out.append(f"{a.name}[{idx}][{self.rng.randrange(a.size)}]")
        return out

    def expr(self, t: str, scope: _Scope, depth: int = 0) -> str:
        r = self.rng
        if depth >= 3 or r.random() < 0.25:
            return self.atom(t, scope)
        if t == BOOL:
            return self.bool_expr(scope, depth)
        kind = r.random()
        a = self.expr(t, scope, depth + 1)
        b = self.expr(t, scope, depth + 1)
        if t in (INT, LONG):
            if kind < 0.55:
                op = r.choice(["+", "-", "*", "&", "|", "^"])
                return f"(({a}) {op} ({b}))"
            if kind < 0.70:
                op = r.choice(["/", "%"])
                one = "1L" if t == LONG else "1"
                return f"(({a}) {op} ((({b})) | {one}))"
            if kind < 0.80 and t == INT:
                op = r.choice(["<<", ">>"])
                return f"(({a}) {op} (({b}) & 31))"
            if kind < 0.86:
                return f"(~({a}))"
            if kind < 0.92:
                return f"(-({a}))"
            cond = self.bool_expr(scope, depth + 1)
            return f"(({cond}) ? ({a}) : ({b}))"
        # float / double
        if kind < 0.6:
            op = r.choice(["+", "-", "*"])
            return f"(({a}) {op} ({b}))"
        if kind < 0.72:
            return f"(({a}) / ({b}))"  # IEEE: inf/nan are fine & must agree
        if kind < 0.80 and t == DOUBLE:
            pick = r.random()
            if pick < 0.34:
                return f"(Math.Sqrt(Math.Abs({a})))"
            if pick < 0.67:
                return f"(Math.Floor({a}))"
            return f"(Math.Ceiling({a}))"
        if kind < 0.88:
            return f"(-({a}))"
        cond = self.bool_expr(scope, depth + 1)
        return f"(({cond}) ? ({a}) : ({b}))"

    def bool_expr(self, scope: _Scope, depth: int = 0) -> str:
        r = self.rng
        if depth >= 3:
            bv = scope.of_type(BOOL)
            if bv and r.random() < 0.5:
                return r.choice(bv).name
            t = r.choice([INT, DOUBLE])
            return f"(({self.atom(t, scope)}) {r.choice(['<', '>', '<=', '>=', '==', '!='])} ({self.atom(t, scope)}))"
        roll = r.random()
        if roll < 0.5:
            t = r.choice([INT, LONG, DOUBLE])
            op = r.choice(["<", ">", "<=", ">=", "==", "!="])
            return f"(({self.expr(t, scope, depth + 1)}) {op} ({self.expr(t, scope, depth + 1)}))"
        if roll < 0.7:
            op = r.choice(["&&", "||"])
            return f"(({self.bool_expr(scope, depth + 1)}) {op} ({self.bool_expr(scope, depth + 1)}))"
        if roll < 0.8:
            return f"(!({self.bool_expr(scope, depth + 1)}))"
        bv = scope.of_type(BOOL)
        if bv:
            return r.choice(bv).name
        return r.choice(["true", "false"])

    # ----------------------------------------------------------- statements

    def stmt(self, scope: _Scope) -> None:
        """Emit one random statement (possibly compound)."""
        if not self.spend():
            return
        r = self.rng
        choices = [
            (self.st_assign, 26),
            (self.st_decl, 10),
            (self.st_array_store, 12),
            (self.st_if, 10),
            (self.st_for, 8 if self.loop_depth < 2 else 0),
            (self.st_while, 4 if self.loop_depth < 2 else 0),
            # calls inside nested loops multiply trip counts fast; keep the
            # worst-case interpreted instruction count tame (helpers contain
            # loops of their own, so only call them from shallow positions)
            (self.st_crc_call, 8 if self.loop_depth <= (0 if self.in_helper else 1) else 0),
            (self.st_virtual, 6),
            (self.st_boxing, 6),
            (self.st_struct, 5),
            (self.st_try, 6 if self.in_try < 2 else 0),
            (self.st_length_walk, 6 if self.loop_depth < 2 else 0),
            (self.st_break_continue, 4 if self.loop_depth > 0 else 0),
            (self.st_writeline, 2),
        ]
        total = sum(w for _, w in choices)
        pick = r.uniform(0, total)
        acc = 0.0
        for fn, w in choices:
            acc += w
            if pick <= acc and w > 0:
                fn(scope)
                return

    def st_assign(self, scope: _Scope) -> None:
        r = self.rng
        if not scope.vars:
            self.st_decl(scope)
            return
        writable = [v for v in scope.vars if v.mutable]
        if not writable:
            self.st_decl(scope)
            return
        v = r.choice(writable)
        if v.type in NUMERIC and r.random() < 0.4:
            op = r.choice(["+=", "-=", "*="] if v.type in (FLOAT, DOUBLE) else ["+=", "-=", "*=", "&=", "|=", "^="])
            self.emit(f"{v.name} {op} {self.expr(v.type, scope, 1)};")
        elif v.type == INT and r.random() < 0.3:
            self.emit(f"{v.name}{r.choice(['++', '--'])};")
        else:
            self.emit(f"{v.name} = {self.expr(v.type, scope)};")

    def st_decl(self, scope: _Scope) -> None:
        t = self.rng.choice([INT, INT, LONG, DOUBLE, FLOAT, BOOL])
        name = self.fresh("v")
        self.emit(f"{t} {name} = {self.expr(t, scope)};")
        scope.vars.append(_Var(name, t))

    def st_array_store(self, scope: _Scope) -> None:
        r = self.rng
        if not scope.arrays:
            return
        a = r.choice(scope.arrays)
        ints = scope.of_type(INT)
        idx = f"({r.choice(ints).name} & {a.size - 1})" if ints else str(r.randrange(a.size))
        value = self.expr(a.elem, scope, 1)
        if a.kind == "sz":
            target = f"{a.name}[{idx}]"
        elif a.kind == "rect":
            target = f"{a.name}[{idx}, {r.randrange(a.size)}]"
        else:
            target = f"{a.name}[{idx}][{r.randrange(a.size)}]"
        op = r.choice(["=", "=", "+="])
        self.emit(f"{target} {op} {value};")

    def st_if(self, scope: _Scope) -> None:
        self.emit(f"if ({self.bool_expr(scope)}) {{")
        self.indent += 1
        inner = _Scope(list(scope.vars), list(scope.arrays))
        for _ in range(self.rng.randint(1, 2)):
            self.stmt(inner)
        self.indent -= 1
        if self.rng.random() < 0.5:
            self.emit("} else {")
            self.indent += 1
            inner = _Scope(list(scope.vars), list(scope.arrays))
            self.stmt(inner)
            self.indent -= 1
        self.emit("}")

    def st_for(self, scope: _Scope) -> None:
        i = self.fresh("i")
        bounds = [3, 4, 5, 8, 10] if self.loop_depth == 0 else [2, 3]
        bound = self.rng.choice(bounds)
        self.emit(f"for (int {i} = 0; {i} < {bound}; {i}++) {{")
        self._loop_body(scope, _Var(i, INT, mutable=False))

    def st_length_walk(self, scope: _Scope) -> None:
        """The canonical bounds-check-elimination shape: i < a.Length."""
        sz = [a for a in scope.arrays if a.kind == "sz"]
        if not sz:
            self.st_for(scope)
            return
        a = self.rng.choice(sz)
        i = self.fresh("i")
        self.emit(f"for (int {i} = 0; {i} < {a.name}.Length; {i}++) {{")
        self.indent += 1
        inner = _Scope(list(scope.vars), list(scope.arrays))
        inner.vars.append(_Var(i, INT, mutable=False))
        acc = [v for v in inner.of_type(a.elem) if v.mutable]
        if acc:
            dst = self.rng.choice(acc).name
            self.emit(f"{dst} += {a.name}[{i}];")
        if self.rng.random() < 0.5:
            self.emit(f"{a.name}[{i}] = {self.expr(a.elem, inner, 2)};")
        self.loop_depth += 1
        if self.rng.random() < 0.4:
            self.stmt(inner)
        self.loop_depth -= 1
        self.indent -= 1
        self.emit("}")

    def st_while(self, scope: _Scope) -> None:
        c = self.fresh("w")
        bound = self.rng.randint(2, 6) if self.loop_depth == 0 else self.rng.randint(2, 3)
        self.emit(f"int {c} = {bound};")
        scope.vars.append(_Var(c, INT, mutable=False))
        kind = self.rng.random()
        # the decrement comes FIRST so a generated `continue` cannot skip it
        if kind < 0.7:
            self.emit(f"while ({c} > 0) {{")
            self.indent += 1
            self.emit(f"{c}--;")
            inner = _Scope(list(scope.vars), list(scope.arrays))
            self.loop_depth += 1
            for _ in range(self.rng.randint(1, 2)):
                self.stmt(inner)
            self.loop_depth -= 1
            self.indent -= 1
            self.emit("}")
        else:
            self.emit("do {")
            self.indent += 1
            self.emit(f"{c}--;")
            inner = _Scope(list(scope.vars), list(scope.arrays))
            self.loop_depth += 1
            self.stmt(inner)
            self.loop_depth -= 1
            self.indent -= 1
            self.emit(f"}} while ({c} > 0);")

    def _loop_body(self, scope: _Scope, induction: _Var) -> None:
        self.indent += 1
        inner = _Scope(list(scope.vars), list(scope.arrays))
        inner.vars.append(induction)
        self.loop_depth += 1
        for _ in range(self.rng.randint(1, 3)):
            self.stmt(inner)
        self.loop_depth -= 1
        self.indent -= 1
        self.emit("}")

    def st_break_continue(self, scope: _Scope) -> None:
        word = self.rng.choice(["break", "continue"])
        self.emit(f"if ({self.bool_expr(scope, 2)}) {{ {word}; }}")

    def st_crc_call(self, scope: _Scope) -> None:
        if not self.helpers:
            return
        h = self.rng.choice(self.helpers)
        args = ", ".join(self.expr(p, scope, 2) for p in h.params)
        call = f"{h.name}({args})"
        if h.ret != INT:
            call = f"((int)({call}))"
        self.emit(f"crc = crc * 31 + {call};")

    def st_virtual(self, scope: _Scope) -> None:
        v = self.fresh("vv")
        cls = self.rng.choice(["VBase", "VDeriv"])
        self.emit(f"VBase {v} = new {cls}();")
        self.emit(f"crc = crc * 31 + {v}.Vm({self.expr(INT, scope, 2)});")

    def st_boxing(self, scope: _Scope) -> None:
        r = self.rng
        o = self.fresh("o")
        if r.random() < 0.6:
            src = self.expr(INT, scope, 2)
            self.emit(f"object {o} = (object)({src});")
            self.emit(f"crc = crc * 31 + (int){o};")
        else:
            src = self.expr(DOUBLE, scope, 2)
            self.emit(f"object {o} = (object)({src});")
            self.emit(f"crc = crc * 31 + (int)((double){o});")

    def st_struct(self, scope: _Scope) -> None:
        r = self.rng
        s = self.fresh("sp")
        self.emit(f"SPack {s} = new SPack();")
        self.emit(f"{s}.a = {self.expr(INT, scope, 2)};")
        self.emit(f"{s}.b = {self.expr(LONG, scope, 2)};")
        self.emit(f"{s}.c = {self.expr(DOUBLE, scope, 2)};")
        if r.random() < 0.5:
            t = self.fresh("sp")
            self.emit(f"SPack {t} = {s};")
            self.emit(f"{t}.a += 1;")
            self.emit(f"crc = crc * 31 + {s}.a * 2 + {t}.a;")
        else:
            o = self.fresh("ob")
            self.emit(f"object {o} = (object){s};")
            self.emit(f"SPack {self.fresh('sp')}u = (SPack){o};")
            self.emit(f"crc = crc * 31 + {s}.a + (int){s}.b;")

    def st_try(self, scope: _Scope) -> None:
        r = self.rng
        self.emit("try {")
        self.indent += 1
        self.in_try += 1
        inner = _Scope(list(scope.vars), list(scope.arrays))
        fault = r.random()
        if fault < 0.35 and inner.arrays:
            a = r.choice(inner.arrays)
            access = f"{a.name}[{a.size + r.randint(0, 3)}]"
            if a.kind == "rect":
                access = f"{a.name}[{a.size + 1}, 0]"
            elif a.kind == "jagged":
                access = f"{a.name}[{a.size + 1}][0]"
            if a.elem == INT:
                self.emit(f"crc += {access};")
            else:
                self.emit(f"crc += (int){access};")
        elif fault < 0.55:
            z = self.fresh("z")
            self.emit(f"int {z} = {self.expr(INT, inner, 2)};")
            self.emit(f"crc += 100 / ({z} - {z});")
        elif fault < 0.7:
            exc = r.choice(["ArithmeticException", "ArgumentException", "Exception"])
            self.emit(f'if ({self.bool_expr(inner, 2)}) {{ throw new {exc}("fuzz"); }}')
            self.stmt(inner)
        else:
            for _ in range(r.randint(1, 2)):
                self.stmt(inner)
        self.in_try -= 1
        self.indent -= 1
        catches = []
        if fault < 0.35:
            catches = ["IndexOutOfRangeException"]
        elif fault < 0.55:
            catches = ["ArithmeticException"]
        elif r.random() < 0.8:
            catches = ["Exception"]
        if r.random() < 0.5:
            catches.append("Exception") if "Exception" not in catches else None
        for i, cname in enumerate(catches):
            e = self.fresh("e")
            self.emit(f"}} catch ({cname} {e}) {{")
            self.indent += 1
            self.emit(f"crc = crc * 31 + {11 + 2 * i};")
            self.indent -= 1
        if not catches or r.random() < 0.4:
            self.emit("} finally {")
            self.indent += 1
            self.emit("crc = crc * 31 + 5;")
            self.indent -= 1
        self.emit("}")

    def st_writeline(self, scope: _Scope) -> None:
        self.emit(f"Console.WriteLine({self.expr(INT, scope, 2)});")

    # -------------------------------------------------------------- helpers

    def gen_helper(self, index: int) -> List[str]:
        r = self.rng
        nparams = r.randint(1, 3)
        params = [r.choice([INT, INT, LONG, DOUBLE]) for _ in range(nparams)]
        ret = r.choice([INT, INT, LONG, DOUBLE])
        h = _Helper(f"H{index}", params, ret)
        scope = _Scope([_Var(f"p{i}", t) for i, t in enumerate(params)])
        saved, self.lines, self.indent = self.lines, [], 1
        # helpers draw on their own small budget, not Main's
        main_budget, self.budget = self.budget, r.randint(3, 6)
        self.in_helper = True
        sig = ", ".join(f"{t} p{i}" for i, t in enumerate(params))
        self.emit(f"static {ret} {h.name}({sig}) {{")
        self.indent += 1
        if r.random() < 0.35 and len(params) >= 2:
            # tiny, order-sensitive body: small enough to qualify for the
            # inlining pass on every profile, and parameter order matters,
            # so a buggy inliner that mis-binds arguments is observable
            a = f"(({ret})(p0))"
            b = f"(({ret})(p1))"
            combine = r.choice([f"({a} - ({b} * ({ret})2))", f"(({a} * ({ret})3) - {b})"])
            self.emit(f"return {combine};")
        else:
            # every body owns a 'crc' accumulator: the crc-mixing statement
            # generators work identically in helpers and in Main
            self.emit(f"int crc = {index + 1};")
            scope.vars.append(_Var("crc", INT))
            for _ in range(r.randint(1, 3)):
                self.stmt(scope)
            # helpers fold their locals into the return value
            parts = [self.expr(ret, scope, 2)]
            for v in scope.vars[:3]:
                if v.type in NUMERIC:
                    parts.append(f"(({ret})({v.name}))")
            self.emit(f"return {' + '.join(f'({p})' for p in parts)};")
        self.indent -= 1
        self.emit("}")
        body, self.lines, self.indent = self.lines, saved, 0
        self.budget = main_budget
        self.in_helper = False
        self.helpers.append(h)
        return body

    # ----------------------------------------------------------------- main

    def generate(self) -> str:
        r = self.rng
        # helpers come first; each owns a private 'crc' accumulator so the
        # crc-mixing statement generators work there too
        helper_bodies: List[str] = []
        for i in range(r.randint(0, 3)):
            helper_bodies.extend(self.gen_helper(i))

        self.lines = []
        self.indent = 1
        self.emit("static int Main() {")
        self.indent += 1
        self.emit("int crc = 17;")
        scope = _Scope([_Var("crc", INT)])

        # local primitive seed values
        for _ in range(r.randint(2, 4)):
            self.st_decl(scope)

        # arrays
        for _ in range(r.randint(1, 3)):
            elem = r.choice([INT, INT, DOUBLE])
            size = r.choice(ARRAY_SIZES)
            kind = r.choice(["sz", "sz", "rect", "jagged"])
            name = self.fresh("arr")
            if kind == "sz":
                self.emit(f"{elem}[] {name} = new {elem}[{size}];")
                i = self.fresh("i")
                self.emit(
                    f"for (int {i} = 0; {i} < {name}.Length; {i}++) "
                    f"{{ {name}[{i}] = {self._fill(elem, i)}; }}"
                )
            elif kind == "rect":
                self.emit(f"{elem}[,] {name} = new {elem}[{size}, {size}];")
                i, k = self.fresh("i"), self.fresh("k")
                self.emit(
                    f"for (int {i} = 0; {i} < {size}; {i}++) "
                    f"for (int {k} = 0; {k} < {size}; {k}++) "
                    f"{{ {name}[{i}, {k}] = {self._fill(elem, i, k)}; }}"
                )
            else:
                self.emit(f"{elem}[][] {name} = new {elem}[{size}][];")
                i, k = self.fresh("i"), self.fresh("k")
                self.emit(f"for (int {i} = 0; {i} < {size}; {i}++) {{")
                self.indent += 1
                self.emit(f"{name}[{i}] = new {elem}[{size}];")
                self.emit(
                    f"for (int {k} = 0; {k} < {size}; {k}++) "
                    f"{{ {name}[{i}][{k}] = {self._fill(elem, i, k)}; }}"
                )
                self.indent -= 1
                self.emit("}")
            scope.arrays.append(_Array(name, elem, size, kind))

        # a timed section around a deterministic kernel
        section = r.random() < 0.8
        if section:
            self.emit('Bench.Start("fuzz:kernel");')
        body_budget = self.budget
        while self.budget > 0:
            self.stmt(scope)
            if self.budget == body_budget:  # a stmt kind declined to emit
                self.budget -= 1
            body_budget = self.budget
        if section:
            self.emit('Bench.Stop("fuzz:kernel");')

        # fold every live value into the checksum
        for v in scope.vars:
            if v.name == "crc":
                continue
            if v.type == BOOL:
                self.emit(f"crc = crc * 31 + ({v.name} ? 1 : 0);")
            else:
                self.emit(f"crc = crc * 31 + ((int)({v.name}));")
        for a in scope.arrays:
            i = self.fresh("i")
            if a.kind == "sz":
                self.emit(
                    f"for (int {i} = 0; {i} < {a.name}.Length; {i}++) "
                    f"{{ crc = crc * 31 + ((int)({a.name}[{i}])); }}"
                )
            elif a.kind == "rect":
                self.emit(
                    f"for (int {i} = 0; {i} < {a.size}; {i}++) "
                    f"{{ crc = crc * 31 + ((int)({a.name}[{i}, {a.size // 2}])); }}"
                )
            else:
                self.emit(
                    f"for (int {i} = 0; {i} < {a.size}; {i}++) "
                    f"{{ crc = crc * 31 + ((int)({a.name}[{i}][{a.size // 2}])); }}"
                )

        # occasionally let a guest exception escape Main entirely: engines
        # must then agree on the *exception type* instead of the value
        if r.random() < 0.1:
            exc = r.choice(["ArithmeticException", "ArgumentException"])
            self.emit(f'if ((crc & 3) == {r.randrange(4)}) {{ throw new {exc}("escape"); }}')

        self.emit('Bench.Result("fuzz:crc", (double)crc);')
        self.emit("return crc;")
        self.indent -= 1
        self.emit("}")
        main_body = self.lines

        out: List[str] = ["class Fuzz {"]
        out.extend(helper_bodies)
        out.extend(main_body)
        out.append("}")
        out.append("struct SPack { int a; long b; double c; }")
        out.append("class VBase { VBase() {} virtual int Vm(int x) { return x * 3 - 1; } }")
        out.append(
            "class VDeriv : VBase { VDeriv() : base() {} "
            "override int Vm(int x) { return x * 5 + (x >> 1); } }"
        )
        return "\n".join(out) + "\n"

    def _fill(self, elem: str, *ivars: str) -> str:
        mix = " + ".join(ivars) if ivars else "1"
        if elem == INT:
            return f"({mix}) * 3 - 1"
        return f"(double)(({mix}) * 2) * 0.5"


def generate_program(seed: int, budget: int = 40) -> GeneratedProgram:
    """Generate one well-typed Kernel-C# program from ``seed``.

    ``budget`` caps the number of random statements (roughly; compound
    statements recurse within it), bounding both source size and runtime.
    """
    source = _Gen(seed, budget).generate()
    return GeneratedProgram(seed=seed, source=source, budget=budget)
