"""Kernel-C# source renderer for :mod:`repro.lang.ast_nodes` trees.

The shrinker works structurally: parse the failing program, mutate the AST,
render back to source, recompile.  The renderer therefore only needs to be
*round-trip correct* (parse(render(parse(s))) == parse(s) semantically),
not pretty: composite expressions are fully parenthesized so operator
precedence never needs reconstructing.
"""

from __future__ import annotations

from typing import List, Optional

from ..lang import ast_nodes as ast

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r"}


def _escape(text: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def _float_text(value: float, single: bool) -> str:
    text = repr(value)
    if "e" not in text and "E" not in text and "." not in text:
        text += ".0"
    return text + ("f" if single else "")


def render_expr(e: ast.Expr) -> str:
    if isinstance(e, ast.IntLit):
        text = str(e.value) + ("L" if e.is_long else "")
        return f"({text})" if e.value < 0 else text
    if isinstance(e, ast.FloatLit):
        text = _float_text(e.value, e.is_single)
        return f"({text})" if e.value < 0 else text
    if isinstance(e, ast.BoolLit):
        return "true" if e.value else "false"
    if isinstance(e, ast.StringLit):
        return f'"{_escape(e.value)}"'
    if isinstance(e, ast.CharLit):
        ch = chr(e.value)
        if ch == "'":
            return "'\\''"
        return f"'{_ESCAPES.get(ch, ch)}'"
    if isinstance(e, ast.NullLit):
        return "null"
    if isinstance(e, ast.Name):
        return e.ident
    if isinstance(e, ast.ThisExpr):
        return "this"
    if isinstance(e, ast.Member):
        return f"{render_expr(e.target)}.{e.name}"
    if isinstance(e, ast.Index):
        idx = ", ".join(render_expr(i) for i in e.indices)
        return f"{render_expr(e.target)}[{idx}]"
    if isinstance(e, ast.Call):
        args = ", ".join(render_expr(a) for a in e.args)
        return f"{render_expr(e.callee)}({args})"
    if isinstance(e, ast.NewObject):
        args = ", ".join(render_expr(a) for a in e.args)
        return f"new {e.type_name}({args})"
    if isinstance(e, ast.NewArray):
        dims = ", ".join(render_expr(d) for d in e.dims)
        elem = e.element.name if isinstance(e.element, ast.TypeExpr) else str(e.element)
        suffix = "".join("[" + "," * (r - 1) + "]" for r in e.extra_ranks)
        return f"new {elem}[{dims}]{suffix}"
    if isinstance(e, ast.Unary):
        return f"({e.op}({render_expr(e.operand)}))"
    if isinstance(e, ast.Binary):
        return f"(({render_expr(e.left)}) {e.op} ({render_expr(e.right)}))"
    if isinstance(e, ast.Logical):
        return f"(({render_expr(e.left)}) {e.op} ({render_expr(e.right)}))"
    if isinstance(e, ast.Conditional):
        return (
            f"(({render_expr(e.cond)}) ? ({render_expr(e.then)})"
            f" : ({render_expr(e.other)}))"
        )
    if isinstance(e, ast.Assign):
        return f"{render_expr(e.target)} {e.op}= {render_expr(e.value)}"
    if isinstance(e, ast.IncDec):
        if e.prefix:
            return f"({e.op}{render_expr(e.target)})"
        return f"({render_expr(e.target)}{e.op})"
    if isinstance(e, ast.Cast):
        return f"(({e.type_expr})({render_expr(e.operand)}))"
    raise TypeError(f"cannot render expression {type(e).__name__}")


def _render_stmt(s: ast.Stmt, out: List[str], indent: int) -> None:
    pad = "    " * indent

    def line(text: str) -> None:
        out.append(pad + text)

    if isinstance(s, ast.Block):
        line("{")
        for inner in s.statements:
            _render_stmt(inner, out, indent + 1)
        line("}")
    elif isinstance(s, ast.VarDecl):
        parts = []
        for name, init in zip(s.names, s.inits):
            parts.append(name if init is None else f"{name} = {render_expr(init)}")
        line(f"{s.type_expr} {', '.join(parts)};")
    elif isinstance(s, ast.ExprStmt):
        line(f"{render_expr(s.expr)};")
    elif isinstance(s, ast.If):
        line(f"if ({render_expr(s.cond)})")
        _render_stmt(_blockify(s.then), out, indent)
        if s.other is not None:
            line("else")
            _render_stmt(_blockify(s.other), out, indent)
    elif isinstance(s, ast.While):
        line(f"while ({render_expr(s.cond)})")
        _render_stmt(_blockify(s.body), out, indent)
    elif isinstance(s, ast.DoWhile):
        line("do")
        _render_stmt(_blockify(s.body), out, indent)
        line(f"while ({render_expr(s.cond)});")
    elif isinstance(s, ast.For):
        if s.init is None:
            init = ";"
        elif isinstance(s.init, ast.VarDecl):
            parts = []
            for name, iexpr in zip(s.init.names, s.init.inits):
                parts.append(
                    name if iexpr is None else f"{name} = {render_expr(iexpr)}"
                )
            init = f"{s.init.type_expr} {', '.join(parts)};"
        else:
            init = f"{render_expr(s.init.expr)};"
        cond = "" if s.cond is None else render_expr(s.cond)
        update = ", ".join(render_expr(u) for u in s.update)
        line(f"for ({init} {cond}; {update})")
        _render_stmt(_blockify(s.body), out, indent)
    elif isinstance(s, ast.Return):
        line("return;" if s.value is None else f"return {render_expr(s.value)};")
    elif isinstance(s, ast.Break):
        line("break;")
    elif isinstance(s, ast.Continue):
        line("continue;")
    elif isinstance(s, ast.Throw):
        line("throw;" if s.value is None else f"throw {render_expr(s.value)};")
    elif isinstance(s, ast.Try):
        line("try")
        _render_stmt(_blockify(s.body), out, indent)
        for clause in s.catches:
            var = f" {clause.var_name}" if clause.var_name else ""
            line(f"catch ({clause.type_name}{var})")
            _render_stmt(_blockify(clause.body), out, indent)
        if s.finally_body is not None:
            line("finally")
            _render_stmt(_blockify(s.finally_body), out, indent)
    elif isinstance(s, ast.Lock):
        line(f"lock ({render_expr(s.target)})")
        _render_stmt(_blockify(s.body), out, indent)
    else:
        raise TypeError(f"cannot render statement {type(s).__name__}")


def _blockify(s: Optional[ast.Stmt]) -> ast.Block:
    if isinstance(s, ast.Block):
        return s
    block = ast.Block()
    if s is not None:
        block.statements.append(s)
    return block


def render_program(program: ast.Program) -> str:
    out: List[str] = []
    for cls in program.classes:
        keyword = "struct" if cls.is_struct else "class"
        base = f" : {cls.base_name}" if cls.base_name else ""
        out.append(f"{keyword} {cls.name}{base} {{")
        for f in cls.fields:
            mods = "static " if f.is_static else ""
            init = "" if f.init is None else f" = {render_expr(f.init)}"
            out.append(f"    {mods}{f.type_expr} {f.name}{init};")
        for m in cls.methods:
            mods = ""
            if m.is_static:
                mods += "static "
            if m.is_virtual:
                mods += "virtual "
            if m.is_override:
                mods += "override "
            params = ", ".join(f"{p.type_expr} {p.name}" for p in m.params)
            if m.is_ctor:
                base_init = ""
                if m.base_args is not None:
                    base_init = (
                        " : base("
                        + ", ".join(render_expr(a) for a in m.base_args)
                        + ")"
                    )
                out.append(f"    {cls.name}({params}){base_init}")
            else:
                out.append(f"    {mods}{m.return_type} {m.name}({params})")
            _render_stmt(m.body, out, 1)
        out.append("}")
    return "\n".join(out) + "\n"
