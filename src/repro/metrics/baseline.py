"""Benchmark-trajectory artifacts: collect, serialize, and compare.

The paper's argument is comparative (CLR vs Mono vs Rotor vs the JVMs) and
this repo's engine is deterministic, so a perf baseline can be an *exact*
artifact: ``BENCH_<seq>.json`` records, for every graph-suite benchmark on
every runtime profile, the simulated cycles, instruction counts, metric
snapshots, and the cross-runtime cycle ratios — keyed by schema version and
git SHA.  ``repro-bench compare`` diffs two artifacts under per-metric
tolerances and exits nonzero on regression; CI runs it between the base
ref's artifact and the PR's, so a JIT or cost-model change that silently
shifts a runtime ratio fails the gate instead of shipping unnoticed.

Tolerance policy:

* ``cycles`` and ``instructions`` are **one-sided**: getting slower beyond
  the tolerance is a regression, getting faster is reported as improvement
  (and never fails the gate).  The engine is deterministic, so any drift at
  all means the generated code or cost model changed; the small default
  tolerance leaves room for intentional cost-model tweaks.
* ``ratio`` (per-benchmark cycles relative to the reference runtime,
  CLR 1.1 when present) is **two-sided**: the ratios *are* the paper's
  claims, so a shift in either direction beyond tolerance is flagged.

A benchmark or profile that disappears from the new artifact is a
regression (coverage loss); a new one is informational.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import time
from typing import Dict, Iterable, List, Optional, Tuple

BENCH_SCHEMA = "repro.bench/1"

#: artifact filename pattern: BENCH_<seq>.json
ARTIFACT_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: default per-metric relative tolerances (fractions, not percent)
DEFAULT_TOLERANCES: Dict[str, float] = {
    "cycles": 0.02,
    "instructions": 0.02,
    "ratio": 0.05,
}

#: runtime whose cycles anchor the per-benchmark ratio series
RATIO_BASE = "clr-1.1"


def graph_suite(scale: float = 1.0) -> List[Tuple[str, Dict[str, object]]]:
    """The graph-experiment benchmarks captured per artifact, with sizes
    scaled by ``scale`` (1.0 = the CI gate's sizes; tests use far less).

    Each entry maps onto the paper's figures: graphs 1-3 (arith), 4
    (loops), 5 (exceptions), 6-8 (math), 9-11 (SciMark kernels), 12
    (matrix styles), plus one threaded benchmark so scheduler/monitor
    metrics have a trajectory too.
    """

    def reps(base: int, floor: int) -> int:
        return max(floor, int(base * scale))

    return [
        ("micro.arith", {"Reps": reps(3000, 50)}),
        ("micro.loop", {"Reps": reps(15000, 200)}),
        ("micro.exception", {"Reps": reps(200, 10), "Depth": 6}),
        ("micro.math", {"Reps": reps(800, 20)}),
        ("grande.sieve", {"Limit": reps(5000, 200), "Reps": 1}),
        ("scimark.sor", {"N": 16, "Iters": reps(4, 1), "Seed": 101010}),
        ("scimark.fft", {"N": 64, "Reps": 1, "Seed": 101010}),
        ("scimark.montecarlo", {"Samples": reps(1500, 100), "Seed": 101010}),
        ("clispec.matrix", {"N": 12, "Reps": reps(3, 1)}),
        ("threads.sync", {"Threads": 4, "Reps": reps(40, 5)}),
    ]


def resolve_profiles(spec=None):
    """Normalize a profile selection — ``None`` (all), a comma-separated
    string, or an iterable of names — to RuntimeProfile objects.  Shared
    by ``repro-bench`` and the experiment service so a submission and a
    direct run resolve identically.  Unknown names raise ValueError."""
    from ..runtimes import ALL_PROFILES, BY_NAME, get_profile

    if not spec:
        return list(ALL_PROFILES)
    if isinstance(spec, str):
        spec = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in spec if name not in BY_NAME]
    if unknown:
        raise ValueError(
            f"unknown profiles {', '.join(unknown)} "
            f"(known: {', '.join(BY_NAME)})"
        )
    return [get_profile(name) for name in spec]


def resolve_suite(spec=None, scale: float = 1.0):
    """Normalize a benchmark selection to ``[(name, params), ...]``.

    ``None`` means the full graph suite at ``scale``; a comma-separated
    string or list of names selects a scaled subset; a list entry may
    also be an explicit ``(name, params)`` pair.  Unknown names raise
    ValueError naming the available suite."""
    suite = graph_suite(scale)
    if not spec:
        return suite
    if isinstance(spec, str):
        spec = [name.strip() for name in spec.split(",") if name.strip()]
    by_name = dict(suite)
    out = []
    missing = []
    for entry in spec:
        if isinstance(entry, str):
            if entry in by_name:
                out.append((entry, by_name[entry]))
            else:
                missing.append(entry)
        else:
            name, params = entry
            out.append((name, dict(params or {})))
    if missing:
        raise ValueError(
            f"not in the graph suite: {', '.join(missing)} "
            f"(available: {', '.join(name for name, _ in suite)})"
        )
    return out


def current_git_sha(cwd: Optional[str] = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


# --------------------------------------------------------- artifact assembly


def entry_from_run(run) -> dict:
    """The per-profile artifact entry of one ProfileRun — the exact data a
    ``BENCH_*.json`` records per (benchmark, profile).  Must agree field
    for field with :func:`repro.store.entry_from_record` (tested), since
    store-served and freshly-executed cells land in the same artifact."""
    return {
        "cycles": run.total_cycles,
        "instructions": run.instructions,
        "allocated_bytes": run.allocated_bytes,
        "gc_collections": run.gc_collections,
        "sections": {
            s: {"cycles": sec.cycles, "ops": sec.ops, "flops": sec.flops}
            for s, sec in run.sections.items()
        },
        "metrics": run.metrics,
    }


def build_artifact(
    suite,
    profile_names,
    entries_by_bench: Dict[str, Dict[str, dict]],
    *,
    scale: float,
    git_sha: str,
) -> dict:
    """Assemble the BENCH artifact dict from per-profile entries.

    Shared by :func:`collect` (entries from live ProfileRuns) and
    :meth:`repro.store.ExperimentStore.export_artifact` (entries from
    stored records), so an export can be byte-identical to the original
    collection.  Ratios are recomputed here — cycle values round-trip
    JSON exactly, so recomputation is exact too."""
    benchmarks: Dict[str, dict] = {}
    for name, params in suite:
        entries = entries_by_bench.get(name, {})
        per_profile = {
            pname: entries[pname] for pname in profile_names if pname in entries
        }
        ratios: Dict[str, float] = {}
        if per_profile:
            base_name = (
                RATIO_BASE
                if RATIO_BASE in per_profile
                else next(p for p in profile_names if p in per_profile)
            )
            base_cycles = per_profile[base_name]["cycles"]
            ratios = {
                f"{pname}/{base_name}": (
                    entry["cycles"] / base_cycles if base_cycles else 0.0
                )
                for pname, entry in per_profile.items()
                if pname != base_name
            }
        benchmarks[name] = {
            "params": dict(params),
            "profiles": per_profile,
            "ratios": ratios,
        }
    return {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha,
        "scale": scale,
        "profiles": list(profile_names),
        "benchmarks": benchmarks,
    }


# ------------------------------------------------------------------ collect


def collect(
    profiles=None,
    suite: Optional[Iterable[Tuple[str, Dict[str, object]]]] = None,
    scale: float = 1.0,
    git_sha: Optional[str] = None,
    progress=None,
    jobs=None,
    cache=None,
    plan=None,
    cell_timeout: Optional[float] = None,
    dispatch: Optional[str] = None,
    store=None,
    trace=None,
    record: bool = True,
) -> dict:
    """Run the suite on every profile with metrics attached; return the
    artifact dict (pure data, JSON-ready).

    ``jobs`` (int or ``"auto"``) fans the (benchmark x profile) cells out
    over a :mod:`repro.parallel` process pool; the merge is keyed by cell
    index, so the returned artifact is bit-identical to a serial
    collection.  The pool's operational report lands on the function
    attribute ``collect.last_report`` (wall-clock telemetry only — it never
    enters the artifact).  ``cache`` is an optional
    :class:`repro.parallel.CompileCache` shared by workers and serial runs
    alike.

    ``plan`` is an optional :class:`repro.faults.FaultPlan`: cells the
    plan fails come back as structured failures instead of aborting the
    collection — the artifact then carries a ``failures`` key, failed
    (benchmark, profile) entries are simply absent from ``profiles`` /
    ``ratios``, and the full :class:`repro.faults.FaultMatrixReport` lands
    on ``collect.last_faults``.  An artifact collected with no plan is
    byte-identical to one collected before fault injection existed.

    ``dispatch`` selects the VM dispatch engine (``classic`` | ``threaded``
    | ``threaded-nofuse``).  The engines are bit-identical in every number
    that enters the artifact, so the simulated data never shifts; a
    non-classic engine additionally stamps a top-level ``dispatch`` key
    carrying the measured wall-clock speedup vs classic
    (``dispatch.speedup`` — host telemetry, the one deliberately
    nondeterministic entry).  Classic/default collections carry no such
    key, so their artifacts stay byte-identical to pre-knob layouts.

    ``store`` is an optional :class:`repro.store.ExperimentStore`: every
    cell is first looked up content-addressed (``sha256(COMPILER_VERSION,
    profile, benchmark, canonical overrides, dispatch, seed)``) and a hit
    is served from the store with zero compiles and zero guest cycles —
    the served artifact is byte-identical to a fresh serial collection
    because stored records round-trip ProfileRuns exactly.  Novel cells
    execute as usual and are appended to the store, together with a run
    row recording the collection; memo accounting lands on
    ``collect.last_store``.  Memoization records only clean runs, so it
    cannot be combined with a fault plan.

    ``record=False`` serves store hits without appending the collection —
    the daemon's degraded *memo-only* mode runs warm submissions through
    a read-only store handle this way (admission guarantees every cell is
    a hit, so nothing novel is lost by not recording).

    ``trace`` is an optional :class:`repro.trace.TraceContext` (the
    daemon threads one through): ``store.lookup``, the pool fan-out, and
    ``store.record`` each open wall-clock spans in the submission's
    trace.  Tracing is operational telemetry only — it never changes a
    single byte of the returned artifact.
    """
    # imported here: the harness imports repro.metrics in turn
    from ..faults.report import CellFailure, annotate_cells
    from ..harness.runner import Runner, check_cross_profile_results
    from ..parallel import resolve_jobs, run_cells
    from ..runtimes import ALL_PROFILES
    from ..trace import NULL_CONTEXT

    trace = trace if trace is not None else NULL_CONTEXT

    profiles = list(profiles or ALL_PROFILES)
    suite = list(suite if suite is not None else graph_suite(scale))
    collect.last_report = None
    collect.last_faults = None
    collect.last_store = None
    sha = git_sha if git_sha is not None else current_git_sha()
    if store is not None and plan is not None:
        raise ValueError(
            "store memoization records only clean runs and cannot be "
            "combined with a fault plan"
        )

    runs_by_bench: Dict[str, Dict[str, object]] = {}
    faults_report = None
    use_pool = resolve_jobs(jobs) > 1 and len(suite) * len(profiles) > 1
    if use_pool or plan is not None or store is not None:
        cells = [
            (name, params or None, profile.name)
            for name, params in suite
            for profile in profiles
        ]
        precomputed = None
        keys = None
        if store is not None:
            with trace.child("store.lookup", cells=len(cells),
                             track="store") as lookup_span:
                keys = [
                    store.cell_key(name, pname, overrides=params, dispatch=dispatch)
                    for name, params, pname in cells
                ]
                precomputed = {}
                for index, key in enumerate(keys):
                    run = store.lookup_run(key)
                    if run is not None:
                        precomputed[index] = run
                lookup_span.set(hits=len(precomputed))
            collect.last_store = {
                "cells": len(cells),
                "hits": len(precomputed),
                "misses": len(cells) - len(precomputed),
            }
            if progress is not None:
                progress(
                    f"{len(precomputed)}/{len(cells)} cells served from "
                    f"the store ({store.path})"
                )
            # compile accounting is measured *here*, inside whatever
            # process runs the collection, so a daemon running jobs in
            # isolated workers gets each job's own delta instead of
            # sampling a shared global around an executor call (which
            # double-counts the moment two jobs overlap)
            from ..lang.compiler import COMPILE_STATS

            compiles_before = COMPILE_STATS["compile_source_calls"]
        spec = {
            "kind": "harness",
            "metrics": True,
            "cache_dir": None if cache is None else cache.root,
            "plan": plan,
            "cell_timeout": cell_timeout,
            "dispatch": dispatch,
        }
        if progress is not None:
            progress(f"{len(cells)} cells across jobs={jobs}")
        payloads, report = run_cells(
            spec, cells, jobs=jobs, precomputed=precomputed, trace=trace
        )
        collect.last_report = report
        for (name, _params, pname), run in zip(cells, payloads):
            if not isinstance(run, CellFailure):
                runs_by_bench.setdefault(name, {})[pname] = run
        for name, runs in runs_by_bench.items():
            check_cross_profile_results(name, runs)
        faults_report = annotate_cells(
            [(name, pname) for name, _params, pname in cells], payloads, plan
        )
        collect.last_faults = faults_report
        if store is not None:
            from ..store import run_to_record

            run_id = None
            if record:
                novel = [
                    {
                        "key": keys[index],
                        "benchmark": cells[index][0],
                        "profile": cells[index][2],
                        "params": cells[index][1],
                        "record": run_to_record(payloads[index]),
                    }
                    for index in range(len(cells))
                    if index not in precomputed
                    and not isinstance(payloads[index], CellFailure)
                ]
                with trace.child("store.record", novel=len(novel),
                                 track="store") as record_span:
                    run_id = store.record_collection(
                        git_sha=sha,
                        scale=scale,
                        profiles=[p.name for p in profiles],
                        suite=suite,
                        dispatch=dispatch,
                        store_hits=len(precomputed),
                        cell_keys={
                            f"{name}@{pname}": keys[index]
                            for index, (name, _params, pname) in enumerate(cells)
                        },
                        novel=novel,
                        failures=faults_report.failures,
                    )
                    record_span.set(run_id=run_id)
            collect.last_store["run_id"] = run_id
            collect.last_store["compile_calls"] = (
                COMPILE_STATS["compile_source_calls"] - compiles_before
            )
            collect.last_store["cells_executed"] = (
                collect.last_store["cells"] - collect.last_store["hits"]
            )
    else:
        runner = Runner(profiles=profiles, compile_cache=cache, dispatch=dispatch)
        for name, params in suite:
            if progress is not None:
                progress(f"{name} {params}")
            runs_by_bench[name] = runner.run(name, params or None, metrics=True)

    entries_by_bench = {
        name: {pname: entry_from_run(run) for pname, run in runs.items()}
        for name, runs in runs_by_bench.items()
    }
    artifact = build_artifact(
        suite,
        [p.name for p in profiles],
        entries_by_bench,
        scale=scale,
        git_sha=sha,
    )
    if faults_report is not None and faults_report.failures:
        # present only on faulted collections, so clean artifacts stay
        # byte-identical to the pre-fault-injection layout
        artifact["failures"] = faults_report.failures
    if dispatch is not None and dispatch != "classic":
        # present only on non-classic collections (same discipline as
        # ``failures``): the speedup is host wall-clock telemetry, the one
        # field that is *meant* to vary run to run
        if progress is not None:
            progress(f"measuring dispatch.speedup ({dispatch} vs classic)")
        artifact["dispatch"] = measure_dispatch_speedup(engine=dispatch, cache=cache)
    return artifact


#: the last collection's repro.parallel.PoolReport (None for serial runs)
collect.last_report = None

#: the last collection's repro.faults.FaultMatrixReport (None unless the
#: collection went through the pool path — always the case with a plan)
collect.last_faults = None

#: the last collection's store-memoization accounting ({"cells", "hits",
#: "misses", "run_id", "compile_calls", "cells_executed"}; None when no
#: store was attached).  ``compile_calls`` is the COMPILE_STATS delta
#: measured around this collection in the executing process — the value
#: the service's isolated job workers report back
collect.last_store = None


# ------------------------------------------------------- dispatch telemetry

#: smoke workload for :func:`measure_dispatch_speedup` — scaled so the
#: threaded engine's one-time translation cost (closure build + ``compile``)
#: amortizes into noise, while still finishing in CI-smoke time
_SPEEDUP_OVERRIDES: Dict[str, Dict[str, object]] = {"micro.arith": {"Reps": 60000}}


def measure_dispatch_speedup(
    engine: str = "threaded",
    benchmark: str = "micro.arith",
    profile_name: str = "native-c",
    overrides: Optional[Dict[str, object]] = None,
    repeats: int = 3,
    cache=None,
) -> dict:
    """Measure host wall-clock of ``engine`` vs classic on one benchmark
    cell and return the ``dispatch`` telemetry block.

    Methodology: trials are interleaved (classic, engine, classic, ...) so
    host noise hits both engines alike, and the ratio is best-of-``repeats``
    per engine — minima are the standard way to compare interpreter loops
    because they strip scheduler jitter, not average it in.  The two
    engines' simulated numbers are asserted identical first; a speedup
    quoted across diverging engines would be meaningless.
    """
    from ..harness.runner import Runner
    from ..runtimes import get_profile

    profile = get_profile(profile_name)
    if overrides is None:
        overrides = _SPEEDUP_OVERRIDES.get(benchmark)
    runner = Runner(profiles=[profile], compile_cache=cache)
    runner.compile_benchmark(benchmark, overrides)  # compile outside the clock
    best: Dict[str, float] = {}
    last: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        for eng in ("classic", engine):
            start = time.perf_counter()
            run = runner.run_on(benchmark, profile, overrides, dispatch=eng)
            elapsed = time.perf_counter() - start
            if eng not in best or elapsed < best[eng]:
                best[eng] = elapsed
            last[eng] = run
    classic, other = last["classic"], last[engine]
    same = (classic.total_cycles, classic.instructions) == (
        other.total_cycles,
        other.instructions,
    )
    if not same:
        raise RuntimeError(
            f"dispatch engines diverged on {benchmark}/{profile_name}: "
            f"classic=({classic.total_cycles}, {classic.instructions}) "
            f"{engine}=({other.total_cycles}, {other.instructions})"
        )
    return {
        "engine": engine,
        "benchmark": benchmark,
        "profile": profile_name,
        "params": dict(overrides or {}),
        "repeats": max(1, repeats),
        "classic_seconds": best["classic"],
        "engine_seconds": best[engine],
        "speedup": best["classic"] / best[engine] if best[engine] else 0.0,
    }


# ---------------------------------------------------------------- serialize


def load_artifact(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} artifact (schema={data.get('schema')!r})"
        )
    return data


def next_seq(out_dir: str) -> int:
    """The next free BENCH_<seq> number in ``out_dir`` (0 when empty)."""
    taken = [-1]
    if os.path.isdir(out_dir):
        for entry in os.listdir(out_dir):
            match = ARTIFACT_RE.match(entry)
            if match:
                taken.append(int(match.group(1)))
    return max(taken) + 1


def write_artifact(artifact: dict, out_dir: str, seq: Optional[int] = None) -> str:
    os.makedirs(out_dir, exist_ok=True)
    if seq is None:
        seq = next_seq(out_dir)
    path = os.path.join(out_dir, f"BENCH_{seq}.json")
    payload = dict(artifact, seq=seq)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# ------------------------------------------------------------------ compare


def _rel_delta(base: float, new: float) -> float:
    if base == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - base) / base


def compare(
    base: dict,
    new: dict,
    tolerances: Optional[Dict[str, float]] = None,
) -> List[dict]:
    """Row-per-comparison diff of two artifacts.

    Each row: ``{benchmark, profile, metric, base, new, delta, tolerance,
    status}`` with status one of ``ok`` / ``improved`` / ``regression`` /
    ``removed`` / ``added``.  ``delta`` is relative (fraction of base) for
    cycles/instructions and absolute for ratios.
    """
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        unknown = set(tolerances) - set(tol)
        if unknown:
            raise ValueError(
                f"unknown tolerance metrics {sorted(unknown)}; "
                f"known: {sorted(tol)}"
            )
        tol.update(tolerances)
    rows: List[dict] = []

    def row(benchmark, profile, metric, b, n, delta, tolerance, status):
        rows.append(
            {
                "benchmark": benchmark,
                "profile": profile,
                "metric": metric,
                "base": b,
                "new": n,
                "delta": delta,
                "tolerance": tolerance,
                "status": status,
            }
        )

    base_benches = base.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    for bench in sorted(set(base_benches) | set(new_benches)):
        b_entry = base_benches.get(bench)
        n_entry = new_benches.get(bench)
        if n_entry is None:
            row(bench, "*", "coverage", 1, 0, None, None, "removed")
            continue
        if b_entry is None:
            row(bench, "*", "coverage", 0, 1, None, None, "added")
            continue
        b_profiles = b_entry["profiles"]
        n_profiles = n_entry["profiles"]
        for pname in sorted(set(b_profiles) | set(n_profiles)):
            bp = b_profiles.get(pname)
            np = n_profiles.get(pname)
            if np is None:
                row(bench, pname, "coverage", 1, 0, None, None, "removed")
                continue
            if bp is None:
                row(bench, pname, "coverage", 0, 1, None, None, "added")
                continue
            for metric in ("cycles", "instructions"):
                delta = _rel_delta(bp[metric], np[metric])
                if delta > tol[metric]:
                    status = "regression"
                elif delta < -tol[metric]:
                    status = "improved"
                else:
                    status = "ok"
                row(bench, pname, metric, bp[metric], np[metric],
                    delta, tol[metric], status)
        # cross-runtime ratios: two-sided
        b_ratios = b_entry.get("ratios", {})
        n_ratios = n_entry.get("ratios", {})
        for key in sorted(set(b_ratios) & set(n_ratios)):
            br, nr = b_ratios[key], n_ratios[key]
            delta = _rel_delta(br, nr)
            status = "regression" if abs(delta) > tol["ratio"] else "ok"
            row(bench, key, "ratio", br, nr, delta, tol["ratio"], status)
    return rows


def regressions(rows: List[dict]) -> List[dict]:
    return [r for r in rows if r["status"] in ("regression", "removed")]


def render_compare(rows: List[dict], base: dict, new: dict,
                   show_ok: bool = False) -> str:
    """Readable fixed-width comparison table plus a verdict line."""

    def fmt_val(v) -> str:
        if v is None:
            return "-"
        if isinstance(v, float) and not v.is_integer():
            return f"{v:.4f}"
        return f"{int(v):,}"

    lines = [
        "benchmark trajectory compare: "
        f"{base.get('git_sha', '?')[:12]} -> {new.get('git_sha', '?')[:12]}",
        f"  {'benchmark':<20} {'profile':<24} {'metric':<12} "
        f"{'base':>16} {'new':>16} {'delta':>9} {'tol':>7}  status",
    ]
    flagged = [r for r in rows if r["status"] != "ok"]
    shown = rows if show_ok else flagged
    for r in shown:
        delta = "-" if r["delta"] is None else f"{100 * r['delta']:+8.2f}%"
        tolerance = "-" if r["tolerance"] is None else f"{100 * r['tolerance']:.1f}%"
        status = r["status"].upper() if r["status"] != "ok" else "ok"
        lines.append(
            f"  {r['benchmark']:<20} {r['profile']:<24} {r['metric']:<12} "
            f"{fmt_val(r['base']):>16} {fmt_val(r['new']):>16} {delta:>9} "
            f"{tolerance:>7}  {status}"
        )
    bad = regressions(rows)
    improved = sum(1 for r in rows if r["status"] == "improved")
    ok = sum(1 for r in rows if r["status"] == "ok")
    if not shown:
        lines.append("  (all comparisons within tolerance)")
    lines.append(
        f"  {len(rows)} comparisons: {ok} ok, {improved} improved, "
        f"{len(bad)} regressed"
    )
    lines.append(
        "VERDICT: REGRESSION" if bad else "VERDICT: ok — no regressions"
    )
    return "\n".join(lines)
