"""Deterministic call-stack sampler → collapsed-stack flamegraph output.

A classical profiler interrupts the process every N microseconds of wall
time and records the stack; that is inherently nondeterministic.  Here the
only clock is the machine's simulated cycle counter, and the observer hooks
deliver every stack transition (enter/exit/quantum) with its cycle
timestamp — so sampling can be *exact*: the sampler replays the stack
machine and, for every interval between transitions, credits the stack that
was live with the number of whole sample periods the interval crossed
(``floor(end/period) - floor(start/period)``).  Two runs of the same
deterministic benchmark therefore produce byte-identical flamegraphs.

Output is Brendan Gregg's collapsed-stack format — one line per unique
stack, frames ``;``-joined root-first, weight last::

    main;Program::Main;SOR::Execute 1042

which feeds ``flamegraph.pl``, speedscope, or any folded-stack viewer
directly (``repro-prof flame`` writes it).  Weights are *samples*; multiply
by ``period`` for approximate cycles.

Like every :class:`~repro.observe.base.MachineObserver`, attaching the
sampler perturbs nothing: it sets ``instr = None`` (no per-instruction
callback) and only reads hook arguments.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..observe.base import MachineObserver

#: stack shown for cycles spent with no managed frame live on the sampled
#: thread (scheduler, cctor gaps)
RUNTIME_FRAME = "<runtime>"


class StackSampler(MachineObserver):
    """Sample the call stack every ``period`` simulated cycles."""

    instr = None

    def __init__(self, period: int = 1000) -> None:
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.period = period
        #: (thread_name, frame, frame, ...) -> samples
        self.weights: Dict[Tuple[str, ...], int] = {}
        self.machine = None
        self._stacks: Dict[int, List[str]] = {}
        self._names: Dict[int, str] = {}
        #: cycle timestamp of the last processed transition
        self._last = 0

    # ------------------------------------------------------------- lifecycle

    def attach(self, machine) -> None:
        if self.machine is not None and self.machine is not machine:
            raise ValueError("StackSampler is already attached to another Machine")
        self.machine = machine

    # ------------------------------------------------------------- internals

    def _credit(self, tid: int, now) -> None:
        """Attribute sample ticks in ``(self._last, now]`` to the stack of
        the thread that executed the interval.  That is the machine's
        *current* thread, not necessarily the event's thread: an ``enter``
        fired from ``Thread.Start`` names the spawned thread while the
        spawner is still the one burning cycles.  ``tid`` is the fallback
        before scheduling begins."""
        last = self._last
        if now <= last:
            return
        ticks = now // self.period - last // self.period
        self._last = now
        if not ticks:
            return
        machine = self.machine
        if machine is not None and machine.current is not None:
            tid = machine.current.tid
        stack = self._stacks.get(tid)
        name = self._names.get(tid, f"thread-{tid}")
        key = (name, *stack) if stack else (name, RUNTIME_FRAME)
        self.weights[key] = self.weights.get(key, 0) + ticks

    # ----------------------------------------------------------------- hooks

    def enter(self, thread, fn, now) -> None:
        self._names[thread.tid] = thread.name
        self._credit(thread.tid, now)
        self._stacks.setdefault(thread.tid, []).append(fn.full_name)

    def exit(self, thread, now) -> None:
        self._credit(thread.tid, now)
        stack = self._stacks.get(thread.tid)
        if stack:
            stack.pop()

    def quantum(self, thread, start, end) -> None:
        self._names[thread.tid] = thread.name
        self._credit(thread.tid, end)

    def gc(self, start, end, live: int) -> None:
        # GC pauses happen on the current thread; keep the clock moving so
        # the pause is credited to the collecting stack
        if self.machine is not None and self.machine.current is not None:
            self._credit(self.machine.current.tid, end)

    # ---------------------------------------------------------------- output

    @property
    def total_samples(self) -> int:
        return sum(self.weights.values())

    def collapsed(self) -> str:
        """The folded-stack text: sorted for byte-stable output."""
        lines = [
            ";".join(stack) + f" {weight}"
            for stack, weight in self.weights.items()
        ]
        return "\n".join(sorted(lines))
