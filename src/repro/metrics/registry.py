"""Streaming metrics registry: counters, gauges, simulated-clock histograms.

The registry is the neutral store between the instrumentation layer
(:mod:`repro.metrics.instrument`, which translates machine observation
hooks into metric updates) and the consumers (``ProfileRun.metrics``
snapshots, ``BENCH_*.json`` artifacts, tests).  Everything is *streaming*:
a histogram keeps bucket counts and running aggregates, never the samples,
so instrumented runs stay O(1) in memory no matter how long the benchmark
runs.

All values live on the simulated clock or are plain event counts — wall
time never enters a metric (the same rule as the rest of the measured
engine).  Snapshots are plain JSON-ready dicts with deterministic key
order, so two runs of a deterministic benchmark produce byte-identical
serialized snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import VMError


class MetricsError(VMError):
    """Registry misuse: duplicate name with a different type, bad buckets."""


class Counter:
    """Monotonically-*named* accumulator.

    ``add`` accepts negative deltas because some machine charges are
    compensating (exception re-dispatch refunds the throw cost); the
    counter is a running sum of charges, not a strictly increasing value.
    """

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    add = inc

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins value (live-set size, cycles at end of run...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def snapshot(self):
        return self.value


#: default histogram bounds: geometric in cycles/bytes, wide enough for
#: GC pauses and scheduler quanta at the scaled problem sizes
DEFAULT_BUCKETS: Tuple[int, ...] = (
    16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)


class Histogram:
    """Fixed-bound streaming histogram (counts per bucket + aggregates).

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one overflow
    bucket catches everything above the last bound.  Only counts and the
    running count/sum/min/max are kept.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[int] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricsError(f"histogram {name!r}: bounds must be ascending")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, v) -> None:
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Create-or-get store for named metrics.

    Names are hierarchical by convention (``gc.pause_cycles``,
    ``jit.pass.enregister.runs``); asking for an existing name with a
    different metric type is an error rather than a silent shadow.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -------------------------------------------------------------- creation

    def _get_or_make(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_make(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_make(name, Gauge)

    def histogram(self, name: str, bounds: Sequence[int] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_make(name, Histogram, bounds)

    # --------------------------------------------------------------- queries

    def get(self, name: str):
        """The metric object, or None when never registered."""
        return self._metrics.get(name)

    def value(self, name: str, default=0):
        """Scalar value of a counter/gauge (``default`` when absent)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with deterministically ordered keys."""
        out: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[metric.kind + "s"][name] = metric.snapshot()
        return out
