"""``repro-bench``: benchmark-trajectory artifacts and the regression gate.

::

    repro-bench run [--out DIR] [--seq N] [--scale S]
                    [--profiles a,b] [--benchmarks x,y] [--git-sha SHA]
                    [--jobs N|auto] [--cache-dir DIR] [--no-compile-cache]
                    [--dispatch classic|threaded|threaded-nofuse]
    repro-bench compare BASE.json NEW.json [--tolerance metric=frac ...]
                    [--show-ok]
    repro-bench compare NEW.json --store DB [--base-sha SHA]
    repro-bench dispatch-smoke [--min-speedup X] [--engine E]
                    [--benchmark B] [--repeats N]

``run`` executes the graph suite on every runtime profile with the metrics
registry attached and writes ``BENCH_<seq>.json`` (sequence auto-increments
per output directory).  ``compare`` diffs two artifacts under the tolerance
policy documented in :mod:`repro.metrics.baseline` and exits 1 when any
regression (or coverage loss) is found — that exit code *is* the CI gate.
``run --dispatch threaded`` collects through the threaded engine (the
simulated numbers are bit-identical by construction) and additionally
stamps the measured wall-clock ratio vs classic into the artifact as the
top-level ``dispatch`` block (``dispatch.speedup``).  ``dispatch-smoke``
measures that ratio stand-alone and exits 1 below ``--min-speedup`` — the
CI wall-clock gate for the threaded engine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from . import baseline


def _parse_tolerances(pairs: List[str]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"repro-bench: bad --tolerance {pair!r} (expected metric=fraction)"
            )
        key, _, value = pair.partition("=")
        try:
            out[key.strip()] = float(value)
        except ValueError:
            raise SystemExit(
                f"repro-bench: bad --tolerance value {value!r} for {key!r}"
            )
    return out


def _resolve_profiles(spec: Optional[str]):
    try:
        return baseline.resolve_profiles(spec)
    except ValueError as exc:
        raise SystemExit(f"repro-bench: {exc}")


def _resolve_suite(spec: Optional[str], scale: float):
    try:
        return baseline.resolve_suite(spec, scale)
    except ValueError as exc:
        raise SystemExit(f"repro-bench: {exc}")


def cmd_run(args) -> int:
    from ..parallel import execution_from_args

    profiles = _resolve_profiles(args.profiles)
    suite = _resolve_suite(args.benchmarks, args.scale)
    execution = execution_from_args(args)
    cache = execution.cache
    store = None
    if args.store:
        from ..store import ExperimentStore

        store = ExperimentStore(args.store)
    try:
        artifact = baseline.collect(
            profiles=profiles,
            suite=suite,
            scale=args.scale,
            git_sha=args.git_sha,
            progress=lambda msg: print(f"repro-bench: {msg}", file=sys.stderr),
            jobs=execution.jobs,
            cache=cache,
            plan=execution.plan,
            cell_timeout=execution.cell_timeout,
            dispatch=execution.dispatch,
            store=store,
        )
    except ValueError as exc:
        raise SystemExit(f"repro-bench: {exc}")
    finally:
        if store is not None:
            store.close()
    path = baseline.write_artifact(artifact, args.out, seq=args.seq)
    benches = artifact["benchmarks"]
    print(
        f"repro-bench: wrote {path} "
        f"({len(benches)} benchmarks x {len(artifact['profiles'])} profiles, "
        f"git {artifact['git_sha'][:12]})"
    )
    speedup = artifact.get("dispatch")
    if speedup is not None:
        print(
            f"repro-bench: dispatch.speedup {speedup['speedup']:.2f}x "
            f"({speedup['engine']} vs classic on {speedup['benchmark']}, "
            f"best of {speedup['repeats']})"
        )
    report = baseline.collect.last_report
    if report is not None:
        print(f"repro-bench: parallel {report.summary()}")
    elif cache is not None:
        print(
            f"repro-bench: compile cache {cache.hits} hits / "
            f"{cache.misses} misses ({cache.root})"
        )
    store_stats = baseline.collect.last_store
    if store_stats is not None:
        print(
            f"repro-bench: store {store_stats['hits']} hits / "
            f"{store_stats['misses']} misses over {store_stats['cells']} cells"
        )
    faults_report = baseline.collect.last_faults
    if faults_report is not None and faults_report.failures:
        print(f"repro-bench: {faults_report.summary()}")
        for line in faults_report.failure_lines():
            print(f"repro-bench:   {line}")
        return 0 if faults_report.contained else 1
    return 0


def cmd_dispatch_smoke(args) -> int:
    from ..parallel import CompileCache

    cache = None if args.no_compile_cache else CompileCache(args.cache_dir)
    result = baseline.measure_dispatch_speedup(
        engine=args.engine,
        benchmark=args.benchmark,
        profile_name=args.profile,
        repeats=args.repeats,
        cache=cache,
    )
    print(
        f"repro-bench: dispatch.speedup {result['speedup']:.2f}x "
        f"({result['engine']} {result['engine_seconds']:.3f}s vs "
        f"classic {result['classic_seconds']:.3f}s on {result['benchmark']}"
        f"/{result['profile']}, best of {result['repeats']})"
    )
    if result["speedup"] < args.min_speedup:
        print(
            f"repro-bench: FAIL — speedup {result['speedup']:.2f}x below the "
            f"--min-speedup {args.min_speedup:g}x gate"
        )
        return 1
    return 0


def cmd_compare(args) -> int:
    if args.store:
        if args.new is not None:
            raise SystemExit(
                "repro-bench: compare --store takes one artifact "
                "(the candidate); the baseline comes from store history"
            )
        new = baseline.load_artifact(args.base)  # sole positional = candidate
        base = _store_baseline(args, new)
    else:
        if args.new is None:
            raise SystemExit(
                "repro-bench: compare needs BASE.json and NEW.json "
                "(or --store DB with one candidate artifact)"
            )
        base = baseline.load_artifact(args.base)
        new = baseline.load_artifact(args.new)
    tolerances = _parse_tolerances(args.tolerance)
    try:
        rows = baseline.compare(base, new, tolerances)
    except ValueError as exc:
        raise SystemExit(f"repro-bench: {exc}")
    print(baseline.render_compare(rows, base, new, show_ok=args.show_ok))
    return 1 if baseline.regressions(rows) else 0


def _store_baseline(args, new: dict) -> dict:
    """Gate directly against store history: baseline = the export of the
    latest recorded run — pinned to ``--base-sha`` when given, otherwise
    the latest run not stamped with the candidate's own SHA (so a rerun
    of HEAD still gates against the last *different* revision)."""
    from ..store import ExperimentStore
    from ..store.schema import StoreError

    with ExperimentStore(args.store) as store:
        if args.base_sha:
            run_id = store.latest_run(git_sha=args.base_sha)
            if run_id is None:
                raise SystemExit(
                    f"repro-bench: no run with git sha {args.base_sha!r} "
                    f"in {store.path}"
                )
        else:
            run_id = store.latest_run(exclude_sha=new.get("git_sha"))
            if run_id is None:
                run_id = store.latest_run()
            if run_id is None:
                raise SystemExit(
                    f"repro-bench: store {store.path} has no runs to "
                    "gate against"
                )
        try:
            base = store.export_artifact(run_id)
        except StoreError as exc:
            raise SystemExit(f"repro-bench: {exc}")
    print(
        f"repro-bench: baseline = store run {run_id} "
        f"(git {base.get('git_sha', 'unknown')[:12]}) from {args.store}",
        file=sys.stderr,
    )
    return base


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="benchmark-trajectory artifacts and regression gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="collect a BENCH_<seq>.json artifact")
    run.add_argument("--out", default="bench", help="output directory (default: bench/)")
    run.add_argument("--seq", type=int, default=None,
                     help="artifact sequence number (default: next free)")
    run.add_argument("--scale", type=float, default=1.0,
                     help="problem-size scale factor (default: 1.0)")
    run.add_argument("--profiles", default=None,
                     help="comma-separated runtime profile names (default: all)")
    run.add_argument("--benchmarks", default=None,
                     help="comma-separated subset of the graph suite (default: all)")
    run.add_argument("--git-sha", default=None,
                     help="override the recorded git SHA (default: git rev-parse HEAD)")
    run.add_argument("--store", default=None, metavar="DB",
                     help="also record the collection into this SQLite "
                          "experiment store (and serve repeat cells from it)")
    from ..parallel import add_execution_args

    add_execution_args(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="diff two artifacts; exit 1 on regression")
    compare.add_argument("base", help="baseline BENCH_*.json (with --store: "
                                      "the candidate artifact)")
    compare.add_argument("new", nargs="?", default=None,
                         help="candidate BENCH_*.json (omitted with --store)")
    compare.add_argument("--store", default=None, metavar="DB",
                         help="gate against store history: baseline = the "
                              "latest recorded run's export (see --base-sha)")
    compare.add_argument("--base-sha", default=None, metavar="SHA",
                         help="with --store, pin the baseline to the latest "
                              "run recorded for this git SHA")
    compare.add_argument("--tolerance", action="append", default=[],
                         metavar="METRIC=FRAC",
                         help="override a tolerance, e.g. cycles=0.05 (repeatable)")
    compare.add_argument("--show-ok", action="store_true",
                         help="also list within-tolerance comparisons")
    compare.set_defaults(func=cmd_compare)

    from ..parallel import default_cache_dir as _cache_default
    from ..vm.dispatch import DISPATCH_MODES as _modes

    smoke = sub.add_parser(
        "dispatch-smoke",
        help="measure threaded-vs-classic wall clock; exit 1 below --min-speedup",
    )
    smoke.add_argument("--engine", default="threaded",
                       choices=[m for m in _modes if m != "classic"],
                       help="dispatch engine under test (default: threaded)")
    smoke.add_argument("--benchmark", default="micro.arith",
                       help="benchmark to time (default: micro.arith)")
    smoke.add_argument("--profile", default="native-c",
                       help="runtime profile (default: native-c)")
    smoke.add_argument("--repeats", type=int, default=3,
                       help="interleaved trials per engine; best is kept (default: 3)")
    smoke.add_argument("--min-speedup", type=float, default=2.0,
                       help="fail below this classic/engine ratio (default: 2.0)")
    smoke.add_argument("--cache-dir", default=_cache_default(), metavar="DIR",
                       help="persistent compile cache location")
    smoke.add_argument("--no-compile-cache", action="store_true",
                       help="compile from scratch; do not read or write the cache")
    smoke.set_defaults(func=cmd_dispatch_smoke)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
