"""Continuous benchmark trajectory: metrics registry, machine telemetry,
deterministic flamegraph sampling, and BENCH_* regression artifacts.

Layering: :mod:`.registry` is the neutral store (counters / gauges /
streaming histograms); :mod:`.instrument` adapts the machine's observer
hooks into registry updates; :mod:`.sampler` turns the same hooks into
collapsed-stack flamegraphs; :mod:`.baseline` runs the graph suite with
metrics attached and writes/compares ``BENCH_<seq>.json`` artifacts
(:mod:`.cli` is the ``repro-bench`` entry point).
"""

from .baseline import (
    BENCH_SCHEMA,
    DEFAULT_TOLERANCES,
    collect,
    compare,
    current_git_sha,
    graph_suite,
    load_artifact,
    regressions,
    render_compare,
    write_artifact,
)
from .instrument import JitMetricsTrace, MachineMetrics
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from .sampler import RUNTIME_FRAME, StackSampler

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "DEFAULT_TOLERANCES",
    "Gauge",
    "Histogram",
    "JitMetricsTrace",
    "MachineMetrics",
    "MetricsError",
    "MetricsRegistry",
    "RUNTIME_FRAME",
    "StackSampler",
    "collect",
    "compare",
    "current_git_sha",
    "graph_suite",
    "load_artifact",
    "regressions",
    "render_compare",
    "write_artifact",
]
