"""Continuous benchmark trajectory: metrics registry, machine telemetry,
deterministic flamegraph sampling, and BENCH_* regression artifacts.

Layering: :mod:`.registry` is the neutral store (counters / gauges /
streaming histograms); :mod:`.instrument` adapts the machine's observer
hooks into registry updates; :mod:`.sampler` turns the same hooks into
collapsed-stack flamegraphs; :mod:`.baseline` runs the graph suite with
metrics attached and writes/compares ``BENCH_<seq>.json`` artifacts
(:mod:`.cli` is the ``repro-bench`` entry point).
"""

from .baseline import (
    BENCH_SCHEMA,
    DEFAULT_TOLERANCES,
    collect,
    compare,
    current_git_sha,
    graph_suite,
    load_artifact,
    regressions,
    render_compare,
    write_artifact,
)
from .exposition import (
    EXPOSITION_CONTENT_TYPE,
    parse_exposition,
    render_exposition,
    validate_exposition,
)
from .instrument import JitMetricsTrace, MachineMetrics
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from .sampler import RUNTIME_FRAME, StackSampler

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "DEFAULT_TOLERANCES",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "JitMetricsTrace",
    "MachineMetrics",
    "MetricsError",
    "MetricsRegistry",
    "RUNTIME_FRAME",
    "StackSampler",
    "collect",
    "compare",
    "current_git_sha",
    "graph_suite",
    "load_artifact",
    "parse_exposition",
    "regressions",
    "render_compare",
    "render_exposition",
    "validate_exposition",
    "write_artifact",
]
