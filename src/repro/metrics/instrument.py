"""Machine-hook → metrics-registry adapter.

:class:`MachineMetrics` is an observer (the
:class:`~repro.observe.base.MachineObserver` protocol) that translates the
measured engine's read-only hooks into registry updates: allocation sites,
GC collections/pauses/live set, exception dispatch and unwinds, monitor
contention, scheduler quanta and context switches, and — through
:class:`JitMetricsTrace` — per-pass JIT instruction deltas and compile
effort.  Like every observer it never mutates machine state, so a
metric-instrumented run is cycle-for-cycle bit-identical to a bare run
(``tests/test_metrics.py`` enforces it across benchmarks and the fuzz
corpus).

It deliberately sets ``instr = None``: per-instruction data is the
cycle-attribution profiler's job; the metrics layer reads the aggregate
instruction count from the machine at :meth:`finalize` time instead of
paying a Python call per executed instruction.

Metric catalogue (all names created on first update):

========================  =========  ==========================================
``cycles.<category>``     counter    dynamic charges per cost category
``calls.frames_pushed``   counter    activation frames pushed / popped
``calls.frames_popped``   counter
``heap.allocations``      counter    allocation sites hit
``heap.allocated_bytes``  counter    bytes allocated (== machine total)
``heap.alloc_bytes``      histogram  per-allocation size distribution
``gc.collections``        counter    explicit collections
``gc.pause_cycles``       histogram  per-collection pause, simulated cycles
``gc.live_objects``       gauge      live set at the last collection
``exceptions.thrown``     counter    managed throws started
``exceptions.frames_unwound`` counter  frames popped by dispatch
``monitor.contended``     counter    blocking monitor acquisitions
``threads.started``       counter    guest threads started
``sched.quanta``          counter    scheduler quanta that charged cycles
``sched.quantum_cycles``  histogram  cycles per quantum
``sched.switches``        counter    context switches charged
``jit.methods_compiled``  counter    pipeline compilations
``jit.instrs_lowered``    counter    MIR instructions produced by lowering
``jit.instrs_final``      counter    MIR instructions after the pipeline
``jit.inline_requests``   counter    inline candidates asked for / available
``jit.inline_available``  counter
``jit.pass.<p>.runs``     counter    executions of pass ``<p>``
``jit.pass.<p>.delta``    counter    net instruction delta of pass ``<p>``
``machine.cycles``        gauge      finalize(): machine totals
``machine.instructions``  gauge
``machine.allocated_bytes`` gauge
``machine.gc_collections``  gauge
``machine.gc_live_objects`` gauge
``threads.created``       gauge      finalize(): scheduler/thread totals
``threads.quanta``        gauge      (includes zero-charge quanta)
``threads.switches``      gauge
``jit.compile_cycles``    gauge      finalize(): synthetic compile effort
========================  =========  ==========================================
"""

from __future__ import annotations

from typing import Dict, Optional

from ..observe.base import MachineObserver
from .registry import Counter, MetricsRegistry

#: pause/size-style histograms share the default geometric bounds from the
#: registry; quantum histograms get wider ones (quanta are ~50k cycles)
QUANTUM_BUCKETS = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
)


class JitMetricsTrace:
    """JitTrace-compatible recorder feeding pass-level counters.

    The pipeline drives it exactly like the structural
    :class:`~repro.observe.jittrace.JitTrace` — ``begin`` per method,
    ``rec.record_pass`` per pass, ``rec.finish`` at the end — so it can sit
    behind a :class:`~repro.observe.composite.CompositeJitTrace` next to
    the profiler's trace without the pipeline knowing.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def begin(self, method: str, inline_candidate: bool) -> "_CompileRec":
        return _CompileRec(self.registry)


class _CompileRec:
    """One method's compilation, reduced to counter updates."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self.lowered_instrs = 0
        self.inline_decisions = _InlineCounter(registry)

    def record_pass(self, name: str, before: int, fn) -> None:
        registry = self._registry
        registry.counter(f"jit.pass.{name}.runs").inc()
        registry.counter(f"jit.pass.{name}.delta").add(len(fn.code) - before)

    def finish(self, fn) -> None:
        registry = self._registry
        registry.counter("jit.methods_compiled").inc()
        registry.counter("jit.instrs_lowered").add(self.lowered_instrs)
        registry.counter("jit.instrs_final").add(len(fn.code))


class _InlineCounter:
    """List façade: the inliner appends InlineDecision records; we count."""

    __slots__ = ("_requests", "_available")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._requests: Counter = registry.counter("jit.inline_requests")
        self._available: Counter = registry.counter("jit.inline_available")

    def append(self, decision) -> None:
        self._requests.inc()
        if decision.available:
            self._available.inc()


class MachineMetrics(MachineObserver):
    """Attach to one machine; update a (possibly shared) registry."""

    #: skip the per-instruction hot-path callback entirely
    instr = None

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.machine = None
        self.jit = JitMetricsTrace(self.registry)
        reg = self.registry
        # pre-create the hook-side metrics so hot hooks are attribute loads
        self._cat: Dict[str, Counter] = {}
        self._frames_pushed = reg.counter("calls.frames_pushed")
        self._frames_popped = reg.counter("calls.frames_popped")
        self._allocations = reg.counter("heap.allocations")
        self._allocated_bytes = reg.counter("heap.allocated_bytes")
        self._alloc_hist = reg.histogram("heap.alloc_bytes")
        self._gc_collections = reg.counter("gc.collections")
        self._gc_pause = reg.histogram("gc.pause_cycles")
        self._gc_live = reg.gauge("gc.live_objects")
        self._thrown = reg.counter("exceptions.thrown")
        self._unwound = reg.counter("exceptions.frames_unwound")
        self._contended = reg.counter("monitor.contended")
        self._threads_started = reg.counter("threads.started")
        self._quanta = reg.counter("sched.quanta")
        self._quantum_hist = reg.histogram("sched.quantum_cycles", QUANTUM_BUCKETS)
        self._switches = reg.counter("sched.switches")

    # ------------------------------------------------------------- lifecycle

    def attach(self, machine) -> None:
        if self.machine is not None and self.machine is not machine:
            raise ValueError("MachineMetrics is already attached to another Machine")
        self.machine = machine

    def finalize(self) -> None:
        """Publish end-of-run machine/scheduler/JIT totals as gauges.

        This is where the machine's formerly-internal counters
        (``gc_collections``, ``gc_live_objects``, ``allocated_bytes``) are
        promoted into the registry.  Idempotent; the harness calls it after
        every run, direct users call it before :meth:`snapshot`.
        """
        machine = self.machine
        if machine is None:
            return
        reg = self.registry
        reg.gauge("machine.cycles").set(machine.cycles)
        reg.gauge("machine.instructions").set(machine.instructions)
        reg.gauge("machine.allocated_bytes").set(machine.allocated_bytes)
        reg.gauge("machine.gc_collections").set(machine.gc_collections)
        reg.gauge("machine.gc_live_objects").set(machine.gc_live_objects)
        reg.gauge("threads.created").set(len(machine.threads))
        reg.gauge("threads.quanta").set(sum(t.quanta for t in machine.threads))
        reg.gauge("threads.switches").set(sum(t.switches for t in machine.threads))
        reg.gauge("jit.compile_cycles").set(machine.jit.compile_effort)

    def snapshot(self) -> dict:
        """Finalize, then return the registry's JSON-ready snapshot."""
        self.finalize()
        return self.registry.snapshot()

    # ----------------------------------------------------------------- hooks

    def dyn(self, fn, category: str, cycles) -> None:
        counter = self._cat.get(category)
        if counter is None:
            counter = self._cat[category] = self.registry.counter(
                f"cycles.{category}"
            )
        counter.add(cycles)

    def enter(self, thread, fn, now) -> None:
        self._frames_pushed.inc()

    def exit(self, thread, now) -> None:
        self._frames_popped.inc()

    def thread_started(self, thread, now) -> None:
        self._threads_started.inc()

    def quantum(self, thread, start, end) -> None:
        self._quanta.inc()
        self._quantum_hist.observe(end - start)

    def switch(self, thread, cost, now) -> None:
        self._switches.inc()

    def alloc(self, byte_size: int, cycles) -> None:
        self._allocations.inc()
        self._allocated_bytes.add(byte_size)
        self._alloc_hist.observe(byte_size)

    def gc(self, start, end, live: int) -> None:
        self._gc_collections.inc()
        self._gc_pause.observe(end - start)
        self._gc_live.set(live)

    def throw(self, now) -> None:
        self._thrown.inc()

    def unwound(self, thread, now) -> None:
        self._unwound.inc()

    def contention(self, thread, now) -> None:
        self._contended.inc()
