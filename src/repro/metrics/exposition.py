"""Prometheus text exposition of a :class:`MetricsRegistry`.

Renders the registry into the text-based exposition format (version
0.0.4) that ``GET /metrics`` on the experiment daemon serves, so any
standard scraper — or plain ``curl`` — can watch the service's counters,
gauges and latency histograms.  Hierarchical metric names
(``service.http_latency_us``) map to Prometheus names by replacing every
non-identifier character with ``_`` and prefixing ``repro_``; histograms
render the standard cumulative ``_bucket{le=...}`` / ``_sum`` /
``_count`` triplet with a ``+Inf`` bucket.

:func:`validate_exposition` is a small independent parser used by the
tests and the CI smoke job to assert format validity without pulling in
a Prometheus client library.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .registry import Counter, Gauge, Histogram, MetricsRegistry

#: content type of the text exposition format
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro_") -> str:
    """``service.http_latency_us`` -> ``repro_service_http_latency_us``."""
    flat = _NAME_RE.sub("_", name)
    if not flat or flat[0].isdigit():
        flat = "_" + flat
    return prefix + flat


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def render_exposition(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """The registry as one exposition-format document (trailing newline
    included, as the format requires)."""
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        flat = metric_name(name, prefix)
        if isinstance(metric, Counter):
            lines.append(f"# HELP {flat} counter {name}")
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {flat} gauge {name}")
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {flat} histogram {name}")
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                lines.append(f'{flat}_bucket{{le="{_fmt(float(bound))}"}} '
                             f"{cumulative}")
            lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{flat}_sum {_fmt(metric.total)}")
            lines.append(f"{flat}_count {metric.count}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: \d+)?$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')


def parse_exposition(text: str) -> Dict[str, List[Tuple[str, float]]]:
    """Parse an exposition document into ``{metric_name: [(labels, value)]}``.

    Raises ValueError on any malformed line — this *is* the validity
    check; scrape tests assert it passes and then inspect the values.
    """
    samples: Dict[str, List[Tuple[str, float]]] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.split("\n"), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            if parts[2] in typed:
                raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            if not line.startswith(("# HELP ", "# TYPE ", "# EOF")):
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels = match.group("labels") or ""
        if labels:
            for pair in labels.split(","):
                if not _LABEL_RE.match(pair.strip()):
                    raise ValueError(f"line {lineno}: bad label {pair!r}")
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            if raw not in ("+Inf", "-Inf", "NaN"):
                raise ValueError(f"line {lineno}: bad value {raw!r}")
            value = float(raw.replace("Inf", "inf"))
        samples.setdefault(match.group("name"), []).append((labels, value))
    # histograms must carry their _sum/_count companions
    for name, kind in typed.items():
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if name + suffix not in samples:
                    raise ValueError(f"histogram {name} missing {suffix}")
            buckets = samples[name + "_bucket"]
            counts = [v for _labels, v in buckets]
            if counts != sorted(counts):
                raise ValueError(f"histogram {name} buckets not cumulative")
            if not any('le="+Inf"' in labels for labels, _v in buckets):
                raise ValueError(f"histogram {name} missing +Inf bucket")
    return samples


def validate_exposition(text: str) -> Dict[str, List[Tuple[str, float]]]:
    """Alias of :func:`parse_exposition` — named for reading in CI."""
    return parse_exposition(text)
