"""``repro-prof`` command-line interface.

Subcommands::

    repro-prof report micro.loop --runtime clr-1.1 [--param Reps=20000]
    repro-prof diff clr11 mono023 --benchmark scimark.sor
    repro-prof export micro.loop --runtime clr-1.1 --out trace.json
    repro-prof flame scimark.sor --runtime clr-1.1 --out sor.folded

``report`` profiles one benchmark on one runtime and prints the
cycle-attribution report (optionally saving the JSON profile, Chrome
trace, and text report under ``--out``).  ``diff`` ranks cost categories
by their contribution to the cycle gap between two runtimes — the
paper's "which component explains the 2x?" question as a command; its
operands are runtime names *or* previously saved ``*.profile.json``
paths.  ``export`` writes just the Chrome trace-event timeline (load it
at ``chrome://tracing`` or https://ui.perfetto.dev).  ``flame`` samples
the call stack on the simulated clock and emits collapsed-stack
(flamegraph.pl / speedscope "folded") text — deterministic, so two runs
of the same benchmark produce byte-identical flamegraphs.

Runtime names are matched loosely: ``clr11``, ``CLR-1.1`` and
``clr-1.1`` all resolve to the same profile.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from ..runtimes import BY_NAME, RuntimeProfile
from .recorder import Observer
from .report import (
    coverage,
    profile_from_path,
    profile_to_dict,
    render_diff,
    render_report,
)

# --------------------------------------------------------------- resolution


def _canon(name: str) -> str:
    return name.lower().replace("-", "").replace(".", "")


def resolve_profile(name: str) -> RuntimeProfile:
    """Resolve a loose runtime name (``clr11`` -> ``clr-1.1``)."""
    profile = BY_NAME.get(name)
    if profile is not None:
        return profile
    wanted = _canon(name)
    for known, profile in BY_NAME.items():
        if _canon(known) == wanted:
            return profile
    known_names = ", ".join(BY_NAME)
    raise SystemExit(f"unknown runtime {name!r}; known: {known_names}")


def _parse_overrides(pairs: List[str]) -> Optional[Dict[str, object]]:
    out: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"bad --param {pair!r}; expected Key=Value")
        try:
            out[key] = int(raw)
        except ValueError:
            try:
                out[key] = float(raw)
            except ValueError:
                out[key] = raw
    return out or None


def _profile_run(benchmark: str, runtime: str, params: List[str]) -> Observer:
    # imported lazily: the harness imports this package in turn
    from ..harness.runner import Runner

    profile = resolve_profile(runtime)
    runner = Runner(profiles=[profile])
    run = runner.run_on(benchmark, profile, _parse_overrides(params), observe=True)
    return run.observation


def _obtain(source: str, benchmark: Optional[str], params: List[str]) -> dict:
    """A profile dict from either a saved ``*.profile.json`` or a live run."""
    if os.path.exists(source) or source.endswith(".json"):
        return profile_from_path(source)
    if not benchmark:
        raise SystemExit(
            f"{source!r} is a runtime name, so --benchmark is required "
            "(or pass saved *.profile.json paths)"
        )
    return profile_to_dict(_profile_run(benchmark, source, params))


# ------------------------------------------------------------- subcommands


def write_artifacts(observer: Observer, out_dir: str, top: int = 12) -> Dict[str, str]:
    """Write profile/trace/report files for one observed run; returns paths."""
    os.makedirs(out_dir, exist_ok=True)
    profile = profile_to_dict(observer)
    stem = f"{profile['benchmark'] or 'run'}.{profile['runtime']}"
    paths = {
        "profile": os.path.join(out_dir, f"{stem}.profile.json"),
        "trace": os.path.join(out_dir, f"{stem}.trace.json"),
        "report": os.path.join(out_dir, f"{stem}.report.txt"),
    }
    with open(paths["profile"], "w") as handle:
        json.dump(profile, handle, indent=1, sort_keys=True)
    with open(paths["trace"], "w") as handle:
        json.dump(
            observer.timeline.to_chrome_trace(
                profile["clock_hz"],
                {"benchmark": profile["benchmark"], "runtime": profile["runtime"]},
            ),
            handle,
        )
    with open(paths["report"], "w") as handle:
        handle.write(render_report(profile, top=top) + "\n")
    return paths


def cmd_report(args) -> int:
    observer = _profile_run(args.benchmark, args.runtime, args.param or [])
    profile = profile_to_dict(observer)
    print(render_report(profile, top=args.top))
    cov = coverage(profile)
    if args.out:
        paths = write_artifacts(observer, args.out, top=args.top)
        print()
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")
    if cov < 0.95:
        print(f"warning: only {100 * cov:.2f}% of cycles attributed", file=sys.stderr)
        return 1
    return 0


def cmd_diff(args) -> int:
    a = _obtain(args.a, args.benchmark, args.param or [])
    b = _obtain(args.b, args.benchmark, args.param or [])
    print(render_diff(a, b, top=args.top))
    return 0


def cmd_export(args) -> int:
    observer = _profile_run(args.benchmark, args.runtime, args.param or [])
    profile = profile_to_dict(observer)
    trace = observer.timeline.to_chrome_trace(
        profile["clock_hz"],
        {"benchmark": profile["benchmark"], "runtime": profile["runtime"]},
    )
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(trace, handle)
    print(
        f"wrote {args.out}: {len(trace['traceEvents'])} events "
        f"({observer.timeline.dropped} dropped)"
    )
    return 0


def cmd_flame(args) -> int:
    # imported lazily: repro.metrics builds on this package
    from ..harness.runner import Runner
    from ..metrics.sampler import StackSampler

    profile = resolve_profile(args.runtime)
    sampler = StackSampler(period=args.period)
    runner = Runner(profiles=[profile])
    runner.run_on(
        args.benchmark, profile, _parse_overrides(args.param or []),
        observe=sampler,
    )
    folded = sampler.collapsed()
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(folded + "\n")
        print(
            f"wrote {args.out}: {len(sampler.weights)} stacks, "
            f"{sampler.total_samples} samples at period={args.period} cycles"
        )
    else:
        print(folded)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-prof",
        description="cycle-attribution profiler for the HPC.NET reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rep = sub.add_parser("report", help="profile one benchmark on one runtime")
    p_rep.add_argument("benchmark")
    p_rep.add_argument("--runtime", default="clr-1.1",
                       help=f"runtime profile ({', '.join(BY_NAME)})")
    p_rep.add_argument("--param", action="append", metavar="K=V")
    p_rep.add_argument("--top", type=int, default=12, help="rows per table")
    p_rep.add_argument("--out", metavar="DIR",
                       help="also write profile.json/trace.json/report.txt here")
    p_rep.set_defaults(func=cmd_report)

    p_diff = sub.add_parser(
        "diff", help="rank categories explaining the gap between two runtimes"
    )
    p_diff.add_argument("a", help="runtime name or saved *.profile.json")
    p_diff.add_argument("b", help="runtime name or saved *.profile.json")
    p_diff.add_argument("--benchmark", help="required when a/b are runtime names")
    p_diff.add_argument("--param", action="append", metavar="K=V")
    p_diff.add_argument("--top", type=int, default=10)
    p_diff.set_defaults(func=cmd_diff)

    p_exp = sub.add_parser("export", help="write the Chrome trace-event timeline")
    p_exp.add_argument("benchmark")
    p_exp.add_argument("--runtime", default="clr-1.1")
    p_exp.add_argument("--param", action="append", metavar="K=V")
    p_exp.add_argument("--out", required=True, metavar="FILE.json")
    p_exp.set_defaults(func=cmd_export)

    p_flame = sub.add_parser(
        "flame", help="write a collapsed-stack (folded) flamegraph profile"
    )
    p_flame.add_argument("benchmark")
    p_flame.add_argument("--runtime", default="clr-1.1")
    p_flame.add_argument("--param", action="append", metavar="K=V")
    p_flame.add_argument("--period", type=int, default=1000,
                         help="simulated cycles per sample (default: 1000)")
    p_flame.add_argument("--out", metavar="FILE.folded",
                         help="output path (default: stdout)")
    p_flame.set_defaults(func=cmd_flame)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
