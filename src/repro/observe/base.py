"""The machine observation hook protocol (no-op base class).

A :class:`~repro.vm.machine.Machine` accepts exactly one ``observer``; this
class defines the full hook surface that slot speaks, with every hook a
no-op.  Concrete observers — the cycle-attribution
:class:`~repro.observe.recorder.Observer`, the metrics adapter
(:class:`repro.metrics.instrument.MachineMetrics`), the flamegraph sampler
(:class:`repro.metrics.sampler.StackSampler`) — subclass it and override
only what they need, and :class:`~repro.observe.composite.CompositeObserver`
fans the single slot out to several of them.

Contract (the **zero-perturbation invariant**): every hook is called at a
point where the machine has already decided what to charge, and hooks must
only *read* machine state.  Attaching any observer must never change
``machine.cycles``, ``machine.instructions``, or benchmark results;
``tests/test_observe.py`` and ``tests/test_metrics.py`` enforce
bit-identity against bare runs.

Two hooks are special-cased for hot-loop cost:

* ``instr`` fires once per executed MIR instruction.  The machine reads it
  once per quantum (``obs_instr = observer.instr``) and skips the call when
  the attribute is ``None`` — an observer that does not need per-instruction
  data should set ``instr = None`` at class level rather than override it.
* ``jit`` is an attribute, not a method: a
  :class:`~repro.observe.jittrace.JitTrace`-compatible recorder handed to
  the :class:`~repro.jit.pipeline.JitCompiler`, or ``None``.
"""

from __future__ import annotations


class MachineObserver:
    """No-op implementation of every machine observation hook."""

    #: JitTrace-compatible compilation recorder, or None for no JIT tracing
    jit = None
    #: benchmark name stamped by the harness for artifact naming
    benchmark = None

    # ------------------------------------------------------------- lifecycle

    def attach(self, machine) -> None:
        """Called once from ``Machine.__init__``."""

    # ------------------------------------------------------- hot-path hooks

    #: per-instruction hook; None means "don't call me per instruction"
    def instr(self, fn, op: int, cost) -> None:
        """One MIR instruction of ``fn`` executed at static cost ``cost``."""

    def dyn(self, fn, category: str, cycles) -> None:
        """A dynamic charge of ``cycles`` in ``category`` attributed to the
        method executing on the current thread (``fn`` may be None)."""

    # ----------------------------------------------------------- call stack

    def enter(self, thread, fn, now) -> None:
        """A frame for ``fn`` was pushed on ``thread`` at cycle ``now``."""

    def exit(self, thread, now) -> None:
        """The top frame of ``thread`` was popped at cycle ``now``."""

    # ---------------------------------------------------- scheduler/threads

    def thread_started(self, thread, now) -> None:
        """``thread`` transitioned NEW -> RUNNABLE."""

    def quantum(self, thread, start, end) -> None:
        """``thread`` ran one scheduler quantum spanning [start, end]."""

    def switch(self, thread, cost, now) -> None:
        """A context switch away from ``thread`` was charged ``cost``."""

    # -------------------------------------------------------------- heap/GC

    def alloc(self, byte_size: int, cycles) -> None:
        """One allocation of ``byte_size`` bytes charged ``cycles``
        (allocation cost + amortized GC share)."""

    def gc(self, start, end, live: int) -> None:
        """An explicit collection ran over [start, end] marking ``live``
        reachable objects."""

    # ----------------------------------------------------------- exceptions

    def throw(self, now) -> None:
        """A managed exception began dispatch at cycle ``now``."""

    def unwound(self, thread, now) -> None:
        """Exception dispatch popped one frame of ``thread``."""

    # ------------------------------------------------------------- monitors

    def contention(self, thread, now) -> None:
        """``thread`` blocked on a monitor owned by another thread."""
