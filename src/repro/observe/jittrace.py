"""JIT compilation trace: what did the pipeline do to each method?

The fuzz matrix can already *detect* that disabling a pass changes cycles;
this trace makes the delta explainable — per method it records the pass
sequence with MIR instruction counts before/after each pass, every inlining
decision (candidate requested, available or why not), and the final
enregistration statistics.  Recording is structural only: the trace never
touches instruction costs, so traced and untraced compilations produce
identical code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PassRecord:
    """One pipeline stage applied to one method."""

    name: str
    instrs_before: int
    instrs_after: int

    @property
    def delta(self) -> int:
        return self.instrs_after - self.instrs_before


@dataclass
class InlineDecision:
    """One call site the inliner asked a candidate body for."""

    callee: str
    #: a lowered body was available (None body => refused: intrinsic,
    #: virtual, recursive, or unresolvable)
    available: bool
    #: candidate body size when available (the budget check happens in the
    #: pass; sizes over the profile's inline_budget are kept but not spliced)
    size: int = 0


@dataclass
class MethodCompile:
    """The full pipeline record for one compiled method."""

    method: str
    #: compiled as an inline candidate (inlining disabled to bound recursion)
    inline_candidate: bool = False
    lowered_instrs: int = 0
    passes: List[PassRecord] = field(default_factory=list)
    inline_decisions: List[InlineDecision] = field(default_factory=list)
    final_instrs: int = 0
    n_vregs: int = 0
    enregistered: int = 0
    static_cost: float = 0
    #: copy of the pass statistics (inlined_calls, bce_eliminated, ...)
    stats: Dict[str, int] = field(default_factory=dict)

    def record_pass(self, name: str, before: int, fn) -> None:
        self.passes.append(PassRecord(name, before, len(fn.code)))

    def finish(self, fn) -> None:
        self.final_instrs = len(fn.code)
        self.n_vregs = fn.n_vregs
        self.enregistered = sum(1 for r in fn.in_register if r)
        self.static_cost = sum(ins.cost for ins in fn.code)
        # stats values must serialize (force_spill is a set of vregs)
        self.stats = {
            k: sorted(v) if isinstance(v, (set, frozenset)) else v
            for k, v in fn.stats.items()
        }

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "inline_candidate": self.inline_candidate,
            "lowered_instrs": self.lowered_instrs,
            "final_instrs": self.final_instrs,
            "n_vregs": self.n_vregs,
            "enregistered": self.enregistered,
            "static_cost": self.static_cost,
            "passes": [
                {"name": p.name, "before": p.instrs_before, "after": p.instrs_after}
                for p in self.passes
            ],
            "inline_decisions": [
                {"callee": d.callee, "available": d.available, "size": d.size}
                for d in self.inline_decisions
            ],
            "stats": self.stats,
        }

    def summary(self) -> str:
        steps = ", ".join(
            f"{p.name}({p.instrs_before}->{p.instrs_after})" for p in self.passes
        )
        inlined = self.stats.get("inlined_calls", 0)
        extra = f"; inlined {inlined} call(s)" if inlined else ""
        return (
            f"{self.method}: lowered {self.lowered_instrs} -> {self.final_instrs} "
            f"instrs [{steps}]; enregistered {self.enregistered}/{self.n_vregs} "
            f"vregs{extra}"
        )


class JitTrace:
    """Chronological per-method compilation records for one machine."""

    def __init__(self) -> None:
        self.methods: List[MethodCompile] = []

    def begin(self, method: str, inline_candidate: bool) -> MethodCompile:
        rec = MethodCompile(method=method, inline_candidate=inline_candidate)
        self.methods.append(rec)
        return rec

    def find(self, method: str) -> Optional[MethodCompile]:
        """The main (non-candidate) compilation of ``method``, if any."""
        for rec in self.methods:
            if rec.method == method and not rec.inline_candidate:
                return rec
        return None

    def to_list(self) -> List[dict]:
        return [rec.to_dict() for rec in self.methods]
