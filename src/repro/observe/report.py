"""Rendering and serialization for observed runs.

Three artifact kinds:

* ``profile_to_dict`` / ``profile_from_path`` — the JSON cycle-attribution
  profile (methods x categories, opcodes, JIT trace, run metadata);
* ``render_report`` — the human-readable hot-method / category / opcode /
  JIT-decision report;
* ``render_diff`` — rank the categories (and methods) by their
  contribution to the cycle gap between two profiles: the paper's
  section-4 "which component explains the 2x?" analysis as a command.

Reports work from the serialized dict, so ``repro-prof diff`` accepts both
live runs and saved ``*.profile.json`` artifacts interchangeably.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .recorder import CATEGORIES, Observer

SCHEMA = "repro.observe/1"


# --------------------------------------------------------------- serialize


def profile_to_dict(observer: Observer, benchmark: Optional[str] = None) -> dict:
    machine = observer.machine
    if machine is None:
        raise ValueError("observer was never attached to a machine")
    rec = observer.cycles
    sections = {
        name: {"cycles": s.total_cycles, "ops": s.ops, "flops": s.flops}
        for name, s in machine.bench.sections.items()
    }
    return {
        "schema": SCHEMA,
        "benchmark": benchmark or observer.benchmark,
        "runtime": machine.profile.name,
        "clock_hz": machine.profile.clock_hz,
        "total_cycles": machine.cycles,
        "instructions": machine.instructions,
        "attributed_cycles": rec.attributed_cycles(),
        "categories": rec.categories(),
        "methods": rec.methods(),
        "opcodes": rec.opcodes(),
        "sections": sections,
        "gc_collections": machine.gc_collections,
        "allocated_bytes": machine.allocated_bytes,
        "jit": observer.jit.to_list(),
        "timeline_events": len(observer.timeline.events),
        "timeline_dropped": observer.timeline.dropped,
    }


def profile_from_path(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} profile (schema={data.get('schema')!r})")
    return data


def coverage(profile: dict) -> float:
    """Attributed share of total cycles, in [0, 1]."""
    total = profile["total_cycles"]
    return 1.0 if total <= 0 else profile["attributed_cycles"] / total


# ------------------------------------------------------------------ report


def _fmt(n: float) -> str:
    return f"{n:,.0f}"


def _pct(part: float, whole: float) -> str:
    return "   -" if whole <= 0 else f"{100 * part / whole:4.1f}%"


def _header(profile: dict) -> List[str]:
    clock = profile["clock_hz"]
    total = profile["total_cycles"]
    bench = profile.get("benchmark") or "<direct run>"
    return [
        f"cycle-attribution profile: {bench} @ {profile['runtime']}",
        f"  total {_fmt(total)} cycles ({total / clock:.6f} s at {clock / 1e9:.1f} GHz), "
        f"{_fmt(profile['instructions'])} MIR instructions",
        f"  attributed {_fmt(profile['attributed_cycles'])} cycles "
        f"({100 * coverage(profile):.2f}% of total)",
    ]


def category_table(profile: dict) -> List[str]:
    total = profile["total_cycles"]
    cats = profile["categories"]
    lines = [f"  {'category':<16} {'cycles':>16} {'share':>6}"]
    for cat in sorted(cats, key=cats.get, reverse=True):
        lines.append(f"  {cat:<16} {_fmt(cats[cat]):>16} {_pct(cats[cat], total):>6}")
    return lines


def hot_method_table(profile: dict, top: int = 12) -> List[str]:
    total = profile["total_cycles"]
    methods = profile["methods"]
    ranked = sorted(methods.items(), key=lambda kv: kv[1]["cycles"], reverse=True)
    lines = [f"  {'method':<40} {'cycles':>16} {'share':>6}  top categories"]
    for name, m in ranked[:top]:
        cats = sorted(m["categories"].items(), key=lambda kv: kv[1], reverse=True)
        tops = ", ".join(f"{c} {_pct(v, m['cycles']).strip()}" for c, v in cats[:3])
        lines.append(
            f"  {name:<40} {_fmt(m['cycles']):>16} {_pct(m['cycles'], total):>6}  {tops}"
        )
    if len(ranked) > top:
        rest = sum(m["cycles"] for _n, m in ranked[top:])
        lines.append(f"  {'(other ' + str(len(ranked) - top) + ' methods)':<40} "
                     f"{_fmt(rest):>16} {_pct(rest, total):>6}")
    return lines


def opcode_table(profile: dict, top: int = 12) -> List[str]:
    ops = profile["opcodes"]
    ranked = sorted(ops.items(), key=lambda kv: kv[1]["cycles"], reverse=True)
    lines = [f"  {'opcode':<12} {'executed':>14} {'cycles':>16}"]
    for name, o in ranked[:top]:
        lines.append(f"  {name:<12} {_fmt(o['count']):>14} {_fmt(o['cycles']):>16}")
    return lines


def jit_table(profile: dict, top: int = 8) -> List[str]:
    from .jittrace import MethodCompile, PassRecord, InlineDecision

    lines = []
    mains = [rec for rec in profile["jit"] if not rec["inline_candidate"]]
    for rec in mains[:top]:
        steps = ", ".join(
            f"{p['name']}({p['before']}->{p['after']})" for p in rec["passes"]
        )
        inlined = rec["stats"].get("inlined_calls", 0)
        extra = f"; inlined {inlined} call(s)" if inlined else ""
        lines.append(
            f"  {rec['method']}: {rec['lowered_instrs']} -> {rec['final_instrs']} "
            f"instrs [{steps}]; enregistered {rec['enregistered']}/{rec['n_vregs']}"
            f"{extra}"
        )
    if len(mains) > top:
        lines.append(f"  ... and {len(mains) - top} more methods")
    return lines


def render_report(source, benchmark: Optional[str] = None, top: int = 12) -> str:
    """Full text report from an :class:`Observer` or a profile dict."""
    profile = (
        profile_to_dict(source, benchmark) if isinstance(source, Observer) else source
    )
    lines = _header(profile)
    lines += ["", "by cost category:"] + category_table(profile)
    lines += ["", f"hot methods (self cycles, top {top}):"]
    lines += hot_method_table(profile, top)
    lines += ["", "by MIR opcode (static costs):"] + opcode_table(profile, top)
    if profile["jit"]:
        lines += ["", "JIT compilation trace:"] + jit_table(profile)
    if profile.get("gc_collections"):
        lines += ["", f"explicit GC collections: {profile['gc_collections']}"]
    return "\n".join(lines)


# -------------------------------------------------------------------- diff


def diff_categories(a: dict, b: dict) -> List[dict]:
    """Per-category cycle deltas, ranked by contribution to the total gap."""
    cats = sorted(set(a["categories"]) | set(b["categories"]),
                  key=lambda c: CATEGORIES.index(c) if c in CATEGORIES else 99)
    gap = b["total_cycles"] - a["total_cycles"]
    rows = []
    for cat in cats:
        ca = a["categories"].get(cat, 0)
        cb = b["categories"].get(cat, 0)
        rows.append(
            {
                "category": cat,
                "a_cycles": ca,
                "b_cycles": cb,
                "delta": cb - ca,
                "gap_share": (cb - ca) / gap if gap else 0.0,
            }
        )
    rows.sort(key=lambda r: abs(r["delta"]), reverse=True)
    return rows


def render_diff(a: dict, b: dict, top: int = 10) -> str:
    name_a, name_b = a["runtime"], b["runtime"]
    bench = a.get("benchmark") or b.get("benchmark") or "<direct run>"
    ta, tb = a["total_cycles"], b["total_cycles"]
    ratio = tb / ta if ta else float("inf")
    lines = [
        f"category attribution diff: {bench} — {name_a} vs {name_b}",
        f"  total cycles: {_fmt(ta)} vs {_fmt(tb)}  ({name_b} is {ratio:.2f}x {name_a})",
        "",
        f"  categories ranked by contribution to the {_fmt(tb - ta)}-cycle gap:",
        f"  {'category':<16} {name_a:>16} {name_b:>16} {'delta':>16} {'gap share':>9}",
    ]
    for row in diff_categories(a, b):
        lines.append(
            f"  {row['category']:<16} {_fmt(row['a_cycles']):>16} "
            f"{_fmt(row['b_cycles']):>16} {_fmt(row['delta']):>16} "
            f"{100 * row['gap_share']:8.1f}%"
        )
    # method-level deltas, for drilling into the top category
    methods = sorted(
        set(a["methods"]) | set(b["methods"]),
        key=lambda m: abs(
            b["methods"].get(m, {}).get("cycles", 0)
            - a["methods"].get(m, {}).get("cycles", 0)
        ),
        reverse=True,
    )
    lines += ["", f"  top method deltas:"]
    lines.append(f"  {'method':<40} {name_a:>16} {name_b:>16} {'delta':>16}")
    for m in methods[:top]:
        ma = a["methods"].get(m, {}).get("cycles", 0)
        mb = b["methods"].get(m, {}).get("cycles", 0)
        lines.append(f"  {m:<40} {_fmt(ma):>16} {_fmt(mb):>16} {_fmt(mb - ma):>16}")
    return "\n".join(lines)


def render_diff_markdown(a: dict, b: dict) -> str:
    """The category table as GitHub markdown (for EXPERIMENTS.md)."""
    name_a, name_b = a["runtime"], b["runtime"]
    ta, tb = a["total_cycles"], b["total_cycles"]
    lines = [
        f"| category | {name_a} (cycles) | {name_b} (cycles) | delta | gap share |",
        "|---|---:|---:|---:|---:|",
    ]
    for row in diff_categories(a, b):
        lines.append(
            f"| {row['category']} | {_fmt(row['a_cycles'])} | {_fmt(row['b_cycles'])} "
            f"| {_fmt(row['delta'])} | {100 * row['gap_share']:.1f}% |"
        )
    lines.append(
        f"| **total** | **{_fmt(ta)}** | **{_fmt(tb)}** | **{_fmt(tb - ta)}** | 100% |"
    )
    return "\n".join(lines)
