"""Event timeline on the simulated clock, exportable as Chrome trace JSON.

Events carry raw *cycle* timestamps while recording (the machine's only
clock); :meth:`Timeline.to_chrome_trace` converts to microseconds at a
nominal clock so the file loads directly in Perfetto / ``chrome://tracing``
(the JSON Object Format: ``{"traceEvents": [...]}``).

Recording is bounded: past ``max_events`` method-level begin/end pairs are
dropped (counted in ``dropped``) so a hot benchmark cannot produce an
unboundedly large trace; coarse events (scheduling quanta, GC, thread
starts) are always kept.  The owner (:class:`~repro.observe.recorder.
Observer`) guarantees begin/end nesting per track, dropping the *pair* —
never a lone end — so the exported trace always balances.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Timeline:
    #: synthetic track ids for non-thread events (guest tids start at 0)
    SCHEDULER_TRACK = 1000
    GC_TRACK = 1001

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        #: event records: [ph, name, ts_cycles, tid, cat, dur_or_args]
        self.events: List[tuple] = []
        self.dropped = 0

    # ------------------------------------------------------------- recording

    def begin(self, name: str, ts, tid: int, cat: str = "") -> bool:
        """Open a duration event; returns False when over budget (the
        caller must then skip the matching :meth:`end`)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(("B", name, ts, tid, cat, None))
        return True

    def end(self, name: str, ts, tid: int, cat: str = "") -> None:
        self.events.append(("E", name, ts, tid, cat, None))

    def instant(self, name: str, ts, tid: int, cat: str = "") -> None:
        self.events.append(("I", name, ts, tid, cat, None))

    def complete(
        self, name: str, start, end, tid: int, cat: str = "", args: Optional[dict] = None
    ) -> None:
        self.events.append(("X", name, start, tid, cat, (end - start, args)))

    # -------------------------------------------------------------- queries

    def open_spans(self) -> int:
        """Begin events without a matching end (0 after a completed run)."""
        depth = 0
        for ph, *_rest in self.events:
            if ph == "B":
                depth += 1
            elif ph == "E":
                depth -= 1
        return depth

    # --------------------------------------------------------------- export

    def to_chrome_trace(
        self, clock_hz: float, meta: Optional[Dict[str, object]] = None,
        pid: int = 1, label: Optional[str] = None,
    ) -> Dict[str, object]:
        """The trace-event JSON object; ``ts`` in microseconds at
        ``clock_hz`` (Perfetto's expected unit).

        ``pid``/``label`` exist for multi-domain merges
        (:func:`repro.trace.merge_chrome_trace` re-homes simulated
        timelines next to wall-clock service spans); the defaults keep
        the historical single-process output byte-identical — ``label``
        lands in ``otherData`` only when given.
        """
        scale = 1e6 / clock_hz
        out: List[dict] = []
        for ph, name, ts, tid, cat, payload in self.events:
            event = {
                "name": name,
                "ph": ph,
                "ts": ts * scale,
                "pid": pid,
                "tid": tid,
            }
            if cat:
                event["cat"] = cat
            if ph == "X":
                dur, args = payload
                event["dur"] = dur * scale
                if args:
                    event["args"] = args
            out.append(event)
        trace: Dict[str, object] = {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock_hz": clock_hz,
                "timestamps": "simulated cycles / clock_hz",
                "dropped_events": self.dropped,
            },
        }
        if label is not None:
            trace["otherData"]["label"] = label
        if meta:
            trace["otherData"].update(meta)
        return trace
