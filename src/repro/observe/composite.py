"""Fan one machine observer slot out to several observers.

The :class:`~repro.vm.machine.Machine` has a single ``observer`` slot and
the :class:`~repro.jit.pipeline.JitCompiler` a single ``trace`` slot; both
are wired once at construction time.  Attaching the cycle-attribution
profiler *and* a metrics registry (or a flamegraph sampler) to the same run
therefore needs a fan-out, not a second registration — re-registering hooks
would double-charge recorders and break the profiler's exact-coverage
accounting.  :class:`CompositeObserver` is that fan-out: it presents the
ordinary observer surface and forwards every hook to each child exactly
once, and its ``jit`` attribute fans the compilation trace out the same
way.

Hot-path note: the composite honours the ``instr = None`` convention from
:class:`~repro.observe.base.MachineObserver` — it precomputes the list of
children that want per-instruction callbacks, and when none do it sets its
own ``instr`` to ``None`` so the machine skips the call entirely.
"""

from __future__ import annotations

from typing import List, Optional

from .base import MachineObserver


class _FanoutList:
    """List façade whose ``append`` forwards to several real lists (the
    inliner appends InlineDecision records to ``rec.inline_decisions``)."""

    __slots__ = ("_lists",)

    def __init__(self, lists) -> None:
        self._lists = lists

    def append(self, item) -> None:
        for target in self._lists:
            target.append(item)


class _FanoutCompileRec:
    """Per-method compilation record that mirrors every operation — method
    calls *and* attribute writes like ``rec.lowered_instrs = n`` — onto the
    child traces' records."""

    def __init__(self, recs) -> None:
        object.__setattr__(self, "_recs", recs)
        object.__setattr__(
            self, "inline_decisions", _FanoutList([r.inline_decisions for r in recs])
        )

    def __setattr__(self, name, value) -> None:
        for rec in self._recs:
            setattr(rec, name, value)

    def record_pass(self, name: str, before: int, fn) -> None:
        for rec in self._recs:
            rec.record_pass(name, before, fn)

    def finish(self, fn) -> None:
        for rec in self._recs:
            rec.finish(fn)


class CompositeJitTrace:
    """JitTrace-compatible fan-out over several compilation recorders."""

    def __init__(self, traces) -> None:
        self.traces = list(traces)

    def begin(self, method: str, inline_candidate: bool) -> _FanoutCompileRec:
        return _FanoutCompileRec(
            [t.begin(method, inline_candidate=inline_candidate) for t in self.traces]
        )


class CompositeObserver(MachineObserver):
    """Forward every machine hook to each of ``observers`` exactly once.

    Children keep their own exclusivity rules (e.g. the profiler's
    one-machine-per-Observer check) because ``attach`` propagates; the
    machine itself only ever sees the composite.
    """

    def __init__(self, *observers: Optional[MachineObserver]) -> None:
        self.observers: List[MachineObserver] = [o for o in observers if o is not None]
        if not self.observers:
            raise ValueError("CompositeObserver needs at least one observer")
        jits = [o.jit for o in self.observers if o.jit is not None]
        if len(jits) == 1:
            self.jit = jits[0]
        elif jits:
            self.jit = CompositeJitTrace(jits)
        self._instr_targets = [
            o.instr for o in self.observers if o.instr is not None
        ]
        if not self._instr_targets:
            # machine-side convention: skip the per-instruction call
            self.instr = None
        self.machine = None

    # ------------------------------------------------------------- lifecycle

    def attach(self, machine) -> None:
        self.machine = machine
        for o in self.observers:
            o.attach(machine)

    @property
    def benchmark(self):
        for o in self.observers:
            if o.benchmark is not None:
                return o.benchmark
        return None

    @benchmark.setter
    def benchmark(self, name) -> None:
        for o in self.observers:
            o.benchmark = name

    # ----------------------------------------------------------------- hooks

    def instr(self, fn, op: int, cost) -> None:
        for target in self._instr_targets:
            target(fn, op, cost)

    def dyn(self, fn, category: str, cycles) -> None:
        for o in self.observers:
            o.dyn(fn, category, cycles)

    def enter(self, thread, fn, now) -> None:
        for o in self.observers:
            o.enter(thread, fn, now)

    def exit(self, thread, now) -> None:
        for o in self.observers:
            o.exit(thread, now)

    def thread_started(self, thread, now) -> None:
        for o in self.observers:
            o.thread_started(thread, now)

    def quantum(self, thread, start, end) -> None:
        for o in self.observers:
            o.quantum(thread, start, end)

    def switch(self, thread, cost, now) -> None:
        for o in self.observers:
            o.switch(thread, cost, now)

    def alloc(self, byte_size: int, cycles) -> None:
        for o in self.observers:
            o.alloc(byte_size, cycles)

    def gc(self, start, end, live: int) -> None:
        for o in self.observers:
            o.gc(start, end, live)

    def throw(self, now) -> None:
        for o in self.observers:
            o.throw(now)

    def unwound(self, thread, now) -> None:
        for o in self.observers:
            o.unwound(thread, now)

    def contention(self, thread, now) -> None:
        for o in self.observers:
            o.contention(thread, now)
