"""Cycle-attribution recorder: where did every simulated cycle go?

The harness has always produced aggregate totals (``Machine.cycles``,
per-section sums); this module breaks those totals down per method, per MIR
opcode, and per *cost category* so a measured gap can be explained from our
own data — the paper's section-4/5 analysis (loop overhead, exception
dispatch, allocation, monitors, the large-memory-model tax) made
inspectable.

Design invariant (**observer-effect freedom**): the recorder only ever
*reads* machine state.  Every hook is called at a point where the machine
has already decided what to charge; enabling observation must never change
``machine.cycles``, ``machine.instructions``, or any benchmark result —
``tests/test_observe.py`` enforces bit-identity against unobserved runs.

Category model:

* ``execute``        — statically stamped per-instruction cost (the JIT
                       cost model: ALU, memory operands, bounds checks);
* ``dispatch``       — dynamic call overhead (frame setup, virtual-slot
                       lookup extra, intrinsic entry);
* ``alloc+gc``       — allocation, the amortized GC share, explicit
                       collections;
* ``exception``      — two-pass exception dispatch (throw + per-frame);
* ``memtax``         — the large-working-set array-access tax;
* ``monitor/thread`` — monitor enter/exit/contention, thread start,
                       context switches;
* ``runtime``        — data-dependent intrinsic work (serializer bytes,
                       string characters).

The sum over all buckets reconstructs ``machine.cycles`` exactly (the
report prints the coverage percentage; tests require >= 95%).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..jit import mir
from .base import MachineObserver
from .jittrace import JitTrace
from .timeline import Timeline

# cost categories (keep in sync with the module docstring)
CAT_EXECUTE = "execute"
CAT_DISPATCH = "dispatch"
CAT_ALLOC = "alloc+gc"
CAT_EXCEPTION = "exception"
CAT_MEMTAX = "memtax"
CAT_MONITOR = "monitor/thread"
CAT_RUNTIME = "runtime"

CATEGORIES = (
    CAT_EXECUTE,
    CAT_DISPATCH,
    CAT_ALLOC,
    CAT_EXCEPTION,
    CAT_MEMTAX,
    CAT_MONITOR,
    CAT_RUNTIME,
)

#: method bucket used when a charge has no managed frame (e.g. a context
#: switch after a thread's last frame popped)
RUNTIME_METHOD = "<runtime>"


class CycleAttribution:
    """Accumulates (method x opcode) static costs and (method x category)
    dynamic costs; everything else is derived at reporting time."""

    def __init__(self) -> None:
        #: (method, opcode) -> [executed count, cycles]
        self.by_method_op: Dict[Tuple[str, int], List[float]] = {}
        #: (method, category) -> cycles (dynamic charges only)
        self.by_method_cat: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------- recording

    def instr(self, method: str, op: int, cost: float) -> None:
        cell = self.by_method_op.get((method, op))
        if cell is None:
            self.by_method_op[(method, op)] = [1, cost]
        else:
            cell[0] += 1
            cell[1] += cost

    def dyn(self, method: str, category: str, cycles: float) -> None:
        key = (method, category)
        self.by_method_cat[key] = self.by_method_cat.get(key, 0) + cycles

    # ------------------------------------------------------------ aggregates

    def instructions(self) -> int:
        return int(sum(c for c, _cyc in self.by_method_op.values()))

    def attributed_cycles(self) -> float:
        return sum(cyc for _c, cyc in self.by_method_op.values()) + sum(
            self.by_method_cat.values()
        )

    def categories(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        execute = sum(cyc for _c, cyc in self.by_method_op.values())
        if execute:
            out[CAT_EXECUTE] = execute
        for (_method, cat), cyc in self.by_method_cat.items():
            out[cat] = out.get(cat, 0) + cyc
        return out

    def methods(self) -> Dict[str, Dict[str, object]]:
        """method -> {instructions, cycles, categories{cat: cycles}}."""
        out: Dict[str, Dict[str, object]] = {}

        def bucket(name: str) -> Dict[str, object]:
            b = out.get(name)
            if b is None:
                b = {"instructions": 0, "cycles": 0.0, "categories": {}}
                out[name] = b
            return b

        for (method, _op), (count, cyc) in self.by_method_op.items():
            b = bucket(method)
            b["instructions"] += int(count)
            b["cycles"] += cyc
            cats = b["categories"]
            cats[CAT_EXECUTE] = cats.get(CAT_EXECUTE, 0) + cyc
        for (method, cat), cyc in self.by_method_cat.items():
            b = bucket(method)
            b["cycles"] += cyc
            cats = b["categories"]
            cats[cat] = cats.get(cat, 0) + cyc
        return out

    def opcodes(self) -> Dict[str, Dict[str, float]]:
        """opcode name -> {count, cycles} (static stamped costs only)."""
        out: Dict[str, Dict[str, float]] = {}
        for (_method, op), (count, cyc) in self.by_method_op.items():
            name = mir.name(op)
            cell = out.get(name)
            if cell is None:
                out[name] = {"count": int(count), "cycles": cyc}
            else:
                cell["count"] += int(count)
                cell["cycles"] += cyc
        return out


class Observer(MachineObserver):
    """The bundle a :class:`~repro.vm.machine.Machine` reports into.

    Wire it at construction time::

        obs = Observer()
        machine = Machine(loaded, profile, observer=obs)
        machine.run()
        print(render_report(obs))   # repro.observe.report

    One observer observes one machine (attach is exclusive); the recorded
    data stays available after the run for reporting/export/diffing.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        self.cycles = CycleAttribution()
        self.timeline = Timeline(max_events=max_events)
        self.jit = JitTrace()
        self.machine = None
        #: set by the harness for artifact naming; None for direct use
        self.benchmark: Optional[str] = None
        #: shadow call stacks: tid -> list of (method name, event emitted)
        self._stacks: Dict[int, List[Tuple[str, bool]]] = {}

    # ------------------------------------------------------------- lifecycle

    def attach(self, machine) -> None:
        if self.machine is not None and self.machine is not machine:
            raise ValueError("Observer is already attached to another Machine")
        self.machine = machine

    @property
    def runtime_name(self) -> Optional[str]:
        return None if self.machine is None else self.machine.profile.name

    # ------------------------------------------------- machine-facing hooks
    #
    # `fn` is the executing MIRFunction (or None when no managed frame is
    # live); hooks never mutate it.

    def instr(self, fn, op: int, cost: float) -> None:
        self.cycles.instr(fn.full_name, op, cost)

    def dyn(self, fn, category: str, cycles: float) -> None:
        self.cycles.dyn(
            fn.full_name if fn is not None else RUNTIME_METHOD, category, cycles
        )

    def enter(self, thread, fn, now) -> None:
        stack = self._stacks.get(thread.tid)
        if stack is None:
            stack = self._stacks[thread.tid] = []
        emitted = self.timeline.begin(fn.full_name, now, thread.tid, cat="method")
        stack.append((fn.full_name, emitted))

    def exit(self, thread, now) -> None:
        stack = self._stacks.get(thread.tid)
        if not stack:  # pragma: no cover - defensive (pop without push)
            return
        name, emitted = stack.pop()
        if emitted:
            self.timeline.end(name, now, thread.tid, cat="method")

    def thread_started(self, thread, now) -> None:
        self.timeline.instant(f"start {thread.name}", now, thread.tid, cat="thread")

    def quantum(self, thread, start, end) -> None:
        self.timeline.complete(
            f"quantum {thread.name}", start, end, Timeline.SCHEDULER_TRACK, cat="sched"
        )

    def gc(self, start, end, live: int) -> None:
        self.timeline.complete(
            "GC.Collect", start, end, Timeline.GC_TRACK, cat="gc", args={"live": live}
        )
