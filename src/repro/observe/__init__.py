"""``repro.observe`` — cycle-attribution profiler, JIT trace, and event
timeline for the measured engine.

The subsystem answers *why* one runtime profile is slower than another from
our own data instead of opaque totals: attach an :class:`Observer` to a
:class:`~repro.vm.machine.Machine` (or pass ``observe=True`` to
:meth:`repro.harness.runner.Runner.run_on`) and every simulated cycle is
broken down per method, per MIR opcode, and per cost category, the JIT
pipeline's per-method decisions are traced, and a Chrome trace-event
timeline of the run is recorded — all without perturbing the measurement
(observed and unobserved runs are bit-identical in cycles, instructions,
and results).

Command-line access: ``repro-prof report|diff|export`` (see
:mod:`repro.observe.cli`) or ``hpcnet run ... --profile``.
"""

from .base import MachineObserver
from .composite import CompositeJitTrace, CompositeObserver
from .jittrace import JitTrace, MethodCompile
from .recorder import (
    CAT_ALLOC,
    CAT_DISPATCH,
    CAT_EXCEPTION,
    CAT_EXECUTE,
    CAT_MEMTAX,
    CAT_MONITOR,
    CAT_RUNTIME,
    CATEGORIES,
    CycleAttribution,
    Observer,
)
from .report import (
    coverage,
    diff_categories,
    profile_from_path,
    profile_to_dict,
    render_diff,
    render_diff_markdown,
    render_report,
)
from .timeline import Timeline

__all__ = [
    "CATEGORIES",
    "CAT_ALLOC",
    "CAT_DISPATCH",
    "CAT_EXCEPTION",
    "CAT_EXECUTE",
    "CAT_MEMTAX",
    "CAT_MONITOR",
    "CAT_RUNTIME",
    "CompositeJitTrace",
    "CompositeObserver",
    "CycleAttribution",
    "JitTrace",
    "MachineObserver",
    "MethodCompile",
    "Observer",
    "Timeline",
    "coverage",
    "diff_categories",
    "profile_from_path",
    "profile_to_dict",
    "render_diff",
    "render_diff_markdown",
    "render_report",
]
