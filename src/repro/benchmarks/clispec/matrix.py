"""Matrix — Table 3 + Graph 12: "assignments of different styles of
matrices, such as jagged versus true multidimensional" crossed with value
vs object element types.

Graph 12's finding: on CLR 1.1, copy assignments through true
multidimensional arrays run at ~25% of jagged-array speed; value-type
elements beat object-type elements.
"""

from ..registry import Benchmark, register

SOURCE = """
struct ValCell { double v; }
class ObjCell { double v; }

class MatrixBench {
    static void Main() {
        int n = Params.N;
        int reps = Params.Reps;
        long copies = (long)reps * (long)n * (long)n;

        double[,] mdSrc = new double[n, n];
        double[,] mdDst = new double[n, n];
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) { mdSrc[i, j] = i * n + j; }
        Bench.Start("Matrix:MultiDim");
        for (int r = 0; r < reps; r++) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++) { mdDst[i, j] = mdSrc[i, j]; }
        }
        Bench.Stop("Matrix:MultiDim");
        Bench.Ops("Matrix:MultiDim", copies);
        Bench.Result("Matrix:MultiDim", mdDst[n - 1, n - 1]);

        double[][] jagSrc = new double[n][];
        double[][] jagDst = new double[n][];
        for (int i = 0; i < n; i++) {
            jagSrc[i] = new double[n];
            jagDst[i] = new double[n];
            for (int j = 0; j < n; j++) { jagSrc[i][j] = i * n + j; }
        }
        Bench.Start("Matrix:Jagged");
        for (int r = 0; r < reps; r++) {
            for (int i = 0; i < n; i++) {
                double[] src = jagSrc[i];
                double[] dst = jagDst[i];
                for (int j = 0; j < n; j++) { dst[j] = src[j]; }
            }
        }
        Bench.Stop("Matrix:Jagged");
        Bench.Ops("Matrix:Jagged", copies);
        Bench.Result("Matrix:Jagged", jagDst[n - 1][n - 1]);

        ValCell[] valSrc = new ValCell[n * n];
        ValCell[] valDst = new ValCell[n * n];
        for (int i = 0; i < n * n; i++) { valSrc[i].v = i; }
        Bench.Start("Matrix:ValueType");
        for (int r = 0; r < reps; r++) {
            for (int i = 0; i < n * n; i++) { valDst[i] = valSrc[i]; }
        }
        Bench.Stop("Matrix:ValueType");
        Bench.Ops("Matrix:ValueType", copies);
        Bench.Result("Matrix:ValueType", valDst[n * n - 1].v);

        ObjCell[] objSrc = new ObjCell[n * n];
        ObjCell[] objDst = new ObjCell[n * n];
        for (int i = 0; i < n * n; i++) {
            objSrc[i] = new ObjCell();
            objSrc[i].v = i;
            objDst[i] = new ObjCell();
        }
        Bench.Start("Matrix:ObjectType");
        for (int r = 0; r < reps; r++) {
            for (int i = 0; i < n * n; i++) { objDst[i].v = objSrc[i].v; }
        }
        Bench.Stop("Matrix:ObjectType");
        Bench.Ops("Matrix:ObjectType", copies);
        Bench.Result("Matrix:ObjectType", objDst[n * n - 1].v);

        if (mdDst[1, 1] != jagDst[1][1]) { Bench.Fail("matrix copy mismatch"); }
    }
}
"""

SECTIONS = ("Matrix:MultiDim", "Matrix:Jagged", "Matrix:ValueType", "Matrix:ObjectType")

MATRIX = register(
    Benchmark(
        name="clispec.matrix",
        suite="cli-specific",
        description="matrix copy: true multidim vs jagged vs value/object elements (Graph 12)",
        source=SOURCE,
        params={"N": 16, "Reps": 4},
        paper_params={"N": 1000, "Reps": 100},
        sections=SECTIONS,
    )
)
