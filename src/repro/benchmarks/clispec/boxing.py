"""Boxing — Table 3: "tests the explicit and implicit boxing and unboxing
of value types" (CLI-specific micro suite)."""

from ..registry import Benchmark, register

SOURCE = """
struct Pair { int a; int b; }

class BoxingBench {
    static void Main() {
        int reps = Params.Reps;
        long ops = (long)reps;

        object o = null;
        Bench.Start("Boxing:Box:Int");
        for (int i = 0; i < reps; i++) { o = (object)i; }
        Bench.Stop("Boxing:Box:Int");
        Bench.Ops("Boxing:Box:Int", ops);

        int back = 0;
        Bench.Start("Boxing:Unbox:Int");
        for (int i = 0; i < reps; i++) { back = (int)o; }
        Bench.Stop("Boxing:Unbox:Int");
        Bench.Ops("Boxing:Unbox:Int", ops);
        if (back != reps - 1) { Bench.Fail("unbox wrong value"); }

        Bench.Start("Boxing:Implicit");
        int total = 0;
        for (int i = 0; i < reps; i++) {
            object tmp = i;         // implicit box
            total += (int)tmp;      // unbox
        }
        Bench.Stop("Boxing:Implicit");
        Bench.Ops("Boxing:Implicit", ops);
        if (total != (reps - 1) * reps / 2) { Bench.Fail("implicit boxing sum wrong"); }

        Pair p = new Pair();
        p.a = 3; p.b = 4;
        object boxed = null;
        Bench.Start("Boxing:Box:Struct");
        for (int i = 0; i < reps; i++) { boxed = (object)p; }
        Bench.Stop("Boxing:Box:Struct");
        Bench.Ops("Boxing:Box:Struct", ops);

        Pair q = new Pair();
        Bench.Start("Boxing:Unbox:Struct");
        for (int i = 0; i < reps; i++) { q = (Pair)boxed; }
        Bench.Stop("Boxing:Unbox:Struct");
        Bench.Ops("Boxing:Unbox:Struct", ops);
        if (q.a != 3 || q.b != 4) { Bench.Fail("struct unbox mismatch"); }
    }
}
"""

SECTIONS = (
    "Boxing:Box:Int", "Boxing:Unbox:Int", "Boxing:Implicit",
    "Boxing:Box:Struct", "Boxing:Unbox:Struct",
)

BOXING = register(
    Benchmark(
        name="clispec.boxing",
        suite="cli-specific",
        description="explicit/implicit boxing and unboxing of value types",
        source=SOURCE,
        params={"Reps": 2500},
        paper_params={"Reps": 10_000_000},
        sections=SECTIONS,
    )
)
