"""Benchmark registry.

A :class:`Benchmark` is a Kernel-C# program plus its parameter set.  Sizes
are injected by generating a ``Params`` class ahead of the kernel source, so
one compiled image per (benchmark, size) exists — the paper's single-
compiler rule then runs that image on every profile.

Size scaling (DESIGN.md section 2): the paper's problem sizes target 2003
hardware measured in wall seconds; ours target a simulated machine measured
in cycles, so every benchmark declares paper sizes and scaled defaults, and
the harness records the scale next to every result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import BenchmarkError


@dataclass(frozen=True)
class Benchmark:
    #: hierarchical id, e.g. "micro.arith" or "scimark.fft"
    name: str
    #: which paper suite it reproduces (table 1-4 row)
    suite: str
    description: str
    #: Kernel-C# source; reads sizes from the generated Params class
    source: str
    #: default (scaled) parameters; ints/longs/doubles/bools by Python type
    params: Dict[str, object] = field(default_factory=dict)
    #: the paper's original sizes, for documentation output
    paper_params: Dict[str, object] = field(default_factory=dict)
    #: Bench section names the program must produce
    sections: tuple = ()
    #: optional callable(machine) -> None raising BenchmarkError on bad output
    validate: Optional[Callable] = None
    #: entry class name (default: class Main lives in)
    entry_class: Optional[str] = None

    def build_source(self, overrides: Optional[Dict[str, object]] = None) -> str:
        values = dict(self.params)
        if overrides:
            unknown = set(overrides) - set(values)
            if unknown:
                raise BenchmarkError(f"{self.name}: unknown params {sorted(unknown)}")
            values.update(overrides)
        lines = ["class Params {"]
        for key, value in values.items():
            if isinstance(value, bool):
                lines.append(f"    static bool {key} = {'true' if value else 'false'};")
            elif isinstance(value, int):
                if abs(value) > 2**31 - 1:
                    lines.append(f"    static long {key} = {value}L;")
                else:
                    lines.append(f"    static int {key} = {value};")
            elif isinstance(value, float):
                lines.append(f"    static double {key} = {value!r};")
            else:
                raise BenchmarkError(f"{self.name}: bad param {key}={value!r}")
        lines.append("}")
        return "\n".join(lines) + "\n" + self.source


_REGISTRY: Dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise BenchmarkError(f"duplicate benchmark {benchmark.name}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def get(name: str) -> Benchmark:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def all_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def by_suite(suite: str) -> List[Benchmark]:
    _ensure_loaded()
    return [b for b in all_benchmarks() if b.suite == suite]


_loaded = False


def _ensure_loaded() -> None:
    """Import every benchmark module exactly once (they self-register)."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from .micro import (  # noqa: F401
        arith, assign, cast, create, exception, loop, math_bench, method, serial,
    )
    from .threads import barrier, forkjoin, lock_bench, sync, thread_bench  # noqa: F401
    from .clispec import boxing, matrix  # noqa: F401
    from .scimark import (  # noqa: F401
        fft, lu, montecarlo, montecarlo_mt, sor, sor_mt, sparse,
    )
    from .grande import (  # noqa: F401
        crypt, euler, fibonacci, hanoi, heapsort, moldyn, raytracer, search, sieve,
    )
