"""``repro.benchmarks`` — the ported benchmark suites (paper Tables 1-4)."""

from .registry import Benchmark, all_benchmarks, by_suite, get, register

__all__ = ["Benchmark", "all_benchmarks", "by_suite", "get", "register"]
