"""Serial — Table 1: "Tests the performance of serialization, both writing
and reading of objects to and from a file" (JGF section 1).

A linked structure of ``Nodes`` objects plus a payload array per node is
round-tripped through the Serializer stream; throughput is objects/sec.
"""

from ..registry import Benchmark, register

SOURCE = """
class SerNode {
    int id;
    double weight;
    int[] payload;
    SerNode next;
}
class SerialBench {
    static SerNode BuildChain(int n, int payload) {
        SerNode head = null;
        for (int i = 0; i < n; i++) {
            SerNode node = new SerNode();
            node.id = i;
            node.weight = i * 1.5;
            node.payload = new int[payload];
            for (int k = 0; k < payload; k++) { node.payload[k] = i + k; }
            node.next = head;
            head = node;
        }
        return head;
    }

    static void Main() {
        int reps = Params.Reps;
        int nodes = Params.Nodes;
        int payload = Params.Payload;
        SerNode chain = BuildChain(nodes, payload);

        int bytes = 0;
        Bench.Start("Serial:Write");
        for (int i = 0; i < reps; i++) {
            bytes = Serializer.WriteObject(chain);
        }
        Bench.Stop("Serial:Write");
        Bench.Ops("Serial:Write", (long)reps * (long)nodes);
        Bench.Result("Serial:Write", bytes);

        SerNode back = null;
        Bench.Start("Serial:Read");
        for (int i = 0; i < reps; i++) {
            back = (SerNode)Serializer.ReadObject();
        }
        Bench.Stop("Serial:Read");
        Bench.Ops("Serial:Read", (long)reps * (long)nodes);

        // validate the round trip
        SerNode p = chain; SerNode q = back;
        while (p != null) {
            if (q == null || p.id != q.id || p.weight != q.weight
                || p.payload[payload - 1] != q.payload[payload - 1]) {
                Bench.Fail("Serial round-trip mismatch");
                return;
            }
            p = p.next; q = q.next;
        }
    }
}
"""

SECTIONS = ("Serial:Write", "Serial:Read")

SERIAL = register(
    Benchmark(
        name="micro.serial",
        suite="jg2-section1",
        description="object-graph serialization write/read throughput",
        source=SOURCE,
        params={"Reps": 8, "Nodes": 24, "Payload": 8},
        paper_params={"Reps": 1000, "Nodes": 1000, "Payload": 64},
        sections=SECTIONS,
    )
)
