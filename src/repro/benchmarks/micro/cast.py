"""Cast — Table 1: "Tests the performance of casting between different
primitive types" (JGF section 1).

int<->float, int<->double, long<->float, long<->double round trips; the
float->int direction is the expensive one on x87-era hardware (mode
switches), which ``conv_r_i`` models.
"""

from ..registry import Benchmark, register

SOURCE = """
class CastBench {
    static void Main() {
        int reps = Params.Reps;
        long ops = (long)reps * 4L;

        int i1 = 9; float f1 = 9.0f;
        Bench.Start("Cast:IntFloat");
        for (int k = 0; k < reps; k++) {
            f1 = (float)i1; i1 = (int)f1; f1 = (float)i1; i1 = (int)f1;
        }
        Bench.Stop("Cast:IntFloat");
        Bench.Ops("Cast:IntFloat", ops);
        if (i1 != 9) { Bench.Fail("Cast:IntFloat value drift"); }

        int i2 = 17; double d1 = 17.0;
        Bench.Start("Cast:IntDouble");
        for (int k = 0; k < reps; k++) {
            d1 = (double)i2; i2 = (int)d1; d1 = (double)i2; i2 = (int)d1;
        }
        Bench.Stop("Cast:IntDouble");
        Bench.Ops("Cast:IntDouble", ops);

        long l1 = 123456789L; float f2 = 0.0f;
        Bench.Start("Cast:LongFloat");
        for (int k = 0; k < reps; k++) {
            f2 = (float)l1; l1 = (long)f2; f2 = (float)l1; l1 = (long)f2;
        }
        Bench.Stop("Cast:LongFloat");
        Bench.Ops("Cast:LongFloat", ops);

        long l2 = 987654321L; double d2 = 0.0;
        Bench.Start("Cast:LongDouble");
        for (int k = 0; k < reps; k++) {
            d2 = (double)l2; l2 = (long)d2; d2 = (double)l2; l2 = (long)d2;
        }
        Bench.Stop("Cast:LongDouble");
        Bench.Ops("Cast:LongDouble", ops);
    }
}
"""

SECTIONS = ("Cast:IntFloat", "Cast:IntDouble", "Cast:LongFloat", "Cast:LongDouble")

CAST = register(
    Benchmark(
        name="micro.cast",
        suite="jg2-section1",
        description="primitive cast round-trip cost",
        source=SOURCE,
        params={"Reps": 5000},
        paper_params={"Reps": 10_000_000},
        sections=SECTIONS,
    )
)
