"""Method — Table 1: "Determines the cost of method calls" (JGF section 1).

Same-class static, instance (non-virtual), virtual dispatched, and
other-class static/instance variants.  JITs that inline (CLR, IBM) collapse
the trivial static calls; virtual calls always pay the dispatch.
"""

from ..registry import Benchmark, register

SOURCE = """
class Other {
    static int StatAdd(int x) { return x + 1; }
    int InstAdd(int x) { return x + 1; }
}
class MethodBench {
    int field;

    static int StatAdd(int x) { return x + 1; }
    int InstAdd(int x) { return x + 1; }
    virtual int VirtAdd(int x) { return x + 1; }

    static void Main() {
        int reps = Params.Reps;
        long ops = (long)reps * 4L;
        int v = 0;

        Bench.Start("Method:Same:Static");
        for (int i = 0; i < reps; i++) {
            v = StatAdd(v); v = StatAdd(v); v = StatAdd(v); v = StatAdd(v);
        }
        Bench.Stop("Method:Same:Static");
        Bench.Ops("Method:Same:Static", ops);

        MethodBench self = new MethodBench();
        Bench.Start("Method:Same:Instance");
        for (int i = 0; i < reps; i++) {
            v = self.InstAdd(v); v = self.InstAdd(v); v = self.InstAdd(v); v = self.InstAdd(v);
        }
        Bench.Stop("Method:Same:Instance");
        Bench.Ops("Method:Same:Instance", ops);

        Bench.Start("Method:Same:Virtual");
        for (int i = 0; i < reps; i++) {
            v = self.VirtAdd(v); v = self.VirtAdd(v); v = self.VirtAdd(v); v = self.VirtAdd(v);
        }
        Bench.Stop("Method:Same:Virtual");
        Bench.Ops("Method:Same:Virtual", ops);

        Bench.Start("Method:Other:Static");
        for (int i = 0; i < reps; i++) {
            v = Other.StatAdd(v); v = Other.StatAdd(v); v = Other.StatAdd(v); v = Other.StatAdd(v);
        }
        Bench.Stop("Method:Other:Static");
        Bench.Ops("Method:Other:Static", ops);

        Other other = new Other();
        Bench.Start("Method:Other:Instance");
        for (int i = 0; i < reps; i++) {
            v = other.InstAdd(v); v = other.InstAdd(v); v = other.InstAdd(v); v = other.InstAdd(v);
        }
        Bench.Stop("Method:Other:Instance");
        Bench.Ops("Method:Other:Instance", ops);

        if (v != reps * 20) { Bench.Fail("Method call count mismatch"); }
    }
}
"""

SECTIONS = (
    "Method:Same:Static", "Method:Same:Instance", "Method:Same:Virtual",
    "Method:Other:Static", "Method:Other:Instance",
)

METHOD = register(
    Benchmark(
        name="micro.method",
        suite="jg2-section1",
        description="method invocation cost by dispatch kind",
        source=SOURCE,
        params={"Reps": 3000},
        paper_params={"Reps": 10_000_000},
        sections=SECTIONS,
    )
)
