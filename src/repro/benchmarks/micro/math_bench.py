"""Math — Table 1: "Measures the performance of all the methods in the Math
library" — the Graphs 6-8 subject (26 routines in three groups).

Group I: Abs/Max/Min over int/long/float/double; group II: trigonometry;
group III: floor/ceil/sqrt/exp/log/pow/rint/random/round.  calls/sec per
routine; the CLR's intrinsified x87 math vs the JVMs' strict libraries is
one of the paper's consistent findings.
"""

from ..registry import Benchmark, register

SOURCE = """
class MathBench {
    static void Main() {
        GroupOne();
        GroupTwo();
        GroupThree();
    }

    static void GroupOne() {
        int reps = Params.Reps;
        long ops = (long)reps * 2L;

        int ri = 0;
        Bench.Start("Math:AbsInt");
        for (int i = 0; i < reps; i++) { ri = Math.Abs(i - 500); ri = Math.Abs(ri - 100); }
        Bench.Stop("Math:AbsInt");
        Bench.Ops("Math:AbsInt", ops);

        long rl = 0L;
        Bench.Start("Math:AbsLong");
        for (int i = 0; i < reps; i++) { rl = Math.Abs((long)(i - 500)); rl = Math.Abs(rl - 100L); }
        Bench.Stop("Math:AbsLong");
        Bench.Ops("Math:AbsLong", ops);

        float rf = 0.0f;
        Bench.Start("Math:AbsFloat");
        for (int i = 0; i < reps; i++) { rf = Math.Abs(i - 500.5f); rf = Math.Abs(rf - 100.0f); }
        Bench.Stop("Math:AbsFloat");
        Bench.Ops("Math:AbsFloat", ops);

        double rd = 0.0;
        Bench.Start("Math:AbsDouble");
        for (int i = 0; i < reps; i++) { rd = Math.Abs(i - 500.5); rd = Math.Abs(rd - 100.0); }
        Bench.Stop("Math:AbsDouble");
        Bench.Ops("Math:AbsDouble", ops);

        Bench.Start("Math:MaxInt");
        for (int i = 0; i < reps; i++) { ri = Math.Max(i, 500); ri = Math.Max(ri, i + 1); }
        Bench.Stop("Math:MaxInt");
        Bench.Ops("Math:MaxInt", ops);

        Bench.Start("Math:MaxLong");
        for (int i = 0; i < reps; i++) { rl = Math.Max((long)i, 500L); rl = Math.Max(rl, (long)i + 1L); }
        Bench.Stop("Math:MaxLong");
        Bench.Ops("Math:MaxLong", ops);

        Bench.Start("Math:MaxFloat");
        for (int i = 0; i < reps; i++) { rf = Math.Max((float)i, 500.0f); rf = Math.Max(rf, (float)i + 1.0f); }
        Bench.Stop("Math:MaxFloat");
        Bench.Ops("Math:MaxFloat", ops);

        Bench.Start("Math:MaxDouble");
        for (int i = 0; i < reps; i++) { rd = Math.Max((double)i, 500.0); rd = Math.Max(rd, (double)i + 1.0); }
        Bench.Stop("Math:MaxDouble");
        Bench.Ops("Math:MaxDouble", ops);

        Bench.Start("Math:MinInt");
        for (int i = 0; i < reps; i++) { ri = Math.Min(i, 500); ri = Math.Min(ri, i + 1); }
        Bench.Stop("Math:MinInt");
        Bench.Ops("Math:MinInt", ops);

        Bench.Start("Math:MinLong");
        for (int i = 0; i < reps; i++) { rl = Math.Min((long)i, 500L); rl = Math.Min(rl, (long)i + 1L); }
        Bench.Stop("Math:MinLong");
        Bench.Ops("Math:MinLong", ops);

        Bench.Start("Math:MinFloat");
        for (int i = 0; i < reps; i++) { rf = Math.Min((float)i, 500.0f); rf = Math.Min(rf, (float)i + 1.0f); }
        Bench.Stop("Math:MinFloat");
        Bench.Ops("Math:MinFloat", ops);

        Bench.Start("Math:MinDouble");
        for (int i = 0; i < reps; i++) { rd = Math.Min((double)i, 500.0); rd = Math.Min(rd, (double)i + 1.0); }
        Bench.Stop("Math:MinDouble");
        Bench.Ops("Math:MinDouble", ops);
    }

    static void GroupTwo() {
        int reps = Params.Reps / 2;
        long ops = (long)reps;
        double x = 0.0; double r = 0.0;

        Bench.Start("Math:SinDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.001; r += Math.Sin(x); }
        Bench.Stop("Math:SinDouble");
        Bench.Ops("Math:SinDouble", ops);

        Bench.Start("Math:CosDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.001; r += Math.Cos(x); }
        Bench.Stop("Math:CosDouble");
        Bench.Ops("Math:CosDouble", ops);

        Bench.Start("Math:TanDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.001; r += Math.Tan(x); }
        Bench.Stop("Math:TanDouble");
        Bench.Ops("Math:TanDouble", ops);

        Bench.Start("Math:AsinDouble");
        for (int i = 0; i < reps; i++) { x = (i % 1000) * 0.001; r += Math.Asin(x); }
        Bench.Stop("Math:AsinDouble");
        Bench.Ops("Math:AsinDouble", ops);

        Bench.Start("Math:AcosDouble");
        for (int i = 0; i < reps; i++) { x = (i % 1000) * 0.001; r += Math.Acos(x); }
        Bench.Stop("Math:AcosDouble");
        Bench.Ops("Math:AcosDouble", ops);

        Bench.Start("Math:AtanDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.01; r += Math.Atan(x); }
        Bench.Stop("Math:AtanDouble");
        Bench.Ops("Math:AtanDouble", ops);

        Bench.Start("Math:Atan2Double");
        for (int i = 0; i < reps; i++) { x = i * 0.01; r += Math.Atan2(x, 2.0); }
        Bench.Stop("Math:Atan2Double");
        Bench.Ops("Math:Atan2Double", ops);

        if (r != r) { Bench.Fail("Math trig produced NaN"); }
    }

    static void GroupThree() {
        int reps = Params.Reps / 2;
        long ops = (long)reps;
        double x = 0.0; double r = 0.0;

        Bench.Start("Math:FloorDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.37; r += Math.Floor(x); }
        Bench.Stop("Math:FloorDouble");
        Bench.Ops("Math:FloorDouble", ops);

        Bench.Start("Math:CeilDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.37; r += Math.Ceiling(x); }
        Bench.Stop("Math:CeilDouble");
        Bench.Ops("Math:CeilDouble", ops);

        Bench.Start("Math:SqrtDouble");
        for (int i = 0; i < reps; i++) { r += Math.Sqrt(i + 1.0); }
        Bench.Stop("Math:SqrtDouble");
        Bench.Ops("Math:SqrtDouble", ops);

        Bench.Start("Math:ExpDouble");
        for (int i = 0; i < reps; i++) { x = (i % 100) * 0.01; r += Math.Exp(x); }
        Bench.Stop("Math:ExpDouble");
        Bench.Ops("Math:ExpDouble", ops);

        Bench.Start("Math:LogDouble");
        for (int i = 0; i < reps; i++) { r += Math.Log(i + 1.0); }
        Bench.Stop("Math:LogDouble");
        Bench.Ops("Math:LogDouble", ops);

        Bench.Start("Math:PowDouble");
        for (int i = 0; i < reps; i++) { x = 1.0 + (i % 10) * 0.1; r += Math.Pow(x, 2.5); }
        Bench.Stop("Math:PowDouble");
        Bench.Ops("Math:PowDouble", ops);

        Bench.Start("Math:RintDouble");
        for (int i = 0; i < reps; i++) { x = i * 0.37; r += Math.Rint(x); }
        Bench.Stop("Math:RintDouble");
        Bench.Ops("Math:RintDouble", ops);

        Bench.Start("Math:Random");
        for (int i = 0; i < reps; i++) { r += Math.Random(); }
        Bench.Stop("Math:Random");
        Bench.Ops("Math:Random", ops);

        float rf = 0.0f;
        Bench.Start("Math:RoundFloat");
        for (int i = 0; i < reps; i++) { rf += Math.Round(i * 0.37f); }
        Bench.Stop("Math:RoundFloat");
        Bench.Ops("Math:RoundFloat", ops);

        Bench.Start("Math:RoundDouble");
        for (int i = 0; i < reps; i++) { r += Math.Round(i * 0.37); }
        Bench.Stop("Math:RoundDouble");
        Bench.Ops("Math:RoundDouble", ops);

        if (r != r) { Bench.Fail("Math group three produced NaN"); }
    }
}
"""

GROUP1 = (
    "Math:AbsInt", "Math:AbsLong", "Math:AbsFloat", "Math:AbsDouble",
    "Math:MaxInt", "Math:MaxLong", "Math:MaxFloat", "Math:MaxDouble",
    "Math:MinInt", "Math:MinLong", "Math:MinFloat", "Math:MinDouble",
)
GROUP2 = (
    "Math:SinDouble", "Math:CosDouble", "Math:TanDouble", "Math:AsinDouble",
    "Math:AcosDouble", "Math:AtanDouble", "Math:Atan2Double",
)
GROUP3 = (
    "Math:FloorDouble", "Math:CeilDouble", "Math:SqrtDouble", "Math:ExpDouble",
    "Math:LogDouble", "Math:PowDouble", "Math:RintDouble", "Math:Random",
    "Math:RoundFloat", "Math:RoundDouble",
)

MATH = register(
    Benchmark(
        name="micro.math",
        suite="jg2-section1",
        description="Math library call throughput, 26 routines (Graphs 6-8)",
        source=SOURCE,
        params={"Reps": 2000},
        paper_params={"Reps": 10_000_000},
        sections=GROUP1 + GROUP2 + GROUP3,
    )
)
