"""Arith — Table 1: "Measures the performance of arithmetic operations."

The Graph 1-3 subject.  Per JGF section-1 style, each timed section executes
four interleaved operations per loop iteration over live variables so the
compiler cannot collapse the work; ops/sec = 4 * Reps / elapsed.

Integer division uses the exact paper Table 5 shape (repeatedly dividing
the previous result by a loop-invariant divisor) so the CLR's constant
staging quirk and Rotor's cdq emulation land on this code path.
"""

from ..registry import Benchmark, register

SOURCE = """
class ArithBench {
    static void Main() {
        IntOps();
        LongOps();
        FloatOps();
        DoubleOps();
    }

    static void IntOps() {
        int reps = Params.Reps;
        long ops = (long)reps * 4L;

        int a1 = 1; int a2 = 2; int a3 = 3; int a4 = 4;
        Bench.Start("Arith:Add:Int");
        for (int i = 0; i < reps; i++) {
            a1 = a2 + a3; a2 = a3 + a4; a3 = a4 + a1; a4 = a1 + a2;
        }
        Bench.Stop("Arith:Add:Int");
        Bench.Ops("Arith:Add:Int", ops);
        if (a1 + a2 + a3 + a4 == 0) { Bench.Fail("Arith:Add:Int degenerate"); }

        int m1 = 3; int m2 = 5; int m3 = 7; int m4 = 9;
        Bench.Start("Arith:Mul:Int");
        for (int i = 0; i < reps; i++) {
            m1 = m2 * m3; m2 = m3 * m4; m3 = m4 * m1; m4 = m1 * m2;
        }
        Bench.Stop("Arith:Mul:Int");
        Bench.Ops("Arith:Mul:Int", ops);

        int i1 = int.MaxValue; int i2 = 3; int i3 = 5; int i4 = 7;
        Bench.Start("Arith:Div:Int");
        for (int i = 0; i < reps; i++) {
            i1 = i1 / i2;
            i1 = i1 / i3;
            i1 = i1 / i4;
            if (i1 == 0) { i1 = int.MaxValue; }
            i1 = i1 / i2;
        }
        Bench.Stop("Arith:Div:Int");
        Bench.Ops("Arith:Div:Int", ops);
    }

    static void LongOps() {
        int reps = Params.Reps / 2;
        long ops = (long)reps * 4L;

        long a1 = 1L; long a2 = 2L; long a3 = 3L; long a4 = 4L;
        Bench.Start("Arith:Add:Long");
        for (int i = 0; i < reps; i++) {
            a1 = a2 + a3; a2 = a3 + a4; a3 = a4 + a1; a4 = a1 + a2;
        }
        Bench.Stop("Arith:Add:Long");
        Bench.Ops("Arith:Add:Long", ops);

        long m1 = 3L; long m2 = 5L; long m3 = 7L; long m4 = 9L;
        Bench.Start("Arith:Mul:Long");
        for (int i = 0; i < reps; i++) {
            m1 = m2 * m3; m2 = m3 * m4; m3 = m4 * m1; m4 = m1 * m2;
        }
        Bench.Stop("Arith:Mul:Long");
        Bench.Ops("Arith:Mul:Long", ops);

        long d1 = long.MaxValue; long d2 = 3L; long d3 = 5L; long d4 = 7L;
        Bench.Start("Arith:Div:Long");
        for (int i = 0; i < reps; i++) {
            d1 = d1 / d2;
            d1 = d1 / d3;
            d1 = d1 / d4;
            if (d1 == 0L) { d1 = long.MaxValue; }
            d1 = d1 / d2;
        }
        Bench.Stop("Arith:Div:Long");
        Bench.Ops("Arith:Div:Long", ops);
    }

    static void FloatOps() {
        int reps = Params.Reps;
        long ops = (long)reps * 4L;

        float a1 = 1.5f; float a2 = 2.5f; float a3 = 3.5f; float a4 = 4.5f;
        Bench.Start("Arith:Add:Float");
        for (int i = 0; i < reps; i++) {
            a1 = a2 + a3; a2 = a3 + a4; a3 = a4 - a1; a4 = a1 - a2;
        }
        Bench.Stop("Arith:Add:Float");
        Bench.Ops("Arith:Add:Float", ops);

        float m1 = 1.001f; float m2 = 1.002f; float m3 = 1.003f; float m4 = 1.004f;
        Bench.Start("Arith:Mul:Float");
        for (int i = 0; i < reps; i++) {
            m1 = m2 * m3; m2 = m3 * m4; m3 = m4 / m1; m4 = m1 * m2;
        }
        Bench.Stop("Arith:Mul:Float");
        Bench.Ops("Arith:Mul:Float", ops);

        float d1 = 1.0e20f; float d2 = 1.001f; float d3 = 1.002f; float d4 = 1.003f;
        Bench.Start("Arith:Div:Float");
        for (int i = 0; i < reps; i++) {
            d1 = d1 / d2;
            d1 = d1 / d3;
            d1 = d1 / d4;
            if (d1 < 1.0f) { d1 = 1.0e20f; }
            d1 = d1 / d2;
        }
        Bench.Stop("Arith:Div:Float");
        Bench.Ops("Arith:Div:Float", ops);
    }

    static void DoubleOps() {
        int reps = Params.Reps;
        long ops = (long)reps * 4L;

        double a1 = 1.5; double a2 = 2.5; double a3 = 3.5; double a4 = 4.5;
        Bench.Start("Arith:Add:Double");
        for (int i = 0; i < reps; i++) {
            a1 = a2 + a3; a2 = a3 + a4; a3 = a4 - a1; a4 = a1 - a2;
        }
        Bench.Stop("Arith:Add:Double");
        Bench.Ops("Arith:Add:Double", ops);

        double m1 = 1.001; double m2 = 1.002; double m3 = 1.003; double m4 = 1.004;
        Bench.Start("Arith:Mul:Double");
        for (int i = 0; i < reps; i++) {
            m1 = m2 * m3; m2 = m3 * m4; m3 = m4 / m1; m4 = m1 * m2;
        }
        Bench.Stop("Arith:Mul:Double");
        Bench.Ops("Arith:Mul:Double", ops);

        double d1 = 1.0e200; double d2 = 1.001; double d3 = 1.002; double d4 = 1.003;
        Bench.Start("Arith:Div:Double");
        for (int i = 0; i < reps; i++) {
            d1 = d1 / d2;
            d1 = d1 / d3;
            d1 = d1 / d4;
            if (d1 < 1.0) { d1 = 1.0e200; }
            d1 = d1 / d2;
        }
        Bench.Stop("Arith:Div:Double");
        Bench.Ops("Arith:Div:Double", ops);
    }
}
"""

INT_SECTIONS = ("Arith:Add:Int", "Arith:Mul:Int", "Arith:Div:Int")
LONG_SECTIONS = ("Arith:Add:Long", "Arith:Mul:Long", "Arith:Div:Long")
FLOAT_SECTIONS = ("Arith:Add:Float", "Arith:Mul:Float", "Arith:Div:Float")
DOUBLE_SECTIONS = ("Arith:Add:Double", "Arith:Mul:Double", "Arith:Div:Double")

ARITH = register(
    Benchmark(
        name="micro.arith",
        suite="jg2-section1",
        description="arithmetic throughput for int/long/float/double add, multiply, divide",
        source=SOURCE,
        params={"Reps": 6000},
        paper_params={"Reps": 10_000_000},
        sections=INT_SECTIONS + LONG_SECTIONS + FLOAT_SECTIONS + DOUBLE_SECTIONS,
    )
)
