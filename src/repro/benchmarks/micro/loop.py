"""Loop — Table 1: "Measures loop overheads" (JGF section 1): the Graph 4
subject.  ``For``, ``ReverseFor`` and ``While`` over a live accumulator so
the loop cannot be deleted; ops = iterations.
"""

from ..registry import Benchmark, register

SOURCE = """
class LoopBench {
    static void Main() {
        int reps = Params.Reps;
        int guard = 0;

        Bench.Start("Loop:For");
        for (int i = 0; i < reps; i++) { guard = guard + 1; }
        Bench.Stop("Loop:For");
        Bench.Ops("Loop:For", (long)reps);

        Bench.Start("Loop:ReverseFor");
        for (int i = reps; i > 0; i--) { guard = guard + 1; }
        Bench.Stop("Loop:ReverseFor");
        Bench.Ops("Loop:ReverseFor", (long)reps);

        int k = 0;
        Bench.Start("Loop:While");
        while (k < reps) { guard = guard + 1; k = k + 1; }
        Bench.Stop("Loop:While");
        Bench.Ops("Loop:While", (long)reps);

        if (guard != reps * 3) { Bench.Fail("Loop guard mismatch"); }
    }
}
"""

SECTIONS = ("Loop:For", "Loop:ReverseFor", "Loop:While")

LOOP = register(
    Benchmark(
        name="micro.loop",
        suite="jg2-section1",
        description="for / reverse-for / while loop overhead",
        source=SOURCE,
        params={"Reps": 30000},
        paper_params={"Reps": 100_000_000},
        sections=SECTIONS,
    )
)
