"""Assign — Table 1: "Measures the cost of assigning to different types of
variable" (JGF section 1).

Variants: local variable, static field, instance field, array element —
for int and double.  The per-variant gap is dominated by how the JIT
addresses each storage class (register vs static base vs object header vs
indexed), so the spread widens on the weaker JITs.
"""

from ..registry import Benchmark, register

SOURCE = """
class AssignTarget {
    int instInt;
    double instDouble;
    static int statInt;
    static double statDouble;
}
class AssignBench {
    static int statInt;
    static double statDouble;

    static void Main() {
        int reps = Params.Reps;
        long ops = (long)reps * 4L;

        int l1 = 0; int l2 = 0; int l3 = 0; int l4 = 0;
        Bench.Start("Assign:Local:Int");
        for (int i = 0; i < reps; i++) { l1 = i; l2 = i; l3 = i; l4 = i; }
        Bench.Stop("Assign:Local:Int");
        Bench.Ops("Assign:Local:Int", ops);
        if (l1 + l2 + l3 + l4 == -1) { Bench.Fail("degenerate"); }

        double d1 = 0.0; double d2 = 0.0; double d3 = 0.0; double d4 = 0.0;
        Bench.Start("Assign:Local:Double");
        for (int i = 0; i < reps; i++) { d1 = i; d2 = i; d3 = i; d4 = i; }
        Bench.Stop("Assign:Local:Double");
        Bench.Ops("Assign:Local:Double", ops);

        Bench.Start("Assign:Static:Int");
        for (int i = 0; i < reps; i++) {
            statInt = i; AssignTarget.statInt = i; statInt = i; AssignTarget.statInt = i;
        }
        Bench.Stop("Assign:Static:Int");
        Bench.Ops("Assign:Static:Int", ops);

        Bench.Start("Assign:Static:Double");
        for (int i = 0; i < reps; i++) {
            statDouble = i; AssignTarget.statDouble = i; statDouble = i; AssignTarget.statDouble = i;
        }
        Bench.Stop("Assign:Static:Double");
        Bench.Ops("Assign:Static:Double", ops);

        AssignTarget t = new AssignTarget();
        Bench.Start("Assign:Instance:Int");
        for (int i = 0; i < reps; i++) {
            t.instInt = i; t.instInt = i; t.instInt = i; t.instInt = i;
        }
        Bench.Stop("Assign:Instance:Int");
        Bench.Ops("Assign:Instance:Int", ops);

        Bench.Start("Assign:Instance:Double");
        for (int i = 0; i < reps; i++) {
            t.instDouble = i; t.instDouble = i; t.instDouble = i; t.instDouble = i;
        }
        Bench.Stop("Assign:Instance:Double");
        Bench.Ops("Assign:Instance:Double", ops);

        int[] arr = new int[16];
        Bench.Start("Assign:Array:Int");
        for (int i = 0; i < reps; i++) {
            arr[0] = i; arr[1] = i; arr[2] = i; arr[3] = i;
        }
        Bench.Stop("Assign:Array:Int");
        Bench.Ops("Assign:Array:Int", ops);

        double[] darr = new double[16];
        Bench.Start("Assign:Array:Double");
        for (int i = 0; i < reps; i++) {
            darr[0] = i; darr[1] = i; darr[2] = i; darr[3] = i;
        }
        Bench.Stop("Assign:Array:Double");
        Bench.Ops("Assign:Array:Double", ops);
    }
}
"""

SECTIONS = (
    "Assign:Local:Int", "Assign:Local:Double",
    "Assign:Static:Int", "Assign:Static:Double",
    "Assign:Instance:Int", "Assign:Instance:Double",
    "Assign:Array:Int", "Assign:Array:Double",
)

ASSIGN = register(
    Benchmark(
        name="micro.assign",
        suite="jg2-section1",
        description="assignment cost: local / static / instance / array element",
        source=SOURCE,
        params={"Reps": 5000},
        paper_params={"Reps": 10_000_000},
        sections=SECTIONS,
    )
)
