"""Exception — Table 1: "Measures the cost of creating, throwing and
catching exceptions, both in the current method and further down the call
tree" (JGF section 1).  The Graph 5 subject.

Three sections per the paper's graph: ``Throw`` (throw+catch in the same
method), ``New`` (constructing the exception object only), ``Method``
(the throw happens ``Depth`` calls down and unwinds back up).
"""

from ..registry import Benchmark, register

SOURCE = """
class ExceptionBench {
    static void Thrower(int depth) {
        if (depth <= 0) { throw new Exception("deep"); }
        Thrower(depth - 1);
    }

    static void Main() {
        int reps = Params.Reps;
        int depth = Params.Depth;

        int caught = 0;
        Bench.Start("Exception:Throw");
        for (int i = 0; i < reps; i++) {
            try { throw new Exception("x"); }
            catch (Exception e) { caught++; }
        }
        Bench.Stop("Exception:Throw");
        Bench.Ops("Exception:Throw", (long)reps);
        if (caught != reps) { Bench.Fail("Exception:Throw lost exceptions"); }

        Exception last = null;
        Bench.Start("Exception:New");
        for (int i = 0; i < reps; i++) {
            last = new Exception("object only");
        }
        Bench.Stop("Exception:New");
        Bench.Ops("Exception:New", (long)reps);
        if (last == null) { Bench.Fail("Exception:New degenerate"); }

        caught = 0;
        Bench.Start("Exception:Method");
        for (int i = 0; i < reps; i++) {
            try { Thrower(depth); }
            catch (Exception e) { caught++; }
        }
        Bench.Stop("Exception:Method");
        Bench.Ops("Exception:Method", (long)reps);
        if (caught != reps) { Bench.Fail("Exception:Method lost exceptions"); }
    }
}
"""

SECTIONS = ("Exception:Throw", "Exception:New", "Exception:Method")

EXCEPTION = register(
    Benchmark(
        name="micro.exception",
        suite="jg2-section1",
        description="exception throw/catch, allocation, and deep-unwind cost",
        source=SOURCE,
        params={"Reps": 300, "Depth": 6},
        paper_params={"Reps": 1_000_000, "Depth": 10},
        sections=SECTIONS,
    )
)
