"""Create — Table 1: "Tests the performance of creating objects and arrays"
(JGF section 1).

Object creation exercises allocator + GC-share costs (per-profile
``alloc_base``/``alloc_per_word``/``gc_per_kbyte``); array creation adds the
zeroing term proportional to length.
"""

from ..registry import Benchmark, register

SOURCE = """
class Empty { }
class FourFields { int a; int b; double c; double d; }
class Linked { Linked next; int v; }

class CreateBench {
    static void Main() {
        int reps = Params.Reps;

        Bench.Start("Create:Object:Simple");
        for (int i = 0; i < reps; i++) {
            Empty e1 = new Empty(); Empty e2 = new Empty();
            Empty e3 = new Empty(); Empty e4 = new Empty();
        }
        Bench.Stop("Create:Object:Simple");
        Bench.Ops("Create:Object:Simple", (long)reps * 4L);

        Bench.Start("Create:Object:Fields");
        for (int i = 0; i < reps; i++) {
            FourFields f1 = new FourFields(); FourFields f2 = new FourFields();
            FourFields f3 = new FourFields(); FourFields f4 = new FourFields();
        }
        Bench.Stop("Create:Object:Fields");
        Bench.Ops("Create:Object:Fields", (long)reps * 4L);

        Bench.Start("Create:Array:Int:16");
        for (int i = 0; i < reps; i++) {
            int[] a1 = new int[16]; int[] a2 = new int[16];
        }
        Bench.Stop("Create:Array:Int:16");
        Bench.Ops("Create:Array:Int:16", (long)reps * 2L);

        Bench.Start("Create:Array:Int:512");
        for (int i = 0; i < reps / 4; i++) {
            int[] a1 = new int[512];
        }
        Bench.Stop("Create:Array:Int:512");
        Bench.Ops("Create:Array:Int:512", (long)(reps / 4));

        Bench.Start("Create:Array:Object:16");
        for (int i = 0; i < reps; i++) {
            Empty[] oa = new Empty[16];
        }
        Bench.Stop("Create:Array:Object:16");
        Bench.Ops("Create:Array:Object:16", (long)reps);

        // a short linked structure per iteration: allocation + pointer writes
        Bench.Start("Create:Graph");
        for (int i = 0; i < reps / 2; i++) {
            Linked head = new Linked();
            Linked a = new Linked(); a.v = i; a.next = head;
            Linked b = new Linked(); b.v = i + 1; b.next = a;
        }
        Bench.Stop("Create:Graph");
        Bench.Ops("Create:Graph", (long)(reps / 2) * 3L);
    }
}
"""

SECTIONS = (
    "Create:Object:Simple", "Create:Object:Fields",
    "Create:Array:Int:16", "Create:Array:Int:512",
    "Create:Array:Object:16", "Create:Graph",
)

CREATE = register(
    Benchmark(
        name="micro.create",
        suite="jg2-section1",
        description="object and array creation throughput",
        source=SOURCE,
        params={"Reps": 2000},
        paper_params={"Reps": 1_000_000},
        sections=SECTIONS,
    )
)
