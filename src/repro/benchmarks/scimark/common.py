"""Shared SciMark support code.

``SCI_RANDOM_SOURCE`` is a line-for-line port of SciMark 2.0's
``Random.java`` (the 17-lag Fibonacci generator) — per the paper's
methodology, "support code such as timers and random number generators are
kept identical between the C# and Java versions".
:class:`PySciRandom` is the same generator in Python, used by the
:mod:`repro.reference` oracles so kernel outputs can be compared digit for
digit.

``NextDoubleSync()`` is the synchronized variant the MonteCarlo kernel
calls — the paper's section 5 notes the whole kernel "is mainly a test of
the access to synchronized methods", and that the C baseline omits the
locking entirely (our native profile's near-zero monitor cost reproduces
that anomaly from the same IL).
"""

SCI_RANDOM_SOURCE = """
class SciRandom {
    int seed;
    int[] m;
    int i;
    int j;
    int m1;
    int m2;
    double dm1;

    SciRandom(int s) {
        m1 = (1 << 30) + ((1 << 30) - 1);
        m2 = 1 << 16;
        dm1 = 1.0 / (double)m1;
        Initialize(s);
    }

    void Initialize(int s) {
        seed = s;
        m = new int[17];
        int jseed = Math.Min(Math.Abs(s), m1);
        if (jseed % 2 == 0) { jseed = jseed - 1; }
        int k0 = 9069 % m2;
        int k1 = 9069 / m2;
        int j0 = jseed % m2;
        int j1 = jseed / m2;
        for (int iloop = 0; iloop < 17; iloop++) {
            jseed = j0 * k0;
            j1 = (jseed / m2 + j0 * k1 + j1 * k0) % (m2 / 2);
            j0 = jseed % m2;
            m[iloop] = j0 + m2 * j1;
        }
        i = 4;
        j = 16;
    }

    double NextDouble() {
        int k = m[i] - m[j];
        if (k < 0) { k = k + m1; }
        m[j] = k;
        if (i == 0) { i = 16; } else { i = i - 1; }
        if (j == 0) { j = 16; } else { j = j - 1; }
        return dm1 * (double)k;
    }

    double NextDoubleSync() {
        lock (this) {
            return NextDouble();
        }
    }

    void FillVector(double[] x) {
        for (int k = 0; k < x.Length; k++) { x[k] = NextDouble(); }
    }
}
"""


class PySciRandom:
    """The same generator in Python (for the reference oracles)."""

    def __init__(self, seed: int) -> None:
        self.m1 = (1 << 30) + ((1 << 30) - 1)
        self.m2 = 1 << 16
        self.dm1 = 1.0 / float(self.m1)
        self.initialize(seed)

    def initialize(self, seed: int) -> None:
        self.seed = seed
        m = [0] * 17
        jseed = min(abs(seed), self.m1)
        if jseed % 2 == 0:
            jseed -= 1
        k0 = 9069 % self.m2
        k1 = 9069 // self.m2
        j0 = jseed % self.m2
        j1 = jseed // self.m2
        for iloop in range(17):
            jseed = j0 * k0
            j1 = (jseed // self.m2 + j0 * k1 + j1 * k0) % (self.m2 // 2)
            j0 = jseed % self.m2
            m[iloop] = j0 + self.m2 * j1
        self.m = m
        self.i = 4
        self.j = 16

    def next_double(self) -> float:
        k = self.m[self.i] - self.m[self.j]
        if k < 0:
            k += self.m1
        self.m[self.j] = k
        self.i = 16 if self.i == 0 else self.i - 1
        self.j = 16 if self.j == 0 else self.j - 1
        return self.dm1 * float(k)

    def fill(self, n: int):
        return [self.next_double() for _ in range(n)]


#: the seed every SciMark kernel uses (SciMark 2.0's RANDOM_SEED is 101010)
RANDOM_SEED = 101010
