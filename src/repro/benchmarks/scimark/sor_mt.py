"""Parallel SOR — the shared-memory parallel version the paper's section
3.4 plans: row-partitioned Jacobi iteration with a barrier between sweeps.

Unlike the serial Gauss-Seidel-flavoured SOR, the parallel version reads an
old grid and writes a new one (Jacobi), so the result is independent of
thread interleaving; a SimpleBarrier separates the sweep and swap phases.
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class SweepBarrier {
    int parties;
    int count;
    int generation;

    SweepBarrier(int n) { parties = n; }

    void Pass() {
        lock (this) {
            int gen = generation;
            count = count + 1;
            if (count == parties) {
                count = 0;
                generation = generation + 1;
                Monitor.PulseAll(this);
            } else {
                while (generation == gen) { Monitor.Wait(this); }
            }
        }
    }
}

class SorWorker {
    double[][] src;
    double[][] dst;
    SweepBarrier barrier;
    int rowStart;
    int rowEnd;
    int iterations;
    double omega;

    virtual void Run() {
        double omega_over_four = omega * 0.25;
        double one_minus_omega = 1.0 - omega;
        int n = src[0].Length;
        double[][] a = src;
        double[][] b = dst;
        for (int p = 0; p < iterations; p++) {
            for (int i = rowStart; i < rowEnd; i++) {
                double[] ai = a[i];
                double[] aim1 = a[i - 1];
                double[] aip1 = a[i + 1];
                double[] bi = b[i];
                for (int j = 1; j < n - 1; j++) {
                    bi[j] = omega_over_four
                        * (aim1[j] + aip1[j] + ai[j - 1] + ai[j + 1])
                        + one_minus_omega * ai[j];
                }
            }
            barrier.Pass();
            double[][] tmp = a;
            a = b;
            b = tmp;
        }
    }
}

class SorMT {
    static void Main() {
        int n = Params.N;
        int iters = Params.Iters;
        int threads = Params.Threads;
        SciRandom rng = new SciRandom(Params.Seed);

        double[][] g = new double[n][];
        double[][] h = new double[n][];
        for (int i = 0; i < n; i++) {
            g[i] = new double[n];
            h[i] = new double[n];
            for (int j = 0; j < n; j++) { g[i][j] = rng.NextDouble() * 1.0e-6; }
        }
        // boundary rows/cols are never written: copy them to the shadow grid
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { h[i][j] = g[i][j]; }
        }

        SweepBarrier barrier = new SweepBarrier(threads);
        SorWorker[] ws = new SorWorker[threads];
        int[] tids = new int[threads];
        int inner = n - 2;
        int chunk = inner / threads;
        for (int t = 0; t < threads; t++) {
            ws[t] = new SorWorker();
            ws[t].src = g;
            ws[t].dst = h;
            ws[t].barrier = barrier;
            ws[t].rowStart = 1 + t * chunk;
            ws[t].rowEnd = t == threads - 1 ? n - 1 : 1 + (t + 1) * chunk;
            ws[t].iterations = iters;
            ws[t].omega = 1.25;
            tids[t] = Thread.Create(ws[t]);
        }

        long flops = (long)(n - 2) * (long)(n - 2) * (long)iters * 6L;
        Bench.Start("SciMark:SORMT");
        for (int t = 0; t < threads; t++) { Thread.Start(tids[t]); }
        for (int t = 0; t < threads; t++) { Thread.Join(tids[t]); }
        Bench.Stop("SciMark:SORMT");
        Bench.Flops("SciMark:SORMT", flops);

        // after an even number of sweeps the result lives in g
        double[][] result = iters % 2 == 0 ? g : h;
        double checksum = 0.0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { checksum += result[i][j]; }
        }
        Bench.Result("SciMark:SORMT", checksum);
        if (checksum != checksum) { Bench.Fail("parallel SOR produced NaN"); }
    }
}
"""

SOR_MT = register(
    Benchmark(
        name="scimark.sor_mt",
        suite="scimark-parallel",
        description="row-partitioned parallel Jacobi SOR with a sweep barrier",
        source=SOURCE,
        params={"N": 20, "Iters": 4, "Threads": 4, "Seed": RANDOM_SEED},
        paper_params={"N": 100, "Iters": "timed", "Threads": 2, "Seed": RANDOM_SEED},
        sections=("SciMark:SORMT",),
    )
)
