"""SciMark SOR — Table 4: "Jacobi Successive Over-relaxation on a NxN grid
[...] exercises typical access patterns in finite difference applications".

Port of SciMark 2.0 SOR.java over a jagged grid (G[i][j]), omega = 1.25;
flops = (N-1)(N-1) * iterations * 6.
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class SOR {
    static void Execute(double omega, double[][] g, int num_iterations) {
        int m = g.Length;
        int n = g[0].Length;
        double omega_over_four = omega * 0.25;
        double one_minus_omega = 1.0 - omega;
        int mm1 = m - 1;
        int nm1 = n - 1;
        for (int p = 0; p < num_iterations; p++) {
            for (int i = 1; i < mm1; i++) {
                double[] gi = g[i];
                double[] gim1 = g[i - 1];
                double[] gip1 = g[i + 1];
                for (int j = 1; j < nm1; j++) {
                    gi[j] = omega_over_four
                        * (gim1[j] + gip1[j] + gi[j - 1] + gi[j + 1])
                        + one_minus_omega * gi[j];
                }
            }
        }
    }

    static void Main() {
        int n = Params.N;
        int iters = Params.Iters;
        SciRandom rng = new SciRandom(Params.Seed);
        double[][] g = new double[n][];
        for (int i = 0; i < n; i++) {
            g[i] = new double[n];
            for (int j = 0; j < n; j++) { g[i][j] = rng.NextDouble() * 1.0e-6; }
        }

        long flops = (long)(n - 1) * (long)(n - 1) * (long)iters * 6L;
        Bench.Start("SciMark:SOR");
        Execute(1.25, g, iters);
        Bench.Stop("SciMark:SOR");
        Bench.Flops("SciMark:SOR", flops);

        double checksum = 0.0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { checksum += g[i][j]; }
        }
        Bench.Result("SciMark:SOR", checksum);
        if (checksum != checksum) { Bench.Fail("SOR produced NaN"); }
    }
}
"""

SOR = register(
    Benchmark(
        name="scimark.sor",
        suite="scimark",
        description="Jacobi successive over-relaxation, SciMark 2.0 port",
        source=SOURCE,
        params={"N": 24, "Iters": 4, "Seed": RANDOM_SEED},
        paper_params={"N": 100, "Iters": "many (small); 1000 grid (large)", "Seed": RANDOM_SEED},
        sections=("SciMark:SOR",),
    )
)
