"""SciMark SparseMatmult — Table 4: "unstructured sparse matrix stored in
compressed-row format with a prescribed sparsity structure [...] exercises
indirection addressing and non-regular memory references."

Port of SciMark 2.0 SparseCompRow.java including its structured fill
pattern.  The inner loop uses an explicit bound variable exactly like the
original — rewriting it to ``row.Length`` is the paper's section-5
bounds-check experiment, reproduced in ``benchmarks/bench_ablation_boundscheck.py``.
Flops = 2 * nz * reps.
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class SparseCompRow {
    static void MatMult(double[] y, double[] val, int[] row, int[] col,
                        double[] x, int numIterations) {
        int m = row.Length - 1;
        for (int reps = 0; reps < numIterations; reps++) {
            for (int r = 0; r < m; r++) {
                double total = 0.0;
                int rowR = row[r];
                int rowRp1 = row[r + 1];
                for (int i = rowR; i < rowRp1; i++) {
                    total += x[col[i]] * val[i];
                }
                y[r] = total;
            }
        }
    }

    static void Main() {
        int n = Params.N;
        int nz = Params.NZ;
        int reps = Params.Reps;
        SciRandom rng = new SciRandom(Params.Seed);

        double[] x = new double[n];
        rng.FillVector(x);
        double[] y = new double[n];

        int nr = nz / n;        // average number of nonzeros per row
        int anz = nr * n;       // _actual_ number of nonzeros
        double[] val = new double[anz];
        rng.FillVector(val);
        int[] col = new int[anz];
        int[] row = new int[n + 1];

        row[0] = 0;
        for (int r = 0; r < n; r++) {
            int rowr = row[r];
            row[r + 1] = rowr + nr;
            int step = r / nr;
            if (step < 1) { step = 1; }
            for (int i = 0; i < nr; i++) { col[rowr + i] = i * step; }
        }

        long flops = (long)anz * 2L * (long)reps;
        Bench.Start("SciMark:Sparse");
        MatMult(y, val, row, col, x, reps);
        Bench.Stop("SciMark:Sparse");
        Bench.Flops("SciMark:Sparse", flops);

        double checksum = 0.0;
        for (int i = 0; i < n; i++) { checksum += y[i]; }
        Bench.Result("SciMark:Sparse", checksum);
        if (checksum != checksum) { Bench.Fail("Sparse produced NaN"); }
    }
}
"""

SPARSE = register(
    Benchmark(
        name="scimark.sparse",
        suite="scimark",
        description="sparse matrix-vector multiply (CRS), SciMark 2.0 port",
        source=SOURCE,
        params={"N": 100, "NZ": 500, "Reps": 4, "Seed": RANDOM_SEED},
        paper_params={"N": 1000, "NZ": 5000, "Reps": "timed", "Seed": RANDOM_SEED},
        sections=("SciMark:Sparse",),
    )
)
