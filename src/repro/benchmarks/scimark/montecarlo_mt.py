"""Parallel MonteCarlo — the paper's section 3.4 "parallel versions ...
for shared memory" extension, applied to the kernel the paper singles out
as "mainly a test of the access to synchronized methods".

``Threads`` workers draw (x, y) pairs from ONE shared SciRandom whose draw
is a synchronized critical section, so the kernel measures monitor
contention scaling.  Each pair is drawn atomically inside the lock, which
makes the total under-curve count independent of thread interleaving —
results stay identical across runtime profiles (the harness invariant).
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class McWorker {
    SciRandom rng;
    int samples;
    int under;

    virtual void Run() {
        int hits = 0;
        for (int count = 0; count < samples; count++) {
            double x;
            double y;
            lock (rng) {
                x = rng.NextDouble();
                y = rng.NextDouble();
            }
            if (x * x + y * y <= 1.0) { hits = hits + 1; }
        }
        under = hits;
    }
}

class MonteCarloMT {
    static void Main() {
        int threads = Params.Threads;
        int samplesPerThread = Params.Samples / threads;
        SciRandom shared = new SciRandom(Params.Seed);

        McWorker[] ws = new McWorker[threads];
        int[] tids = new int[threads];
        for (int i = 0; i < threads; i++) {
            ws[i] = new McWorker();
            ws[i].rng = shared;
            ws[i].samples = samplesPerThread;
            tids[i] = Thread.Create(ws[i]);
        }
        long total = (long)samplesPerThread * (long)threads;
        Bench.Start("SciMark:MonteCarloMT");
        for (int i = 0; i < threads; i++) { Thread.Start(tids[i]); }
        for (int i = 0; i < threads; i++) { Thread.Join(tids[i]); }
        Bench.Stop("SciMark:MonteCarloMT");
        Bench.Flops("SciMark:MonteCarloMT", total * 4L);

        int under = 0;
        for (int i = 0; i < threads; i++) { under = under + ws[i].under; }
        double pi = ((double)under / (double)total) * 4.0;
        Bench.Result("SciMark:MonteCarloMT", pi);
        if (pi < 2.0 || pi > 4.0) { Bench.Fail("parallel MC pi out of range"); }
    }
}
"""

MONTECARLO_MT = register(
    Benchmark(
        name="scimark.montecarlo_mt",
        suite="scimark-parallel",
        description="shared-memory parallel Monte Carlo over one synchronized RNG",
        source=SOURCE,
        params={"Samples": 1600, "Threads": 4, "Seed": RANDOM_SEED},
        paper_params={"Samples": "timed", "Threads": 2, "Seed": RANDOM_SEED},
        sections=("SciMark:MonteCarloMT",),
    )
)
