"""SciMark MonteCarlo — Table 4: "approximates the value of Pi by computing
the integral of the quarter circle [...] exercises random-number
generators, synchronized function calls, and function inlining."

Uses the *synchronized* ``NextDoubleSync`` exactly like the Java original —
the paper's section 5 points out the C baseline has no such locking, which
is why its MonteCarlo column is anomalously fast; our native profile's
near-free monitors reproduce that from identical IL.
Flops = 4 * samples (SciMark's accounting).
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class MonteCarlo {
    static double Integrate(int numSamples, int seed) {
        SciRandom rng = new SciRandom(seed);
        int underCurve = 0;
        for (int count = 0; count < numSamples; count++) {
            double x = rng.NextDoubleSync();
            double y = rng.NextDoubleSync();
            if (x * x + y * y <= 1.0) { underCurve = underCurve + 1; }
        }
        return ((double)underCurve / (double)numSamples) * 4.0;
    }

    static void Main() {
        int samples = Params.Samples;
        long flops = (long)samples * 4L;

        Bench.Start("SciMark:MonteCarlo");
        double pi = Integrate(samples, Params.Seed);
        Bench.Stop("SciMark:MonteCarlo");
        Bench.Flops("SciMark:MonteCarlo", flops);
        Bench.Result("SciMark:MonteCarlo", pi);
        if (pi < 2.0 || pi > 4.0) { Bench.Fail("MonteCarlo pi out of range"); }
    }
}
"""

MONTECARLO = register(
    Benchmark(
        name="scimark.montecarlo",
        suite="scimark",
        description="Monte Carlo pi with synchronized RNG, SciMark 2.0 port",
        source=SOURCE,
        params={"Samples": 2000, "Seed": RANDOM_SEED},
        paper_params={"Samples": "timed loop", "Seed": RANDOM_SEED},
        sections=("SciMark:MonteCarlo",),
    )
)
