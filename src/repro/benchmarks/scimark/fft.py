"""SciMark FFT — Table 4: "one-dimensional forward transform of 4K complex
numbers [...] exercises complex arithmetic, shuffling, non-constant memory
references and trigonometric functions."

Direct port of SciMark 2.0 FFT.java: interleaved complex array, bit-reversal
then N log N butterflies; validation is SciMark's own fwd+inverse RMS test.
MFlops use SciMark's formula (5N - 2) log2 N per transform.
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class FFT {
    static int Log2(int n) {
        int log = 0;
        int k = 1;
        while (k < n) { k = k * 2; log = log + 1; }
        return log;
    }

    static void Transform(double[] data) { TransformInternal(data, -1); }
    static void Inverse(double[] data) {
        TransformInternal(data, 1);
        int nd = data.Length;
        int n = nd / 2;
        double norm = 1.0 / (double)n;
        for (int i = 0; i < nd; i++) { data[i] = data[i] * norm; }
    }

    static void TransformInternal(double[] data, int direction) {
        if (data.Length == 0) { return; }
        int n = data.Length / 2;
        if (n == 1) { return; }
        int logn = Log2(n);
        Bitreverse(data);

        for (int bit = 0, dual = 1; bit < logn; bit++, dual = dual * 2) {
            double w_real = 1.0;
            double w_imag = 0.0;
            double theta = 2.0 * direction * Math.PI / (2.0 * (double)dual);
            double s = Math.Sin(theta);
            double t = Math.Sin(theta / 2.0);
            double s2 = 2.0 * t * t;

            for (int b = 0; b < n; b = b + 2 * dual) {
                int i = 2 * b;
                int j = 2 * (b + dual);
                double wd_real = data[j];
                double wd_imag = data[j + 1];
                data[j] = data[i] - wd_real;
                data[j + 1] = data[i + 1] - wd_imag;
                data[i] = data[i] + wd_real;
                data[i + 1] = data[i + 1] + wd_imag;
            }

            for (int a = 1; a < dual; a++) {
                double tmp_real = w_real - s * w_imag - s2 * w_real;
                double tmp_imag = w_imag + s * w_real - s2 * w_imag;
                w_real = tmp_real;
                w_imag = tmp_imag;
                for (int b = 0; b < n; b = b + 2 * dual) {
                    int i = 2 * (b + a);
                    int j = 2 * (b + a + dual);
                    double z1_real = data[j];
                    double z1_imag = data[j + 1];
                    double wd_real = w_real * z1_real - w_imag * z1_imag;
                    double wd_imag = w_real * z1_imag + w_imag * z1_real;
                    data[j] = data[i] - wd_real;
                    data[j + 1] = data[i + 1] - wd_imag;
                    data[i] = data[i] + wd_real;
                    data[i + 1] = data[i + 1] + wd_imag;
                }
            }
        }
    }

    static void Bitreverse(double[] data) {
        int n = data.Length / 2;
        int nm1 = n - 1;
        int i = 0;
        int j = 0;
        for (; i < nm1; i++) {
            int ii = i << 1;
            int jj = j << 1;
            int k = n >> 1;
            if (i < j) {
                double tmp_real = data[ii];
                double tmp_imag = data[ii + 1];
                data[ii] = data[jj];
                data[ii + 1] = data[jj + 1];
                data[jj] = tmp_real;
                data[jj + 1] = tmp_imag;
            }
            while (k <= j) {
                j = j - k;
                k = k >> 1;
            }
            j = j + k;
        }
    }

    static double Test(double[] data) {
        int nd = data.Length;
        double[] copy = new double[nd];
        for (int i = 0; i < nd; i++) { copy[i] = data[i]; }
        Transform(data);
        Inverse(data);
        double diff = 0.0;
        for (int i = 0; i < nd; i++) {
            double d = data[i] - copy[i];
            diff += d * d;
        }
        return Math.Sqrt(diff / (double)nd);
    }

    static void Main() {
        int n = Params.N;
        int reps = Params.Reps;
        SciRandom rng = new SciRandom(Params.Seed);
        double[] data = new double[2 * n];
        rng.FillVector(data);

        int logn = Log2(n);
        long flopsPerRun = (long)((5.0 * (double)n - 2.0) * (double)logn) * 2L;

        Bench.Start("SciMark:FFT");
        for (int r = 0; r < reps; r++) {
            Transform(data);
            Inverse(data);
        }
        Bench.Stop("SciMark:FFT");
        Bench.Flops("SciMark:FFT", flopsPerRun * (long)reps);

        double rms = Test(data);
        Bench.Result("SciMark:FFT", rms);
        Bench.Result("SciMark:FFT", data[0]);
        Bench.Result("SciMark:FFT", data[2 * n - 1]);
        if (rms > 1.0e-10) { Bench.Fail("FFT fwd+inverse RMS too large"); }
    }
}
"""

FFT = register(
    Benchmark(
        name="scimark.fft",
        suite="scimark",
        description="1-D complex FFT (forward + inverse), SciMark 2.0 port",
        source=SOURCE,
        params={"N": 128, "Reps": 1, "Seed": RANDOM_SEED},
        paper_params={"N": 1024, "Reps": "many (small model); 1048576 (large)", "Seed": RANDOM_SEED},
        sections=("SciMark:FFT",),
    )
)
