"""SciMark LU — Table 4: "LU factorization of a dense NxN matrix using
partial pivoting [...] the right-looking version of LU with rank-1
updates."

Port of SciMark 2.0 LU.java over a jagged matrix.  Flops = 2/3 N^3 per
factorization.  Validation: the permuted product check happens against the
Python reference oracle (same SciRandom stream builds the same matrix).
"""

from ..registry import Benchmark, register
from .common import RANDOM_SEED, SCI_RANDOM_SOURCE

SOURCE = SCI_RANDOM_SOURCE + """
class LU {
    static int Factor(double[][] a, int[] pivot) {
        int n = a.Length;
        int m = a[0].Length;
        int minMN = Math.Min(m, n);

        for (int j = 0; j < minMN; j++) {
            int jp = j;
            double t = Math.Abs(a[j][j]);
            for (int i = j + 1; i < m; i++) {
                double ab = Math.Abs(a[i][j]);
                if (ab > t) { jp = i; t = ab; }
            }
            pivot[j] = jp;

            if (a[jp][j] == 0.0) { return 1; }

            if (jp != j) {
                double[] tmp = a[j];
                a[j] = a[jp];
                a[jp] = tmp;
            }

            if (j < m - 1) {
                double recp = 1.0 / a[j][j];
                for (int k = j + 1; k < m; k++) { a[k][j] = a[k][j] * recp; }
            }

            if (j < minMN - 1) {
                for (int ii = j + 1; ii < m; ii++) {
                    double[] aii = a[ii];
                    double[] aj = a[j];
                    double aiij = aii[j];
                    for (int jj = j + 1; jj < n; jj++) {
                        aii[jj] = aii[jj] - aiij * aj[jj];
                    }
                }
            }
        }
        return 0;
    }

    static void Main() {
        int n = Params.N;
        int reps = Params.Reps;
        SciRandom rng = new SciRandom(Params.Seed);

        double[][] a = new double[n][];
        for (int i = 0; i < n; i++) {
            a[i] = new double[n];
            rng.FillVector(a[i]);
        }
        double[][] lu = new double[n][];
        for (int i = 0; i < n; i++) { lu[i] = new double[n]; }
        int[] pivot = new int[n];

        long flops = (long)((2.0 * (double)n * (double)n * (double)n) / 3.0) * (long)reps;
        int failed = 0;
        Bench.Start("SciMark:LU");
        for (int r = 0; r < reps; r++) {
            for (int i = 0; i < n; i++) {
                double[] src = a[i];
                double[] dst = lu[i];
                for (int j = 0; j < n; j++) { dst[j] = src[j]; }
            }
            failed += Factor(lu, pivot);
        }
        Bench.Stop("SciMark:LU");
        Bench.Flops("SciMark:LU", flops);
        if (failed != 0) { Bench.Fail("LU hit a zero pivot"); }

        double checksum = 0.0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { checksum += lu[i][j]; }
            checksum += pivot[i];
        }
        Bench.Result("SciMark:LU", checksum);
    }
}
"""

LU = register(
    Benchmark(
        name="scimark.lu",
        suite="scimark",
        description="dense LU factorization with partial pivoting, SciMark 2.0 port",
        source=SOURCE,
        params={"N": 24, "Reps": 1, "Seed": RANDOM_SEED},
        paper_params={"N": 100, "Reps": "timed; 1000 (large)", "Seed": RANDOM_SEED},
        sections=("SciMark:LU",),
    )
)
