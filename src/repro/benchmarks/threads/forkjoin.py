"""ForkJoin — Table 2: "measures the performance of creating and joining
threads" (multithreaded Java Grande 1.0 section 1)."""

from ..registry import Benchmark, register

SOURCE = """
class NullWork {
    virtual void Run() { }
}
class ForkJoinBench {
    static void Main() {
        int reps = Params.Reps;
        int threads = Params.Threads;
        int[] tids = new int[threads];
        NullWork[] ws = new NullWork[threads];

        Bench.Start("ForkJoin");
        for (int r = 0; r < reps; r++) {
            for (int i = 0; i < threads; i++) {
                ws[i] = new NullWork();
                tids[i] = Thread.Create(ws[i]);
                Thread.Start(tids[i]);
            }
            for (int i = 0; i < threads; i++) { Thread.Join(tids[i]); }
        }
        Bench.Stop("ForkJoin");
        Bench.Ops("ForkJoin", (long)reps * (long)threads);
    }
}
"""

FORKJOIN = register(
    Benchmark(
        name="threads.forkjoin",
        suite="jg1-mt-section1",
        description="thread create+start+join throughput",
        source=SOURCE,
        params={"Reps": 8, "Threads": 4},
        paper_params={"Reps": 1000, "Threads": 8},
        sections=("ForkJoin",),
    )
)
