"""Lock — Table 3: "Tests the use of locking primitives under different
contention scenarios" (CLI-specific micro suite).

Uncontended enter/exit, reentrant (nested) acquisition, and 2-thread
contended ping-pong.
"""

from ..registry import Benchmark, register

SOURCE = """
class LockTarget { int hits; }

class Contender {
    LockTarget target;
    int reps;
    virtual void Run() {
        for (int i = 0; i < reps; i++) {
            lock (target) { target.hits = target.hits + 1; }
            Thread.Yield();
        }
    }
}

class LockBench {
    static void Main() {
        int reps = Params.Reps;
        LockTarget t = new LockTarget();

        Bench.Start("Lock:Uncontended");
        for (int i = 0; i < reps; i++) {
            lock (t) { t.hits = t.hits + 1; }
        }
        Bench.Stop("Lock:Uncontended");
        Bench.Ops("Lock:Uncontended", (long)reps);

        Bench.Start("Lock:Reentrant");
        for (int i = 0; i < reps; i++) {
            lock (t) { lock (t) { lock (t) { t.hits = t.hits + 1; } } }
        }
        Bench.Stop("Lock:Reentrant");
        Bench.Ops("Lock:Reentrant", (long)reps * 3L);

        int contendedReps = Params.ContendedReps;
        LockTarget shared = new LockTarget();
        Contender a = new Contender(); a.target = shared; a.reps = contendedReps;
        Contender b = new Contender(); b.target = shared; b.reps = contendedReps;
        int ta = Thread.Create(a);
        int tb = Thread.Create(b);
        Bench.Start("Lock:Contended");
        Thread.Start(ta);
        Thread.Start(tb);
        Thread.Join(ta);
        Thread.Join(tb);
        Bench.Stop("Lock:Contended");
        Bench.Ops("Lock:Contended", (long)contendedReps * 2L);
        if (shared.hits != contendedReps * 2) { Bench.Fail("Lock:Contended lost updates"); }
    }
}
"""

LOCK = register(
    Benchmark(
        name="threads.lock",
        suite="cli-specific",
        description="monitor cost: uncontended / reentrant / contended",
        source=SOURCE,
        params={"Reps": 400, "ContendedReps": 100},
        paper_params={"Reps": 1_000_000, "ContendedReps": 100_000},
        sections=("Lock:Uncontended", "Lock:Reentrant", "Lock:Contended"),
    )
)
