"""Barrier — Table 2: "Two types of barriers have been implemented: the
Simple Barrier uses a shared counter, while the Tournament Barrier uses a
lock-free [...] tree algorithm" (multithreaded Java Grande 1.0 section 1).

ops/sec = barrier crossings * threads / elapsed.
"""

from ..registry import Benchmark, register

SOURCE = """
class SimpleBarrier {
    int parties;
    int count;
    int generation;

    SimpleBarrier(int n) { parties = n; }

    void Pass() {
        lock (this) {
            int gen = generation;
            count = count + 1;
            if (count == parties) {
                count = 0;
                generation = generation + 1;
                Monitor.PulseAll(this);
            } else {
                while (generation == gen) { Monitor.Wait(this); }
            }
        }
    }
}

class TournamentBarrier {
    // lock-free: each thread spins on a flag array written by its peers;
    // rounds form a log2(n) tree
    int parties;
    int rounds;
    int[] flags;   // flags[round * parties + id] = generation counter

    TournamentBarrier(int n) {
        parties = n;
        rounds = 0;
        int x = 1;
        while (x < n) { x = x * 2; rounds = rounds + 1; }
        flags = new int[(rounds + 1) * n];
    }

    void Pass(int id, int gen) {
        int stride = 1;
        for (int r = 0; r < rounds; r++) {
            int partner = id ^ stride;
            flags[r * parties + id] = gen;
            if (partner < parties) {
                while (flags[r * parties + partner] < gen) { Thread.Yield(); }
            }
            stride = stride * 2;
        }
    }
}

class BarrierWorker {
    SimpleBarrier simple;
    TournamentBarrier tournament;
    int id;
    int crossings;
    bool useSimple;

    virtual void Run() {
        if (useSimple) {
            for (int i = 0; i < crossings; i++) { simple.Pass(); }
        } else {
            for (int i = 1; i <= crossings; i++) { tournament.Pass(id, i); }
        }
    }
}

class BarrierBench {
    static void RunOne(string section, bool useSimple, int threads, int crossings) {
        SimpleBarrier sb = new SimpleBarrier(threads);
        TournamentBarrier tb = new TournamentBarrier(threads);
        BarrierWorker[] ws = new BarrierWorker[threads];
        int[] tids = new int[threads];
        for (int i = 0; i < threads; i++) {
            ws[i] = new BarrierWorker();
            ws[i].simple = sb;
            ws[i].tournament = tb;
            ws[i].id = i;
            ws[i].crossings = crossings;
            ws[i].useSimple = useSimple;
            tids[i] = Thread.Create(ws[i]);
        }
        Bench.Start(section);
        for (int i = 0; i < threads; i++) { Thread.Start(tids[i]); }
        for (int i = 0; i < threads; i++) { Thread.Join(tids[i]); }
        Bench.Stop(section);
        Bench.Ops(section, (long)crossings * (long)threads);
    }

    static void Main() {
        RunOne("Barrier:Simple", true, Params.Threads, Params.Crossings);
        RunOne("Barrier:Tournament", false, Params.Threads, Params.Crossings);
    }
}
"""

SECTIONS = ("Barrier:Simple", "Barrier:Tournament")

BARRIER = register(
    Benchmark(
        name="threads.barrier",
        suite="jg1-mt-section1",
        description="simple (monitor) vs tournament (lock-free) barrier",
        source=SOURCE,
        params={"Threads": 4, "Crossings": 20},
        paper_params={"Threads": 2, "Crossings": 100_000},
        sections=SECTIONS,
    )
)
