"""Thread — Table 3: "Measures the startup costs of using additional
threads" (CLI-specific micro suite)."""

from ..registry import Benchmark, register

SOURCE = """
class TinyWork {
    int done;
    virtual void Run() { done = 1; }
}
class ThreadBench {
    static void Main() {
        int reps = Params.Reps;

        Bench.Start("Thread:StartJoin");
        for (int i = 0; i < reps; i++) {
            TinyWork w = new TinyWork();
            int tid = Thread.Create(w);
            Thread.Start(tid);
            Thread.Join(tid);
            if (w.done != 1) { Bench.Fail("thread did not run"); }
        }
        Bench.Stop("Thread:StartJoin");
        Bench.Ops("Thread:StartJoin", (long)reps);
    }
}
"""

THREAD = register(
    Benchmark(
        name="threads.thread",
        suite="cli-specific",
        description="thread startup (create+start+join) cost",
        source=SOURCE,
        params={"Reps": 20},
        paper_params={"Reps": 10_000},
        sections=("Thread:StartJoin",),
    )
)
