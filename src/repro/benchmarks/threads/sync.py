"""Synchronization — Table 2: "measures the performance of synchronized
methods and synchronized blocks under contention" (mt JG 1.0 section 1).

A synchronized *method* locks ``this`` for its whole body; a synchronized
*block* locks only the update; both are contended by ``Threads`` workers.
"""

from ..registry import Benchmark, register

SOURCE = """
class SyncCounter {
    int value;

    // C# has no 'synchronized' keyword: method-style locks the whole body
    void AddMethod(int k) {
        lock (this) {
            int v = value;
            v = v + k;
            value = v;
        }
    }

    void AddBlock(int k) {
        int delta = k * 2 - k;   // unsynchronized preamble
        lock (this) { value = value + delta; }
    }
}

class SyncWorker {
    SyncCounter target;
    int reps;
    bool methodStyle;

    virtual void Run() {
        if (methodStyle) {
            for (int i = 0; i < reps; i++) { target.AddMethod(1); }
        } else {
            for (int i = 0; i < reps; i++) { target.AddBlock(1); }
        }
    }
}

class SyncBench {
    static void RunOne(string section, bool methodStyle, int threads, int reps) {
        SyncCounter counter = new SyncCounter();
        int[] tids = new int[threads];
        for (int i = 0; i < threads; i++) {
            SyncWorker w = new SyncWorker();
            w.target = counter;
            w.reps = reps;
            w.methodStyle = methodStyle;
            tids[i] = Thread.Create(w);
        }
        Bench.Start(section);
        for (int i = 0; i < threads; i++) { Thread.Start(tids[i]); }
        for (int i = 0; i < threads; i++) { Thread.Join(tids[i]); }
        Bench.Stop(section);
        Bench.Ops(section, (long)threads * (long)reps);
        if (counter.value != threads * reps) { Bench.Fail(section + " lost updates"); }
    }

    static void Main() {
        RunOne("Sync:Method", true, Params.Threads, Params.Reps);
        RunOne("Sync:Block", false, Params.Threads, Params.Reps);
    }
}
"""

SYNC = register(
    Benchmark(
        name="threads.sync",
        suite="jg1-mt-section1",
        description="synchronized method vs block under contention",
        source=SOURCE,
        params={"Threads": 4, "Reps": 60},
        paper_params={"Threads": 4, "Reps": 100_000},
        sections=("Sync:Method", "Sync:Block"),
    )
)
