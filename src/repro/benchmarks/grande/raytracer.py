"""RayTracer — Table 4: "measures the performance of a 3D ray tracer.  The
scene rendered contains 64 spheres, and is rendered at a resolution of NxN
pixels" (JGF section 3 RayTracer).

JGF-style structure: sphere grid scene, one point light, Phong shading with
shadow rays and specular reflection to a fixed depth; objects are heap
classes (Vec/Ray/Isect) exactly like the Java original, so the benchmark
also exercises allocation.  Deterministic checksum over the image.
"""

from ..registry import Benchmark, register

SOURCE = """
class Vec3 {
    double x; double y; double z;
    Vec3(double a, double b, double c) { x = a; y = b; z = c; }
    static Vec3 Add(Vec3 a, Vec3 b) { return new Vec3(a.x + b.x, a.y + b.y, a.z + b.z); }
    static Vec3 Sub(Vec3 a, Vec3 b) { return new Vec3(a.x - b.x, a.y - b.y, a.z - b.z); }
    static Vec3 Scale(Vec3 a, double s) { return new Vec3(a.x * s, a.y * s, a.z * s); }
    static double Dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
    static Vec3 Norm(Vec3 a) {
        double len = Math.Sqrt(Dot(a, a));
        if (len == 0.0) { return new Vec3(0.0, 0.0, 0.0); }
        return Scale(a, 1.0 / len);
    }
}

class Sphere {
    Vec3 center;
    double radius;
    double diffuse;
    double specular;
    double reflect;
    double shade;   // base gray level

    // returns distance or -1
    double Intersect(Vec3 origin, Vec3 dir) {
        Vec3 oc = Vec3.Sub(center, origin);
        double b = Vec3.Dot(oc, dir);
        double det = b * b - Vec3.Dot(oc, oc) + radius * radius;
        if (det < 0.0) { return -1.0; }
        double root = Math.Sqrt(det);
        double t = b - root;
        if (t > 1.0e-6) { return t; }
        t = b + root;
        if (t > 1.0e-6) { return t; }
        return -1.0;
    }
}

class RayTracer {
    static Sphere[] scene;
    static Vec3 light;
    static long rays;

    static void BuildScene(int grid) {
        int count = grid * grid;
        scene = new Sphere[count];
        int idx = 0;
        for (int i = 0; i < grid; i++) {
            for (int j = 0; j < grid; j++) {
                Sphere s = new Sphere();
                s.center = new Vec3(
                    -3.0 + i * 6.0 / (grid - 1 + 1),
                    -3.0 + j * 6.0 / (grid - 1 + 1),
                    6.0 + ((i + j) % 3) * 1.5);
                s.radius = 0.8;
                s.diffuse = 0.7;
                s.specular = 0.3;
                s.reflect = (i + j) % 2 == 0 ? 0.3 : 0.0;
                s.shade = 0.3 + 0.7 * ((double)(i * grid + j) / (double)count);
                scene[idx] = s;
                idx++;
            }
        }
        light = new Vec3(-5.0, 6.0, -2.0);
    }

    static int FindHit(Vec3 origin, Vec3 dir, double[] tOut) {
        int hit = -1;
        double tBest = 1.0e30;
        for (int k = 0; k < scene.Length; k++) {
            double t = scene[k].Intersect(origin, dir);
            if (t > 0.0 && t < tBest) { tBest = t; hit = k; }
        }
        tOut[0] = tBest;
        return hit;
    }

    static double Trace(Vec3 origin, Vec3 dir, int depth) {
        rays = rays + 1L;
        double[] tOut = new double[1];
        int hit = FindHit(origin, dir, tOut);
        if (hit < 0) { return 0.05; }   // background
        Sphere s = scene[hit];
        Vec3 p = Vec3.Add(origin, Vec3.Scale(dir, tOut[0]));
        Vec3 normal = Vec3.Norm(Vec3.Sub(p, s.center));
        Vec3 toLight = Vec3.Norm(Vec3.Sub(light, p));

        double brightness = 0.1 * s.shade;  // ambient
        // shadow ray
        double[] st = new double[1];
        Vec3 shadowOrigin = Vec3.Add(p, Vec3.Scale(normal, 1.0e-4));
        int blocker = FindHit(shadowOrigin, toLight, st);
        rays = rays + 1L;
        bool lit = true;
        if (blocker >= 0) {
            Vec3 toLightFull = Vec3.Sub(light, p);
            double lightDist = Math.Sqrt(Vec3.Dot(toLightFull, toLightFull));
            if (st[0] < lightDist) { lit = false; }
        }
        if (lit) {
            double diff = Vec3.Dot(normal, toLight);
            if (diff > 0.0) { brightness += s.diffuse * diff * s.shade; }
            // Phong specular on the reflected direction
            Vec3 refl = Vec3.Sub(Vec3.Scale(normal, 2.0 * Vec3.Dot(normal, toLight)), toLight);
            double spec = Vec3.Dot(refl, Vec3.Scale(dir, -1.0));
            if (spec > 0.0) { brightness += s.specular * spec * spec * spec * spec; }
        }
        if (depth > 0 && s.reflect > 0.0) {
            Vec3 rdir = Vec3.Sub(dir, Vec3.Scale(normal, 2.0 * Vec3.Dot(normal, dir)));
            brightness += s.reflect * Trace(shadowOrigin, Vec3.Norm(rdir), depth - 1);
        }
        if (brightness > 1.0) { brightness = 1.0; }
        return brightness;
    }

    static void Main() {
        int size = Params.Size;
        int grid = Params.Grid;
        BuildScene(grid);
        rays = 0L;

        Vec3 eye = new Vec3(0.0, 0.0, -4.0);
        double checksum = 0.0;
        Bench.Start("Grande:RayTracer");
        for (int py = 0; py < size; py++) {
            for (int px = 0; px < size; px++) {
                double sx = -1.0 + 2.0 * (double)px / (double)size;
                double sy = -1.0 + 2.0 * (double)py / (double)size;
                Vec3 dir = Vec3.Norm(new Vec3(sx, sy, 2.0));
                double value = Trace(eye, dir, 2);
                checksum += value;
            }
        }
        Bench.Stop("Grande:RayTracer");
        Bench.Ops("Grande:RayTracer", (long)size * (long)size);
        Bench.Result("Grande:RayTracer", checksum);
        Bench.Result("Grande:RayTracer", (double)rays);
        if (checksum <= 0.0) { Bench.Fail("raytracer produced an empty image"); }
    }
}
"""

RAYTRACER = register(
    Benchmark(
        name="grande.raytracer",
        suite="jg2-section3",
        description="sphere-scene ray tracer with shadows and reflection",
        source=SOURCE,
        params={"Size": 12, "Grid": 3},
        paper_params={"Size": 150, "Grid": 8},
        sections=("Grande:RayTracer",),
    )
)
