"""Crypt — Table 4: "Performs IDEA (International Data Encryption
Algorithm) encryption and decryption on an array of N bytes" (JGF section 2
Crypt).

Full IDEA: 52-subkey schedule from a 128-bit user key, 8.5 rounds over
64-bit blocks with mul-mod-65537 / add-mod-65536 / xor mixing, and the
inverse key schedule (multiplicative inverses mod 65537) for decryption.
Validation: decrypt(encrypt(plain)) == plain, plus a ciphertext checksum.
"""

from ..registry import Benchmark, register

SOURCE = """
class Idea {
    // multiply a*b mod 65537 (with 0 meaning 65536), the IDEA "mul" op
    static int Mul(int a, int b) {
        if (a == 0) { return (65537 - b) & 65535; }
        if (b == 0) { return (65537 - a) & 65535; }
        int p = a * b;
        int lo = p & 65535;
        int hi = (p >> 16) & 65535;
        int r = lo - hi;
        if (lo < hi) { r = r + 1; }
        return r & 65535;
    }

    // multiplicative inverse mod 65537 (extended Euclid), IDEA convention
    static int Inv(int x) {
        if (x <= 1) { return x; }
        // iterative extended Euclid on (65537, x)
        int a = 65537;
        int b = x;
        int u0 = 0;
        int u1 = 1;
        while (b != 0) {
            int q = a / b;
            int r = a - q * b;
            a = b;
            b = r;
            int u2 = u0 - q * u1;
            u0 = u1;
            u1 = u2;
        }
        if (u0 < 0) { u0 = u0 + 65537; }
        return u0 & 65535;
    }

    static int[] EncryptionKey(int[] userKey) {
        int[] z = new int[52];
        for (int i = 0; i < 8; i++) { z[i] = userKey[i]; }
        for (int i = 8; i < 52; i++) {
            int imod = i & 7;
            if (imod == 6) {
                z[i] = ((z[i - 7] << 9) | (z[i - 14] >> 7)) & 65535;
            } else if (imod == 7) {
                z[i] = ((z[i - 15] << 9) | (z[i - 14] >> 7)) & 65535;
            } else {
                z[i] = ((z[i - 7] << 9) | (z[i - 6] >> 7)) & 65535;
            }
        }
        return z;
    }

    static int[] DecryptionKey(int[] z) {
        int[] dk = new int[52];
        dk[48] = Inv(z[0]);
        dk[49] = (65536 - z[1]) & 65535;
        dk[50] = (65536 - z[2]) & 65535;
        dk[51] = Inv(z[3]);
        for (int r = 0; r < 8; r++) {
            int zi = 4 + r * 6;
            int di = 42 - r * 6;
            dk[di + 4] = z[zi];
            dk[di + 5] = z[zi + 1];
            dk[di] = Inv(z[zi + 2]);
            if (r == 7) {
                dk[di + 1] = (65536 - z[zi + 3]) & 65535;
                dk[di + 2] = (65536 - z[zi + 4]) & 65535;
            } else {
                dk[di + 1] = (65536 - z[zi + 4]) & 65535;
                dk[di + 2] = (65536 - z[zi + 3]) & 65535;
            }
            dk[di + 3] = Inv(z[zi + 5]);
        }
        return dk;
    }

    // process text (16-bit words, 4 per block) with the given key schedule
    static void Cipher(int[] text, int[] result, int[] key) {
        int blocks = text.Length / 4;
        for (int b = 0; b < blocks; b++) {
            int p = b * 4;
            int x1 = text[p];
            int x2 = text[p + 1];
            int x3 = text[p + 2];
            int x4 = text[p + 3];
            int k = 0;
            for (int round = 0; round < 8; round++) {
                x1 = Mul(x1, key[k]);
                x2 = (x2 + key[k + 1]) & 65535;
                x3 = (x3 + key[k + 2]) & 65535;
                x4 = Mul(x4, key[k + 3]);
                int t1 = x1 ^ x3;
                int t2 = x2 ^ x4;
                t1 = Mul(t1, key[k + 4]);
                t2 = (t1 + t2) & 65535;
                t2 = Mul(t2, key[k + 5]);
                t1 = (t1 + t2) & 65535;
                x1 = x1 ^ t2;
                x4 = x4 ^ t1;
                int tmp = x2 ^ t1;
                x2 = x3 ^ t2;
                x3 = tmp;
                k = k + 6;
            }
            result[p] = Mul(x1, key[48]);
            result[p + 1] = (x3 + key[49]) & 65535;
            result[p + 2] = (x2 + key[50]) & 65535;
            result[p + 3] = Mul(x4, key[51]);
        }
    }

    static void Main() {
        int words = Params.Words;   // 16-bit words; must be multiple of 4
        int[] userKey = new int[8];
        int seed = 12345;
        for (int i = 0; i < 8; i++) {
            seed = (seed * 4096 + 150889) % 714025;
            userKey[i] = seed & 65535;
        }
        int[] z = EncryptionKey(userKey);
        int[] dk = DecryptionKey(z);

        int[] plain = new int[words];
        for (int i = 0; i < words; i++) { plain[i] = (i * 40503 + 17) & 65535; }
        int[] crypt1 = new int[words];
        int[] plain2 = new int[words];

        Bench.Start("Grande:Crypt");
        Cipher(plain, crypt1, z);
        Cipher(crypt1, plain2, dk);
        Bench.Stop("Grande:Crypt");
        Bench.Ops("Grande:Crypt", (long)words * 2L * 2L);  // bytes enc + dec

        for (int i = 0; i < words; i++) {
            if (plain[i] != plain2[i]) { Bench.Fail("IDEA round trip failed"); return; }
        }
        double checksum = 0.0;
        for (int i = 0; i < words; i++) { checksum += crypt1[i]; }
        Bench.Result("Grande:Crypt", checksum);
    }
}
"""

CRYPT = register(
    Benchmark(
        name="grande.crypt",
        suite="jg2-section2",
        description="IDEA encryption + decryption round trip",
        source=SOURCE,
        params={"Words": 512},
        paper_params={"Words": 1_500_000},
        sections=("Grande:Crypt",),
    )
)
