"""Hanoi — Table 4: "Solves the 25-disk Tower of Hanoi problem"."""

from ..registry import Benchmark, register

SOURCE = """
class Hanoi {
    static long moves;

    static void Solve(int n, int src, int dst, int via) {
        if (n == 1) { moves = moves + 1L; return; }
        Solve(n - 1, src, via, dst);
        moves = moves + 1L;
        Solve(n - 1, via, dst, src);
    }

    static void Main() {
        int disks = Params.Disks;
        moves = 0L;
        Bench.Start("Grande:Hanoi");
        Solve(disks, 0, 2, 1);
        Bench.Stop("Grande:Hanoi");
        Bench.Ops("Grande:Hanoi", moves);
        Bench.Result("Grande:Hanoi", (double)moves);
        long expected = (1L << disks) - 1L;
        if (moves != expected) { Bench.Fail("Hanoi move count wrong"); }
    }
}
"""

HANOI = register(
    Benchmark(
        name="grande.hanoi",
        suite="dhpc-2a",
        description="Tower of Hanoi recursion",
        source=SOURCE,
        params={"Disks": 14},
        paper_params={"Disks": 25},
        sections=("Grande:Hanoi",),
    )
)
