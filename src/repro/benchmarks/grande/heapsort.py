"""HeapSort — Table 4: "Sorts an array of N integers using a heap sort
algorithm" (JGF section 2 HeapSort)."""

from ..registry import Benchmark, register

SOURCE = """
class HeapSort {
    static void Sort(int[] a) {
        int n = a.Length;
        for (int start = n / 2 - 1; start >= 0; start--) { SiftDown(a, start, n); }
        for (int end = n - 1; end > 0; end--) {
            int tmp = a[0];
            a[0] = a[end];
            a[end] = tmp;
            SiftDown(a, 0, end);
        }
    }

    static void SiftDown(int[] a, int start, int end) {
        int root = start;
        while (root * 2 + 1 < end) {
            int child = root * 2 + 1;
            if (child + 1 < end && a[child] < a[child + 1]) { child = child + 1; }
            if (a[root] < a[child]) {
                int tmp = a[root];
                a[root] = a[child];
                a[child] = tmp;
                root = child;
            } else {
                return;
            }
        }
    }

    static void Main() {
        int n = Params.N;
        int[] a = new int[n];
        // the JGF generator: simple LCG so every runtime sorts the same data
        int seed = 1729;
        for (int i = 0; i < n; i++) {
            seed = seed * 1309 + 13849;
            seed = seed & 65535;
            a[i] = seed;
        }
        Bench.Start("Grande:HeapSort");
        Sort(a);
        Bench.Stop("Grande:HeapSort");
        Bench.Ops("Grande:HeapSort", (long)n);
        for (int i = 1; i < n; i++) {
            if (a[i - 1] > a[i]) { Bench.Fail("array not sorted"); return; }
        }
        Bench.Result("Grande:HeapSort", (double)a[0]);
        Bench.Result("Grande:HeapSort", (double)a[n - 1]);
    }
}
"""

HEAPSORT = register(
    Benchmark(
        name="grande.heapsort",
        suite="jg2-section2",
        description="heap sort of N pseudo-random integers",
        source=SOURCE,
        params={"N": 3000},
        paper_params={"N": 1_000_000},
        sections=("Grande:HeapSort",),
    )
)
