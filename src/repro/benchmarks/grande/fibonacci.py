"""Fibonacci — Table 4: "Calculates the 40th Fibonacci number. It measures
the cost of many recursive method calls" (DHPC section 2a)."""

from ..registry import Benchmark, register

SOURCE = """
class Fib {
    static long Compute(int n) {
        if (n < 2) { return (long)n; }
        return Compute(n - 1) + Compute(n - 2);
    }

    static void Main() {
        int n = Params.N;
        Bench.Start("Grande:Fibonacci");
        long result = Compute(n);
        Bench.Stop("Grande:Fibonacci");
        // calls(n) = 2*fib(n+1)-1; report recursive calls as ops
        long calls = 2L * Compute(n + 1) - 1L;
        Bench.Ops("Grande:Fibonacci", calls);
        Bench.Result("Grande:Fibonacci", (double)result);
        if (n == 18 && result != 2584L) { Bench.Fail("fib(18) != 2584"); }
        if (n == 20 && result != 6765L) { Bench.Fail("fib(20) != 6765"); }
    }
}
"""

FIBONACCI = register(
    Benchmark(
        name="grande.fibonacci",
        suite="dhpc-2a",
        description="naive recursive Fibonacci (method-call cost)",
        source=SOURCE,
        params={"N": 18},
        paper_params={"N": 40},
        sections=("Grande:Fibonacci",),
    )
)
