"""Sieve — Table 4: "Calculates prime numbers using the Sieve of
Eratosthenes. It uses integer arithmetic with a lot of array overhead."
"""

from ..registry import Benchmark, register

SOURCE = """
class Sieve {
    static int CountPrimes(int limit) {
        bool[] composite = new bool[limit + 1];
        int count = 0;
        for (int p = 2; p <= limit; p++) {
            if (!composite[p]) {
                count = count + 1;
                for (int k = p + p; k <= limit; k += p) { composite[k] = true; }
            }
        }
        return count;
    }

    static void Main() {
        int limit = Params.Limit;
        int reps = Params.Reps;
        int count = 0;
        Bench.Start("Grande:Sieve");
        for (int r = 0; r < reps; r++) { count = CountPrimes(limit); }
        Bench.Stop("Grande:Sieve");
        Bench.Ops("Grande:Sieve", (long)limit * (long)reps);
        Bench.Result("Grande:Sieve", (double)count);
        if (limit == 10000 && count != 1229) { Bench.Fail("pi(10000) != 1229"); }
        if (limit == 1000 && count != 168) { Bench.Fail("pi(1000) != 168"); }
    }
}
"""

SIEVE = register(
    Benchmark(
        name="grande.sieve",
        suite="dhpc-2a",
        description="Sieve of Eratosthenes prime counting",
        source=SOURCE,
        params={"Limit": 10000, "Reps": 1},
        paper_params={"Limit": 1_000_000, "Reps": "timed"},
        sections=("Grande:Sieve",),
    )
)
