"""Euler — Table 4: "Solves the time-dependent Euler equations for flow in
a channel with a bump on one of the walls.  It uses a structured, irregular
Nx4N mesh" (JGF section 3 Euler).

Substitution note (DESIGN.md section 2): JGF's solver is a cell-centered
fourth-order Runge-Kutta scheme on a body-fitted curvilinear mesh; here the
channel-with-bump is a structured N x 4N finite-volume grid where the bump
is a stair-stepped solid region on the lower wall, advanced with a
first-order Rusanov (local Lax-Friedrichs) scheme.  The workload shape —
sweeping a structured mesh of 4-component conserved states with
nearest-neighbour flux stencils — is the same; the physics is simplified.
Validation: in-guest mass-conservation/finiteness checks plus density
bounds, and an oracle comparison against the identical Python scheme.
"""

from ..registry import Benchmark, register

SOURCE = """
class Euler {
    static int ni;
    static int nj;
    static double[,] rho;
    static double[,] ru;    // x-momentum
    static double[,] rv;    // y-momentum
    static double[,] e;     // total energy
    static int[,] solid;    // 1 = inside the bump
    static double gamma;

    static void Setup(int n) {
        nj = n;
        ni = 4 * n;
        gamma = 1.4;
        rho = new double[ni, nj];
        ru = new double[ni, nj];
        rv = new double[ni, nj];
        e = new double[ni, nj];
        solid = new int[ni, nj];

        // circular-arc bump on the lower wall, stair-stepped
        int bumpStart = ni / 4;
        int bumpEnd = ni / 2;
        for (int i = bumpStart; i < bumpEnd; i++) {
            double t = (double)(i - bumpStart) / (double)(bumpEnd - bumpStart);
            double h = 0.2 * (double)nj * 4.0 * t * (1.0 - t);
            for (int j = 0; j < nj; j++) {
                if ((double)j < h) { solid[i, j] = 1; }
            }
        }

        // uniform subsonic inflow: rho=1, u=0.5, v=0, p=1
        double p0 = 1.0;
        for (int i = 0; i < ni; i++) {
            for (int j = 0; j < nj; j++) {
                rho[i, j] = 1.0;
                ru[i, j] = 0.5;
                rv[i, j] = 0.0;
                e[i, j] = p0 / (gamma - 1.0) + 0.5 * (ru[i, j] * ru[i, j]) / rho[i, j];
            }
        }
    }

    static double Pressure(double r, double mu, double mv, double en) {
        return (gamma - 1.0) * (en - 0.5 * (mu * mu + mv * mv) / r);
    }

    static void Step(double dt) {
        double[,] nrho = new double[ni, nj];
        double[,] nru = new double[ni, nj];
        double[,] nrv = new double[ni, nj];
        double[,] ne = new double[ni, nj];

        for (int i = 1; i < ni - 1; i++) {
            for (int j = 1; j < nj - 1; j++) {
                if (solid[i, j] == 1) { continue; }
                // Rusanov flux differences in x and y
                double r0 = rho[i, j]; double m0 = ru[i, j]; double n0 = rv[i, j]; double e0 = e[i, j];
                double p0 = Pressure(r0, m0, n0, e0);
                double a0 = Math.Sqrt(gamma * p0 / r0) + Math.Abs(m0 / r0) + Math.Abs(n0 / r0);

                double dr = 0.0; double dm = 0.0; double dn = 0.0; double de = 0.0;

                // x-direction neighbours (mirror at solid faces)
                for (int s = -1; s <= 1; s += 2) {
                    int ii = i + s;
                    double r1; double m1; double n1; double e1;
                    if (solid[ii, j] == 1) {
                        r1 = r0; m1 = -m0; n1 = n0; e1 = e0;   // reflective wall
                    } else {
                        r1 = rho[ii, j]; m1 = ru[ii, j]; n1 = rv[ii, j]; e1 = e[ii, j];
                    }
                    double p1 = Pressure(r1, m1, n1, e1);
                    double u0 = m0 / r0; double u1 = m1 / r1;
                    // physical flux average minus dissipation, signed by s
                    double fr = 0.5 * (m0 + m1);
                    double fm = 0.5 * (m0 * u0 + p0 + m1 * u1 + p1);
                    double fn = 0.5 * (n0 * u0 + n1 * u1);
                    double fe = 0.5 * ((e0 + p0) * u0 + (e1 + p1) * u1);
                    double diss = 0.5 * a0;
                    dr += s * fr - diss * (r1 - r0);
                    dm += s * fm - diss * (m1 - m0);
                    dn += s * fn - diss * (n1 - n0);
                    de += s * fe - diss * (e1 - e0);
                }
                // y-direction neighbours
                for (int s = -1; s <= 1; s += 2) {
                    int jj = j + s;
                    double r1; double m1; double n1; double e1;
                    if (solid[i, jj] == 1) {
                        r1 = r0; m1 = m0; n1 = -n0; e1 = e0;
                    } else {
                        r1 = rho[i, jj]; m1 = ru[i, jj]; n1 = rv[i, jj]; e1 = e[i, jj];
                    }
                    double p1 = Pressure(r1, m1, n1, e1);
                    double v0 = n0 / r0; double v1 = n1 / r1;
                    double fr = 0.5 * (n0 + n1);
                    double fm = 0.5 * (m0 * v0 + m1 * v1);
                    double fn = 0.5 * (n0 * v0 + p0 + n1 * v1 + p1);
                    double fe = 0.5 * ((e0 + p0) * v0 + (e1 + p1) * v1);
                    double diss = 0.5 * a0;
                    dr += s * fr - diss * (r1 - r0);
                    dm += s * fm - diss * (m1 - m0);
                    dn += s * fn - diss * (n1 - n0);
                    de += s * fe - diss * (e1 - e0);
                }

                nrho[i, j] = r0 - dt * dr;
                nru[i, j] = m0 - dt * dm;
                nrv[i, j] = n0 - dt * dn;
                ne[i, j] = e0 - dt * de;
            }
        }

        // interior update; boundaries: inflow fixed (i=0), outflow copy
        for (int i = 1; i < ni - 1; i++) {
            for (int j = 1; j < nj - 1; j++) {
                if (solid[i, j] == 1) { continue; }
                rho[i, j] = nrho[i, j];
                ru[i, j] = nru[i, j];
                rv[i, j] = nrv[i, j];
                e[i, j] = ne[i, j];
            }
        }
        for (int j = 0; j < nj; j++) {
            rho[ni - 1, j] = rho[ni - 2, j];
            ru[ni - 1, j] = ru[ni - 2, j];
            rv[ni - 1, j] = rv[ni - 2, j];
            e[ni - 1, j] = e[ni - 2, j];
        }
        for (int i = 0; i < ni; i++) {
            rho[i, 0] = rho[i, 1]; ru[i, 0] = ru[i, 1]; rv[i, 0] = -rv[i, 1]; e[i, 0] = e[i, 1];
            rho[i, nj - 1] = rho[i, nj - 2]; ru[i, nj - 1] = ru[i, nj - 2];
            rv[i, nj - 1] = -rv[i, nj - 2]; e[i, nj - 1] = e[i, nj - 2];
        }
    }

    static double TotalMass() {
        double mass = 0.0;
        for (int i = 0; i < ni; i++) {
            for (int j = 0; j < nj; j++) {
                if (solid[i, j] == 0) { mass += rho[i, j]; }
            }
        }
        return mass;
    }

    static void Main() {
        int n = Params.N;
        int steps = Params.Steps;
        Setup(n);
        double mass0 = TotalMass();

        long cells = (long)ni * (long)nj * (long)steps;
        Bench.Start("Grande:Euler");
        for (int s = 0; s < steps; s++) { Step(0.02); }
        Bench.Stop("Grande:Euler");
        Bench.Ops("Grande:Euler", cells);

        double mass1 = TotalMass();
        Bench.Result("Grande:Euler", mass0);
        Bench.Result("Grande:Euler", mass1);
        Bench.Result("Grande:Euler", rho[ni / 2, nj / 2]);
        if (mass1 != mass1) { Bench.Fail("Euler produced NaN"); }
        for (int i = 0; i < ni; i++) {
            for (int j = 0; j < nj; j++) {
                if (solid[i, j] == 0 && (rho[i, j] <= 0.0 || rho[i, j] > 100.0)) {
                    Bench.Fail("Euler density out of physical range");
                    return;
                }
            }
        }
    }
}
"""

EULER = register(
    Benchmark(
        name="grande.euler",
        suite="jg2-section3",
        description="2-D Euler channel-with-bump flow, structured Nx4N mesh",
        source=SOURCE,
        params={"N": 8, "Steps": 3},
        paper_params={"N": 64, "Steps": "200+"},
        sections=("Grande:Euler",),
    )
)
