"""MolDyn — Table 4: "an N-body code modeling argon atoms interacting under
a Lennard-Jones potential in a cubic spatial volume with periodic boundary
conditions.  The computationally intense component [...] is the force
calculation [...] an outer loop over all particles [...] and an inner loop
ranging from the current particle number to the total number of particles."

Port of the JGF MolDyn structure: FCC lattice start, Maxwellian-ish
velocities from the shared LCG, velocity-Verlet-style update, cutoffless
pairwise LJ forces, periodic minimum-image convention.  Validation: total
(kinetic + potential) energy recorded for oracle comparison and required
to stay finite and drift-bounded in-guest.
"""

from ..registry import Benchmark, register

SOURCE = """
class MolDyn {
    static int n;
    static double side;
    static double[] x; static double[] y; static double[] z;
    static double[] vx; static double[] vy; static double[] vz;
    static double[] fx; static double[] fy; static double[] fz;
    static double epot;
    static double vir;

    static int seed;
    static double NextRand() {
        seed = (seed * 1309 + 13849) & 65535;
        return (double)seed / 65536.0 - 0.5;
    }

    static void Setup(int mm) {
        // mm^3 * 4 particles on an FCC lattice (like JGF's mm-cubed setup)
        n = 4 * mm * mm * mm;
        double density = 0.83134;
        side = Math.Pow((double)n / density, 1.0 / 3.0);
        x = new double[n]; y = new double[n]; z = new double[n];
        vx = new double[n]; vy = new double[n]; vz = new double[n];
        fx = new double[n]; fy = new double[n]; fz = new double[n];

        double a = side / (double)mm;
        int ij = 0;
        for (int i = 0; i < mm; i++) {
            for (int j = 0; j < mm; j++) {
                for (int k = 0; k < mm; k++) {
                    // 4 atoms of the FCC cell
                    x[ij] = i * a;           y[ij] = j * a;           z[ij] = k * a;           ij++;
                    x[ij] = i * a + a * 0.5; y[ij] = j * a + a * 0.5; z[ij] = k * a;           ij++;
                    x[ij] = i * a + a * 0.5; y[ij] = j * a;           z[ij] = k * a + a * 0.5; ij++;
                    x[ij] = i * a;           y[ij] = j * a + a * 0.5; z[ij] = k * a + a * 0.5; ij++;
                }
            }
        }
        seed = 6751;
        double sumx = 0.0; double sumy = 0.0; double sumz = 0.0;
        for (int i = 0; i < n; i++) {
            vx[i] = NextRand(); vy[i] = NextRand(); vz[i] = NextRand();
            sumx += vx[i]; sumy += vy[i]; sumz += vz[i];
        }
        // zero net momentum
        for (int i = 0; i < n; i++) {
            vx[i] -= sumx / (double)n;
            vy[i] -= sumy / (double)n;
            vz[i] -= sumz / (double)n;
        }
    }

    static void Forces() {
        epot = 0.0;
        vir = 0.0;
        double sideh = side * 0.5;
        for (int i = 0; i < n; i++) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
        for (int i = 0; i < n - 1; i++) {
            double xi = x[i]; double yi = y[i]; double zi = z[i];
            double fxi = 0.0; double fyi = 0.0; double fzi = 0.0;
            for (int j = i + 1; j < n; j++) {
                double dx = xi - x[j];
                double dy = yi - y[j];
                double dz = zi - z[j];
                if (dx > sideh) { dx -= side; } else if (dx < -sideh) { dx += side; }
                if (dy > sideh) { dy -= side; } else if (dy < -sideh) { dy += side; }
                if (dz > sideh) { dz -= side; } else if (dz < -sideh) { dz += side; }
                double r2 = dx * dx + dy * dy + dz * dz;
                if (r2 < 0.25) { r2 = 0.25; }   // avoid lattice-overlap blowup
                double r2i = 1.0 / r2;
                double r6i = r2i * r2i * r2i;
                double lj = 48.0 * r6i * (r6i - 0.5) * r2i;
                epot += 4.0 * r6i * (r6i - 1.0);
                vir += lj * r2;
                double fxc = lj * dx;
                double fyc = lj * dy;
                double fzc = lj * dz;
                fxi += fxc; fyi += fyc; fzi += fzc;
                fx[j] -= fxc; fy[j] -= fyc; fz[j] -= fzc;
            }
            fx[i] += fxi; fy[i] += fyi; fz[i] += fzi;
        }
    }

    static double Kinetic() {
        double sum = 0.0;
        for (int i = 0; i < n; i++) {
            sum += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
        }
        return sum;
    }

    static void Step(double dt) {
        for (int i = 0; i < n; i++) {
            vx[i] += 0.5 * dt * fx[i];
            vy[i] += 0.5 * dt * fy[i];
            vz[i] += 0.5 * dt * fz[i];
            x[i] += dt * vx[i];
            y[i] += dt * vy[i];
            z[i] += dt * vz[i];
            if (x[i] < 0.0) { x[i] += side; } else if (x[i] >= side) { x[i] -= side; }
            if (y[i] < 0.0) { y[i] += side; } else if (y[i] >= side) { y[i] -= side; }
            if (z[i] < 0.0) { z[i] += side; } else if (z[i] >= side) { z[i] -= side; }
        }
        Forces();
        for (int i = 0; i < n; i++) {
            vx[i] += 0.5 * dt * fx[i];
            vy[i] += 0.5 * dt * fy[i];
            vz[i] += 0.5 * dt * fz[i];
        }
    }

    static void Main() {
        int mm = Params.MM;
        int steps = Params.Steps;
        double dt = 0.0005;
        Setup(mm);
        Forces();
        double e0 = Kinetic() + epot;

        long interactions = (long)n * (long)(n - 1) / 2L * (long)steps;
        Bench.Start("Grande:MolDyn");
        for (int s = 0; s < steps; s++) { Step(dt); }
        Bench.Stop("Grande:MolDyn");
        Bench.Ops("Grande:MolDyn", interactions);

        double e1 = Kinetic() + epot;
        Bench.Result("Grande:MolDyn", e0);
        Bench.Result("Grande:MolDyn", e1);
        if (e1 != e1) { Bench.Fail("MolDyn energy NaN"); }
        double drift = Math.Abs(e1 - e0);
        double scale = Math.Abs(e0) + 1.0;
        if (drift / scale > 0.05) { Bench.Fail("MolDyn energy drift too large"); }
    }
}
"""

MOLDYN = register(
    Benchmark(
        name="grande.moldyn",
        suite="jg2-section3",
        description="Lennard-Jones N-body dynamics (argon), JGF MolDyn structure",
        source=SOURCE,
        params={"MM": 2, "Steps": 3},
        paper_params={"MM": 8, "Steps": 50},
        sections=("Grande:MolDyn",),
    )
)
