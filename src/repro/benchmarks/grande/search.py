"""Search — Table 4: "Solves a game of connect-4 on a 6x7 board using a
alpha-beta pruned search technique.  The benchmark is memory and integer
intensive" (JGF section 3 Search).

Depth-limited alpha-beta over the standard 6x7 board with a transposition
table (open-addressed int arrays, the memory-intensive part) and a
positional evaluation.  Deterministic: records the root score and the node
count.
"""

from ..registry import Benchmark, register

SOURCE = """
class Connect4 {
    static int[] board;      // 0 empty, 1 us, 2 them (column-major 7x6)
    static int[] height;     // next free row per column
    static long nodes;
    static int[] ttKey;
    static int[] ttVal;
    static int ttSize;

    static int Eval() {
        // score line segments of length 4 for both players
        int score = 0;
        for (int c = 0; c < 7; c++) {
            for (int r = 0; r < 6; r++) {
                score += SegScore(c, r, 1, 0);
                score += SegScore(c, r, 0, 1);
                score += SegScore(c, r, 1, 1);
                score += SegScore(c, r, 1, -1);
            }
        }
        return score;
    }

    static int SegScore(int c, int r, int dc, int dr) {
        int endC = c + 3 * dc;
        int endR = r + 3 * dr;
        if (endC < 0 || endC >= 7 || endR < 0 || endR >= 6) { return 0; }
        int mine = 0; int theirs = 0;
        for (int k = 0; k < 4; k++) {
            int v = board[(c + k * dc) * 6 + (r + k * dr)];
            if (v == 1) { mine++; } else if (v == 2) { theirs++; }
        }
        if (mine > 0 && theirs > 0) { return 0; }
        if (mine > 0) { return mine * mine; }
        if (theirs > 0) { return -(theirs * theirs); }
        return 0;
    }

    static bool Wins(int col, int player) {
        int row = height[col] - 1;   // the stone just placed
        return Line(col, row, player, 1, 0) || Line(col, row, player, 0, 1)
            || Line(col, row, player, 1, 1) || Line(col, row, player, 1, -1);
    }

    static bool Line(int c, int r, int player, int dc, int dr) {
        int count = 1;
        for (int s = 1; s < 4; s++) {
            int cc = c + s * dc; int rr = r + s * dr;
            if (cc < 0 || cc >= 7 || rr < 0 || rr >= 6 || board[cc * 6 + rr] != player) { break; }
            count++;
        }
        for (int s = 1; s < 4; s++) {
            int cc = c - s * dc; int rr = r - s * dr;
            if (cc < 0 || cc >= 7 || rr < 0 || rr >= 6 || board[cc * 6 + rr] != player) { break; }
            count++;
        }
        return count >= 4;
    }

    static int Hash() {
        int h = 17;
        for (int i = 0; i < 42; i++) { h = h * 31 + board[i]; }
        if (h < 0) { h = -h; }
        return h;
    }

    static int AlphaBeta(int depth, int alpha, int beta, int player) {
        nodes = nodes + 1L;
        if (depth == 0) { return player == 1 ? Eval() : -Eval(); }

        int h = Hash() % ttSize;
        if (ttKey[h] == depth * 1000003 + Hash() % 1000003) { return ttVal[h]; }

        int best = -1000000;
        bool moved = false;
        for (int c = 0; c < 7; c++) {
            if (height[c] >= 6) { continue; }
            moved = true;
            board[c * 6 + height[c]] = player;
            height[c] = height[c] + 1;
            int value;
            if (Wins(c, player)) {
                value = 100000 - (8 - depth);
            } else {
                value = -AlphaBeta(depth - 1, -beta, -alpha, 3 - player);
            }
            height[c] = height[c] - 1;
            board[c * 6 + height[c]] = 0;
            if (value > best) { best = value; }
            if (best > alpha) { alpha = best; }
            if (alpha >= beta) { break; }
        }
        if (!moved) { return 0; }
        ttKey[h] = depth * 1000003 + Hash() % 1000003;
        ttVal[h] = best;
        return best;
    }

    static void Main() {
        int depth = Params.Depth;
        board = new int[42];
        height = new int[7];
        ttSize = Params.TTSize;
        ttKey = new int[ttSize];
        ttVal = new int[ttSize];
        nodes = 0L;

        // a fixed opening so the position is non-trivial
        board[3 * 6 + 0] = 1; height[3] = 1;
        board[3 * 6 + 1] = 2; height[3] = 2;
        board[2 * 6 + 0] = 1; height[2] = 1;

        Bench.Start("Grande:Search");
        int score = AlphaBeta(depth, -1000000, 1000000, 2);
        Bench.Stop("Grande:Search");
        Bench.Ops("Grande:Search", nodes);
        Bench.Result("Grande:Search", (double)score);
        Bench.Result("Grande:Search", (double)nodes);
        if (nodes < 10L) { Bench.Fail("search explored too few nodes"); }
    }
}
"""

SEARCH = register(
    Benchmark(
        name="grande.search",
        suite="jg2-section3",
        description="connect-4 alpha-beta search with transposition table",
        source=SOURCE,
        params={"Depth": 4, "TTSize": 4093},
        paper_params={"Depth": "full solve", "TTSize": "large"},
        sections=("Grande:Search",),
    )
)
