"""``repro-chaos``: seeded fault-matrix campaigns over the harness.

::

    repro-chaos run --seed N [--sites a,b] [--rate R] [--pin INDEX:SITE ...]
                    [--heap-limit B] [--stack-limit F] [--cycle-limit C]
                    [--max-retries K] [--cell-timeout S]
                    [--benchmarks x,y] [--profiles a,b] [--scale S]
                    [--jobs N|auto] [--out REPORT.json]
    repro-chaos verify --seed N [same matrix/fault flags]
    repro-chaos check REPORT.json
    repro-chaos service [--seed N] [--out REPORT.json]

``run`` executes one (benchmark x profile) matrix under a
:class:`~repro.faults.FaultPlan`, writes the failure-annotation report,
and exits by the containment policy: **0** when every failure is
attributed to an injected fault or a fired guest limit, **1** when any
failure lacks an explanation.  ``verify`` runs the same campaign at
``--jobs 1``, ``2`` and ``4`` and asserts the three reports are
byte-identical (the determinism acceptance gate).  ``check`` re-evaluates
the containment policy of an existing report file — CI uses it to assert
the exit-code contract without re-running the matrix.  ``service`` runs
the seeded daemon-level chaos scenarios (subprocess kills, lease steals,
store contention, dropped connections, overload) from
:mod:`repro.faults.service_chaos` under the same containment policy.

This module also hosts the shared ``--fault-*`` argparse helpers that
``hpcnet run`` and ``repro-bench run`` use to accept a plan.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .plan import ALL_SITES, FaultPlan
from .report import FaultMatrixReport, annotate_cells, load_report

#: default chaos-campaign matrix: covers allocation, exception unwinding,
#: and recursion so every machine-level site has something to bite
DEFAULT_BENCHMARKS = "micro.arith,micro.exception,grande.sieve"


# ------------------------------------------------------- shared argparse glue


def add_fault_arguments(parser, prefix: str = "fault") -> None:
    """Attach the shared fault-plan options to an argparse parser.

    ``hpcnet run`` / ``repro-bench run`` pass the default prefix, so their
    flags read ``--fault-seed`` etc. and never collide with existing
    options; ``repro-chaos`` itself uses bare names via ``prefix=''``.
    """
    p = f"--{prefix}-" if prefix else "--"
    group = parser.add_argument_group("fault injection")
    group.add_argument(f"{p}seed", type=int, default=None, metavar="N",
                       dest="fault_seed",
                       help="arm a deterministic FaultPlan with this seed")
    group.add_argument(f"{p}sites", default=None, metavar="A,B",
                       dest="fault_sites",
                       help="comma-separated fault sites to arm probabilistically "
                            f"(known: {','.join(ALL_SITES)})")
    group.add_argument(f"{p}rate", type=float, default=0.25, metavar="R",
                       dest="fault_rate",
                       help="per-(cell, site) arming probability (default: 0.25)")
    group.add_argument(f"{p}pin", action="append", default=[],
                       metavar="INDEX:SITE", dest="fault_pin",
                       help="force SITE on cell INDEX regardless of rate "
                            "(repeatable)")
    group.add_argument("--heap-limit", type=int, default=None, metavar="BYTES",
                       help="guest heap ceiling; exceeding it raises a guest "
                            "OutOfMemoryException")
    group.add_argument("--stack-limit", type=int, default=None, metavar="FRAMES",
                       help="guest call-depth ceiling; exceeding it raises a "
                            "guest StackOverflowException")
    group.add_argument("--cycle-limit", type=int, default=None, metavar="CYCLES",
                       help="per-cell cycle watchdog; exceeding it is a "
                            "structured CellTimeout")
    group.add_argument("--max-retries", type=int, default=2, metavar="K",
                       help="worker retry budget before a cell is quarantined "
                            "(default: 2)")
    group.add_argument("--cell-timeout", type=float, default=None, metavar="SECONDS",
                       help="pool-wide silence watchdog before unfinished "
                            "workers are presumed hung (default: 20 with a "
                            "plan, off without)")


def _parse_pins(pins: List[str]) -> Tuple[Tuple[int, str], ...]:
    out = []
    for pin in pins:
        index, sep, site = pin.partition(":")
        try:
            out.append((int(index), site.strip()))
        except ValueError:
            raise SystemExit(f"bad --pin {pin!r} (expected INDEX:SITE)")
        if not sep or not site.strip():
            raise SystemExit(f"bad --pin {pin!r} (expected INDEX:SITE)")
    return tuple(out)


def plan_from_args(args) -> Optional[FaultPlan]:
    """Build the FaultPlan an argparse namespace describes, or None when no
    fault option was armed (the zero-perturbation default)."""
    sites = tuple(
        s.strip() for s in (args.fault_sites or "").split(",") if s.strip()
    )
    pinned = _parse_pins(args.fault_pin)
    armed = (
        args.fault_seed is not None
        or sites
        or pinned
        or args.heap_limit is not None
        or args.stack_limit is not None
        or args.cycle_limit is not None
    )
    if not armed:
        return None
    try:
        return FaultPlan(
            seed=args.fault_seed if args.fault_seed is not None else 0,
            sites=sites,
            rate=args.fault_rate,
            pinned=pinned,
            heap_limit=args.heap_limit,
            stack_limit=args.stack_limit,
            cycle_limit=args.cycle_limit,
            max_retries=args.max_retries,
        )
    except ValueError as exc:
        raise SystemExit(f"fault plan: {exc}")


# --------------------------------------------------------------- the campaign


def _campaign_cells(args):
    from ..benchmarks import get as get_benchmark
    from ..metrics.baseline import graph_suite
    from ..runtimes import MICRO_PROFILES, get_profile

    benches = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    if args.profiles:
        profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
        for name in profiles:
            get_profile(name)  # fail fast on typos
    else:
        profiles = [p.name for p in MICRO_PROFILES]
    # scaled sizes for graph-suite members; registry defaults otherwise
    scaled = dict(graph_suite(args.scale))
    cells = []
    for bench in benches:
        get_benchmark(bench)  # fail fast on typos
        params = scaled.get(bench)
        for profile in profiles:
            cells.append((bench, params or None, profile))
    return cells


def _run_campaign(args, plan, jobs) -> FaultMatrixReport:
    from ..parallel import execution_from_args, run_cells

    cells = _campaign_cells(args)
    execution = execution_from_args(args)
    cache = execution.cache
    spec = {
        "kind": "harness",
        "metrics": False,
        "cache_dir": None if cache is None else cache.root,
        "plan": plan,
        "cell_timeout": execution.cell_timeout,
        "dispatch": execution.dispatch,
    }
    payloads, pool_report = run_cells(spec, cells, jobs=jobs)
    report = annotate_cells(
        [(bench, profile) for bench, _params, profile in cells], payloads, plan
    )
    print(f"repro-chaos: pool {pool_report.summary()}", file=sys.stderr)
    return report


def cmd_run(args) -> int:
    plan = plan_from_args(args)
    if plan is None:
        raise SystemExit(
            "repro-chaos run: no fault armed; pass --seed (optionally with "
            "--sites/--pin/limits)"
        )
    report = _run_campaign(args, plan, args.jobs)
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
        print(f"repro-chaos: wrote {args.out}")
    print(f"repro-chaos: {report.summary()}")
    for line in report.failure_lines():
        print(f"repro-chaos:   {line}")
    return 0 if report.contained else 1


def cmd_verify(args) -> int:
    plan = plan_from_args(args)
    if plan is None:
        raise SystemExit("repro-chaos verify: no fault armed; pass --seed")
    blobs = {}
    for jobs in (1, 2, 4):
        print(f"repro-chaos: campaign at --jobs {jobs}", file=sys.stderr)
        blobs[jobs] = _run_campaign(args, plan, jobs).to_json()
    if not (blobs[1] == blobs[2] == blobs[4]):
        print("repro-chaos: FAIL — reports differ across --jobs 1/2/4")
        return 1
    report = FaultMatrixReport(plan=plan, cells=json.loads(blobs[1])["cells"])
    print(f"repro-chaos: byte-identical across --jobs 1/2/4 — {report.summary()}")
    return 0 if report.contained else 1


def cmd_service(args) -> int:
    from .service_chaos import run_service_campaign

    return run_service_campaign(args.fault_seed or 0, out=args.out)


def cmd_check(args) -> int:
    try:
        report = load_report(args.report)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro-chaos check: {exc}")
    print(f"repro-chaos: {args.report}: {report.summary()}")
    for line in report.failure_lines():
        print(f"repro-chaos:   {line}")
    return 0 if report.contained else 1


def build_parser() -> argparse.ArgumentParser:
    from ..parallel import add_execution_args

    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="seeded fault-matrix campaigns with the containment "
        "exit-code policy (0 = every failure attributed, 1 = uncontained)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_matrix_arguments(p) -> None:
        # chaos takes the shared execution flags with bare fault names
        # (--seed, --sites, ...); verify ignores --jobs (it pins 1/2/4)
        add_execution_args(p, fault_prefix="")
        p.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                       help=f"comma-separated benchmarks (default: {DEFAULT_BENCHMARKS})")
        p.add_argument("--profiles", default=None,
                       help="comma-separated runtime profiles (default: micro set)")
        p.add_argument("--scale", type=float, default=0.05,
                       help="benchmark problem-size scale (default: 0.05)")

    run = sub.add_parser("run", help="one campaign; write the report; exit by containment")
    add_matrix_arguments(run)
    run.add_argument("--out", default="chaos-report.json", metavar="PATH",
                     help="failure-annotation report path (default: "
                          "chaos-report.json; '' to skip)")
    run.set_defaults(func=cmd_run)

    verify = sub.add_parser(
        "verify", help="same campaign at --jobs 1/2/4; assert byte-identical reports"
    )
    add_matrix_arguments(verify)
    verify.set_defaults(func=cmd_verify)

    check = sub.add_parser(
        "check", help="re-evaluate an existing report's containment policy"
    )
    check.add_argument("report", help="a repro.faults/1 report JSON file")
    check.set_defaults(func=cmd_check)

    service = sub.add_parser(
        "service",
        help="seeded daemon-level chaos scenarios (kills, lease steals, "
             "contention, dropped connections, overload); exit by containment",
    )
    service.add_argument("--seed", type=int, default=0, metavar="N",
                         dest="fault_seed",
                         help="campaign seed feeding every injected fault "
                              "parameter (default: 0)")
    service.add_argument("--out", default="", metavar="PATH",
                         help="scenario report JSON path ('' to skip)")
    service.set_defaults(func=cmd_service)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
