"""Structured cell failures and the failure-annotation matrix report.

The resilience contract of the harness is: *no cell failure escapes as an
unhandled exception; every failure comes back as data*.  The data shapes:

* :class:`CellFailure` — one cell's contained failure, produced inside the
  pool worker (or the serial path, same code) the moment a
  :class:`~repro.errors.ReproError` crosses the cell boundary.  Picklable,
  so it travels the same queue as a successful ``ProfileRun``.
* :class:`FaultMatrixReport` — the merged benchmark × profile × fault →
  outcome view built by :func:`annotate_cells`.  Its JSON serialization is
  deliberately derived only from plan-seeded data and deterministic guest
  state, so the same plan seed yields **byte-identical** reports at any
  ``--jobs`` count.

A failure is *attributed* when the report can explain it: a fault site
actually fired inside the machine (``fired``), a worker-level fault was
armed by the plan (``fault``), or it is a fuzz-budget ``deadline`` skip.
``contained`` means every failure is attributed — the exit-code policy of
``repro-chaos`` (and the fault modes of ``hpcnet run`` / ``repro-bench
run``): 0 when contained, 1 when any failure lacks an explanation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CellTimeout, CompileError, JitError, ManagedException
from .plan import FaultPlan

#: report schema tag (bumped on incompatible layout changes)
FAULTS_SCHEMA = "repro.faults/1"

#: CellFailure.status values
STATUSES = (
    "guest_exception",  # a managed exception escaped the guest program
    "cell_timeout",     # the per-cell cycle watchdog expired
    "compile_fault",    # JIT/front-end failure (incl. injected compile_fail)
    "engine_error",     # any other host-side ReproError
    "quarantined",      # worker kept dying; retry budget exhausted
    "deadline",         # fuzz time budget expired before the cell ran
)


@dataclass(frozen=True)
class CellFailure:
    """One experiment cell's contained, structured failure (picklable)."""

    index: int
    status: str
    #: host-side message (exception repr, quarantine reason, ...)
    error: str = ""
    #: guest exception class name when status == guest_exception
    exception: str = ""
    #: machine fault sites that fired, as sorted (site, count) pairs
    fired: Tuple[Tuple[str, int], ...] = ()
    #: worker-level fault site (pool attribution), when armed
    fault: str = ""
    retries: int = 0
    backoff_cycles: int = 0

    @property
    def attributed(self) -> bool:
        return bool(self.fault or self.fired) or self.status == "deadline"

    @classmethod
    def from_exception(cls, index: int, exc: BaseException) -> "CellFailure":
        """Classify a ReproError that crossed the cell boundary.  The
        machine attaches its fired-site dict to the exception as
        ``fault_fired`` (see Runner.run_on), which becomes the attribution.
        """
        fired = tuple(sorted(getattr(exc, "fault_fired", {}).items()))
        exception = ""
        if isinstance(exc, CellTimeout):
            status = "cell_timeout"
        elif isinstance(exc, ManagedException):
            status = "guest_exception"
            exception = exc.type_name
        elif isinstance(exc, (JitError, CompileError)):
            status = "compile_fault"
        else:
            status = "engine_error"
        return cls(
            index=index,
            status=status,
            error=f"{type(exc).__name__}: {exc}",
            exception=exception,
            fired=fired,
        )


@dataclass
class FaultMatrixReport:
    """benchmark × profile × fault → outcome, in cell-index order."""

    plan: Optional[FaultPlan]
    cells: List[dict] = field(default_factory=list)

    @property
    def failures(self) -> List[dict]:
        return [c for c in self.cells if c["status"] != "ok"]

    @staticmethod
    def cell_attributed(cell: dict) -> bool:
        return (
            bool(cell.get("fault") or cell.get("fired"))
            or cell["status"] == "deadline"
        )

    @property
    def contained(self) -> bool:
        """Every failure is explained by the plan or by fired guest limits."""
        return all(self.cell_attributed(c) for c in self.failures)

    def to_dict(self) -> dict:
        return {
            "schema": FAULTS_SCHEMA,
            "plan": None if self.plan is None else self.plan.to_dict(),
            "contained": self.contained,
            "cells": self.cells,
        }

    def to_json(self) -> str:
        """Deterministic serialization: byte-identical for identical plan
        seeds regardless of job count (the ``repro-chaos verify`` check)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def failure_lines(self) -> List[str]:
        lines = []
        for cell in self.failures:
            tag = "contained" if self.cell_attributed(cell) else "UNATTRIBUTED"
            detail = cell.get("exception") or cell.get("error", "")
            attribution = cell.get("fault", "")
            fired = cell.get("fired")
            if fired:
                shots = ",".join(f"{s}x{n}" for s, n in sorted(fired.items()))
                attribution = f"{attribution}+{shots}" if attribution else shots
            lines.append(
                f"cell {cell['index']} {cell['benchmark']}@{cell['profile']}: "
                f"{cell['status']} [{tag}]"
                + (f" fault={attribution}" if attribution else "")
                + (f" retries={cell['retries']}" if cell.get("retries") else "")
                + (f" — {detail}" if detail else "")
            )
        return lines

    def summary(self) -> str:
        n_ok = len(self.cells) - len(self.failures)
        n_attr = sum(1 for c in self.failures if self.cell_attributed(c))
        line = (
            f"{len(self.cells)} cells: {n_ok} ok, {len(self.failures)} failed "
            f"({n_attr} attributed)"
        )
        recovered = sum(
            1
            for c in self.cells
            if c["status"] == "ok" and c.get("retries")
        )
        if recovered:
            line += f", {recovered} recovered after retry"
        return line + (" — contained" if self.contained else " — UNCONTAINED")


def annotate_cells(
    meta: Sequence[Tuple[str, str]],
    payloads: Sequence[object],
    plan: Optional[FaultPlan] = None,
) -> FaultMatrixReport:
    """Merge pool payloads (ProfileRun | CellFailure, cell-index order)
    into the deterministic failure-annotation report.

    ``meta[i]`` is cell ``i``'s ``(benchmark, profile)``.  Worker-level
    retry/backoff fields come from the *plan* (deterministic), never from
    observed scheduling; machine-level attribution comes from the fired
    sites the (deterministic) machine recorded.
    """
    cells: List[dict] = []
    for index, ((benchmark, profile), payload) in enumerate(zip(meta, payloads)):
        record = plan.fault_record(index) if plan is not None else None
        cell: Dict[str, object] = {
            "index": index,
            "benchmark": benchmark,
            "profile": profile,
            "fault": "" if record is None else record.site,
            "retries": 0 if record is None else record.retries,
            "backoff_cycles": 0 if record is None else record.backoff_cycles,
        }
        if isinstance(payload, CellFailure):
            cell["status"] = payload.status
            cell["error"] = payload.error
            if payload.exception:
                cell["exception"] = payload.exception
            if payload.fired:
                cell["fired"] = dict(payload.fired)
            if payload.fault and not cell["fault"]:
                cell["fault"] = payload.fault
        else:
            cell["status"] = "ok"
            cell["cycles"] = payload.total_cycles
            fired = getattr(payload, "faults", None)
            if fired:
                cell["fired"] = dict(fired)
        cells.append(cell)
    return FaultMatrixReport(plan=plan, cells=cells)


def load_report(path: str) -> FaultMatrixReport:
    """Rehydrate a written report (``repro-chaos check``); the plan is kept
    as raw dict data — containment is recomputed from the cells alone."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != FAULTS_SCHEMA:
        raise ValueError(
            f"{path}: not a {FAULTS_SCHEMA} report (schema={data.get('schema')!r})"
        )
    report = FaultMatrixReport(plan=None, cells=data["cells"])
    return report
