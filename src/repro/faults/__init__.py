"""``repro.faults`` — deterministic fault injection + resilient harness.

Three cooperating pieces:

* :mod:`repro.faults.plan` — the seeded :class:`FaultPlan` (which cells
  fail, where, how often) plus the per-machine :class:`MachineFaults` spec
  and its runtime :class:`FaultInjector`.  Every decision is a SHA-256
  function of (seed, cell index, site), so failure reports are
  byte-identical across ``--jobs`` counts.
* :mod:`repro.faults.report` — :class:`CellFailure` (a cell's contained,
  structured failure; travels the pool queue like a result) and
  :class:`FaultMatrixReport` (benchmark × profile × fault → outcome, with
  the attribution/containment exit-code policy).
* :mod:`repro.faults.cli` — the ``repro-chaos`` campaign driver plus the
  shared ``--fault-*`` argparse helpers used by ``hpcnet run`` and
  ``repro-bench run``.
"""

from .plan import (
    ALL_SITES,
    CACHE_SITES,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    MACHINE_SITES,
    SERVICE_SITES,
    MachineFaults,
    WORKER_SITES,
)
from .report import (
    CellFailure,
    FAULTS_SCHEMA,
    FaultMatrixReport,
    annotate_cells,
    load_report,
)

__all__ = [
    "ALL_SITES",
    "CACHE_SITES",
    "MACHINE_SITES",
    "SERVICE_SITES",
    "WORKER_SITES",
    "FAULTS_SCHEMA",
    "CellFailure",
    "FaultInjector",
    "FaultMatrixReport",
    "FaultPlan",
    "FaultRecord",
    "MachineFaults",
    "annotate_cells",
    "load_report",
]
