"""``repro-chaos service`` — seeded chaos scenarios against a live daemon.

The harness runs an in-process :class:`~repro.service.ExperimentService`
(event loop on a thread, ephemeral port — the same shape the test suite
uses) and walks a fixed scenario script across every site in
:data:`~repro.faults.plan.SERVICE_SITES` plus overload and deadline
expiry:

* ``baseline`` — an unperturbed job; its artifact must be byte-identical
  to a direct serial :func:`repro.metrics.baseline.collect`.
* ``job_kill`` — the job's subprocess group is SIGKILLed at start; the
  job must end as a structured, fault-attributed failure.
* ``deadline`` — a tiny client-requested deadline expires; the job must
  end as a structured ``deadline`` failure with the kill accounted.
* ``lease_steal`` — a rival steals the writer lease mid-campaign; the
  victim job fails attributed (``lease-lost``), and the daemon must
  reacquire the lease and serve a fresh job afterwards.
* ``store_contention`` — a rival writer holds ``BEGIN IMMEDIATE`` on the
  store; the job must ride it out and still succeed.
* ``connection_drop`` — the client vanishes mid-request (raw socket,
  half a request, hard close); the daemon must stay healthy.
* ``overload`` — a flood of distinct submissions against ``--workers 1
  --max-queue 2``; at least one structured 429 with a valid Retry-After
  must come back, and every accepted job must still finish.

Faults are injected through a seeded :class:`~repro.faults.FaultPlan`
with the relevant site pinned to the scenario's job id, so the campaign
is reproducible for a given ``--seed``.  The exit-code contract is the
same containment policy as ``repro-chaos run``: **0** when every
scenario's failures are structured and attributed, **1** otherwise.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import tempfile
import threading
import time
from typing import List, Optional

from .plan import FaultPlan

SERVICE_CHAOS_SCHEMA = "repro.service-chaos/1"

#: small cold matrix every scenario submits (distinct git_sha per
#: submission keeps them from coalescing or warm-serving each other)
BENCHMARKS = "micro.arith"
PROFILES = "native-c"
SCALE = 0.05


class _Daemon:
    """One live in-process daemon on an ephemeral port."""

    def __init__(self, store_path: str, cache_dir: str, **kwargs):
        from ..service import ExperimentService, ServiceClient

        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("workers", 1)
        self.service = ExperimentService(
            store_path, cache_dir=cache_dir, **kwargs
        )
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        def body():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start("127.0.0.1", 0))
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=body, daemon=True)
        self.thread.start()
        if not ready.wait(30):
            raise RuntimeError("chaos daemon failed to start")
        host, port = self.service.address
        self.host, self.port = host, port
        self.client = ServiceClient(f"http://{host}:{port}")

    def close(self) -> None:
        self.client.close()
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        ).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def _request(tag: str) -> dict:
    """One cold submission; ``tag`` lands in git_sha so submissions never
    coalesce with (or warm-serve) each other."""
    return {
        "benchmarks": BENCHMARKS,
        "profiles": PROFILES,
        "scale": SCALE,
        "git_sha": f"chaos-{tag}",
    }


def _scenario(name: str, ok: bool, **details) -> dict:
    line = "ok" if ok else "FAIL"
    print(f"repro-chaos: service scenario {name}: {line}", file=sys.stderr)
    return {"name": name, "ok": bool(ok), **details}


def _plan(seed: int, site: str, job_id: int = 1) -> FaultPlan:
    """A plan with exactly one service site pinned to one job id — the
    seed still feeds every derived parameter (lock-hold scaling etc.)."""
    return FaultPlan(seed=seed, pinned=((job_id, site),))


# ---------------------------------------------------------------- scenarios


def _run_baseline(tmp: str, seed: int) -> dict:
    from ..metrics import baseline

    daemon = _Daemon(f"{tmp}/baseline.sqlite", f"{tmp}/cache-baseline")
    try:
        job = daemon.client.submit(_request("baseline"))
        done = daemon.client.wait(job["id"], timeout=300)
        if done["status"] != "done":
            return _scenario("baseline", False, error=done.get("error"))
        served = daemon.client.result(job["id"])
    finally:
        daemon.close()
    direct = baseline.collect(
        profiles=baseline.resolve_profiles(PROFILES),
        suite=baseline.resolve_suite(BENCHMARKS, SCALE),
        scale=SCALE,
        git_sha="chaos-baseline",
        jobs=1,
        store=None,
        record=False,
    )
    identical = json.dumps(served, sort_keys=True) == json.dumps(
        direct, sort_keys=True
    )
    return _scenario("baseline", identical, byte_identical=identical)


def _run_job_kill(tmp: str, seed: int) -> dict:
    daemon = _Daemon(
        f"{tmp}/kill.sqlite", f"{tmp}/cache-kill",
        fault_plan=_plan(seed, "job_kill"),
        breaker_threshold=100,  # one scenario must not trip memo-only
    )
    try:
        job = daemon.client.submit(_request("kill"))
        done = daemon.client.wait(job["id"], timeout=120)
        failure = done.get("failure") or {}
        attributed = (
            done["status"] == "failed"
            and failure.get("fault") == "job_kill"
            and done.get("fault_site") == "job_kill"
        )
        healthy = daemon.client.health()["ok"]
        return _scenario(
            "job_kill", attributed and healthy, failure=failure or None
        )
    finally:
        daemon.close()


def _run_deadline(tmp: str, seed: int) -> dict:
    daemon = _Daemon(
        f"{tmp}/deadline.sqlite", f"{tmp}/cache-deadline",
        breaker_threshold=100,
    )
    try:
        request = _request("deadline")
        # 1ms: expired before the shepherd's first poll step, so the kill
        # is deterministic regardless of how fast the tiny matrix runs
        request["deadline"] = 0.001
        job = daemon.client.submit(request)
        done = daemon.client.wait(job["id"], timeout=120)
        failure = done.get("failure") or {}
        attributed = (
            done["status"] == "failed" and failure.get("kind") == "deadline"
        )
        kills = daemon.client.stats()["metrics"]["counters"].get(
            "service.deadline_kills", 0
        )
        return _scenario(
            "deadline", attributed and kills >= 1,
            failure=failure or None, deadline_kills=kills,
        )
    finally:
        daemon.close()


def _run_lease_steal(tmp: str, seed: int) -> dict:
    daemon = _Daemon(
        f"{tmp}/steal.sqlite", f"{tmp}/cache-steal",
        fault_plan=_plan(seed, "lease_steal"),
        lease_ttl=1.0,
        breaker_threshold=100,
    )
    try:
        job = daemon.client.submit(_request("steal-victim"))
        done = daemon.client.wait(job["id"], timeout=120)
        failure = done.get("failure") or {}
        attributed = (
            done["status"] == "failed"
            and failure.get("kind") == "lease-lost"
        )
        # the daemon's lease loop must take the lease back (the thief's
        # TTL is a fraction of ours) and then serve cold work again
        recovered = False
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if daemon.client.stats()["lease"]["held"]:
                recovered = True
                break
            time.sleep(0.2)
        after = {}
        if recovered:
            job2 = daemon.client.submit(_request("steal-recovery"))
            after = daemon.client.wait(job2["id"], timeout=120)
        return _scenario(
            "lease_steal",
            attributed and recovered and after.get("status") == "done",
            failure=failure or None,
            lease_recovered=recovered,
        )
    finally:
        daemon.close()


def _run_store_contention(tmp: str, seed: int) -> dict:
    daemon = _Daemon(
        f"{tmp}/contend.sqlite", f"{tmp}/cache-contend",
        fault_plan=_plan(seed, "store_contention"),
        breaker_threshold=100,
    )
    try:
        job = daemon.client.submit(_request("contend"))
        done = daemon.client.wait(job["id"], timeout=120)
        injections = daemon.client.stats()["metrics"]["counters"].get(
            "service.fault_injections", 0
        )
        # the store's busy timeout must ride out the rival writer
        return _scenario(
            "store_contention",
            done["status"] == "done" and injections >= 1,
            status=done["status"],
            injections=injections,
        )
    finally:
        daemon.close()


def _run_connection_drop(tmp: str, seed: int) -> dict:
    daemon = _Daemon(f"{tmp}/drop.sqlite", f"{tmp}/cache-drop")
    try:
        # half a POST, then a hard close — the daemon must shrug it off
        for payload in (
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 400\r\n"
            b"Content-Type: application/json\r\n\r\n{\"benchmarks\":",
            b"GET /healthz HTTP/1.1\r\nHo",
            b"",
        ):
            sock = socket.create_connection(
                (daemon.host, daemon.port), timeout=5
            )
            try:
                if payload:
                    sock.sendall(payload)
                    time.sleep(0.05)
            finally:
                sock.close()
        healthy = daemon.client.health()["ok"]
        job = daemon.client.submit(_request("after-drop"))
        done = daemon.client.wait(job["id"], timeout=120)
        return _scenario(
            "connection_drop",
            healthy and done["status"] == "done",
            healthy_after=healthy,
        )
    finally:
        daemon.close()


def _run_overload(tmp: str, seed: int) -> dict:
    from ..service import ServiceError

    daemon = _Daemon(
        f"{tmp}/overload.sqlite", f"{tmp}/cache-overload",
        workers=1, max_queue=2,
    )
    try:
        accepted: List[int] = []
        rejections = []
        bad_rejections = 0
        for i in range(8):
            try:
                job = daemon.client.submit(_request(f"flood-{i}"))
                accepted.append(job["id"])
            except ServiceError as exc:
                if exc.status == 429 and isinstance(
                    exc.retry_after, float
                ) and exc.retry_after >= 1:
                    rejections.append(exc.retry_after)
                else:
                    bad_rejections += 1
        finished = 0
        for job_id in accepted:
            done = daemon.client.wait(job_id, timeout=300)
            if done["status"] == "done":
                finished += 1
        counters = daemon.client.stats()["metrics"]["counters"]
        return _scenario(
            "overload",
            bool(rejections)
            and bad_rejections == 0
            and finished == len(accepted)
            and counters.get("service.rejected_total", 0) >= len(rejections),
            accepted=len(accepted),
            rejected_429=len(rejections),
            retry_after=rejections[:3],
        )
    finally:
        daemon.close()


# ----------------------------------------------------------------- campaign


def run_service_campaign(seed: int, out: Optional[str] = None) -> int:
    """Run every scenario; write the JSON report; return the containment
    exit code (0 = every failure structured and attributed)."""
    scenarios = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-service-") as tmp:
        for runner in (
            _run_baseline,
            _run_job_kill,
            _run_deadline,
            _run_lease_steal,
            _run_store_contention,
            _run_connection_drop,
            _run_overload,
        ):
            scenarios.append(runner(tmp, seed))
    contained = all(s["ok"] for s in scenarios)
    report = {
        "schema": SERVICE_CHAOS_SCHEMA,
        "seed": seed,
        "scenarios": scenarios,
        "contained": contained,
    }
    blob = json.dumps(report, indent=1, sort_keys=True) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(blob)
        print(f"repro-chaos: wrote {out}")
    passed = sum(1 for s in scenarios if s["ok"])
    verdict = "contained" if contained else "UNCONTAINED"
    print(
        f"repro-chaos: service campaign seed {seed}: {passed}/{len(scenarios)} "
        f"scenarios ok — {verdict}"
    )
    for s in scenarios:
        if not s["ok"]:
            print(f"repro-chaos:   FAIL {s['name']}: {json.dumps(s)}")
    return 0 if contained else 1
