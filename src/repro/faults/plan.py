"""Seeded, clock-deterministic fault plans.

A :class:`FaultPlan` is the single source of truth for an entire chaos
campaign: which experiment cells get which faults, at what point inside the
cell they fire, how many worker attempts fail, and how much deterministic
backoff each retry records.  Every decision is a pure function of
``(plan seed, cell index, site name)`` via SHA-256 — never of worker
arrival order, process ids, or wall clock — so the failure-annotation
report built from a plan is byte-identical at ``--jobs 1``, ``2``, and
``4`` (asserted by ``repro-chaos verify`` and ``tests/test_faults.py``).

Three layers consume a plan:

* the :class:`~repro.vm.machine.Machine` takes a per-cell
  :class:`MachineFaults` spec (guest limits + in-VM injection points),
  wrapped at runtime in a :class:`FaultInjector` holding mutable counters;
* the :mod:`repro.parallel.pool` takes worker-level sites
  (``worker_crash`` / ``worker_hang``) plus the retry/quarantine budget;
* the :class:`~repro.parallel.cache.CompileCache` takes injected
  corrupt-load indices (``cache_corrupt``).

With no plan (and no :class:`MachineFaults`) every hook below is a single
``is None`` test — the zero-perturbation invariant the observer layer
already obeys extends to fault injection: cycles, instructions, and
results are bit-identical to a build without this module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: injection sites that fire inside the measured machine
MACHINE_SITES = ("alloc_oom", "unwind_throw", "monitor_fail", "compile_fail")

#: injection sites that fire at the pool-worker level
WORKER_SITES = ("worker_crash", "worker_hang")

#: injection sites that fire inside the compile cache
CACHE_SITES = ("cache_corrupt",)

#: injection sites that fire at the experiment-service level — consumed
#: by the daemon's drain tasks (keyed by *job id*, not cell index) and
#: the ``repro-chaos service`` harness.  ``connection_drop`` is
#: client-side (the harness drops the socket mid-request); the other
#: three are injected daemon-side just before the job executes.
SERVICE_SITES = (
    "job_kill",           # SIGKILL the job's subprocess group at start
    "store_contention",   # a rival writer holds BEGIN IMMEDIATE
    "lease_steal",        # a rival daemon steals the writer lease
    "connection_drop",    # the client vanishes mid-request
)

ALL_SITES = MACHINE_SITES + WORKER_SITES + CACHE_SITES + SERVICE_SITES

#: where a seeded site parameter lands, per site (1-based "fire at the Nth
#: event" spans; small enough that tiny test cells still reach the event)
_PARAM_SPANS = {
    "alloc_oom": 200,      # Nth allocation
    "unwind_throw": 4,     # Nth finally entered during exception dispatch
    "monitor_fail": 8,     # Nth Monitor.Enter
    "compile_fail": 12,    # Nth unique method compiled
    "cache_corrupt": 8,    # Nth cache load per worker
    "store_contention": 8,  # scales the rival writer's lock-hold time
}


@dataclass(frozen=True)
class MachineFaults:
    """Per-cell fault spec consumed by one Machine (immutable, picklable).

    ``None`` disables a limit/site.  The three limits are guest-visible
    resource ceilings; the ``*_at`` fields are seeded injection points
    ("fire at the Nth event").
    """

    heap_limit: Optional[int] = None
    stack_limit: Optional[int] = None
    cycle_limit: Optional[int] = None
    oom_at_alloc: Optional[int] = None
    throw_during_unwind: Optional[int] = None
    monitor_fail_at: Optional[int] = None
    compile_fail_at: Optional[int] = None

    def any_armed(self) -> bool:
        return any(
            getattr(self, f) is not None
            for f in (
                "heap_limit",
                "stack_limit",
                "cycle_limit",
                "oom_at_alloc",
                "throw_during_unwind",
                "monitor_fail_at",
                "compile_fail_at",
            )
        )


@dataclass(frozen=True)
class FaultRecord:
    """The plan-derived outcome of one worker-level fault (deterministic:
    computed from the plan alone, never from observed pids or wall clock,
    so serial and parallel runs report identical records)."""

    index: int
    site: str
    #: attempts the plan makes fail before the cell would succeed
    fail_attempts: int
    #: retries actually performed under the budget (= min(fail_attempts,
    #: max_retries))
    retries: int
    #: total deterministic backoff recorded on the simulated clock
    backoff_cycles: int
    #: ``recovered`` (a retry succeeded) or ``quarantined`` (budget spent)
    outcome: str


@dataclass(frozen=True)
class FaultPlan:
    """One seeded chaos campaign over an experiment matrix."""

    seed: int
    #: sites armed probabilistically (per cell, gated by ``rate``)
    sites: Tuple[str, ...] = ()
    #: arming probability per (cell, site); resolution is 1e-6
    rate: float = 0.25
    #: explicitly armed (cell index, site) pairs, rate-independent —
    #: used to guarantee scenario coverage (e.g. "one hung cell")
    pinned: Tuple[Tuple[int, str], ...] = ()
    heap_limit: Optional[int] = None
    stack_limit: Optional[int] = None
    cycle_limit: Optional[int] = None
    #: worker-level retry budget; a cell is quarantined after
    #: ``max_retries + 1`` failed attempts
    max_retries: int = 2
    #: first retry's backoff in simulated cycles; doubles per attempt
    backoff_base: int = 1024

    def __post_init__(self) -> None:
        unknown = set(self.sites) - set(ALL_SITES)
        unknown |= {site for _i, site in self.pinned} - set(ALL_SITES)
        if unknown:
            raise ValueError(
                f"unknown fault sites {sorted(unknown)}; known: {list(ALL_SITES)}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    # ------------------------------------------------------------ derivation

    def _digest(self, *parts: object) -> int:
        text = ":".join(str(p) for p in (self.seed,) + parts)
        raw = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(raw[:8], "big")

    def site_armed(self, index: int, site: str) -> bool:
        """Is ``site`` armed for cell ``index``?  Pure function of the plan."""
        if (index, site) in self.pinned:
            return True
        if site not in self.sites:
            return False
        return self._digest(index, site, "armed") % 1_000_000 < int(
            self.rate * 1_000_000
        )

    def _param(self, index: int, site: str) -> int:
        return 1 + self._digest(index, site, "param") % _PARAM_SPANS[site]

    # ------------------------------------------------------------- consumers

    def machine_faults(self, index: int) -> Optional[MachineFaults]:
        """The per-cell spec handed to the Machine, or None when nothing in
        the plan touches cell ``index``'s guest execution."""
        spec = MachineFaults(
            heap_limit=self.heap_limit,
            stack_limit=self.stack_limit,
            cycle_limit=self.cycle_limit,
            oom_at_alloc=(
                self._param(index, "alloc_oom")
                if self.site_armed(index, "alloc_oom")
                else None
            ),
            throw_during_unwind=(
                self._param(index, "unwind_throw")
                if self.site_armed(index, "unwind_throw")
                else None
            ),
            monitor_fail_at=(
                self._param(index, "monitor_fail")
                if self.site_armed(index, "monitor_fail")
                else None
            ),
            compile_fail_at=(
                self._param(index, "compile_fail")
                if self.site_armed(index, "compile_fail")
                else None
            ),
        )
        return spec if spec.any_armed() else None

    def worker_fault(self, index: int) -> Optional[Tuple[str, int]]:
        """``(site, fail_attempts)`` for cell ``index``, or None.  A crash
        takes precedence when both worker sites are armed."""
        for site in WORKER_SITES:
            if self.site_armed(index, site):
                attempts = 1 + self._digest(index, site, "attempts") % (
                    self.max_retries + 1
                )
                return site, attempts
        return None

    def fault_record(self, index: int) -> Optional[FaultRecord]:
        wf = self.worker_fault(index)
        if wf is None:
            return None
        site, fail_attempts = wf
        retries = min(fail_attempts, self.max_retries)
        backoff = sum(self.backoff_base << a for a in range(retries))
        outcome = "quarantined" if fail_attempts > self.max_retries else "recovered"
        return FaultRecord(index, site, fail_attempts, retries, backoff, outcome)

    def service_fault(self, job_id: int) -> Optional[str]:
        """The service-level site armed for job ``job_id``, or None.
        First site in :data:`SERVICE_SITES` order wins when several are
        armed — deterministic, like every other plan decision."""
        for site in SERVICE_SITES:
            if self.site_armed(job_id, site):
                return site
        return None

    def service_param(self, job_id: int) -> int:
        """Seeded magnitude parameter for service sites that need one
        (lock-hold scaling for ``store_contention``)."""
        return self._param(job_id, "store_contention")

    def cache_corrupt_loads(self) -> Tuple[int, ...]:
        """Cache-load ordinals (1-based, per worker cache instance) whose
        entry reads back truncated.  The cache already treats corruption as
        a miss, so results are unperturbed; the injection proves it."""
        if "cache_corrupt" not in self.sites and not any(
            site == "cache_corrupt" for _i, site in self.pinned
        ):
            return ()
        return (1 + self._digest("cache", "load") % _PARAM_SPANS["cache_corrupt"],)

    def to_dict(self) -> dict:
        """JSON-ready description, embedded in failure-annotation reports."""
        return {
            "seed": self.seed,
            "sites": list(self.sites),
            "rate": self.rate,
            "pinned": [[i, s] for i, s in self.pinned],
            "heap_limit": self.heap_limit,
            "stack_limit": self.stack_limit,
            "cycle_limit": self.cycle_limit,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
        }


class FaultInjector:
    """Mutable per-machine runtime state for one :class:`MachineFaults`.

    The Machine holds one of these (or None); hot paths read plain int
    attributes (``-1`` = disarmed) so the armed checks are single compares.
    ``fired`` records every fault that actually triggered, keyed by site —
    it is the ground-truth attribution that flows into ``faults.*`` metrics
    and failure annotations.
    """

    __slots__ = (
        "spec",
        "heap_limit",
        "stack_limit",
        "cycle_limit",
        "oom_at_alloc",
        "throw_during_unwind",
        "monitor_fail_at",
        "compile_fail_at",
        "allocs",
        "unwind_entries",
        "monitor_enters",
        "compiles",
        "pending",
        "fired",
    )

    def __init__(self, spec: MachineFaults) -> None:
        def arm(value: Optional[int]) -> int:
            return -1 if value is None else value

        self.spec = spec
        self.heap_limit = arm(spec.heap_limit)
        self.stack_limit = arm(spec.stack_limit)
        self.cycle_limit = arm(spec.cycle_limit)
        self.oom_at_alloc = arm(spec.oom_at_alloc)
        self.throw_during_unwind = arm(spec.throw_during_unwind)
        self.monitor_fail_at = arm(spec.monitor_fail_at)
        self.compile_fail_at = arm(spec.compile_fail_at)
        self.allocs = 0
        self.unwind_entries = 0
        self.monitor_enters = 0
        self.compiles = 0
        #: (thread, exception class, message) to raise at the next executor
        #: frame-bind on that thread — how "exception during unwind" enters
        #: the two-pass machinery without bypassing it
        self.pending: Optional[Tuple[object, str, str]] = None
        self.fired: Dict[str, int] = {}

    def record(self, site: str) -> None:
        self.fired[site] = self.fired.get(site, 0) + 1

    def enter_unwind_finally(self, thread) -> None:
        """Called each time exception dispatch enters a finally handler;
        arms the pending injected throw when the seeded entry is reached."""
        self.unwind_entries += 1
        if self.unwind_entries == self.throw_during_unwind:
            self.record("unwind_throw")
            self.pending = (
                thread,
                "OutOfMemoryException",
                "injected allocation failure during unwind",
            )

    def take_pending(self, thread) -> Optional[Tuple[str, str]]:
        """Claim the pending injected exception if it targets ``thread``."""
        if self.pending is not None and self.pending[0] is thread:
            _t, class_name, message = self.pending
            self.pending = None
            return class_name, message
        return None
