"""Result records produced by the harness runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SectionResult:
    section: str
    cycles: float
    ops: int
    flops: int
    ops_per_sec: float
    mflops: float
    #: wall seconds at the run's nominal clock
    seconds: float = 0.0
    results: List[float] = field(default_factory=list)


@dataclass
class ProfileRun:
    """One benchmark executed on one runtime profile."""

    benchmark: str
    profile: str
    clock_hz: float
    total_cycles: float
    sections: Dict[str, SectionResult] = field(default_factory=dict)
    stdout: List[str] = field(default_factory=list)
    #: machine-level counters useful for reports
    allocated_bytes: int = 0
    instructions: int = 0
    gc_collections: int = 0
    gc_live_objects: int = 0
    #: the repro.observe.Observer attached for this run, when profiling
    observation: Optional[object] = None
    #: repro.metrics registry snapshot ({"counters": ..., "gauges": ...,
    #: "histograms": ...}) when the run was metric-instrumented, else None
    metrics: Optional[dict] = None
    #: fired fault-site counts ({site: count}) when a repro.faults spec was
    #: active and at least one site fired without failing the run, else None
    faults: Optional[dict] = None

    def section(self, name: str) -> SectionResult:
        try:
            return self.sections[name]
        except KeyError:
            known = ", ".join(sorted(self.sections))
            raise KeyError(
                f"{self.benchmark}@{self.profile}: no section {name!r}; have {known}"
            ) from None


@dataclass
class ExperimentCheck:
    """One paper-shape expectation evaluated against measured data."""

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        line = f"  [{status}] {self.description}"
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass
class ExperimentResult:
    """Everything one paper graph/table regeneration produced."""

    experiment: str
    title: str
    #: section -> profile -> value (ops/sec, MFlops... as the graph plots)
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    unit: str = "ops/sec"
    checks: List[ExperimentCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    text: str = ""

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)
