"""``hpcnet`` command-line interface.

Subcommands::

    hpcnet list                         # all benchmarks with suites + sizes
    hpcnet profiles                     # the runtime profile table
    hpcnet run micro.arith [options]    # one benchmark across profiles
    hpcnet experiment graph09 [...]     # regenerate one paper graph/table
    hpcnet experiments                  # regenerate everything (EXPERIMENTS.md body)
    hpcnet disasm [--profile clr-1.1]   # Table 5-8 style code listings
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..benchmarks import all_benchmarks, get as get_benchmark
from ..runtimes import ALL_PROFILES, BY_NAME, MICRO_PROFILES, get_profile
from .charts import bar_chart, table, to_csv
from .experiments import ALL_EXPERIMENTS
from .runner import Runner


def _parse_overrides(pairs: List[str]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for pair in pairs:
        key, _, raw = pair.partition("=")
        if not _:
            raise SystemExit(f"bad --param {pair!r}; expected Key=Value")
        try:
            out[key] = int(raw)
        except ValueError:
            try:
                out[key] = float(raw)
            except ValueError:
                out[key] = raw
    return out


def cmd_list(_args) -> int:
    print(f"{'benchmark':<22} {'suite':<18} sections  default sizes")
    print("-" * 88)
    for bench in all_benchmarks():
        sizes = ", ".join(f"{k}={v}" for k, v in bench.params.items())
        print(f"{bench.name:<22} {bench.suite:<18} {len(bench.sections):>8}  {sizes}")
    return 0


def cmd_profiles(_args) -> int:
    print(f"{'profile':<14} {'vendor':<26} {'kind':<8} description")
    print("-" * 92)
    for profile in ALL_PROFILES:
        print(f"{profile.name:<14} {profile.vendor:<26} {profile.kind:<8} {profile.description}")
    return 0


def cmd_run(args) -> int:
    from ..faults.report import CellFailure, annotate_cells
    from ..parallel import execution_from_args, resolve_jobs, run_cells
    from .runner import check_cross_profile_results

    profiles = (
        [get_profile(name) for name in args.profiles]
        if args.profiles
        else MICRO_PROFILES
    )
    overrides = _parse_overrides(args.param or [])
    execution = execution_from_args(args)
    cache = execution.cache
    plan = execution.plan
    jobs = execution.jobs
    if args.profile and resolve_jobs(jobs) > 1:
        # the cycle-attribution observer is a live per-machine object, not a
        # picklable result record; profiling runs stay serial
        print("hpcnet: --profile forces serial execution (ignoring --jobs)")
        jobs = None
    if plan is not None and args.profile:
        raise SystemExit("hpcnet run: --profile cannot be combined with fault injection")
    faults_report = None
    if (resolve_jobs(jobs) > 1 and len(profiles) > 1) or plan is not None:
        cells = [
            (args.benchmark, overrides or None, p.name) for p in profiles
        ]
        spec = {
            "kind": "harness",
            "metrics": False,
            "clock_hz": args.clock,
            "cache_dir": None if cache is None else cache.root,
            "plan": plan,
            "cell_timeout": args.cell_timeout,
            "dispatch": args.dispatch,
        }
        payloads, report = run_cells(spec, cells, jobs=jobs)
        runs = {
            p.name: run
            for p, run in zip(profiles, payloads)
            if not isinstance(run, CellFailure)
        }
        check_cross_profile_results(args.benchmark, runs)
        print(f"hpcnet: parallel {report.summary()}")
        faults_report = annotate_cells(
            [(args.benchmark, p.name) for p in profiles], payloads, plan
        )
        if faults_report.failures:
            print(f"hpcnet: {faults_report.summary()}")
            for line in faults_report.failure_lines():
                print(f"hpcnet:   {line}")
        if not runs:
            print("hpcnet: no surviving profile runs")
            return 0 if faults_report.contained else 1
    else:
        runner = Runner(
            profiles=profiles,
            clock_hz=args.clock,
            compile_cache=cache,
            dispatch=args.dispatch,
        )
        runs = runner.run(args.benchmark, overrides or None, observe=args.profile)
    bench = get_benchmark(args.benchmark)
    profiles = [p for p in profiles if p.name in runs]
    if args.profile:
        from ..observe.cli import write_artifacts

        for run in runs.values():
            for kind, path in write_artifacts(run.observation, args.profile_dir).items():
                print(f"wrote {kind}: {path}")
    series = {
        section: {name: run.section(section).ops_per_sec for name, run in runs.items()}
        for section in bench.sections
    }
    unit = "ops/sec"
    if all(runs[p].section(s).flops for p in runs for s in bench.sections):
        series = {
            section: {name: run.section(section).mflops for name, run in runs.items()}
            for section in bench.sections
        }
        unit = "MFlops"
    if args.csv:
        print(to_csv(series, profile_order=[p.name for p in profiles]))
    else:
        print(bar_chart(series, unit=unit, profile_order=[p.name for p in profiles],
                        title=f"{args.benchmark} ({bench.description})"))
    if faults_report is not None and faults_report.failures:
        return 0 if faults_report.contained else 1
    return 0


def cmd_experiment(args) -> int:
    module = ALL_EXPERIMENTS.get(args.name)
    if module is None:
        known = ", ".join(sorted(ALL_EXPERIMENTS))
        raise SystemExit(f"unknown experiment {args.name!r}; known: {known}")
    result = module.run(scale=args.scale)
    print(result.text)
    return 0 if result.all_passed else 1


def cmd_experiments(args) -> int:
    status = 0
    for name, module in ALL_EXPERIMENTS.items():
        result = module.run(scale=args.scale)
        print(result.text)
        print()
        if not result.all_passed:
            status = 1
    return status


def cmd_disasm(args) -> int:
    from .experiments import tables_jit

    result = tables_jit.run()
    print(result.text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hpcnet",
        description="HPC.NET reproduction harness (Vogels, SC'03)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(func=cmd_list)
    sub.add_parser("profiles", help="list runtime profiles").set_defaults(func=cmd_profiles)

    p_run = sub.add_parser("run", help="run one benchmark across profiles")
    p_run.add_argument("benchmark")
    p_run.add_argument("--profiles", nargs="*", metavar="NAME",
                       help=f"profiles ({', '.join(BY_NAME)})")
    p_run.add_argument("--param", action="append", metavar="K=V")
    p_run.add_argument("--clock", type=float, default=None, help="clock Hz override")
    p_run.add_argument("--csv", action="store_true", help="emit CSV instead of bars")
    p_run.add_argument("--profile", action="store_true",
                       help="attach the cycle-attribution profiler and write "
                            "profile/trace/report artifacts per runtime")
    p_run.add_argument("--profile-dir", default="profile-artifacts", metavar="DIR",
                       help="where --profile writes artifacts")
    from ..parallel import add_execution_args

    add_execution_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_exp = sub.add_parser("experiment", help="regenerate one paper graph/table")
    p_exp.add_argument("name", help=f"one of: {', '.join(ALL_EXPERIMENTS)}")
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.set_defaults(func=cmd_experiment)

    p_all = sub.add_parser("experiments", help="regenerate every graph/table")
    p_all.add_argument("--scale", type=float, default=1.0)
    p_all.set_defaults(func=cmd_experiments)

    p_dis = sub.add_parser("disasm", help="Tables 5-8 code listings")
    p_dis.set_defaults(func=cmd_disasm)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
