"""Text rendering: tables and ASCII bar charts for the regenerated graphs.

The paper's graphs are grouped bar charts (sections on the x-axis, one bar
per VM); here each section becomes a block of horizontal bars, scaled to
the largest value in the chart, with scientific-notation labels like the
paper's axes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

BAR_WIDTH = 46


def format_sci(value: float) -> str:
    if value == 0:
        return "0"
    return f"{value:.2e}".replace("e+0", "e+").replace("e-0", "e-")


def bar_chart(
    series: Dict[str, Dict[str, float]],
    unit: str = "ops/sec",
    profile_order: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """``series[section][profile] = value`` -> grouped ASCII bars."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    peak = max(
        (v for per_profile in series.values() for v in per_profile.values()),
        default=1.0,
    ) or 1.0
    profiles = list(profile_order or sorted({p for s in series.values() for p in s}))
    name_width = max((len(p) for p in profiles), default=8)
    for section, per_profile in series.items():
        lines.append("")
        lines.append(f"{section}  [{unit}]")
        for profile in profiles:
            value = per_profile.get(profile)
            if value is None:
                continue
            filled = int(round(BAR_WIDTH * value / peak))
            bar = "#" * max(filled, 1 if value > 0 else 0)
            lines.append(f"  {profile:<{name_width}} |{bar:<{BAR_WIDTH}}| {format_sci(value)}")
    return "\n".join(lines)


def table(
    rows: Dict[str, Dict[str, float]],
    columns: Optional[Sequence[str]] = None,
    value_format: str = "{:.2f}",
    row_header: str = "",
) -> str:
    """``rows[row][column] = value`` -> aligned text table."""
    columns = list(columns or sorted({c for r in rows.values() for c in r}))
    row_names = list(rows)
    width0 = max([len(row_header)] + [len(r) for r in row_names]) + 2
    widths = [max(len(c), 10) + 2 for c in columns]
    out = [row_header.ljust(width0) + "".join(c.rjust(w) for c, w in zip(columns, widths))]
    out.append("-" * (width0 + sum(widths)))
    for r in row_names:
        cells = []
        for c, w in zip(columns, widths):
            v = rows[r].get(c)
            cells.append((value_format.format(v) if v is not None else "-").rjust(w))
        out.append(r.ljust(width0) + "".join(cells))
    return "\n".join(out)


def to_csv(series: Dict[str, Dict[str, float]], profile_order: Optional[Sequence[str]] = None) -> str:
    profiles = list(profile_order or sorted({p for s in series.values() for p in s}))
    lines = ["section," + ",".join(profiles)]
    for section, per_profile in series.items():
        cells = [repr(per_profile.get(p, "")) for p in profiles]
        lines.append(section + "," + ",".join(cells))
    return "\n".join(lines)
