"""``repro.harness`` — benchmark runner, reporting, and the per-graph
experiment modules (Graphs 1-12, Tables 5-8)."""

from .results import ExperimentCheck, ExperimentResult, ProfileRun, SectionResult
from .runner import Runner

__all__ = ["Runner", "ProfileRun", "SectionResult", "ExperimentResult", "ExperimentCheck"]
