"""Graph 4 — loop overheads (For / ReverseFor / While).

Paper section 5: "the loop overhead in CLR 1.1 is lower" than the JVM's.
"""

from __future__ import annotations

from typing import Optional

from ...runtimes import MICRO_PROFILES
from ..charts import bar_chart
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner
from .graph01_02_int_arith import MICRO_CLOCK

SECTIONS = ("Loop:For", "Loop:ReverseFor", "Loop:While")


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    runner = runner or Runner(profiles=profiles or MICRO_PROFILES, clock_hz=MICRO_CLOCK)
    reps = max(1000, int(30000 * scale))
    runs = runner.run("micro.loop", {"Reps": reps})

    result = ExperimentResult(
        experiment="graph04",
        title="Graph 4: Loop performance (iterations/sec)",
        unit="iterations/sec",
    )
    for section in SECTIONS:
        result.series[section] = {
            name: r.section(section).ops_per_sec for name, r in runs.items()
        }
    v = lambda s, p: result.series[s][p]
    result.checks.append(ExperimentCheck(
        "CLR loop overhead lower than IBM JVM (paper sec. 5)",
        all(v(s, "clr-1.1") > v(s, "ibm-1.3.1") for s in SECTIONS),
        f"for: clr={v('Loop:For', 'clr-1.1'):.3e} ibm={v('Loop:For', 'ibm-1.3.1'):.3e}",
    ))
    result.checks.append(ExperimentCheck(
        "loop styles within 2x of each other per VM (no pathological form)",
        all(
            max(result.series[s][p] for s in SECTIONS) <= 2 * min(result.series[s][p] for s in SECTIONS)
            for p in result.series["Loop:For"]
        ),
    ))
    order = [p.name for p in (profiles or MICRO_PROFILES)]
    result.text = bar_chart(result.series, unit=result.unit, profile_order=order, title=result.title)
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
