"""Graph 3 — floating point arithmetic (float and double add/mul/div).

The paper's Graph 3 shows the same JIT-quality ladder on FP code; double
and float throughput are close on every VM (x87 computes in extended
precision either way).
"""

from __future__ import annotations

from typing import Optional

from ...runtimes import MICRO_PROFILES
from ..charts import bar_chart
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner
from .graph01_02_int_arith import MICRO_CLOCK

SECTIONS = (
    "Arith:Add:Float", "Arith:Mul:Float", "Arith:Div:Float",
    "Arith:Add:Double", "Arith:Mul:Double", "Arith:Div:Double",
)


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    runner = runner or Runner(profiles=profiles or MICRO_PROFILES, clock_hz=MICRO_CLOCK)
    reps = max(200, int(6000 * scale))
    runs = runner.run("micro.arith", {"Reps": reps})

    result = ExperimentResult(
        experiment="graph03",
        title="Graph 3: Floating point arithmetic (ops/sec)",
        unit="ops/sec",
    )
    for section in SECTIONS:
        result.series[section] = {
            name: r.section(section).ops_per_sec for name, r in runs.items()
        }

    v = lambda s, p: result.series[s][p]
    result.checks.append(ExperimentCheck(
        "commercial VMs (CLR, IBM) lead on double addition",
        min(v("Arith:Add:Double", "clr-1.1"), v("Arith:Add:Double", "ibm-1.3.1"))
        > max(v("Arith:Add:Double", "mono-0.23"), v("Arith:Add:Double", "sscli-1.0")),
    ))
    result.checks.append(ExperimentCheck(
        "division much slower than addition everywhere (hardware bound)",
        all(v(f"Arith:Div:{t}", p) < v(f"Arith:Add:{t}", p)
            for t in ("Float", "Double") for p in result.series["Arith:Add:Float"]),
    ))
    result.checks.append(ExperimentCheck(
        "SSCLI slowest on double math",
        v("Arith:Add:Double", "sscli-1.0")
        == min(result.series["Arith:Add:Double"].values()),
    ))

    order = [p.name for p in (profiles or MICRO_PROFILES)]
    result.text = bar_chart(result.series, unit=result.unit, profile_order=order, title=result.title)
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
