"""Graph 9 — SciMark composite MFlops, both memory models, all eight columns.

Column order follows the paper's legend: MS-C++, Java IBM, C# .NET 1.1,
Java BEA JRockit 8.1, J# .NET 1.1, Java Sun 1.4, Mono 0.23, Rotor.
Expectations (sections 4-6): the native baseline leads; CLR 1.1 performs
"as good as the top-of-the-line" IBM JVM and clearly better than BEA/Sun;
Mono trails the commercial VMs; Rotor is far behind; the large model
narrows the JVM's advantage thanks to the CLR's array management.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...runtimes import ALL_PROFILES
from ..charts import bar_chart, table
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner

SCIMARK_CLOCK = 2.2e9  # dual P4 Xeon 2.2 GHz (paper section 4)

#: kernel -> (benchmark, section, small params, large params); large sizes
#: push the working set past the modelled cache threshold
KERNELS = {
    "FFT": ("scimark.fft", "SciMark:FFT",
            {"N": 128, "Reps": 1}, {"N": 2048, "Reps": 1}),
    "SOR": ("scimark.sor", "SciMark:SOR",
            {"N": 24, "Iters": 4}, {"N": 80, "Iters": 2}),
    "MonteCarlo": ("scimark.montecarlo", "SciMark:MonteCarlo",
                   {"Samples": 1500}, {"Samples": 3000}),
    "Sparse": ("scimark.sparse", "SciMark:Sparse",
               {"N": 100, "NZ": 500, "Reps": 4}, {"N": 800, "NZ": 4000, "Reps": 1}),
    "LU": ("scimark.lu", "SciMark:LU",
           {"N": 24, "Reps": 1}, {"N": 56, "Reps": 1}),
}

MODEL_PARAMS = {"small": 2, "large": 3}


def _scale_params(params: Dict[str, int], scale: float) -> Dict[str, int]:
    if scale >= 1.0:
        return dict(params)
    out = {}
    for key, value in params.items():
        if key in ("Reps", "Iters", "Samples"):
            out[key] = max(1, int(value * scale)) if key != "Samples" else max(200, int(value * scale))
        else:
            out[key] = value
    return out


def kernel_mflops(runner: Runner, model: str, scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """kernel -> profile -> MFlops for the given memory model."""
    index = MODEL_PARAMS[model]
    out: Dict[str, Dict[str, float]] = {}
    for kernel, spec in KERNELS.items():
        bench, section = spec[0], spec[1]
        params = _scale_params(spec[index], scale)
        runs = runner.run(bench, params)
        out[kernel] = {name: r.section(section).mflops for name, r in runs.items()}
    return out


def composite(per_kernel: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """SciMark composite = arithmetic mean of the five kernel MFlops."""
    profiles = next(iter(per_kernel.values())).keys()
    return {
        p: sum(per_kernel[k][p] for k in per_kernel) / len(per_kernel)
        for p in profiles
    }


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    profiles = profiles or ALL_PROFILES
    runner = runner or Runner(profiles=profiles, clock_hz=SCIMARK_CLOCK)

    small = composite(kernel_mflops(runner, "small", scale))
    large = composite(kernel_mflops(runner, "large", scale))

    result = ExperimentResult(
        experiment="graph09",
        title="Graph 9: SciMark composite MFlops, small and large memory models",
        unit="MFlops",
    )
    result.series["small memory model"] = small
    result.series["large memory model"] = large

    checks = [
        (
            "native C is the fastest column (paper Graph 9)",
            small["native-c"] == max(small.values()),
            f"native={small['native-c']:.1f}",
        ),
        (
            "CLR 1.1 performs as well as the IBM JVM (within 30%)",
            0.7 < small["clr-1.1"] / small["ibm-1.3.1"] < 1.45,
            f"clr={small['clr-1.1']:.1f} ibm={small['ibm-1.3.1']:.1f}",
        ),
        (
            "CLR 1.1 significantly better than BEA and Sun JVMs",
            small["clr-1.1"] > small["jrockit-8.1"] and small["clr-1.1"] > small["sun-1.4"],
            "",
        ),
        (
            "J# trails C# on the same VM (library shims)",
            small["jsharp-1.1"] < small["clr-1.1"],
            "",
        ),
        (
            "Mono trails the commercial VMs; Rotor is last",
            small["mono-0.23"] < min(small["clr-1.1"], small["ibm-1.3.1"])
            and small["sscli-1.0"] == min(small.values()),
            "",
        ),
        (
            "large model narrows the JVM's edge (CLR/IBM ratio improves)",
            large["clr-1.1"] / large["ibm-1.3.1"] > small["clr-1.1"] / small["ibm-1.3.1"],
            f"small={small['clr-1.1'] / small['ibm-1.3.1']:.3f} large={large['clr-1.1'] / large['ibm-1.3.1']:.3f}",
        ),
    ]
    for d, p, detail in checks:
        result.checks.append(ExperimentCheck(d, bool(p), detail))

    order = [p.name for p in profiles]
    result.text = bar_chart(result.series, unit="MFlops", profile_order=order, title=result.title)
    result.text += "\n\n" + table(
        {"small": small, "large": large}, columns=order, row_header="model"
    )
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
