"""Graphs 1-2 — integer arithmetic (add / multiply / divide), four VMs.

Paper expectations (section 5): "some integer operations in the CLR will
perform (addition and division) slower but others (e.g. multiplication)
will run faster, when compared to the JVM"; Mono roughly half the CLR;
SSCLI far behind.
"""

from __future__ import annotations

from typing import Optional

from ...runtimes import MICRO_PROFILES
from ..charts import bar_chart
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner

SECTIONS = (
    "Arith:Add:Int", "Arith:Mul:Int", "Arith:Div:Int",
    "Arith:Add:Long", "Arith:Mul:Long", "Arith:Div:Long",
)

MICRO_CLOCK = 2.8e9  # P4 Xeon 2.8 GHz (paper section 4)


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    runner = runner or Runner(profiles=profiles or MICRO_PROFILES, clock_hz=MICRO_CLOCK)
    reps = max(200, int(6000 * scale))
    runs = runner.run("micro.arith", {"Reps": reps})

    result = ExperimentResult(
        experiment="graph01-02",
        title="Graphs 1-2: Integer arithmetic (ops/sec)",
        unit="ops/sec",
    )
    for section in SECTIONS:
        result.series[section] = {
            name: run.section(section).ops_per_sec for name, run in runs.items()
        }

    def value(section, profile):
        return result.series[section][profile]

    checks = [
        (
            "CLR multiplication faster than IBM JVM (paper sec. 5)",
            value("Arith:Mul:Int", "clr-1.1") > value("Arith:Mul:Int", "ibm-1.3.1"),
            f"clr={value('Arith:Mul:Int', 'clr-1.1'):.3e} ibm={value('Arith:Mul:Int', 'ibm-1.3.1'):.3e}",
        ),
        (
            "CLR addition slower than IBM JVM",
            value("Arith:Add:Int", "clr-1.1") < value("Arith:Add:Int", "ibm-1.3.1"),
            f"clr={value('Arith:Add:Int', 'clr-1.1'):.3e} ibm={value('Arith:Add:Int', 'ibm-1.3.1'):.3e}",
        ),
        (
            "CLR division slower than IBM JVM",
            value("Arith:Div:Int", "clr-1.1") < value("Arith:Div:Int", "ibm-1.3.1"),
            "",
        ),
        (
            "Mono roughly half of CLR on addition (0.3x-0.8x)",
            0.3 < value("Arith:Add:Int", "mono-0.23") / value("Arith:Add:Int", "clr-1.1") < 0.8,
            f"ratio={value('Arith:Add:Int', 'mono-0.23') / value('Arith:Add:Int', 'clr-1.1'):.2f}",
        ),
        (
            "SSCLI slowest on every integer op",
            all(
                value(s, "sscli-1.0") <= min(v for p, v in result.series[s].items() if p != "sscli-1.0")
                for s in SECTIONS
            ),
            "",
        ),
        (
            "SSCLI 3x-12x behind CLR on addition (paper: 5-10x overall)",
            3.0 < value("Arith:Add:Int", "clr-1.1") / value("Arith:Add:Int", "sscli-1.0") < 12.0,
            f"ratio={value('Arith:Add:Int', 'clr-1.1') / value('Arith:Add:Int', 'sscli-1.0'):.2f}",
        ),
    ]
    for description, passed, detail in checks:
        result.checks.append(ExperimentCheck(description, bool(passed), detail))

    order = [p.name for p in (profiles or MICRO_PROFILES)]
    result.text = bar_chart(result.series, unit=result.unit, profile_order=order, title=result.title)
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().text)


if __name__ == "__main__":  # pragma: no cover
    main()
