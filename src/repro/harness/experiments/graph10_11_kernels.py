"""Graphs 10-11 — SciMark per-kernel results relative to C performance,
small (Graph 10) and large (Graph 11) memory models.

The paper plots each VM's kernel MFlops with the native C bar as the
reference.  Expectations: the C MonteCarlo column is anomalously high
(section 5: the C version has no locking primitives, "the comparison does
not yield a valid result"); matrix-heavy kernels favour the CLR while
integer-leaning ones favour the JVM; the ladder CLR/IBM >> Sun/BEA >
Mono >> Rotor holds per kernel.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...runtimes import ALL_PROFILES
from ..charts import bar_chart, table
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner
from .graph09_scimark import KERNELS, SCIMARK_CLOCK, kernel_mflops


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None,
        model: str = "small") -> ExperimentResult:
    profiles = profiles or ALL_PROFILES
    runner = runner or Runner(profiles=profiles, clock_hz=SCIMARK_CLOCK)
    per_kernel = kernel_mflops(runner, model, scale)

    graph = "Graph 10" if model == "small" else "Graph 11"
    result = ExperimentResult(
        experiment="graph10-11",
        title=f"{graph}: SciMark kernels, {model} memory model (MFlops; C = native reference)",
        unit="MFlops",
    )
    result.series.update(per_kernel)

    v = lambda k, p: per_kernel[k][p]
    # relative-to-C view like the paper's y-axis
    rel = {
        k: {p: v(k, p) / v(k, "native-c") for p in per_kernel[k]}
        for k in per_kernel
    }
    result.notes.append("relative-to-C values: " + repr({
        k: {p: round(x, 3) for p, x in per_profile.items()}
        for k, per_profile in rel.items()
    }))

    mc_gap = {p: rel["MonteCarlo"][p] for p in rel["MonteCarlo"] if p != "native-c"}
    other_gap = {p: rel["FFT"][p] for p in rel["FFT"] if p != "native-c"}
    result.checks.append(ExperimentCheck(
        "C MonteCarlo anomalously fast: every VM further behind C on MC than on FFT",
        all(mc_gap[p] < other_gap[p] for p in mc_gap),
        f"best VM reaches {max(mc_gap.values()):.2f}x of C on MC vs {max(other_gap.values()):.2f}x on FFT",
    ))
    result.checks.append(ExperimentCheck(
        "Rotor last on every kernel",
        all(v(k, "sscli-1.0") == min(per_kernel[k].values()) for k in per_kernel),
    ))
    result.checks.append(ExperimentCheck(
        "CLR and IBM are the two leading VMs on most kernels",
        sum(
            1 for k in per_kernel
            if set(sorted((p for p in per_kernel[k] if p != "native-c"),
                          key=lambda p: per_kernel[k][p], reverse=True)[:2])
            <= {"clr-1.1", "ibm-1.3.1", "jrockit-8.1"}
        ) >= 4,
    ))

    order = [p.name for p in profiles]
    result.text = bar_chart(result.series, unit="MFlops", profile_order=order, title=result.title)
    result.text += "\n\n" + table(per_kernel, columns=order, row_header="kernel")
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run(model="small").text)
    print()
    print(run(model="large").text)
