"""Tables 5-8 — the paper's code-generation study of the integer division
benchmark.

Table 5: C# source + resulting CIL; Tables 6-7: machine code from the two
commercial JITs (CLR 1.1 and IBM JVM); Table 8: the two open-source JITs
(Mono and SSCLI, with its emulated ``cdq``).  This module compiles the same
division loop once and renders every profile's generated code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...cil.disassembler import disassemble_body
from ...jit.emitter import render_x86
from ...jit.pipeline import JitCompiler
from ...lang import compile_source
from ...runtimes import CLR11, IBM131, MICRO_PROFILES, MONO023, SSCLI10
from ...vm.loader import LoadedAssembly
from ..results import ExperimentCheck, ExperimentResult

#: the exact shape of the paper's Table 5 benchmark extract
DIVISION_SOURCE = """
class DivBench {
    static int Main() {
        int size = 10000;
        int i1 = int.MaxValue;
        int i2 = 3;
        for (int i = 0; i < size; i++) {
            i1 = i1 / i2;
            if (i1 == 0) { i1 = int.MaxValue; }
        }
        return i1;
    }
}
"""


def run(scale: float = 1.0, profiles=None, runner=None) -> ExperimentResult:
    profiles = profiles or MICRO_PROFILES
    assembly = compile_source(DIVISION_SOURCE, assembly_name="divbench")
    method = assembly.find_method("DivBench", "Main")

    result = ExperimentResult(
        experiment="tables5-8",
        title="Tables 5-8: generated code for the integer division benchmark",
        unit="text",
    )

    parts: List[str] = [result.title, "=" * len(result.title), ""]
    parts.append("--- Table 5: C# source ---")
    parts.append(DIVISION_SOURCE.strip())
    parts.append("")
    parts.append("--- Table 5: resulting CIL (single csc-equivalent compile) ---")
    parts.extend(disassemble_body(method))
    parts.append("")

    renders: Dict[str, str] = {}
    stats: Dict[str, Dict[str, int]] = {}
    for profile in profiles:
        jit = JitCompiler(LoadedAssembly(assembly), profile)
        fn = jit.compile(method)
        renders[profile.name] = render_x86(fn, profile)
        stats[profile.name] = dict(fn.stats)
        table_no = {
            "clr-1.1": "Table 6 (CLR 1.1)",
            "ibm-1.3.1": "Table 6 (IBM JVM)",
            "mono-0.23": "Table 7 (Mono 0.23)",
            "sscli-1.0": "Table 8 (SSCLI 1.0)",
        }.get(profile.name, profile.name)
        parts.append(f"--- {table_no} ---")
        parts.append(renders[profile.name])
        parts.append("")

    checks = [
        ExperimentCheck(
            "CLR stages the constant divisor through a temporary "
            "('does something weird', Table 6)",
            stats.get("clr-1.1", {}).get("const_div_staged", 0) >= 1
            and "idiv    eax, dword ptr [ebp-" in renders.get("clr-1.1", ""),
        ),
        ExperimentCheck(
            "IBM JVM uses registers and constants without the staging quirk",
            stats.get("ibm-1.3.1", {}).get("const_div_staged", 0) == 0,
        ),
        ExperimentCheck(
            "SSCLI emulates cdq with loads and shifts (Table 8)",
            "sar     edx, 0x1f" in renders.get("sscli-1.0", ""),
        ),
        ExperimentCheck(
            "Mono/SSCLI keep variables in frame slots; the code is 'very "
            "close to the actual CIL'",
            renders.get("mono-0.23", "").count("[ebp-")
            > renders.get("clr-1.1", "").count("[ebp-")
            and renders.get("sscli-1.0", "").count("[ebp-")
            >= renders.get("mono-0.23", "").count("[ebp-"),
        ),
        ExperimentCheck(
            "commercial JITs enregister; SSCLI enregisters nothing",
            stats.get("clr-1.1", {}).get("enregistered", 0) > 0
            and stats.get("ibm-1.3.1", {}).get("enregistered", 0) > 0
            and stats.get("sscli-1.0", {}).get("enregistered", 1) == 0,
        ),
    ]
    result.checks.extend(checks)
    parts.append("\n".join(c.render() for c in checks))
    result.text = "\n".join(parts)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
