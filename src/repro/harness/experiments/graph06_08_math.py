"""Graphs 6-8 — Math library routines (three groups, 26 routines).

Paper section 5: "The CLR 1.1 version of the Math library appears to
perform better than the Java version."
"""

from __future__ import annotations

from typing import Optional

from ...benchmarks.micro.math_bench import GROUP1, GROUP2, GROUP3
from ...runtimes import MICRO_PROFILES
from ..charts import bar_chart
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner
from .graph01_02_int_arith import MICRO_CLOCK


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    runner = runner or Runner(profiles=profiles or MICRO_PROFILES, clock_hz=MICRO_CLOCK)
    reps = max(400, int(2000 * scale))
    runs = runner.run("micro.math", {"Reps": reps})

    result = ExperimentResult(
        experiment="graph06-08",
        title="Graphs 6-8: Math library calls/sec (groups I-III)",
        unit="calls/sec",
    )
    for section in GROUP1 + GROUP2 + GROUP3:
        result.series[section] = {
            name: r.section(section).ops_per_sec for name, r in runs.items()
        }
    v = lambda s, p: result.series[s][p]
    transcendental = ("Math:SinDouble", "Math:CosDouble", "Math:TanDouble",
                      "Math:ExpDouble", "Math:LogDouble", "Math:PowDouble",
                      "Math:SqrtDouble")
    result.checks.append(ExperimentCheck(
        "CLR math library beats the IBM JVM on transcendentals (Graphs 6-8)",
        all(v(s, "clr-1.1") > v(s, "ibm-1.3.1") for s in transcendental),
        f"sin: clr={v('Math:SinDouble', 'clr-1.1'):.3e} ibm={v('Math:SinDouble', 'ibm-1.3.1'):.3e}",
    ))
    result.checks.append(ExperimentCheck(
        "Abs/Max/Min (group I) are far cheaper than trig (group II) everywhere",
        all(v("Math:AbsInt", p) > 3 * v("Math:SinDouble", p)
            for p in result.series["Math:AbsInt"]),
    ))
    result.checks.append(ExperimentCheck(
        "CLR leads every math routine among the four VMs or ties native order",
        sum(1 for s in GROUP2 + GROUP3
            if v(s, "clr-1.1") == max(result.series[s].values())) >= len(GROUP2 + GROUP3) * 0.7,
    ))
    order = [p.name for p in (profiles or MICRO_PROFILES)]
    result.text = bar_chart(result.series, unit=result.unit, profile_order=order, title=result.title)
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
