"""Graph 5 — exception handling (Throw / New / Method).

Paper section 5: "exception-handling in all implementations of the CLI is
significantly more costly than in the JVM."
"""

from __future__ import annotations

from typing import Optional

from ...runtimes import MICRO_PROFILES
from ..charts import bar_chart
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner
from .graph01_02_int_arith import MICRO_CLOCK

SECTIONS = ("Exception:Throw", "Exception:New", "Exception:Method")


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    runner = runner or Runner(profiles=profiles or MICRO_PROFILES, clock_hz=MICRO_CLOCK)
    reps = max(50, int(300 * scale))
    runs = runner.run("micro.exception", {"Reps": reps})

    result = ExperimentResult(
        experiment="graph05",
        title="Graph 5: Exception handling (exceptions/sec)",
        unit="exceptions/sec",
    )
    for section in SECTIONS:
        result.series[section] = {
            name: r.section(section).ops_per_sec for name, r in runs.items()
        }
    v = lambda s, p: result.series[s][p]
    cli = ("clr-1.1", "mono-0.23", "sscli-1.0")
    result.checks.append(ExperimentCheck(
        "every CLI throws exceptions far slower than the JVM (>=4x)",
        all(v("Exception:Throw", "ibm-1.3.1") > 4 * v("Exception:Throw", p) for p in cli),
        f"ibm={v('Exception:Throw', 'ibm-1.3.1'):.3e} clr={v('Exception:Throw', 'clr-1.1'):.3e}",
    ))
    result.checks.append(ExperimentCheck(
        "creating the exception object is much cheaper than throwing it",
        all(v("Exception:New", p) > 5 * v("Exception:Throw", p)
            for p in result.series["Exception:New"]),
    ))
    result.checks.append(ExperimentCheck(
        "throwing down a call tree costs more than a local throw",
        all(v("Exception:Method", p) < v("Exception:Throw", p)
            for p in result.series["Exception:Method"]),
    ))
    order = [p.name for p in (profiles or MICRO_PROFILES)]
    result.text = bar_chart(result.series, unit=result.unit, profile_order=order, title=result.title)
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
