"""Experiment modules — one per paper graph/table.

Each module exposes ``run(scale=1.0, profiles=None) -> ExperimentResult``:
``scale`` multiplies repetition counts (tests use < 1.0 for speed, benches
1.0), and every module evaluates the paper's qualitative expectations as
:class:`~repro.harness.results.ExperimentCheck` records.
"""

from . import (
    graph01_02_int_arith,
    graph03_fp_arith,
    graph04_loops,
    graph05_exceptions,
    graph06_08_math,
    graph09_scimark,
    graph10_11_kernels,
    graph12_matrix,
    tables_jit,
)

ALL_EXPERIMENTS = {
    "graph01-02": graph01_02_int_arith,
    "graph03": graph03_fp_arith,
    "graph04": graph04_loops,
    "graph05": graph05_exceptions,
    "graph06-08": graph06_08_math,
    "graph09": graph09_scimark,
    "graph10-11": graph10_11_kernels,
    "graph12": graph12_matrix,
    "tables5-8": tables_jit,
}
