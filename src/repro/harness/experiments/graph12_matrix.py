"""Graph 12 — matrix styles on the CLR 1.1: true multidimensional vs jagged
arrays, value-type vs object-type elements.

Paper section 5: "Copy assignments in true multidimensional matrices run at
25 percent of the performance of jagged arrays"; the graph also shows
value-type matrices ahead of object-type ones.
"""

from __future__ import annotations

from typing import Optional

from ...runtimes import CLR11
from ..charts import bar_chart
from ..results import ExperimentCheck, ExperimentResult
from ..runner import Runner
from .graph01_02_int_arith import MICRO_CLOCK

SECTIONS = ("Matrix:MultiDim", "Matrix:Jagged", "Matrix:ValueType", "Matrix:ObjectType")


def run(scale: float = 1.0, profiles=None, runner: Optional[Runner] = None) -> ExperimentResult:
    profiles = profiles or [CLR11]
    runner = runner or Runner(profiles=profiles, clock_hz=MICRO_CLOCK)
    reps = max(2, int(4 * scale))
    runs = runner.run("clispec.matrix", {"Reps": reps})

    result = ExperimentResult(
        experiment="graph12",
        title="Graph 12: Matrix copy performance on .NET CLR 1.1 (copies/sec)",
        unit="copies/sec",
    )
    for section in SECTIONS:
        result.series[section] = {
            name: r.section(section).ops_per_sec for name, r in runs.items()
        }
    clr = "clr-1.1"
    v = lambda s: result.series[s][clr]
    ratio = v("Matrix:MultiDim") / v("Matrix:Jagged")
    result.checks.append(ExperimentCheck(
        "true multidimensional runs at roughly 25% of jagged (0.15-0.45)",
        0.15 < ratio < 0.45,
        f"multidim/jagged = {ratio:.2f}",
    ))
    result.checks.append(ExperimentCheck(
        "value-type elements faster than object-type elements",
        v("Matrix:ValueType") > v("Matrix:ObjectType"),
        f"value={v('Matrix:ValueType'):.3e} object={v('Matrix:ObjectType'):.3e}",
    ))
    result.checks.append(ExperimentCheck(
        "jagged arrays are the fastest matrix style",
        v("Matrix:Jagged") == max(v(s) for s in SECTIONS),
    ))
    order = [p.name for p in profiles]
    result.text = bar_chart(result.series, unit=result.unit, profile_order=order, title=result.title)
    result.text += "\n\n" + "\n".join(c.render() for c in result.checks)
    return result


def main() -> None:  # pragma: no cover
    print(run().text)
