"""Benchmark runner: compile once, execute on every runtime profile.

This is the paper's methodology made executable: "we use a single compiler
[...] to generate the intermediate code, and this code is then executed on
each of the different runtimes."  One :class:`~repro.cil.metadata.Assembly`
is produced per (benchmark, parameter set); each profile gets a fresh
loader (fresh statics) over that same image.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from ..benchmarks import get as get_benchmark
from ..cil.metadata import Assembly
from ..errors import BenchmarkError, ReproError
from ..lang import compile_source
from ..metrics import MachineMetrics
from ..observe import CompositeObserver, Observer
from ..runtimes import MICRO_PROFILES, RuntimeProfile
from ..vm.loader import LoadedAssembly
from ..vm.machine import Machine
from .results import ProfileRun, SectionResult


def _canon_param(value: object) -> object:
    """Canonical hashable form of one override value (same type-tagging
    discipline as ``repro.fuzz.oracle._canon``: 1, 1.0 and True must not
    collide as cache keys, and float NaNs compare bit-for-bit)."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, (list, tuple)):
        return tuple(_canon_param(v) for v in value)
    return value


def compile_key(
    name: str, overrides: Optional[Dict[str, object]] = None
) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
    """The canonical cache key for one (benchmark, overrides) compilation.

    Values are canonicalized before keying; an override whose value cannot
    be made hashable raises :class:`~repro.errors.BenchmarkError` naming
    the offending key, instead of the opaque ``TypeError`` a raw
    ``tuple(sorted(overrides.items()))`` key would hit.
    """
    items = []
    for key in sorted(overrides or {}, key=str):
        value = overrides[key]
        canon = _canon_param(value)
        try:
            hash(canon)
        except TypeError:
            raise BenchmarkError(
                f"{name}: override {key!r} has an uncacheable value of type "
                f"{type(value).__name__}: {value!r}"
            ) from None
        items.append((str(key), canon))
    return (name, tuple(items))


class Runner:
    def __init__(
        self,
        profiles: Optional[Iterable[RuntimeProfile]] = None,
        clock_hz: Optional[float] = None,
        quantum: int = 50_000,
        disabled_passes: Iterable[str] = (),
        compile_cache=None,
        dispatch: Optional[str] = None,
    ) -> None:
        self.profiles: List[RuntimeProfile] = list(profiles or MICRO_PROFILES)
        #: override the nominal clock (the paper uses 2.8 GHz for micro,
        #: 2.2 GHz for the SciMark machine)
        self.clock_hz = clock_hz
        self.quantum = quantum
        #: JIT passes disabled on every machine this runner builds
        #: (see ``repro.jit.pipeline.ABLATABLE_PASSES``)
        self.disabled_passes: Tuple[str, ...] = tuple(disabled_passes)
        #: optional persistent :class:`repro.parallel.CompileCache`; the
        #: in-memory dict below still short-circuits repeat compiles within
        #: this runner's lifetime either way
        self.compile_cache = compile_cache
        #: dispatch engine for every machine this runner builds (see
        #: ``repro.vm.dispatch.DISPATCH_MODES``); None defers to the
        #: REPRO_DISPATCH environment default, i.e. classic
        self.dispatch = dispatch
        self._compiled: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], Assembly] = {}

    def compile_benchmark(
        self, name: str, overrides: Optional[Dict[str, object]] = None
    ) -> Assembly:
        key = compile_key(name, overrides)
        assembly = self._compiled.get(key)
        if assembly is None:
            bench = get_benchmark(name)
            source = bench.build_source(overrides)
            if self.compile_cache is not None:
                assembly = self.compile_cache.get_or_compile(source, assembly_name=name)
            else:
                assembly = compile_source(source, assembly_name=name)
            self._compiled[key] = assembly
        return assembly

    def run_on(
        self,
        name: str,
        profile: RuntimeProfile,
        overrides: Optional[Dict[str, object]] = None,
        observe=None,
        disabled_passes: Optional[Iterable[str]] = None,
        metrics=None,
        faults=None,
        dispatch: Optional[str] = None,
    ) -> ProfileRun:
        """Run one benchmark on one profile.

        ``observe`` may be True (build a fresh :class:`repro.observe.Observer`)
        or an unattached Observer instance; either way the observer lands on
        the returned run's ``observation`` field.  ``metrics`` may be True
        (fresh :class:`repro.metrics.MachineMetrics`) or an unattached
        MachineMetrics; its finalized snapshot lands on the run's
        ``metrics`` field.  Both may be given at once — the machine's single
        observer slot then gets a :class:`repro.observe.CompositeObserver`
        fanning every hook (and the JIT trace) out to both.
        ``disabled_passes`` overrides the runner-wide setting for this run
        only.  ``faults`` is an optional
        :class:`repro.faults.MachineFaults` spec; when a fault fires the
        escaping :class:`~repro.errors.ReproError` carries the machine's
        fired-site counters as ``exc.fault_fired`` so merge paths can
        attribute the failure.  ``dispatch`` selects the execution engine
        for this run only (falling back to the runner-wide setting).
        """
        assembly = self.compile_benchmark(name, overrides)
        if observe is True:
            observe = Observer()
        if metrics is True:
            metrics = MachineMetrics()
        if observe is not None and metrics is not None:
            observer = CompositeObserver(observe, metrics)
        else:
            observer = metrics if observe is None else observe
        if observer is not None:
            observer.benchmark = name
        disabled = (
            self.disabled_passes if disabled_passes is None else tuple(disabled_passes)
        )
        machine = Machine(
            LoadedAssembly(assembly),
            profile,
            quantum=self.quantum,
            disabled_passes=disabled,
            observer=observer,
            faults=faults,
            dispatch=self.dispatch if dispatch is None else dispatch,
        )
        try:
            machine.run()
            machine.bench.require_valid()
        except ReproError as exc:
            if machine.faults is not None and machine.faults.fired:
                exc.fault_fired = dict(machine.faults.fired)
            raise
        fired = None
        if machine.faults is not None and machine.faults.fired:
            fired = dict(machine.faults.fired)
            if metrics is not None:
                for site, count in sorted(fired.items()):
                    metrics.registry.counter(f"faults.{site}").add(count)
        clock = self.clock_hz or profile.clock_hz
        run = ProfileRun(
            benchmark=name,
            profile=profile.name,
            clock_hz=clock,
            total_cycles=machine.cycles,
            stdout=list(machine.stdout),
            allocated_bytes=machine.allocated_bytes,
            instructions=machine.instructions,
            gc_collections=machine.gc_collections,
            gc_live_objects=machine.gc_live_objects,
            observation=observe,
            metrics=None if metrics is None else metrics.snapshot(),
            faults=fired,
        )
        for section_name, section in machine.bench.sections.items():
            run.sections[section_name] = SectionResult(
                section=section_name,
                cycles=section.total_cycles,
                ops=section.ops,
                flops=section.flops,
                ops_per_sec=section.ops_per_sec(clock),
                mflops=section.mflops(clock),
                seconds=section.seconds(clock),
                results=list(section.results),
            )
        return run

    def run(
        self,
        name: str,
        overrides: Optional[Dict[str, object]] = None,
        observe: bool = False,
        metrics: bool = False,
    ) -> Dict[str, ProfileRun]:
        """Run on every configured profile; results keyed by profile name.
        Also asserts the paper's cross-runtime invariant: every profile's
        recorded computation results are identical.  ``observe=True`` /
        ``metrics=True`` attach a fresh Observer / MachineMetrics per
        profile (both are single-machine)."""
        out: Dict[str, ProfileRun] = {}
        for profile in self.profiles:
            out[profile.name] = self.run_on(
                name, profile, overrides,
                observe=observe or None, metrics=metrics or None,
            )
        check_cross_profile_results(name, out)
        return out


def check_cross_profile_results(name: str, runs: Dict[str, ProfileRun]) -> None:
    """Assert the paper's cross-runtime invariant over a set of per-profile
    runs: every profile recorded identical computation results.  Shared by
    the serial :meth:`Runner.run` path and the parallel-merge paths
    (``hpcnet run --jobs``, ``repro-bench run --jobs``), so a fan-out can
    never skip the check."""
    reference: Optional[ProfileRun] = None
    for run in runs.values():
        if reference is None:
            reference = run
            continue
        for s, sec in run.sections.items():
            ref = reference.sections[s]
            if sec.results != ref.results:
                raise AssertionError(
                    f"{name}:{s}: results differ between "
                    f"{reference.profile} and {run.profile}: "
                    f"{ref.results} vs {sec.results}"
                )
