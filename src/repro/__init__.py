"""HPC.NET reproduction (Vogels, SC'03) — a CLI virtual-machine laboratory.

Top-level convenience API::

    import repro

    assembly = repro.compile_source("class P { static int Main() { return 42; } }")
    result, machine = repro.run(assembly, repro.profiles.CLR11)

The full surface lives in the subpackages: :mod:`repro.lang` (Kernel-C#
compiler), :mod:`repro.cil` (the IL), :mod:`repro.vm` (interpreter +
measured engine), :mod:`repro.jit` (per-profile optimization pipelines),
:mod:`repro.runtimes` (the eight VM profiles), :mod:`repro.benchmarks`
(the paper's Tables 1-4 suites), :mod:`repro.reference` (validation
oracles) and :mod:`repro.harness` (runner + Graph 1-12 / Table 5-8
experiments).
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"
__paper__ = (
    "Werner Vogels. HPC.NET — are CLI-based Virtual Machines Suitable for "
    "High Performance Computing? SC'03, Phoenix, AZ."
)

__all__ = ["compile_source", "run", "profiles", "__version__", "__paper__"]

if TYPE_CHECKING:  # pragma: no cover
    from . import runtimes as profiles
    from .lang import compile_source


def compile_source(source: str, **kwargs):
    """Compile Kernel-C# source to a verified CIL assembly
    (see :func:`repro.lang.compile_source`)."""
    from .lang import compile_source as _compile

    return _compile(source, **kwargs)


def run(assembly, profile, **kwargs):
    """Execute ``assembly`` on ``profile``; returns ``(result, machine)``."""
    from .vm.loader import LoadedAssembly
    from .vm.machine import Machine

    machine = Machine(LoadedAssembly(assembly), profile, **kwargs)
    return machine.run(), machine


def __getattr__(name):
    if name == "profiles":
        from . import runtimes

        return runtimes
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
