"""Sun HotSpot 1.4 client JVM.

Paper section 6: the CLR 1.1 performs "significantly better than the BEA
and Sun implementations" on these kernels.  Modelled as a competent but
conservative JIT: full enregistration with a smaller budget, no bounds-check
elimination, a strict (slow) math library, and cheap JVM-style exceptions.
"""

from .profile import CostTable, JitConfig, RuntimeProfile

_MATH = {
    "Abs": 11, "Max": 11, "Min": 11,
    "Sin": 140, "Cos": 140, "Tan": 170, "Asin": 180, "Acos": 180,
    "Atan": 145, "Atan2": 175,
    "Floor": 38, "Ceiling": 38, "Sqrt": 44, "Exp": 150, "Log": 140,
    "Pow": 210, "Rint": 44, "Round": 46, "Random": 60,
}

SUN14 = RuntimeProfile(
    name="sun-1.4",
    vendor="Sun Microsystems",
    kind="jvm",
    description="Sun HotSpot 1.4",
    jit=JitConfig(
        enreg_mode="full",
        reg_budget=5,
        max_tracked_locals=10_000,
        copy_propagation=True,
        constant_folding=True,
        inline_small_methods=True,
        inline_budget=20,
        boundscheck_elim="none",
        boundscheck=True,
        fuse_compare_branch=True,
    ),
    costs=CostTable(
        reg_op=1,
        mem_operand=2,
        mul_i4=6,
        mul_i8=10,
        mul_r=5,
        div_i4=24,
        div_i8=36,
        div_r=26,
        branch=3,
        call=15,
        virtual_call_extra=4,
        intrinsic_call=8,
        bounds_check=4,
        array_access=3,
        md_array_extra=10,
        large_array_extra=1.2,
        field_access=2,
        static_access=3,
        alloc_base=32,
        alloc_per_word=2,
        gc_per_kbyte=18,
        box=26,
        unbox=8,
        exception_throw=2600,
        exception_frame=180,
        exception_new=110,
        monitor_enter=60,
        monitor_exit=48,
        monitor_contended=2300,
        thread_start=52000,
        thread_switch=1050,
        serialize_byte=14,
        math=_MATH,
        math_default=140,
    ),
)
