"""SSCLI 1.0 ("Rotor") — Microsoft's shared-source CLI, portability-first.

Paper: "5 to 10 times as slow" as CLR 1.1; Table 8 shows everything staged
through the stack frame and cdq emulated "with loads and shifts"; section 6:
"it needs a new JIT if it wants to play a role in any environment that
takes performance seriously."  Modelled as a non-optimizing JIT: no
enregistration, no copy propagation, no constant folding, no inlining, no
fused compare-and-branch, the cdq-emulation division quirk, and slow
runtime services throughout.
"""

from .profile import CostTable, JitConfig, RuntimeProfile

_MATH = {
    "Abs": 18, "Max": 18, "Min": 18,
    "Sin": 95, "Cos": 95, "Tan": 120, "Asin": 135, "Acos": 135,
    "Atan": 105, "Atan2": 130,
    "Floor": 40, "Ceiling": 40, "Sqrt": 55, "Exp": 120, "Log": 105,
    "Pow": 160, "Rint": 45, "Round": 48, "Random": 75,
}

SSCLI10 = RuntimeProfile(
    name="sscli-1.0",
    vendor="Microsoft (shared source)",
    kind="cli",
    description="SSCLI 1.0 'Rotor' portable JIT (fjit)",
    jit=JitConfig(
        enreg_mode="none",
        reg_budget=0,
        max_tracked_locals=0,
        copy_propagation=False,
        constant_folding=False,
        inline_small_methods=False,
        boundscheck_elim="none",
        boundscheck=True,
        fuse_compare_branch=False,
        cdq_emulation=True,
    ),
    costs=CostTable(
        reg_op=1,
        mem_operand=2,
        mul_i4=5,
        mul_i8=9,
        div_i4=34,   # idiv plus the emulated-cdq load/shift sequence
        div_i8=50,
        div_r=24,
        branch=3,
        branch_not_fused_extra=3,
        call=26,
        virtual_call_extra=8,
        intrinsic_call=12,
        bounds_check=4,
        array_access=3,
        md_array_extra=18,
        large_array_extra=0.6,
        field_access=4,
        static_access=5,
        alloc_base=70,
        alloc_per_word=4,
        gc_per_kbyte=36,
        box=50,
        unbox=14,
        exception_throw=42000,
        exception_frame=600,
        exception_new=220,
        monitor_enter=240,
        monitor_exit=190,
        monitor_contended=4200,
        thread_start=90000,
        thread_switch=2000,
        serialize_byte=24,
        math=_MATH,
        math_default=110,
    ),
)
