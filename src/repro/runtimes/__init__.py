"""``repro.runtimes`` — the eight runtime profiles of the paper's evaluation."""

from .clr11 import CLR11
from .ibm131 import IBM131
from .jrockit81 import JROCKIT81
from .jsharp11 import JSHARP11
from .mono023 import MONO023
from .native_c import NATIVE_C
from .profile import CostTable, JitConfig, RuntimeProfile
from .registry import ALL_PROFILES, BY_NAME, CLI_PROFILES, MICRO_PROFILES, get_profile
from .sscli10 import SSCLI10
from .sun14 import SUN14

__all__ = [
    "RuntimeProfile", "JitConfig", "CostTable",
    "CLR11", "IBM131", "MONO023", "SSCLI10", "SUN14", "JROCKIT81",
    "JSHARP11", "NATIVE_C",
    "ALL_PROFILES", "MICRO_PROFILES", "CLI_PROFILES", "BY_NAME", "get_profile",
]
