"""IBM JVM 1.3.1 — "the top-of-the-line Java Virtual Machine" (paper 6).

Encoded evidence: register-and-constant integer code as good as or better
than CLR 1.1 (Table 6: "uses registers and constants throughout the loop"),
faster integer add/div but slower multiply than the CLR, cheap exceptions,
a strict (fdlibm-style) math library that is much slower than the CLR's,
higher loop overhead, thin-lock monitors, and array management that falls
behind the CLR on the large memory model.
"""

from .profile import CostTable, JitConfig, RuntimeProfile

_MATH = {
    "Abs": 10, "Max": 10, "Min": 10,
    "Sin": 125, "Cos": 125, "Tan": 155, "Asin": 165, "Acos": 165,
    "Atan": 130, "Atan2": 160,
    "Floor": 35, "Ceiling": 35, "Sqrt": 38, "Exp": 135, "Log": 125,
    "Pow": 190, "Rint": 40, "Round": 42, "Random": 55,
}

IBM131 = RuntimeProfile(
    name="ibm-1.3.1",
    vendor="IBM",
    kind="jvm",
    description="IBM JDK 1.3.1 server JIT",
    jit=JitConfig(
        enreg_mode="full",
        reg_budget=7,
        max_tracked_locals=10_000,
        copy_propagation=True,
        constant_folding=True,
        inline_small_methods=True,
        inline_budget=28,
        boundscheck_elim="length-pattern",
        boundscheck=True,
        fuse_compare_branch=True,
    ),
    costs=CostTable(
        reg_op=1,
        mem_operand=2,
        mul_i4=6,
        mul_i8=9,
        div_i4=18,
        div_i8=30,
        div_r=18,
        branch=3,
        branch_not_fused_extra=2,
        call=13,
        virtual_call_extra=3,
        intrinsic_call=7,
        bounds_check=3,
        array_access=2,
        md_array_extra=9,
        large_array_extra=1.1,
        field_access=2,
        static_access=3,
        alloc_base=30,
        alloc_per_word=2,
        gc_per_kbyte=16,
        box=24,
        unbox=7,
        exception_throw=2300,
        exception_frame=160,
        exception_new=100,
        monitor_enter=48,
        monitor_exit=40,
        monitor_contended=2100,
        thread_start=50000,
        thread_switch=1000,
        serialize_byte=13,
        math=_MATH,
        math_default=120,
    ),
)
