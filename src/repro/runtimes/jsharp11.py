"""J# on .NET 1.1 — Java source compiled by vjc, executed by the CLR.

Same execution engine as CLR 1.1 (same JIT config), but Java library calls
route through the J# compatibility layer (vjslib): math and support calls
carry shim overhead, which is why J# trails C# on the same VM in Graphs
9-11.
"""

from .clr11 import CLR11

_MATH = {
    "Abs": 16, "Max": 16, "Min": 16,
    "Sin": 95, "Cos": 95, "Tan": 120, "Asin": 140, "Acos": 140,
    "Atan": 105, "Atan2": 130,
    "Floor": 34, "Ceiling": 34, "Sqrt": 48, "Exp": 120, "Log": 110,
    "Pow": 165, "Rint": 38, "Round": 40, "Random": 70,
}

JSHARP11 = CLR11.with_(
    name="jsharp-1.1",
    vendor="Microsoft",
    description="J# compiler targeting .NET 1.1 (vjslib shims)",
).with_costs(
    intrinsic_call=11,
    call=14,
    math=_MATH,
    math_default=100,
    serialize_byte=16,
    alloc_base=40,
)
