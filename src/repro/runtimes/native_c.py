"""Native C/C++ baseline (MSVC) — the "MS - C" column of Graph 9.

Statically compiled: no range checks, no GC tax, direct math calls, and —
critically for the Monte Carlo caveat in section 5 — *no locking
primitives*: "The C++ version of the benchmarks does not have any of these
locking primitives and as such the comparison does not yield a valid
result."  Monitor costs here are near-zero so the same IL reproduces that
anomalously fast Monte Carlo column.
"""

from .profile import CostTable, JitConfig, RuntimeProfile

_MATH = {
    "Abs": 4, "Max": 4, "Min": 4,
    "Sin": 48, "Cos": 48, "Tan": 65, "Asin": 80, "Acos": 80,
    "Atan": 55, "Atan2": 70,
    "Floor": 14, "Ceiling": 14, "Sqrt": 28, "Exp": 65, "Log": 58,
    "Pow": 90, "Rint": 16, "Round": 18, "Random": 32,
}

NATIVE_C = RuntimeProfile(
    name="native-c",
    vendor="Microsoft VC++",
    kind="native",
    description="statically compiled C/C++ baseline",
    jit=JitConfig(
        enreg_mode="full",
        reg_budget=8,
        max_tracked_locals=10_000,
        copy_propagation=True,
        constant_folding=True,
        inline_small_methods=True,
        inline_budget=48,
        boundscheck_elim="length-pattern",
        boundscheck=False,
        fuse_compare_branch=True,
    ),
    costs=CostTable(
        reg_op=1,
        mem_operand=2,
        mul_i4=3,
        mul_i8=6,
        div_i4=16,
        div_i8=26,
        div_r=14,
        branch=2,
        call=6,
        virtual_call_extra=2,
        intrinsic_call=2,
        bounds_check=0,
        array_access=2,
        md_array_extra=2,
        large_array_extra=0.2,
        field_access=2,
        static_access=2,
        alloc_base=22,
        alloc_per_word=1,
        gc_per_kbyte=3,
        box=20,
        unbox=4,
        exception_throw=8000,
        exception_frame=120,
        exception_new=60,
        monitor_enter=3,
        monitor_exit=2,
        monitor_contended=100,
        thread_start=40000,
        thread_switch=900,
        serialize_byte=8,
        math=_MATH,
        math_default=50,
    ),
)
