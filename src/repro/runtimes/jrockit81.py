"""BEA JRockit 8.1 server JVM.

Grouped with Sun by the paper ("significantly better than the BEA and Sun
implementations" — speaking of CLR/IBM).  A server-class JIT: good integer
code and aggressive inlining, but no bounds-check elimination on these
patterns, a strict math library, and heavier call sites.
"""

from .profile import CostTable, JitConfig, RuntimeProfile

_MATH = {
    "Abs": 11, "Max": 11, "Min": 11,
    "Sin": 130, "Cos": 130, "Tan": 160, "Asin": 170, "Acos": 170,
    "Atan": 135, "Atan2": 165,
    "Floor": 36, "Ceiling": 36, "Sqrt": 40, "Exp": 140, "Log": 130,
    "Pow": 195, "Rint": 42, "Round": 44, "Random": 58,
}

JROCKIT81 = RuntimeProfile(
    name="jrockit-8.1",
    vendor="BEA",
    kind="jvm",
    description="BEA JRockit 8.1 server JVM",
    jit=JitConfig(
        enreg_mode="full",
        reg_budget=6,
        max_tracked_locals=10_000,
        copy_propagation=True,
        constant_folding=True,
        inline_small_methods=True,
        inline_budget=30,
        boundscheck_elim="none",
        boundscheck=True,
        fuse_compare_branch=True,
    ),
    costs=CostTable(
        reg_op=1,
        mem_operand=2,
        mul_i4=5,
        mul_i8=9,
        mul_r=4,
        div_i4=22,
        div_i8=34,
        div_r=23,
        branch=3,
        call=14,
        virtual_call_extra=3,
        intrinsic_call=8,
        bounds_check=4,
        array_access=3,
        md_array_extra=10,
        large_array_extra=1.0,
        field_access=2,
        static_access=3,
        alloc_base=30,
        alloc_per_word=2,
        gc_per_kbyte=17,
        box=25,
        unbox=8,
        exception_throw=2500,
        exception_frame=170,
        exception_new=105,
        monitor_enter=55,
        monitor_exit=45,
        monitor_contended=2200,
        thread_start=48000,
        thread_switch=1000,
        serialize_byte=14,
        math=_MATH,
        math_default=130,
    ),
)
