"""Runtime profile: everything that distinguishes one VM from another.

A profile bundles (a) the JIT pipeline configuration — which optimizations
the runtime's code emitter performs, the paper's section-5 root cause for
nearly every performance difference — and (b) the runtime-service cost
table (exception dispatch, allocation/GC, monitors, math library, thread
start).

Calibration rules (DESIGN.md section 6): parameters are set once, per
profile, from the paper's qualitative descriptions; individual benchmark
numbers are *outputs*.  Benchmarks and the executor never branch on a
profile's name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class JitConfig:
    """Code-quality knobs of the runtime's JIT emitter."""

    #: 'full' — locals + temps enregistered by usage frequency (CLR, IBM);
    #: 'partial' — a few hot values in registers, rest in the frame (Mono);
    #: 'none' — everything through memory (SSCLI's portable JIT)
    enreg_mode: str = "full"
    #: modelled allocatable machine registers
    reg_budget: int = 6
    #: CLR 1.0/1.1 only tracked the first 64 locals for enregistration
    max_tracked_locals: int = 10_000
    #: collapse stack-shuffle moves (Mono/SSCLI keep them: "very close to
    #: the actual CIL code")
    copy_propagation: bool = True
    constant_folding: bool = True
    #: inline small non-virtual methods
    inline_small_methods: bool = True
    inline_budget: int = 24
    #: 'none' | 'length-pattern' (hoist the range check when the loop bound
    #: is the array's own Length)
    boundscheck_elim: str = "none"
    #: native code performs no range checks at all
    boundscheck: bool = True
    #: emit compare+branch as one fused jump
    fuse_compare_branch: bool = True
    #: CLR 1.1 quirk: stages a constant divisor through a stack slot
    const_div_quirk: bool = False
    #: SSCLI quirk: emulates cdq with explicit loads and shifts before idiv
    cdq_emulation: bool = False


@dataclass(frozen=True)
class CostTable:
    """Cycle costs.  ``reg_op`` is the baseline ALU cost; each operand that
    lives in the stack frame instead of a register adds ``mem_operand``."""

    reg_op: int = 1
    mem_operand: int = 2
    mov: int = 1
    mul_i4: int = 3
    mul_i8: int = 5
    mul_r: int = 3
    div_i4: int = 22
    div_i8: int = 30
    div_r: int = 18
    rem_extra: int = 4
    conv: int = 2
    conv_r_i: int = 8
    branch: int = 2
    branch_not_fused_extra: int = 2
    #: static/instance calls: frame setup + return
    call: int = 12
    virtual_call_extra: int = 4
    intrinsic_call: int = 6
    #: range check cost when not eliminated
    bounds_check: int = 2
    array_access: int = 2
    #: extra per md-array access (index arithmetic / helper call)
    md_array_extra: int = 8
    #: extra per element access on arrays larger than the cache-resident
    #: threshold (the "large memory model" effect; paper section 5)
    large_array_extra: float = 0.0
    field_access: int = 2
    static_access: int = 3
    #: object allocation: header + zeroing per 8 bytes
    alloc_base: int = 40
    alloc_per_word: int = 2
    #: GC charged per byte allocated, amortized
    gc_per_kbyte: int = 24
    box: int = 30
    unbox: int = 8
    cast_check: int = 6
    struct_copy_per_field: int = 2
    #: two-pass exception dispatch: per throw + per frame searched
    exception_throw: int = 20000
    exception_frame: int = 300
    exception_new: int = 120
    monitor_enter: int = 80
    monitor_exit: int = 60
    monitor_contended: int = 2500
    thread_start: int = 60000
    thread_switch: int = 1200
    serialize_byte: int = 14
    string_char: int = 2
    #: per-call costs of the math library, by routine name; missing names
    #: fall back to ``math_default``
    math: Dict[str, int] = field(default_factory=dict)
    math_default: int = 40


@dataclass(frozen=True)
class RuntimeProfile:
    """One virtual machine (or the native baseline)."""

    name: str
    vendor: str
    kind: str  # 'cli' | 'jvm' | 'native'
    jit: JitConfig = field(default_factory=JitConfig)
    costs: CostTable = field(default_factory=CostTable)
    #: nominal clock of the paper's test machine
    clock_hz: float = 2.8e9
    description: str = ""

    def math_cost(self, routine: str) -> int:
        return self.costs.math.get(routine, self.costs.math_default)

    def with_(self, **kwargs) -> "RuntimeProfile":
        """Derived profile with replaced fields (used by ablation benches)."""
        return replace(self, **kwargs)

    def with_jit(self, **kwargs) -> "RuntimeProfile":
        return replace(self, jit=replace(self.jit, **kwargs))

    def with_costs(self, **kwargs) -> "RuntimeProfile":
        return replace(self, costs=replace(self.costs, **kwargs))
