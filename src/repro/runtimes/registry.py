"""Registry of all runtime profiles, ordered as in the paper's graphs."""

from __future__ import annotations

from typing import Dict, List

from .clr11 import CLR11
from .ibm131 import IBM131
from .jrockit81 import JROCKIT81
from .jsharp11 import JSHARP11
from .mono023 import MONO023
from .native_c import NATIVE_C
from .profile import RuntimeProfile
from .sscli10 import SSCLI10
from .sun14 import SUN14

#: Graph 9 column order: MS-C++, Java IBM, C# .NET 1.1, Java BEA, J#, Java Sun, Mono, Rotor
ALL_PROFILES: List[RuntimeProfile] = [
    NATIVE_C,
    IBM131,
    CLR11,
    JROCKIT81,
    JSHARP11,
    SUN14,
    MONO023,
    SSCLI10,
]

#: the four VMs of the micro-benchmark section (Graphs 1-8)
MICRO_PROFILES: List[RuntimeProfile] = [IBM131, CLR11, MONO023, SSCLI10]

#: the three CLI implementations
CLI_PROFILES: List[RuntimeProfile] = [CLR11, MONO023, SSCLI10]

BY_NAME: Dict[str, RuntimeProfile] = {p.name: p for p in ALL_PROFILES}


def get_profile(name: str) -> RuntimeProfile:
    try:
        return BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(BY_NAME))
        raise KeyError(f"unknown runtime profile {name!r}; known: {known}") from None
