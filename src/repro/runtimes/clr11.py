"""Microsoft .NET CLR 1.1 — the commercial CLI implementation.

Paper evidence encoded here (section 5, Tables 5-6, Graphs 1-12):

* good enregistration, but only the first 64 locals are tracked;
* stages constant divisors through a temporary slot ("does something weird
  by temporarily storing the constant in a variable");
* eliminates in-loop range checks when the bound is ``array.Length``;
* fast multiplication, slightly slower integer add/div than the IBM JVM;
* the best Math library of the field (Graphs 6-8);
* low loop overhead (Graph 4); very costly exception dispatch (Graph 5,
  Windows SEH two-pass);
* true multidimensional arrays ~4x slower than jagged (Graph 12);
* better large-working-set array management than the JVMs (Graph 9/11).
"""

from .profile import CostTable, JitConfig, RuntimeProfile

_MATH = {
    "Abs": 8, "Max": 8, "Min": 8,
    "Sin": 52, "Cos": 52, "Tan": 70, "Asin": 85, "Acos": 85,
    "Atan": 60, "Atan2": 75,
    "Floor": 18, "Ceiling": 18, "Sqrt": 30, "Exp": 70, "Log": 62,
    "Pow": 95, "Rint": 20, "Round": 22, "Random": 40,
}

CLR11 = RuntimeProfile(
    name="clr-1.1",
    vendor="Microsoft",
    kind="cli",
    description=".NET Framework CLR 1.1 (csc + mscorjit)",
    jit=JitConfig(
        enreg_mode="full",
        reg_budget=6,
        max_tracked_locals=64,
        copy_propagation=True,
        constant_folding=True,
        inline_small_methods=True,
        inline_budget=24,
        boundscheck_elim="length-pattern",
        boundscheck=True,
        fuse_compare_branch=True,
        const_div_quirk=True,
    ),
    costs=CostTable(
        reg_op=1,
        mem_operand=2,
        mul_i4=3,
        mul_i8=6,
        div_i4=26,
        div_i8=38,
        div_r=18,
        branch=2,
        call=12,
        virtual_call_extra=4,
        intrinsic_call=5,
        bounds_check=5,
        array_access=2,
        md_array_extra=11,
        large_array_extra=0.3,
        field_access=2,
        static_access=3,
        alloc_base=34,
        alloc_per_word=2,
        gc_per_kbyte=20,
        box=26,
        unbox=7,
        exception_throw=21000,
        exception_frame=320,
        exception_new=130,
        monitor_enter=75,
        monitor_exit=55,
        monitor_contended=2400,
        thread_start=55000,
        thread_switch=1100,
        serialize_byte=12,
        math=_MATH,
        math_default=60,
    ),
)
