"""``repro.store`` — the append-only SQLite experiment store.

Replaces point-in-time ``BENCH_*.json`` files as the result substrate:
every cell result is recorded across history, keyed content-addressed on
``sha256(COMPILER_VERSION, profile, benchmark, canonical overrides,
dispatch, seed)``, so the bench gate, the experiment service's memo
cache, and cross-PR trend queries all read one database.  BENCH JSON
remains as an import/export format (``repro-store import/export``).
"""

from .codec import (
    RECORD_SCHEMA,
    cell_key,
    entry_from_record,
    run_from_record,
    run_to_record,
)
from .lease import DEFAULT_TTL as DEFAULT_LEASE_TTL
from .lease import LeaseLost, WriterLease
from .schema import (
    MIGRATIONS,
    SCHEMA_VERSION,
    StoreError,
    apply_migrations,
    enable_wal,
    schema_version,
)
from .store import (
    DEFAULT_STORE_PATH,
    STORE_PATH_ENV,
    ExperimentStore,
    StoreReadPool,
    default_store_path,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_STORE_PATH",
    "ExperimentStore",
    "LeaseLost",
    "WriterLease",
    "MIGRATIONS",
    "RECORD_SCHEMA",
    "SCHEMA_VERSION",
    "STORE_PATH_ENV",
    "StoreError",
    "StoreReadPool",
    "apply_migrations",
    "cell_key",
    "default_store_path",
    "enable_wal",
    "entry_from_record",
    "run_from_record",
    "run_to_record",
    "schema_version",
]
