"""The append-only, schema-versioned SQLite experiment store.

One database records every cell result across history: ``runs`` (one row
per collection/submission/import), ``cells`` (one row per *executed or
imported* cell result, content-addressed by :func:`repro.store.cell_key`),
``failures`` (contained CellFailure annotations), and
``metric_snapshots`` (counters/gauges flattened for SQL trend queries).
Rows are never updated or deleted — the schema's triggers abort any
attempt — so the store doubles as the cross-PR history substrate behind
trend queries like the runtime-ratio ladder.

Memoization contract: :meth:`ExperimentStore.lookup` returns the latest
*live* record for a key (imported/backfilled records are visible to
exports and trends but are never served as results — they lack the
section values and stdout a real run carries).  A served record rebuilds
a :class:`~repro.harness.results.ProfileRun` whose every artifact-visible
number is byte-identical to re-executing the cell, which is what lets the
service answer repeat requests with zero compiles and zero guest cycles.

Concurrency/crash posture: SQLite in WAL journal mode with a busy
timeout.  Writers append whole collections in one transaction, so a
process killed mid-commit leaves the database readable at the prior
state; interleaved writers serialize on the database lock, and WAL lets
readers proceed against the last committed snapshot while a collection
is being appended.  ``ExperimentStore(path, read_only=True)`` opens
without write capability (and without attempting migrations);
:class:`StoreReadPool` keeps a small set of such connections warm for
high-QPS read paths like the daemon's ``/v1/trends`` and ``/v1/stats``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple
from urllib.parse import quote

from . import codec
from .schema import (
    SCHEMA_VERSION,
    StoreError,
    apply_migrations,
    enable_wal,
    schema_version,
)

#: environment override for the store location (CLI flags still win)
STORE_PATH_ENV = "REPRO_STORE"

#: default store path, relative to the current working directory
DEFAULT_STORE_PATH = "experiments.sqlite"


def default_store_path() -> str:
    return os.environ.get(STORE_PATH_ENV) or DEFAULT_STORE_PATH


def _dumps(value) -> str:
    """Canonical JSON for stored columns (compact, key-sorted)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class ExperimentStore:
    """Append-only experiment history + whole-cell memoization over one
    SQLite file.  Open applies pending migrations; ``hits``/``misses``
    count this instance's :meth:`lookup` outcomes."""

    SCHEMA_VERSION = SCHEMA_VERSION

    def __init__(
        self,
        path: Optional[str] = None,
        timeout: float = 30.0,
        *,
        read_only: bool = False,
        wal: bool = True,
    ) -> None:
        self.path = path or default_store_path()
        self.read_only = read_only
        if read_only:
            # mode=ro refuses to create the file and strips write
            # capability at the sqlite layer, so a reader can never take
            # a write lock against a live daemon's appends
            try:
                self._conn = sqlite3.connect(
                    f"file:{quote(self.path)}?mode=ro",
                    timeout=timeout,
                    uri=True,
                )
            except sqlite3.OperationalError as exc:
                raise StoreError(
                    f"cannot open {self.path} read-only: {exc}"
                )
        else:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._conn = sqlite3.connect(self.path, timeout=timeout)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(f"PRAGMA busy_timeout = {int(timeout * 1000)}")
        self.journal_mode: Optional[str] = None
        if read_only:
            # migrations are writes; a read-only open just refuses a
            # future schema instead of upgrading
            current = schema_version(self._conn)
            if current > SCHEMA_VERSION:
                self._conn.close()
                raise StoreError(
                    f"store schema version {current} is newer than this "
                    f"build supports ({SCHEMA_VERSION}); refusing to open"
                )
        else:
            if wal:
                self.journal_mode = enable_wal(self._conn)
            apply_migrations(self._conn)
        self.hits = 0
        self.misses = 0
        #: (holder, token) armed by :meth:`set_write_fence`; every append
        #: re-validates it against ``writer_lease`` inside the transaction
        self._fence: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def version(self) -> int:
        return schema_version(self._conn)

    # ----------------------------------------------------------- memoization

    cell_key = staticmethod(codec.cell_key)

    def lookup(self, key: str) -> Optional[dict]:
        """The latest live record for ``key``, or None.  Each call counts
        toward this instance's hit/miss telemetry."""
        row = self._conn.execute(
            "SELECT record FROM cells WHERE key = ? AND source = 'live' "
            "ORDER BY id DESC LIMIT 1",
            (key,),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(row["record"])

    def lookup_run(self, key: str):
        """Like :meth:`lookup` but rebuilt as a ProfileRun."""
        record = self.lookup(key)
        return None if record is None else codec.run_from_record(record)

    def has_live(self, key: str) -> bool:
        """Whether a live record exists for ``key`` — the memo-only
        admission check.  Does not touch hit/miss telemetry (nothing is
        served by this probe)."""
        row = self._conn.execute(
            "SELECT 1 FROM cells WHERE key = ? AND source = 'live' LIMIT 1",
            (key,),
        ).fetchone()
        return row is not None

    # --------------------------------------------------------------- writing

    def set_write_fence(self, holder: str, token: int) -> None:
        """Arm lease fencing: every later :meth:`record_collection` aborts
        with :class:`~repro.store.lease.LeaseLost` unless ``writer_lease``
        still names this (holder, token) at commit time."""
        self._fence = (str(holder), int(token))

    def clear_write_fence(self) -> None:
        self._fence = None

    def _check_fence(self) -> Optional[int]:
        """Validate the armed fence against the lease row (must be called
        inside an open IMMEDIATE transaction so the check and the append
        are atomic against a concurrent steal).  Returns the token to
        stamp on the run row (None when unfenced)."""
        if self._fence is None:
            return None
        from .lease import LeaseLost  # local import: lease imports schema

        holder, token = self._fence
        row = self._conn.execute(
            "SELECT holder, token FROM writer_lease WHERE id = 1"
        ).fetchone()
        current_holder = None if row is None else row["holder"]
        current_token = None if row is None else int(row["token"])
        if row is None or current_holder != holder or current_token != token:
            raise LeaseLost(
                f"writer lease lost: {holder!r} (token {token}) superseded "
                f"by {current_holder!r} (token {current_token}); append refused",
                holder=current_holder,
                token=current_token,
            )
        return token

    def record_collection(
        self,
        *,
        git_sha: str,
        scale: float,
        profiles: Sequence[str],
        suite: Sequence[Tuple[str, Dict[str, object]]],
        bench_schema: Optional[str] = None,
        seq: Optional[int] = None,
        source: str = "live",
        store_hits: int = 0,
        dispatch: Optional[str] = None,
        dispatch_block: Optional[dict] = None,
        cell_keys: Optional[Dict[str, str]] = None,
        novel: Iterable[dict] = (),
        failures: Iterable[dict] = (),
    ) -> int:
        """Append one collection — run row, novel cell records, failure
        annotations, flattened metric snapshots — in a single transaction.

        ``novel`` items: ``{"key", "benchmark", "profile", "params",
        "record"}``.  ``cell_keys`` maps ``"benchmark@profile"`` to the
        content key of *every* cell of the run (memo hits included), so
        :meth:`export_artifact` can resolve hit cells through the key
        index.  Returns the new run id.
        """
        if self.read_only:
            raise StoreError(
                f"{self.path} was opened read-only; collections cannot "
                "be recorded through this connection"
            )
        if bench_schema is None:
            from ..metrics.baseline import BENCH_SCHEMA

            bench_schema = BENCH_SCHEMA
        engine = dispatch or "classic"
        # BEGIN IMMEDIATE takes the write lock *before* the fence check,
        # so no competing writer can steal the lease between the check
        # and the commit — the fencing guarantee is transactional, not
        # advisory.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            lease_token = self._check_fence()
            cursor = self._conn.execute(
                "INSERT INTO runs (seq, git_sha, scale, bench_schema, profiles,"
                " suite, cell_keys, dispatch, source, store_hits, created_unix,"
                " lease_token)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    seq,
                    git_sha,
                    scale,
                    bench_schema,
                    _dumps(list(profiles)),
                    _dumps([[name, params] for name, params in suite]),
                    _dumps(cell_keys or {}),
                    None if dispatch_block is None else _dumps(dispatch_block),
                    source,
                    store_hits,
                    time.time(),
                    lease_token,
                ),
            )
            run_id = cursor.lastrowid
            for cell in novel:
                record = cell["record"]
                cell_cursor = self._conn.execute(
                    "INSERT INTO cells (run_id, key, benchmark, profile,"
                    " params, dispatch, source, record)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        cell["key"],
                        cell["benchmark"],
                        cell["profile"],
                        _dumps(cell.get("params") or {}),
                        engine,
                        source,
                        _dumps(record),
                    ),
                )
                self._flatten_metrics(cell_cursor.lastrowid, record)
            for index, cell in enumerate(failures):
                self._conn.execute(
                    "INSERT INTO failures (run_id, cell_index, benchmark,"
                    " profile, status, detail) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        cell.get("index", index),
                        cell.get("benchmark", ""),
                        cell.get("profile", ""),
                        cell.get("status", ""),
                        _dumps(cell),
                    ),
                )
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")
        return run_id

    def _flatten_metrics(self, cell_id: int, record: dict) -> None:
        snapshot = record.get("metrics") or {}
        rows = []
        for kind in ("counters", "gauges"):
            for name, value in (snapshot.get(kind) or {}).items():
                rows.append((cell_id, kind[:-1], name, float(value)))
        if rows:
            self._conn.executemany(
                "INSERT INTO metric_snapshots (cell_id, kind, name, value)"
                " VALUES (?, ?, ?, ?)",
                rows,
            )

    # ------------------------------------------------------- import / export

    def import_artifact(self, artifact: dict) -> int:
        """Backfill one point-in-time ``BENCH_<seq>.json`` artifact.  The
        cells land as partial ``imported`` records (trend/export fodder,
        never memoization), and :meth:`export_artifact` of the returned
        run reproduces the artifact byte for byte."""
        from ..metrics.baseline import BENCH_SCHEMA

        if artifact.get("schema") != BENCH_SCHEMA:
            raise StoreError(
                f"not a {BENCH_SCHEMA} artifact (schema={artifact.get('schema')!r})"
            )
        benchmarks = artifact.get("benchmarks", {})
        suite = [[name, entry["params"]] for name, entry in benchmarks.items()]
        novel = []
        cell_keys: Dict[str, str] = {}
        for name, entry in benchmarks.items():
            for pname, profile_entry in entry.get("profiles", {}).items():
                key = codec.cell_key(name, pname, entry["params"])
                cell_keys[f"{name}@{pname}"] = key
                novel.append(
                    {
                        "key": key,
                        "benchmark": name,
                        "profile": pname,
                        "params": entry["params"],
                        "record": codec.record_from_artifact_entry(
                            name, pname, profile_entry
                        ),
                    }
                )
        return self.record_collection(
            git_sha=artifact.get("git_sha", "unknown"),
            scale=artifact.get("scale", 1.0),
            profiles=artifact.get("profiles", []),
            suite=suite,
            bench_schema=artifact["schema"],
            seq=artifact.get("seq"),
            source="import",
            dispatch_block=artifact.get("dispatch"),
            cell_keys=cell_keys,
            novel=novel,
            failures=artifact.get("failures", ()),
        )

    def _run_row(self, run_id: int):
        run = self._conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if run is None:
            raise StoreError(f"no run {run_id} in {self.path}")
        return run

    def resolve_cells(self, run_id: int) -> Dict[Tuple[str, str], dict]:
        """Every ``(benchmark, profile) -> record`` of one run.  Cells
        recorded under the run resolve directly; memo-hit cells (recorded
        by an earlier run) resolve through the run's content keys — the
        same resolution :meth:`export_artifact` performs."""
        run = self._run_row(run_id)
        suite = [(name, params) for name, params in json.loads(run["suite"])]
        profiles = json.loads(run["profiles"])
        cell_keys = json.loads(run["cell_keys"])
        own: Dict[Tuple[str, str], dict] = {}
        for row in self._conn.execute(
            "SELECT benchmark, profile, record FROM cells WHERE run_id = ?"
            " ORDER BY id",
            (run_id,),
        ):
            own[(row["benchmark"], row["profile"])] = json.loads(row["record"])
        resolved: Dict[Tuple[str, str], dict] = {}
        for name, _params in suite:
            for pname in profiles:
                record = own.get((name, pname))
                if record is None:
                    key = cell_keys.get(f"{name}@{pname}")
                    if key is not None:
                        row = self._conn.execute(
                            "SELECT record FROM cells WHERE key = ?"
                            " ORDER BY id DESC LIMIT 1",
                            (key,),
                        ).fetchone()
                        record = None if row is None else json.loads(row["record"])
                if record is not None:
                    resolved[(name, pname)] = record
        return resolved

    def latest_run(
        self,
        git_sha: Optional[str] = None,
        exclude_sha: Optional[str] = None,
    ) -> Optional[int]:
        """Id of the most recent run, optionally pinned to one git SHA
        (``git_sha=``) or to history before a SHA (``exclude_sha=`` skips
        runs stamped with it) — the baseline-selection primitive behind
        ``repro-bench compare --store``."""
        query = "SELECT id FROM runs"
        clauses, args = [], []
        if git_sha is not None:
            clauses.append("git_sha = ?")
            args.append(git_sha)
        if exclude_sha is not None:
            clauses.append("git_sha != ?")
            args.append(exclude_sha)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC LIMIT 1"
        row = self._conn.execute(query, args).fetchone()
        return None if row is None else row["id"]

    def export_artifact(self, run_id: int) -> dict:
        """Reconstruct the BENCH artifact dict of one run.  Cells recorded
        under the run resolve directly; memo-hit cells (recorded by an
        earlier run) resolve through the run's content keys."""
        from ..metrics.baseline import build_artifact

        run = self._run_row(run_id)
        suite = [(name, params) for name, params in json.loads(run["suite"])]
        profiles = json.loads(run["profiles"])
        resolved = self.resolve_cells(run_id)
        entries: Dict[str, Dict[str, dict]] = {}
        for name, _params in suite:
            per: Dict[str, dict] = {}
            for pname in profiles:
                record = resolved.get((name, pname))
                if record is not None:
                    per[pname] = codec.entry_from_record(record)
            entries[name] = per
        artifact = build_artifact(
            suite, profiles, entries, scale=run["scale"], git_sha=run["git_sha"]
        )
        artifact["schema"] = run["bench_schema"]
        failures = [
            json.loads(row["detail"])
            for row in self._conn.execute(
                "SELECT detail FROM failures WHERE run_id = ? ORDER BY id",
                (run_id,),
            )
        ]
        if failures:
            artifact["failures"] = failures
        if run["dispatch"] is not None:
            artifact["dispatch"] = json.loads(run["dispatch"])
        if run["seq"] is not None:
            artifact["seq"] = run["seq"]
        return artifact

    # --------------------------------------------------------------- queries

    def runs(self) -> List[dict]:
        """Run metadata in append order."""
        out = []
        for row in self._conn.execute(
            "SELECT id, seq, git_sha, scale, source, store_hits, created_unix,"
            " (SELECT COUNT(*) FROM cells WHERE run_id = runs.id) AS cells,"
            " (SELECT COUNT(*) FROM failures WHERE run_id = runs.id) AS failures"
            " FROM runs ORDER BY id"
        ):
            out.append(dict(row))
        return out

    def counts(self) -> dict:
        return {
            "runs": self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0],
            "cells": self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0],
            "failures": self._conn.execute(
                "SELECT COUNT(*) FROM failures"
            ).fetchone()[0],
        }

    def trend(
        self,
        benchmark: Optional[str] = None,
        profile: Optional[str] = None,
        ratio_base: Optional[str] = None,
    ) -> List[dict]:
        """The cross-run runtime-ratio ladder: one row per (run, benchmark,
        profile) with cycles and the ratio against ``ratio_base`` (default
        the BENCH anchor, CLR 1.1) *within the same run* — exactly the
        trajectory the paper's graphs plot, but across history."""
        from ..metrics.baseline import RATIO_BASE

        base_profile = ratio_base or RATIO_BASE
        rows: List[dict] = []
        base_cycles: Dict[Tuple[int, str], float] = {}
        cells = self._conn.execute(
            "SELECT cells.run_id, runs.seq, runs.git_sha, cells.benchmark,"
            " cells.profile, cells.record FROM cells"
            " JOIN runs ON runs.id = cells.run_id ORDER BY cells.id"
        ).fetchall()
        for row in cells:
            if row["profile"] == base_profile:
                record = json.loads(row["record"])
                base_cycles[(row["run_id"], row["benchmark"])] = record[
                    "total_cycles"
                ]
        for row in cells:
            if benchmark is not None and row["benchmark"] != benchmark:
                continue
            if profile is not None and row["profile"] != profile:
                continue
            record = json.loads(row["record"])
            base = base_cycles.get((row["run_id"], row["benchmark"]))
            ratio = None
            if base and row["profile"] != base_profile:
                ratio = record["total_cycles"] / base
            rows.append(
                {
                    "run": row["run_id"],
                    "seq": row["seq"],
                    "git_sha": row["git_sha"],
                    "benchmark": row["benchmark"],
                    "profile": row["profile"],
                    "cycles": record["total_cycles"],
                    "ratio": ratio,
                }
            )
        return rows

    def metric_trend(
        self, name: str, benchmark: Optional[str] = None
    ) -> List[dict]:
        """Per-run history of one flattened counter/gauge."""
        query = (
            "SELECT cells.run_id, runs.seq, runs.git_sha, cells.benchmark,"
            " cells.profile, metric_snapshots.value FROM metric_snapshots"
            " JOIN cells ON cells.id = metric_snapshots.cell_id"
            " JOIN runs ON runs.id = cells.run_id"
            " WHERE metric_snapshots.name = ?"
        )
        args: List[object] = [name]
        if benchmark is not None:
            query += " AND cells.benchmark = ?"
            args.append(benchmark)
        query += " ORDER BY metric_snapshots.cell_id"
        return [
            {
                "run": row["run_id"],
                "seq": row["seq"],
                "git_sha": row["git_sha"],
                "benchmark": row["benchmark"],
                "profile": row["profile"],
                "value": row["value"],
            }
            for row in self._conn.execute(query, args)
        ]

    # ------------------------------------------------------------ attribution

    def attribute(
        self,
        base_run_id: int,
        new_run_id: int,
        tolerances: Optional[Dict[str, float]] = None,
        ratio_base: Optional[str] = None,
        movers: int = 5,
    ) -> dict:
        """Break the delta between two runs down to the responsible cells.

        For every ``(benchmark, profile)`` present in both runs the cell
        block carries the cycles / instructions deltas (relative to base)
        plus, for flagged cells, the largest-moving flattened
        counters/gauges from the recorded metric snapshots — the "what
        inside the cell moved" evidence.  The ratio block applies the
        BENCH gate's anchored-ratio lens (each profile's cycles over the
        anchor profile's, within the same run).  A cell or ratio is
        *flagged* when its relative delta exceeds the tolerance policy —
        by default the same one the regression gate uses (one-sided on
        raw metrics: only growth regresses; two-sided on ratios).
        """
        from ..metrics.baseline import DEFAULT_TOLERANCES, RATIO_BASE

        tol = dict(DEFAULT_TOLERANCES)
        if tolerances:
            tol.update(tolerances)
        anchor = ratio_base or RATIO_BASE
        base_run = self._run_row(base_run_id)
        new_run = self._run_row(new_run_id)
        base_cells = self.resolve_cells(base_run_id)
        new_cells = self.resolve_cells(new_run_id)
        shared = sorted(set(base_cells) & set(new_cells))

        def _rel(base_value, new_value):
            if not base_value:
                return None
            return (new_value - base_value) / base_value

        cells: List[dict] = []
        flagged_cells: List[str] = []
        for (bench, profile) in shared:
            base_record = base_cells[(bench, profile)]
            new_record = new_cells[(bench, profile)]
            block = {"benchmark": bench, "profile": profile, "deltas": {},
                     "flagged": False, "movers": []}
            for metric in ("total_cycles", "instructions",
                           "allocated_bytes", "gc_collections"):
                base_value = base_record.get(metric)
                new_value = new_record.get(metric)
                if base_value is None or new_value is None:
                    continue
                rel = _rel(base_value, new_value)
                block["deltas"][metric] = {
                    "base": base_value,
                    "new": new_value,
                    "delta": new_value - base_value,
                    "rel": rel,
                }
                # the gate's one-sided rule: only growth regresses
                bound = tol.get(
                    "cycles" if metric == "total_cycles" else metric,
                    tol.get("instructions", 0.02),
                )
                if rel is not None and metric in ("total_cycles",
                                                  "instructions"):
                    if rel > bound:
                        block["deltas"][metric]["flagged"] = True
                        block["flagged"] = True
            if block["flagged"]:
                flagged_cells.append(f"{bench}@{profile}")
                block["movers"] = self._metric_movers(
                    base_record, new_record, movers
                )
            cells.append(block)

        ratios: List[dict] = []
        benches = sorted({bench for bench, _p in shared})
        for bench in benches:
            base_anchor = base_cells.get((bench, anchor))
            new_anchor = new_cells.get((bench, anchor))
            if base_anchor is None or new_anchor is None:
                continue
            for (cell_bench, profile) in shared:
                if cell_bench != bench or profile == anchor:
                    continue
                base_ratio = (
                    base_cells[(bench, profile)]["total_cycles"]
                    / base_anchor["total_cycles"]
                )
                new_ratio = (
                    new_cells[(bench, profile)]["total_cycles"]
                    / new_anchor["total_cycles"]
                )
                rel = _rel(base_ratio, new_ratio)
                entry = {
                    "benchmark": bench,
                    "profile": profile,
                    "base_ratio": base_ratio,
                    "new_ratio": new_ratio,
                    "rel": rel,
                    # two-sided: a ratio moving either way is a drift
                    "flagged": rel is not None and abs(rel) > tol["ratio"],
                }
                ratios.append(entry)

        return {
            "base_run": base_run_id,
            "new_run": new_run_id,
            "base_sha": base_run["git_sha"],
            "new_sha": new_run["git_sha"],
            "ratio_base": anchor,
            "tolerances": tol,
            "cells": cells,
            "ratios": ratios,
            "flagged_cells": flagged_cells,
            "flagged_ratios": [
                f"{r['benchmark']}@{r['profile']}" for r in ratios
                if r["flagged"]
            ],
            "only_in_base": sorted(
                f"{b}@{p}" for b, p in set(base_cells) - set(new_cells)
            ),
            "only_in_new": sorted(
                f"{b}@{p}" for b, p in set(new_cells) - set(base_cells)
            ),
        }

    @staticmethod
    def _metric_movers(base_record: dict, new_record: dict, limit: int) -> List[dict]:
        """The flagged cell's largest relative counter/gauge moves, base
        vs new — names the subsystem (gc, jit, dispatch...) that moved."""
        base_snapshot = base_record.get("metrics") or {}
        new_snapshot = new_record.get("metrics") or {}
        moves: List[dict] = []
        for kind in ("counters", "gauges"):
            base_values = base_snapshot.get(kind) or {}
            new_values = new_snapshot.get(kind) or {}
            for name in sorted(set(base_values) | set(new_values)):
                base_value = base_values.get(name, 0)
                new_value = new_values.get(name, 0)
                if base_value == new_value:
                    continue
                rel = (
                    (new_value - base_value) / base_value
                    if base_value else None
                )
                moves.append(
                    {
                        "metric": name,
                        "kind": kind[:-1],
                        "base": base_value,
                        "new": new_value,
                        "delta": new_value - base_value,
                        "rel": rel,
                    }
                )
        moves.sort(
            key=lambda m: (
                float("inf") if m["rel"] is None else abs(m["rel"])
            ),
            reverse=True,
        )
        return moves[:limit]


class StoreReadPool:
    """A small pool of read-only store connections over one database.

    sqlite3 connections are thread-bound, so the daemon cannot share one
    store across its HTTP handlers and executor threads; before this
    pool it opened (and migrated) a fresh connection per ``/v1/trends``
    or ``/v1/stats`` request.  The pool keeps up to ``size`` read-only
    :class:`ExperimentStore` instances warm and hands them out under a
    context manager::

        pool = StoreReadPool(path, size=4)
        with pool.connection() as store:
            rows = store.trend()

    Checked-out connections beyond ``size`` are opened fresh and closed
    on return instead of pooled, so a burst of readers degrades to the
    old per-request behavior rather than blocking.  On filesystems where
    a read-only WAL open is refused the pool falls back to normal
    read-write opens (reads only ever flow through it, so the contract
    holds either way).  ``created``/``reused`` counters make pooling
    observable in tests and ``/v1/stats``.
    """

    def __init__(self, path: str, size: int = 4, timeout: float = 30.0) -> None:
        self.path = path
        self.size = max(1, int(size))
        self.timeout = timeout
        self.created = 0
        self.reused = 0
        self._idle: List[ExperimentStore] = []
        self._lock = threading.Lock()
        self._closed = False

    def _open(self) -> ExperimentStore:
        self.created += 1
        try:
            return ExperimentStore(
                self.path, timeout=self.timeout, read_only=True
            )
        except StoreError:
            return ExperimentStore(self.path, timeout=self.timeout)

    def acquire(self) -> ExperimentStore:
        with self._lock:
            if self._closed:
                raise StoreError(f"read pool for {self.path} is closed")
            if self._idle:
                self.reused += 1
                return self._idle.pop()
        return self._open()

    def release(self, store: ExperimentStore) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.size:
                self._idle.append(store)
                return
        store.close()

    @contextmanager
    def connection(self):
        store = self.acquire()
        try:
            yield store
        finally:
            self.release(store)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for store in idle:
            store.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": self.size,
                "idle": len(self._idle),
                "created": self.created,
                "reused": self.reused,
            }
