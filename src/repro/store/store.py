"""The append-only, schema-versioned SQLite experiment store.

One database records every cell result across history: ``runs`` (one row
per collection/submission/import), ``cells`` (one row per *executed or
imported* cell result, content-addressed by :func:`repro.store.cell_key`),
``failures`` (contained CellFailure annotations), and
``metric_snapshots`` (counters/gauges flattened for SQL trend queries).
Rows are never updated or deleted — the schema's triggers abort any
attempt — so the store doubles as the cross-PR history substrate behind
trend queries like the runtime-ratio ladder.

Memoization contract: :meth:`ExperimentStore.lookup` returns the latest
*live* record for a key (imported/backfilled records are visible to
exports and trends but are never served as results — they lack the
section values and stdout a real run carries).  A served record rebuilds
a :class:`~repro.harness.results.ProfileRun` whose every artifact-visible
number is byte-identical to re-executing the cell, which is what lets the
service answer repeat requests with zero compiles and zero guest cycles.

Concurrency/crash posture: plain SQLite transactions with a busy
timeout.  Writers append whole collections in one transaction, so a
process killed mid-commit leaves the database readable at the prior
state; interleaved writers serialize on the database lock.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import codec
from .schema import SCHEMA_VERSION, StoreError, apply_migrations, schema_version

#: environment override for the store location (CLI flags still win)
STORE_PATH_ENV = "REPRO_STORE"

#: default store path, relative to the current working directory
DEFAULT_STORE_PATH = "experiments.sqlite"


def default_store_path() -> str:
    return os.environ.get(STORE_PATH_ENV) or DEFAULT_STORE_PATH


def _dumps(value) -> str:
    """Canonical JSON for stored columns (compact, key-sorted)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class ExperimentStore:
    """Append-only experiment history + whole-cell memoization over one
    SQLite file.  Open applies pending migrations; ``hits``/``misses``
    count this instance's :meth:`lookup` outcomes."""

    SCHEMA_VERSION = SCHEMA_VERSION

    def __init__(self, path: Optional[str] = None, timeout: float = 30.0) -> None:
        self.path = path or default_store_path()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=timeout)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(f"PRAGMA busy_timeout = {int(timeout * 1000)}")
        apply_migrations(self._conn)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def version(self) -> int:
        return schema_version(self._conn)

    # ----------------------------------------------------------- memoization

    cell_key = staticmethod(codec.cell_key)

    def lookup(self, key: str) -> Optional[dict]:
        """The latest live record for ``key``, or None.  Each call counts
        toward this instance's hit/miss telemetry."""
        row = self._conn.execute(
            "SELECT record FROM cells WHERE key = ? AND source = 'live' "
            "ORDER BY id DESC LIMIT 1",
            (key,),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(row["record"])

    def lookup_run(self, key: str):
        """Like :meth:`lookup` but rebuilt as a ProfileRun."""
        record = self.lookup(key)
        return None if record is None else codec.run_from_record(record)

    # --------------------------------------------------------------- writing

    def record_collection(
        self,
        *,
        git_sha: str,
        scale: float,
        profiles: Sequence[str],
        suite: Sequence[Tuple[str, Dict[str, object]]],
        bench_schema: Optional[str] = None,
        seq: Optional[int] = None,
        source: str = "live",
        store_hits: int = 0,
        dispatch: Optional[str] = None,
        dispatch_block: Optional[dict] = None,
        cell_keys: Optional[Dict[str, str]] = None,
        novel: Iterable[dict] = (),
        failures: Iterable[dict] = (),
    ) -> int:
        """Append one collection — run row, novel cell records, failure
        annotations, flattened metric snapshots — in a single transaction.

        ``novel`` items: ``{"key", "benchmark", "profile", "params",
        "record"}``.  ``cell_keys`` maps ``"benchmark@profile"`` to the
        content key of *every* cell of the run (memo hits included), so
        :meth:`export_artifact` can resolve hit cells through the key
        index.  Returns the new run id.
        """
        if bench_schema is None:
            from ..metrics.baseline import BENCH_SCHEMA

            bench_schema = BENCH_SCHEMA
        engine = dispatch or "classic"
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (seq, git_sha, scale, bench_schema, profiles,"
                " suite, cell_keys, dispatch, source, store_hits, created_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    seq,
                    git_sha,
                    scale,
                    bench_schema,
                    _dumps(list(profiles)),
                    _dumps([[name, params] for name, params in suite]),
                    _dumps(cell_keys or {}),
                    None if dispatch_block is None else _dumps(dispatch_block),
                    source,
                    store_hits,
                    time.time(),
                ),
            )
            run_id = cursor.lastrowid
            for cell in novel:
                record = cell["record"]
                cell_cursor = self._conn.execute(
                    "INSERT INTO cells (run_id, key, benchmark, profile,"
                    " params, dispatch, source, record)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        cell["key"],
                        cell["benchmark"],
                        cell["profile"],
                        _dumps(cell.get("params") or {}),
                        engine,
                        source,
                        _dumps(record),
                    ),
                )
                self._flatten_metrics(cell_cursor.lastrowid, record)
            for index, cell in enumerate(failures):
                self._conn.execute(
                    "INSERT INTO failures (run_id, cell_index, benchmark,"
                    " profile, status, detail) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        cell.get("index", index),
                        cell.get("benchmark", ""),
                        cell.get("profile", ""),
                        cell.get("status", ""),
                        _dumps(cell),
                    ),
                )
        return run_id

    def _flatten_metrics(self, cell_id: int, record: dict) -> None:
        snapshot = record.get("metrics") or {}
        rows = []
        for kind in ("counters", "gauges"):
            for name, value in (snapshot.get(kind) or {}).items():
                rows.append((cell_id, kind[:-1], name, float(value)))
        if rows:
            self._conn.executemany(
                "INSERT INTO metric_snapshots (cell_id, kind, name, value)"
                " VALUES (?, ?, ?, ?)",
                rows,
            )

    # ------------------------------------------------------- import / export

    def import_artifact(self, artifact: dict) -> int:
        """Backfill one point-in-time ``BENCH_<seq>.json`` artifact.  The
        cells land as partial ``imported`` records (trend/export fodder,
        never memoization), and :meth:`export_artifact` of the returned
        run reproduces the artifact byte for byte."""
        from ..metrics.baseline import BENCH_SCHEMA

        if artifact.get("schema") != BENCH_SCHEMA:
            raise StoreError(
                f"not a {BENCH_SCHEMA} artifact (schema={artifact.get('schema')!r})"
            )
        benchmarks = artifact.get("benchmarks", {})
        suite = [[name, entry["params"]] for name, entry in benchmarks.items()]
        novel = []
        cell_keys: Dict[str, str] = {}
        for name, entry in benchmarks.items():
            for pname, profile_entry in entry.get("profiles", {}).items():
                key = codec.cell_key(name, pname, entry["params"])
                cell_keys[f"{name}@{pname}"] = key
                novel.append(
                    {
                        "key": key,
                        "benchmark": name,
                        "profile": pname,
                        "params": entry["params"],
                        "record": codec.record_from_artifact_entry(
                            name, pname, profile_entry
                        ),
                    }
                )
        return self.record_collection(
            git_sha=artifact.get("git_sha", "unknown"),
            scale=artifact.get("scale", 1.0),
            profiles=artifact.get("profiles", []),
            suite=suite,
            bench_schema=artifact["schema"],
            seq=artifact.get("seq"),
            source="import",
            dispatch_block=artifact.get("dispatch"),
            cell_keys=cell_keys,
            novel=novel,
            failures=artifact.get("failures", ()),
        )

    def export_artifact(self, run_id: int) -> dict:
        """Reconstruct the BENCH artifact dict of one run.  Cells recorded
        under the run resolve directly; memo-hit cells (recorded by an
        earlier run) resolve through the run's content keys."""
        from ..metrics.baseline import build_artifact

        run = self._conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if run is None:
            raise StoreError(f"no run {run_id} in {self.path}")
        suite = [(name, params) for name, params in json.loads(run["suite"])]
        profiles = json.loads(run["profiles"])
        cell_keys = json.loads(run["cell_keys"])
        own: Dict[Tuple[str, str], dict] = {}
        for row in self._conn.execute(
            "SELECT benchmark, profile, record FROM cells WHERE run_id = ?"
            " ORDER BY id",
            (run_id,),
        ):
            own[(row["benchmark"], row["profile"])] = json.loads(row["record"])
        entries: Dict[str, Dict[str, dict]] = {}
        for name, _params in suite:
            per: Dict[str, dict] = {}
            for pname in profiles:
                record = own.get((name, pname))
                if record is None:
                    key = cell_keys.get(f"{name}@{pname}")
                    if key is not None:
                        row = self._conn.execute(
                            "SELECT record FROM cells WHERE key = ?"
                            " ORDER BY id DESC LIMIT 1",
                            (key,),
                        ).fetchone()
                        record = None if row is None else json.loads(row["record"])
                if record is not None:
                    per[pname] = codec.entry_from_record(record)
            entries[name] = per
        artifact = build_artifact(
            suite, profiles, entries, scale=run["scale"], git_sha=run["git_sha"]
        )
        artifact["schema"] = run["bench_schema"]
        failures = [
            json.loads(row["detail"])
            for row in self._conn.execute(
                "SELECT detail FROM failures WHERE run_id = ? ORDER BY id",
                (run_id,),
            )
        ]
        if failures:
            artifact["failures"] = failures
        if run["dispatch"] is not None:
            artifact["dispatch"] = json.loads(run["dispatch"])
        if run["seq"] is not None:
            artifact["seq"] = run["seq"]
        return artifact

    # --------------------------------------------------------------- queries

    def runs(self) -> List[dict]:
        """Run metadata in append order."""
        out = []
        for row in self._conn.execute(
            "SELECT id, seq, git_sha, scale, source, store_hits, created_unix,"
            " (SELECT COUNT(*) FROM cells WHERE run_id = runs.id) AS cells,"
            " (SELECT COUNT(*) FROM failures WHERE run_id = runs.id) AS failures"
            " FROM runs ORDER BY id"
        ):
            out.append(dict(row))
        return out

    def counts(self) -> dict:
        return {
            "runs": self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0],
            "cells": self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0],
            "failures": self._conn.execute(
                "SELECT COUNT(*) FROM failures"
            ).fetchone()[0],
        }

    def trend(
        self,
        benchmark: Optional[str] = None,
        profile: Optional[str] = None,
        ratio_base: Optional[str] = None,
    ) -> List[dict]:
        """The cross-run runtime-ratio ladder: one row per (run, benchmark,
        profile) with cycles and the ratio against ``ratio_base`` (default
        the BENCH anchor, CLR 1.1) *within the same run* — exactly the
        trajectory the paper's graphs plot, but across history."""
        from ..metrics.baseline import RATIO_BASE

        base_profile = ratio_base or RATIO_BASE
        rows: List[dict] = []
        base_cycles: Dict[Tuple[int, str], float] = {}
        cells = self._conn.execute(
            "SELECT cells.run_id, runs.seq, runs.git_sha, cells.benchmark,"
            " cells.profile, cells.record FROM cells"
            " JOIN runs ON runs.id = cells.run_id ORDER BY cells.id"
        ).fetchall()
        for row in cells:
            if row["profile"] == base_profile:
                record = json.loads(row["record"])
                base_cycles[(row["run_id"], row["benchmark"])] = record[
                    "total_cycles"
                ]
        for row in cells:
            if benchmark is not None and row["benchmark"] != benchmark:
                continue
            if profile is not None and row["profile"] != profile:
                continue
            record = json.loads(row["record"])
            base = base_cycles.get((row["run_id"], row["benchmark"]))
            ratio = None
            if base and row["profile"] != base_profile:
                ratio = record["total_cycles"] / base
            rows.append(
                {
                    "run": row["run_id"],
                    "seq": row["seq"],
                    "git_sha": row["git_sha"],
                    "benchmark": row["benchmark"],
                    "profile": row["profile"],
                    "cycles": record["total_cycles"],
                    "ratio": ratio,
                }
            )
        return rows

    def metric_trend(
        self, name: str, benchmark: Optional[str] = None
    ) -> List[dict]:
        """Per-run history of one flattened counter/gauge."""
        query = (
            "SELECT cells.run_id, runs.seq, runs.git_sha, cells.benchmark,"
            " cells.profile, metric_snapshots.value FROM metric_snapshots"
            " JOIN cells ON cells.id = metric_snapshots.cell_id"
            " JOIN runs ON runs.id = cells.run_id"
            " WHERE metric_snapshots.name = ?"
        )
        args: List[object] = [name]
        if benchmark is not None:
            query += " AND cells.benchmark = ?"
            args.append(benchmark)
        query += " ORDER BY metric_snapshots.cell_id"
        return [
            {
                "run": row["run_id"],
                "seq": row["seq"],
                "git_sha": row["git_sha"],
                "benchmark": row["benchmark"],
                "profile": row["profile"],
                "value": row["value"],
            }
            for row in self._conn.execute(query, args)
        ]
