"""Content-addressed cell keys and the run-record wire codec.

Two translations live here:

* :func:`cell_key` — the memoization key of one experiment cell, a
  SHA-256 over ``(COMPILER_VERSION, profile, benchmark, canonical
  overrides, dispatch, seed)``.  Same idiom as the PR 4 compile cache:
  bumping the compiler version orphans every old entry, and override
  values are canonicalized through :func:`repro.harness.runner.compile_key`
  so ``1``, ``1.0`` and ``True`` cannot collide.  ``dispatch`` is
  normalized (``None`` keys as ``classic``) and ``seed`` reserves a slot
  for seeded workloads; harness cells pass ``None``.
* :func:`run_to_record` / :func:`run_from_record` — a JSON-exact
  round-trip of a :class:`~repro.harness.results.ProfileRun` (minus the
  live ``observation`` object).  Python's JSON float round-trip is exact
  for finite doubles, so a record served back from the store rebuilds a
  run that is **byte-identical** in every artifact it enters — that is
  the daemon-vs-direct identity invariant.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from ..harness.results import ProfileRun, SectionResult

#: record layout tag, stored inside every cell record
RECORD_SCHEMA = "repro.store.cell/1"


def cell_key(
    benchmark: str,
    profile: str,
    overrides: Optional[Dict[str, object]] = None,
    dispatch: Optional[str] = None,
    seed: Optional[int] = None,
) -> str:
    """The content-addressed memoization key of one experiment cell."""
    from ..harness.runner import compile_key
    from ..lang.compiler import COMPILER_VERSION

    _name, canon = compile_key(benchmark, overrides)
    digest = hashlib.sha256()
    for part in (
        COMPILER_VERSION,
        profile,
        benchmark,
        repr(canon),
        dispatch or "classic",
        repr(seed),
    ):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


# ------------------------------------------------------------- run <-> record


def run_to_record(run: ProfileRun) -> dict:
    """JSON-ready serialization of a ProfileRun (observation excluded —
    it is a live object, and store-served runs are never profiled)."""
    return {
        "schema": RECORD_SCHEMA,
        "benchmark": run.benchmark,
        "profile": run.profile,
        "clock_hz": run.clock_hz,
        "total_cycles": run.total_cycles,
        "allocated_bytes": run.allocated_bytes,
        "instructions": run.instructions,
        "gc_collections": run.gc_collections,
        "gc_live_objects": run.gc_live_objects,
        "stdout": list(run.stdout),
        "metrics": run.metrics,
        "faults": run.faults,
        "sections": {
            name: {
                "cycles": section.cycles,
                "ops": section.ops,
                "flops": section.flops,
                "ops_per_sec": section.ops_per_sec,
                "mflops": section.mflops,
                "seconds": section.seconds,
                "results": list(section.results),
            }
            for name, section in run.sections.items()
        },
    }


def run_from_record(record: dict) -> ProfileRun:
    """Rebuild the ProfileRun a record serialized.  Raises KeyError on a
    partial (imported) record — callers must only memoize live records."""
    run = ProfileRun(
        benchmark=record["benchmark"],
        profile=record["profile"],
        clock_hz=record["clock_hz"],
        total_cycles=record["total_cycles"],
        stdout=list(record["stdout"]),
        allocated_bytes=record["allocated_bytes"],
        instructions=record["instructions"],
        gc_collections=record["gc_collections"],
        gc_live_objects=record["gc_live_objects"],
        observation=None,
        metrics=record["metrics"],
        faults=record["faults"],
    )
    for name, section in record["sections"].items():
        run.sections[name] = SectionResult(
            section=name,
            cycles=section["cycles"],
            ops=section["ops"],
            flops=section["flops"],
            ops_per_sec=section["ops_per_sec"],
            mflops=section["mflops"],
            seconds=section["seconds"],
            results=list(section["results"]),
        )
    return run


def entry_from_record(record: dict) -> dict:
    """The BENCH-artifact per-profile entry a record yields — must match
    :func:`repro.metrics.baseline.entry_from_run` field for field (a
    test asserts the two agree on live records)."""
    return {
        "cycles": record["total_cycles"],
        "instructions": record["instructions"],
        "allocated_bytes": record["allocated_bytes"],
        "gc_collections": record["gc_collections"],
        "sections": {
            name: {
                "cycles": section["cycles"],
                "ops": section["ops"],
                "flops": section["flops"],
            }
            for name, section in record["sections"].items()
        },
        "metrics": record["metrics"],
    }


def record_from_artifact_entry(benchmark: str, profile: str, entry: dict) -> dict:
    """A *partial* record backfilled from a point-in-time BENCH artifact:
    everything the artifact carries, nothing it does not (no stdout, no
    section result values, no clock).  Marked ``imported`` so the
    memoization path never serves it — only exports and trend queries do.
    """
    return {
        "schema": RECORD_SCHEMA,
        "imported": True,
        "benchmark": benchmark,
        "profile": profile,
        "total_cycles": entry["cycles"],
        "instructions": entry["instructions"],
        "allocated_bytes": entry["allocated_bytes"],
        "gc_collections": entry["gc_collections"],
        "metrics": entry["metrics"],
        "sections": {
            name: {
                "cycles": section["cycles"],
                "ops": section["ops"],
                "flops": section["flops"],
            }
            for name, section in entry["sections"].items()
        },
    }
