"""``repro-store`` — inspect, backfill and export the experiment store.

::

    repro-store [--db DB] import BENCH_1.json [BENCH_2.json ...]
    repro-store [--db DB] export (--run ID | --seq N) [--out FILE]
    repro-store [--db DB] runs
    repro-store [--db DB] trends [--benchmark B] [--profile P]
                [--ratio-base R] [--metric M]
    repro-store [--db DB] report [--benchmark B] [--profile P]
                [--attribute BASE NEW] [--json]

``import`` backfills point-in-time ``BENCH_<seq>.json`` artifacts into
the append-only store (as ``imported`` records — trend and export
fodder, never served by the memo cache).  ``export`` reconstructs a
run's artifact byte-identically to what ``repro-bench run`` wrote, so
BENCH JSON is now an interchange format, not the substrate.  ``report``
renders the cross-run anchored-ratio history as sparkline trend ladders
(one per benchmark x profile) and, with ``--attribute BASE NEW``, breaks
the delta between two runs down per profile x benchmark x metric
snapshot to name the cells responsible for a flagged regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .schema import StoreError
from .store import ExperimentStore


def _dump(payload: dict) -> str:
    # the exact repro.metrics.baseline.write_artifact framing, so
    # export-after-import round-trips byte for byte
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def _open_for_read(db) -> ExperimentStore:
    """A read-only store when the database exists — so ``runs``/``trends``
    /``report`` against a live daemon's WAL store never take a write lock
    or attempt a migration.  Falls back to a normal open (which creates
    the file) for the empty-store listing paths."""
    try:
        return ExperimentStore(db, read_only=True)
    except StoreError:
        return ExperimentStore(db)


def cmd_import(args) -> int:
    with ExperimentStore(args.db) as store:
        for path in args.files:
            try:
                with open(path) as handle:
                    artifact = json.load(handle)
                run_id = store.import_artifact(artifact)
            except (OSError, ValueError, KeyError, StoreError) as exc:
                raise SystemExit(f"repro-store: {path}: {exc}")
            print(f"repro-store: imported {path} as run {run_id}")
    return 0


def cmd_export(args) -> int:
    with _open_for_read(args.db) as store:
        run_id = args.run
        if run_id is None:
            matches = [r["id"] for r in store.runs() if r["seq"] == args.seq]
            if not matches:
                raise SystemExit(f"repro-store: no run with seq {args.seq}")
            run_id = matches[-1]
        try:
            artifact = store.export_artifact(run_id)
        except StoreError as exc:
            raise SystemExit(f"repro-store: {exc}")
    blob = _dump(artifact)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(blob)
        print(f"repro-store: wrote {args.out}", file=sys.stderr)
    else:
        print(blob, end="")
    return 0


def cmd_runs(args) -> int:
    with _open_for_read(args.db) as store:
        rows = store.runs()
    print(f"{'run':>4} {'seq':>4} {'git':<12} {'scale':>6} {'source':<7} "
          f"{'cells':>5} {'hits':>5} {'fails':>5}")
    for row in rows:
        seq = "-" if row["seq"] is None else row["seq"]
        print(f"{row['id']:>4} {seq:>4} {row['git_sha'][:12]:<12} "
              f"{row['scale']:>6g} {row['source']:<7} {row['cells']:>5} "
              f"{row['store_hits']:>5} {row['failures']:>5}")
    if not rows:
        print("repro-store: empty store", file=sys.stderr)
    return 0


def cmd_trends(args) -> int:
    with _open_for_read(args.db) as store:
        if args.metric:
            rows = store.metric_trend(args.metric, benchmark=args.benchmark)
        else:
            rows = store.trend(
                benchmark=args.benchmark,
                profile=args.profile,
                ratio_base=args.ratio_base,
            )
    if args.json:
        print(_dump({"rows": rows}), end="")
        return 0
    for row in rows:
        if "value" in row:
            tail = f"value {row['value']:g}"
        else:
            ratio = row["ratio"]
            tail = f"{row['cycles']} cycles"
            if ratio is not None:
                tail += f" ratio {ratio:.3f}"
        print(f"run {row['run']} ({row['git_sha'][:12]}) "
              f"{row['benchmark']}/{row['profile']}: {tail}")
    if not rows:
        print("repro-store: no trend rows", file=sys.stderr)
    return 0


#: eight-level block ramp for the text trend ladders
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float]) -> str:
    """Values as one block character each, min..max normalized; a flat
    series renders mid-ramp so 'no movement' is visually distinct from
    'bottomed out'."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return SPARK_BLOCKS[3] * len(values)
    span = high - low
    return "".join(
        SPARK_BLOCKS[
            min(len(SPARK_BLOCKS) - 1,
                int((value - low) / span * len(SPARK_BLOCKS)))
        ]
        for value in values
    )


def _render_report(rows: List[dict], metric: str) -> List[str]:
    """Sparkline trend ladders: one line per (benchmark, profile) series,
    in run order, with first/last values and the relative move."""
    series: dict = {}
    for row in rows:
        value = row.get("ratio") if metric == "ratio" else row.get("cycles")
        if value is None:
            continue
        series.setdefault((row["benchmark"], row["profile"]), []).append(
            (row["run"], value)
        )
    lines = []
    for (bench, profile), points in sorted(series.items()):
        points.sort()
        values = [value for _run, value in points]
        first, last = values[0], values[-1]
        move = (last - first) / first if first else 0.0
        unit = "" if metric == "ratio" else " cycles"
        lines.append(
            f"{bench + '/' + profile:<28} {sparkline(values)} "
            f"{first:>12g} -> {last:>12g}{unit} "
            f"({move:+.1%} over {len(values)} runs)"
        )
    return lines


def _render_attribution(attribution: dict) -> List[str]:
    lines = [
        f"attribution: run {attribution['base_run']} "
        f"({attribution['base_sha'][:12]}) -> run {attribution['new_run']} "
        f"({attribution['new_sha'][:12]})"
    ]
    flagged = {cell for cell in attribution["flagged_cells"]}
    for block in attribution["cells"]:
        name = f"{block['benchmark']}@{block['profile']}"
        if name not in flagged:
            continue
        lines.append(f"  REGRESSED {name}:")
        for metric, delta in sorted(block["deltas"].items()):
            if not delta.get("flagged"):
                continue
            lines.append(
                f"    {metric}: {delta['base']:g} -> {delta['new']:g} "
                f"({delta['rel']:+.2%})"
            )
        for mover in block["movers"]:
            rel = "new" if mover["rel"] is None else f"{mover['rel']:+.2%}"
            lines.append(
                f"    mover {mover['metric']}: {mover['base']:g} -> "
                f"{mover['new']:g} ({rel})"
            )
    for entry in attribution["ratios"]:
        if entry["flagged"]:
            lines.append(
                f"  RATIO DRIFT {entry['benchmark']}@{entry['profile']}: "
                f"{entry['base_ratio']:.3f} -> {entry['new_ratio']:.3f} "
                f"({entry['rel']:+.2%} vs {attribution['ratio_base']})"
            )
    if not flagged and not attribution["flagged_ratios"]:
        lines.append("  no cell exceeds the tolerance policy")
    for key in ("only_in_base", "only_in_new"):
        if attribution[key]:
            lines.append(f"  {key.replace('_', ' ')}: "
                         + ", ".join(attribution[key]))
    return lines


def cmd_report(args) -> int:
    with _open_for_read(args.db) as store:
        rows = store.trend(
            benchmark=args.benchmark,
            profile=args.profile,
            ratio_base=args.ratio_base,
        )
        attribution = None
        if args.attribute:
            base_id, new_id = args.attribute
            try:
                attribution = store.attribute(
                    base_id, new_id, ratio_base=args.ratio_base
                )
            except StoreError as exc:
                raise SystemExit(f"repro-store: {exc}")
    if args.json:
        payload: dict = {"rows": rows}
        if attribution is not None:
            payload["attribution"] = attribution
        print(_dump(payload), end="")
        return 0
    metric = "ratio" if not args.cycles else "cycles"
    lines = _render_report(rows, metric)
    header = ("anchored-ratio trend" if metric == "ratio"
              else "cycles trend")
    if lines:
        print(f"{header} ({len(lines)} series):")
        for line in lines:
            print(f"  {line}")
    else:
        print("repro-store: no trend series", file=sys.stderr)
    if attribution is not None:
        for line in _render_attribution(attribution):
            print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="SQLite experiment store: backfill, export, trends",
    )
    parser.add_argument("--db", default=None, metavar="DB",
                        help="store path (default: $REPRO_STORE or "
                             "experiments.sqlite)")
    sub = parser.add_subparsers(dest="command", required=True)

    imp = sub.add_parser("import", help="backfill BENCH_*.json artifacts")
    imp.add_argument("files", nargs="+", metavar="BENCH.json")
    imp.set_defaults(func=cmd_import)

    exp = sub.add_parser("export", help="reconstruct one run's BENCH artifact")
    group = exp.add_mutually_exclusive_group(required=True)
    group.add_argument("--run", type=int, default=None, help="run id")
    group.add_argument("--seq", type=int, default=None,
                       help="artifact sequence number (latest run wins)")
    exp.add_argument("--out", default=None, metavar="FILE")
    exp.set_defaults(func=cmd_export)

    runs = sub.add_parser("runs", help="list recorded runs")
    runs.set_defaults(func=cmd_runs)

    trends = sub.add_parser("trends", help="cross-run ratio ladder / metric history")
    trends.add_argument("--benchmark", default=None)
    trends.add_argument("--profile", default=None)
    trends.add_argument("--ratio-base", default=None,
                        help="ratio anchor profile (default: clr-1.1)")
    trends.add_argument("--metric", default=None,
                        help="flattened counter/gauge name instead of cycles")
    trends.add_argument("--json", action="store_true")
    trends.set_defaults(func=cmd_trends)

    report = sub.add_parser(
        "report",
        help="sparkline trend ladders + two-run regression attribution",
    )
    report.add_argument("--benchmark", default=None)
    report.add_argument("--profile", default=None)
    report.add_argument("--ratio-base", default=None,
                        help="ratio anchor profile (default: clr-1.1)")
    report.add_argument("--cycles", action="store_true",
                        help="ladder raw cycles instead of anchored ratios")
    report.add_argument("--attribute", nargs=2, type=int, default=None,
                        metavar=("BASE", "NEW"),
                        help="attribute the BASE->NEW run delta to "
                             "responsible cells")
    report.add_argument("--json", action="store_true")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
