"""Expiring writer lease with fencing tokens, stored in the SQLite store.

Two daemons pointed at one store must never interleave appends.  The
coordination primitive is a single ``writer_lease`` row: at most one
holder at a time, a TTL so a SIGKILLed holder's lease expires instead of
wedging the store forever, and a monotonically increasing **fencing
token** that changes on every ownership change.  A writer records its
token alongside every append, and :meth:`ExperimentStore.record_collection`
re-checks the token *inside* the append transaction (``BEGIN IMMEDIATE``,
so no steal can commit between the check and the append) — a writer that
lost the lease mid-job gets :class:`LeaseLost` instead of a torn append.

All lease transitions use ``BEGIN IMMEDIATE`` so acquire/renew/steal are
serialized by SQLite's write lock; there is no window where two daemons
both believe they acquired.  The loser of an acquisition race retries
with :meth:`backoff_delay` — deterministic jittered exponential backoff
(the jitter is a hash of holder id and attempt, so two daemons desynchronize
without any global randomness).
"""

from __future__ import annotations

import hashlib
import sqlite3
import time
from pathlib import Path
from typing import Optional

from .schema import StoreError, apply_migrations

#: default lease lifetime; holders renew at ttl/3 so two missed renewals
#: still leave headroom before expiry
DEFAULT_TTL = 15.0


class LeaseLost(StoreError):
    """A fenced append was refused: the writer's token is stale."""

    def __init__(self, message: str, holder: Optional[str] = None,
                 token: Optional[int] = None):
        super().__init__(message)
        #: who holds the lease now (per the row that refused us)
        self.holder = holder
        #: the current (winning) token
        self.token = token


class WriterLease:
    """Handle on the store's writer lease for one prospective holder.

    The handle owns its own connection (never shared with the store's
    append connection) so lease maintenance can run from any thread.
    ``held`` / ``token`` reflect the *last* acquire/renew outcome; the
    authoritative check happens inside the append transaction.
    """

    def __init__(self, path, holder: str, ttl: float = DEFAULT_TTL,
                 timeout: float = 5.0):
        self.path = Path(path)
        self.holder = str(holder)
        self.ttl = float(ttl)
        if self.ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False,
            isolation_level=None,  # explicit BEGIN IMMEDIATE below
        )
        self._conn.row_factory = sqlite3.Row
        apply_migrations(self._conn)
        #: fencing token from the last successful acquire/renew
        self.token: Optional[int] = None
        #: True after a successful acquire/renew, False after losing/releasing
        self.held = False

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "WriterLease":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ---------------------------------------------------------- transitions

    def _row(self) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT holder, token, epoch, acquired_unix, expires_unix "
            "FROM writer_lease WHERE id = 1"
        ).fetchone()
        if row is None:  # migration guarantees the row; belt and braces
            raise StoreError("writer_lease row missing (store corrupt?)")
        return row

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Acquire (or renew) the lease; True when this holder holds it
        after the call.  Vacant or expired leases are taken over with a
        fresh (incremented) token; re-acquiring our own live lease is a
        renewal and keeps the token stable."""
        now = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._row()
            current = row["holder"]
            expired = row["expires_unix"] is None or row["expires_unix"] <= now
            if current == self.holder:
                token = int(row["token"])  # renewal: token is stable
                epoch = int(row["epoch"])
                acquired = row["acquired_unix"] or now
            elif current is None or expired:
                token = int(row["token"]) + 1  # ownership change: fence bump
                epoch = int(row["epoch"]) + 1
                acquired = now
            else:
                self._conn.execute("COMMIT")
                self.held = False
                return False
            self._conn.execute(
                "UPDATE writer_lease SET holder = ?, token = ?, epoch = ?, "
                "acquired_unix = ?, expires_unix = ? WHERE id = 1",
                (self.holder, token, epoch, acquired, now + self.ttl),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        self.token = token
        self.held = True
        return True

    def renew(self, now: Optional[float] = None) -> bool:
        """Extend our lease; False (and ``held=False``) if someone stole
        it — the caller must stop writing immediately."""
        now = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._row()
            if row["holder"] != self.holder or int(row["token"]) != (self.token or 0):
                self._conn.execute("COMMIT")
                self.held = False
                return False
            self._conn.execute(
                "UPDATE writer_lease SET expires_unix = ? WHERE id = 1",
                (now + self.ttl,),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        self.held = True
        return True

    def release(self) -> None:
        """Give the lease up voluntarily (daemon drain).  Only vacates the
        row if we still hold it; a thief's lease is left untouched."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._row()
            if row["holder"] == self.holder and int(row["token"]) == (self.token or 0):
                self._conn.execute(
                    "UPDATE writer_lease SET holder = NULL, acquired_unix = NULL, "
                    "expires_unix = NULL WHERE id = 1"
                )
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        self.held = False

    def steal(self, now: Optional[float] = None) -> int:
        """Forcibly take the lease regardless of expiry (chaos testing and
        break-glass operations).  Returns the new fencing token; the prior
        holder's appends abort from this moment on."""
        now = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._row()
            token = int(row["token"]) + 1
            epoch = int(row["epoch"]) + 1
            self._conn.execute(
                "UPDATE writer_lease SET holder = ?, token = ?, epoch = ?, "
                "acquired_unix = ?, expires_unix = ? WHERE id = 1",
                (self.holder, token, epoch, now, now + self.ttl),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        self.token = token
        self.held = True
        return token

    # ------------------------------------------------------------- queries

    def info(self) -> dict:
        """The lease row as observable state (for ``/v1/stats`` and tests)."""
        row = self._row()
        return {
            "holder": row["holder"],
            "token": int(row["token"]),
            "epoch": int(row["epoch"]),
            "acquired_unix": row["acquired_unix"],
            "expires_unix": row["expires_unix"],
        }

    def backoff_delay(self, attempt: int, base: float = 0.5,
                      cap: float = 30.0) -> float:
        """Deterministic jittered exponential backoff for re-acquisition.

        ``sha256(holder:attempt)`` supplies the jitter, so a given daemon
        retries on a reproducible schedule while two daemons with
        different ids desynchronize — the lease-race loser does not
        retry in lockstep with the winner's renewals.
        """
        digest = hashlib.sha256(
            f"{self.holder}:{int(attempt)}".encode("utf-8")
        ).digest()
        jitter = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        delay = base * (2 ** min(int(attempt), 6)) * (0.5 + jitter)
        return min(cap, delay)
