"""Explicit numbered migrations for the SQLite experiment store.

The store is append-only and schema-versioned: every structural change is
a new entry in :data:`MIGRATIONS`, applied in order inside a transaction
when a store is opened.  ``schema_meta`` holds the single current version
number, so a database written by any historical version of this module
upgrades in place — and re-applying migrations is a no-op, which is the
idempotence contract ``tests/test_store.py`` asserts from every historical
version.

Append-only is enforced in the schema itself, not just by convention:
``runs``, ``cells``, ``failures``, and ``metric_snapshots`` carry BEFORE
UPDATE / BEFORE DELETE triggers that abort the statement.  History is the product
here (the cross-PR trend ladder reads it), so a result row, once written,
is immutable; supersession happens by appending a newer row for the same
content key, never by rewriting an old one.
"""

from __future__ import annotations

import sqlite3
from typing import List, Sequence, Tuple

from ..errors import ReproError


class StoreError(ReproError):
    """The experiment store is unusable (bad schema, newer version...)."""


def _append_only(table: str) -> List[str]:
    return [
        f"CREATE TRIGGER {table}_no_update BEFORE UPDATE ON {table} "
        f"BEGIN SELECT RAISE(ABORT, '{table} is append-only'); END",
        f"CREATE TRIGGER {table}_no_delete BEFORE DELETE ON {table} "
        f"BEGIN SELECT RAISE(ABORT, '{table} is append-only'); END",
    ]


#: (version, statements) applied strictly in ascending version order.
#: NEVER edit a shipped migration — append a new one.
MIGRATIONS: Tuple[Tuple[int, Sequence[str]], ...] = (
    (
        1,
        [
            "CREATE TABLE schema_meta (version INTEGER NOT NULL)",
            "INSERT INTO schema_meta (version) VALUES (0)",
            # one row per collection/submission/import: the unit an
            # exported BENCH_<seq>.json corresponds to
            """
            CREATE TABLE runs (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                seq INTEGER,
                git_sha TEXT NOT NULL,
                scale REAL NOT NULL,
                bench_schema TEXT NOT NULL,
                profiles TEXT NOT NULL,
                suite TEXT NOT NULL,
                cell_keys TEXT NOT NULL DEFAULT '{}',
                dispatch TEXT,
                source TEXT NOT NULL DEFAULT 'live',
                store_hits INTEGER NOT NULL DEFAULT 0,
                created_unix REAL NOT NULL DEFAULT 0
            )
            """,
            # one row per *executed or imported* cell result; memo hits
            # reference existing rows via the content key, so repeats
            # append nothing here
            """
            CREATE TABLE cells (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                run_id INTEGER NOT NULL REFERENCES runs(id),
                key TEXT NOT NULL,
                benchmark TEXT NOT NULL,
                profile TEXT NOT NULL,
                params TEXT NOT NULL,
                dispatch TEXT NOT NULL,
                source TEXT NOT NULL DEFAULT 'live',
                record TEXT NOT NULL
            )
            """,
            "CREATE INDEX cells_by_key ON cells (key, id)",
            "CREATE INDEX cells_by_run ON cells (run_id, benchmark, profile)",
            *_append_only("cells"),
        ],
    ),
    (
        2,
        [
            # contained CellFailure annotations of a run (cells that
            # produced no result row)
            """
            CREATE TABLE failures (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                run_id INTEGER NOT NULL REFERENCES runs(id),
                cell_index INTEGER NOT NULL,
                benchmark TEXT NOT NULL,
                profile TEXT NOT NULL,
                status TEXT NOT NULL,
                detail TEXT NOT NULL
            )
            """,
            "CREATE INDEX failures_by_run ON failures (run_id, cell_index)",
            *_append_only("failures"),
        ],
    ),
    (
        3,
        [
            # counters/gauges flattened out of each cell's metrics
            # snapshot, so trend queries are one SQL join instead of a
            # JSON parse per row
            """
            CREATE TABLE metric_snapshots (
                cell_id INTEGER NOT NULL REFERENCES cells(id),
                kind TEXT NOT NULL,
                name TEXT NOT NULL,
                value REAL NOT NULL
            )
            """,
            "CREATE INDEX metric_snapshots_by_name ON metric_snapshots (name, cell_id)",
            *_append_only("metric_snapshots"),
        ],
    ),
    (
        4,
        # v1 left run rows mutable by oversight; history rows are the
        # product, so runs joins the append-only tables
        _append_only("runs"),
    ),
    (
        5,
        [
            # single-row writer lease: the fencing authority for every
            # append.  Deliberately *mutable* (no append-only triggers) —
            # it is coordination state, not history.  ``token`` increments
            # on every change of holder, so a writer that lost the lease
            # holds a provably stale token; ``epoch`` counts ownership
            # changes for observability.
            """
            CREATE TABLE writer_lease (
                id INTEGER PRIMARY KEY CHECK (id = 1),
                holder TEXT,
                token INTEGER NOT NULL DEFAULT 0,
                epoch INTEGER NOT NULL DEFAULT 0,
                acquired_unix REAL,
                expires_unix REAL
            )
            """,
            "INSERT INTO writer_lease (id, holder, token, epoch) VALUES (1, NULL, 0, 0)",
            # which lease token wrote each run (NULL = unfenced writer,
            # e.g. CLI imports outside any daemon)
            "ALTER TABLE runs ADD COLUMN lease_token INTEGER",
        ],
    ),
)

#: the version a freshly-opened store ends up at
SCHEMA_VERSION = MIGRATIONS[-1][0]


def enable_wal(conn: sqlite3.Connection) -> str:
    """Switch ``conn``'s database to WAL journaling; returns the resulting
    mode (lowercased).

    WAL is what makes the daemon's read paths cheap under load: readers
    (``/v1/trends``, ``/v1/stats``, a live ``repro-store report``) never
    block the single appender and never see a half-committed collection.
    The mode is persistent — set once, every later open inherits it.
    SQLite may refuse (e.g. some network filesystems); callers treat the
    returned mode as informational, not a failure — rollback journaling
    keeps every correctness invariant, just with coarser read/write
    blocking.
    """
    row = conn.execute("PRAGMA journal_mode=WAL").fetchone()
    return str(row[0]).lower()


def schema_version(conn: sqlite3.Connection) -> int:
    """Current schema version of ``conn``'s database (0 = empty/new)."""
    row = conn.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='schema_meta'"
    ).fetchone()
    if row is None:
        return 0
    return int(conn.execute("SELECT version FROM schema_meta").fetchone()[0])


def apply_migrations(conn: sqlite3.Connection, target: int = None) -> int:
    """Bring ``conn`` to schema version ``target`` (default: latest).

    Each migration runs in its own transaction and stamps ``schema_meta``
    atomically with its DDL, so a crash mid-migration leaves the store at
    a consistent prior version.  Applying to an already-migrated store is
    a no-op; a store from the *future* raises :class:`StoreError` instead
    of being silently misread.
    """
    target = SCHEMA_VERSION if target is None else target
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise StoreError(
            f"store schema version {current} is newer than this build "
            f"supports ({SCHEMA_VERSION}); refusing to open"
        )
    for version, statements in MIGRATIONS:
        if version <= current or version > target:
            continue
        with conn:
            for statement in statements:
                conn.execute(statement)
            conn.execute("UPDATE schema_meta SET version = ?", (version,))
    return schema_version(conn)
