"""Shared exception hierarchy for the HPC.NET reproduction.

Every layer of the stack (front-end compiler, CIL verifier, loader, JIT,
virtual execution system) raises a subclass of :class:`ReproError` so callers
can catch the whole family or a specific stage's failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CompileError(ReproError):
    """A Kernel-C# source program failed to compile.

    Carries the source location when available so harness output can point at
    the offending benchmark line.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(CompileError):
    """Tokenization failure."""


class ParseError(CompileError):
    """Syntactic failure."""


class TypeCheckError(CompileError):
    """Semantic/type failure."""


class CilError(ReproError):
    """Malformed CIL construction (builder misuse, bad operands)."""


class VerifyError(CilError):
    """The CIL verifier rejected a method body."""


class AssembleError(CilError):
    """The textual IL assembler rejected its input."""


class LoadError(ReproError):
    """Assembly loading/linking failure (missing class, bad override...)."""


class JitError(ReproError):
    """CIL -> MIR lowering or optimization failure."""


class VMError(ReproError):
    """Runtime failure inside the virtual execution system itself."""


class CellTimeout(VMError):
    """The per-cell cycle watchdog expired: the guest exceeded its cycle
    budget and was stopped.  Carries the spent cycles and the limit so the
    harness can report a structured partial result instead of aborting the
    whole experiment matrix.
    """

    def __init__(self, cycles: int, limit: int) -> None:
        self.cycles = cycles
        self.limit = limit
        super().__init__(
            f"cycle budget exceeded (runaway benchmark?): "
            f"{cycles:,} cycles > limit {limit:,}"
        )


class ManagedException(VMError):
    """A managed (guest) exception escaped to the host.

    ``exc_object`` is the guest exception object; ``type_name`` its managed
    class name; ``managed_message`` the guest message string, if any.
    """

    def __init__(self, type_name: str, managed_message: str = "", exc_object=None) -> None:
        self.type_name = type_name
        self.managed_message = managed_message
        self.exc_object = exc_object
        text = f"unhandled managed exception {type_name}"
        if managed_message:
            text += f": {managed_message}"
        super().__init__(text)


class BenchmarkError(ReproError):
    """A benchmark program produced an invalid/unvalidated result."""
