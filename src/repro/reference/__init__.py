"""``repro.reference`` — pure-Python oracles validating the benchmark
kernels (paper section 3.4's computation validation)."""

from .grande_ref import (
    crypt_reference,
    fibonacci_reference,
    hanoi_reference,
    heapsort_reference,
    moldyn_reference,
    raytracer_reference,
    sieve_reference,
)
from .scimark_ref import (
    fft_reference,
    lu_reference,
    montecarlo_reference,
    sor_reference,
    sparse_reference,
)

__all__ = [
    "fft_reference", "sor_reference", "montecarlo_reference",
    "sparse_reference", "lu_reference",
    "fibonacci_reference", "sieve_reference", "hanoi_reference",
    "heapsort_reference", "crypt_reference", "moldyn_reference",
    "raytracer_reference",
]
