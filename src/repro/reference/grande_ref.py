"""Pure-Python reference implementations of the Grande/DHPC kernels.

As with :mod:`repro.reference.scimark_ref`, each mirrors its Kernel-C#
counterpart operation for operation so results compare exactly (doubles)
or bit-exactly (integers).
"""

from __future__ import annotations

import math
from typing import List, Tuple


# ------------------------------------------------------------- fibonacci

def fibonacci_reference(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


# ------------------------------------------------------------------ sieve

def sieve_reference(limit: int) -> int:
    composite = [False] * (limit + 1)
    count = 0
    for p in range(2, limit + 1):
        if not composite[p]:
            count += 1
            for k in range(p + p, limit + 1, p):
                composite[k] = True
    return count


# ------------------------------------------------------------------ hanoi

def hanoi_reference(disks: int) -> int:
    return (1 << disks) - 1


# --------------------------------------------------------------- heapsort

def heapsort_input(n: int) -> List[int]:
    """The benchmark's LCG input sequence."""
    seed = 1729
    out = []
    for _ in range(n):
        seed = (seed * 1309 + 13849) & 65535
        out.append(seed)
    return out


def heapsort_reference(n: int) -> Tuple[int, int]:
    data = sorted(heapsort_input(n))
    return data[0], data[-1]


# ------------------------------------------------------------------ crypt

def _idea_mul(a: int, b: int) -> int:
    if a == 0:
        return (65537 - b) & 65535
    if b == 0:
        return (65537 - a) & 65535
    p = a * b
    lo = p & 65535
    hi = (p >> 16) & 65535
    r = lo - hi
    if lo < hi:
        r += 1
    return r & 65535


def _idea_inv(x: int) -> int:
    if x <= 1:
        return x
    a, b = 65537, x
    u0, u1 = 0, 1
    while b != 0:
        q = a // b
        a, b = b, a - q * b
        u0, u1 = u1, u0 - q * u1
    if u0 < 0:
        u0 += 65537
    return u0 & 65535


def idea_encryption_key(user_key: List[int]) -> List[int]:
    z = [0] * 52
    z[:8] = user_key
    for i in range(8, 52):
        imod = i & 7
        if imod == 6:
            z[i] = ((z[i - 7] << 9) | (z[i - 14] >> 7)) & 65535
        elif imod == 7:
            z[i] = ((z[i - 15] << 9) | (z[i - 14] >> 7)) & 65535
        else:
            z[i] = ((z[i - 7] << 9) | (z[i - 6] >> 7)) & 65535
    return z


def idea_decryption_key(z: List[int]) -> List[int]:
    dk = [0] * 52
    dk[48] = _idea_inv(z[0])
    dk[49] = (65536 - z[1]) & 65535
    dk[50] = (65536 - z[2]) & 65535
    dk[51] = _idea_inv(z[3])
    for r in range(8):
        zi = 4 + r * 6
        di = 42 - r * 6
        dk[di + 4] = z[zi]
        dk[di + 5] = z[zi + 1]
        dk[di] = _idea_inv(z[zi + 2])
        if r == 7:
            dk[di + 1] = (65536 - z[zi + 3]) & 65535
            dk[di + 2] = (65536 - z[zi + 4]) & 65535
        else:
            dk[di + 1] = (65536 - z[zi + 4]) & 65535
            dk[di + 2] = (65536 - z[zi + 3]) & 65535
        dk[di + 3] = _idea_inv(z[zi + 5])
    return dk


def idea_cipher(text: List[int], key: List[int]) -> List[int]:
    result = [0] * len(text)
    for b in range(len(text) // 4):
        p = b * 4
        x1, x2, x3, x4 = text[p : p + 4]
        k = 0
        for _ in range(8):
            x1 = _idea_mul(x1, key[k])
            x2 = (x2 + key[k + 1]) & 65535
            x3 = (x3 + key[k + 2]) & 65535
            x4 = _idea_mul(x4, key[k + 3])
            t1 = x1 ^ x3
            t2 = x2 ^ x4
            t1 = _idea_mul(t1, key[k + 4])
            t2 = (t1 + t2) & 65535
            t2 = _idea_mul(t2, key[k + 5])
            t1 = (t1 + t2) & 65535
            x1 ^= t2
            x4 ^= t1
            tmp = x2 ^ t1
            x2 = x3 ^ t2
            x3 = tmp
            k += 6
        result[p] = _idea_mul(x1, key[48])
        result[p + 1] = (x3 + key[49]) & 65535
        result[p + 2] = (x2 + key[50]) & 65535
        result[p + 3] = _idea_mul(x4, key[51])
    return result


def _i32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _c_rem(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend), as int32 CIL rem gives."""
    q = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        q = -q
    return a - q * b


def crypt_reference(words: int) -> float:
    """The benchmark's ciphertext checksum after verifying the round trip.
    The key-stream LCG wraps at 32 bits exactly like the guest's int."""
    user_key = []
    seed = 12345
    for _ in range(8):
        seed = _c_rem(_i32(seed * 4096 + 150889), 714025)
        user_key.append(seed & 65535)
    z = idea_encryption_key(user_key)
    dk = idea_decryption_key(z)
    plain = [(_i32(i * 40503) + 17) & 65535 for i in range(words)]
    crypt1 = idea_cipher(plain, z)
    plain2 = idea_cipher(crypt1, dk)
    assert plain == plain2, "reference IDEA round trip failed"
    return float(sum(crypt1))


# ----------------------------------------------------------------- moldyn

def moldyn_reference(mm: int, steps: int) -> Tuple[float, float]:
    """Returns (initial energy, final energy) matching the benchmark."""
    n = 4 * mm * mm * mm
    density = 0.83134
    side = (n / density) ** (1.0 / 3.0)
    x = [0.0] * n; y = [0.0] * n; z = [0.0] * n
    ij = 0
    a = side / mm
    for i in range(mm):
        for j in range(mm):
            for k in range(mm):
                x[ij] = i * a;          y[ij] = j * a;          z[ij] = k * a;          ij += 1
                x[ij] = i * a + a * 0.5; y[ij] = j * a + a * 0.5; z[ij] = k * a;          ij += 1
                x[ij] = i * a + a * 0.5; y[ij] = j * a;          z[ij] = k * a + a * 0.5; ij += 1
                x[ij] = i * a;          y[ij] = j * a + a * 0.5; z[ij] = k * a + a * 0.5; ij += 1
    seed = 6751

    def next_rand():
        nonlocal seed
        seed = (seed * 1309 + 13849) & 65535
        return seed / 65536.0 - 0.5

    vx = [0.0] * n; vy = [0.0] * n; vz = [0.0] * n
    sumx = sumy = sumz = 0.0
    for i in range(n):
        vx[i] = next_rand(); vy[i] = next_rand(); vz[i] = next_rand()
        sumx += vx[i]; sumy += vy[i]; sumz += vz[i]
    for i in range(n):
        vx[i] -= sumx / n
        vy[i] -= sumy / n
        vz[i] -= sumz / n

    fx = [0.0] * n; fy = [0.0] * n; fz = [0.0] * n
    state = {"epot": 0.0, "vir": 0.0}

    def forces():
        state["epot"] = 0.0
        state["vir"] = 0.0
        sideh = side * 0.5
        for i in range(n):
            fx[i] = fy[i] = fz[i] = 0.0
        epot = 0.0
        vir = 0.0
        for i in range(n - 1):
            xi = x[i]; yi = y[i]; zi = z[i]
            fxi = fyi = fzi = 0.0
            for j in range(i + 1, n):
                dx = xi - x[j]; dy = yi - y[j]; dz = zi - z[j]
                if dx > sideh:
                    dx -= side
                elif dx < -sideh:
                    dx += side
                if dy > sideh:
                    dy -= side
                elif dy < -sideh:
                    dy += side
                if dz > sideh:
                    dz -= side
                elif dz < -sideh:
                    dz += side
                r2 = dx * dx + dy * dy + dz * dz
                if r2 < 0.25:
                    r2 = 0.25
                r2i = 1.0 / r2
                r6i = r2i * r2i * r2i
                lj = 48.0 * r6i * (r6i - 0.5) * r2i
                epot += 4.0 * r6i * (r6i - 1.0)
                vir += lj * r2
                fxc = lj * dx; fyc = lj * dy; fzc = lj * dz
                fxi += fxc; fyi += fyc; fzi += fzc
                fx[j] -= fxc; fy[j] -= fyc; fz[j] -= fzc
            fx[i] += fxi; fy[i] += fyi; fz[i] += fzi
        state["epot"] = epot
        state["vir"] = vir

    def kinetic():
        return sum(0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]) for i in range(n))

    forces()
    e0 = kinetic() + state["epot"]
    dt = 0.0005
    for _ in range(steps):
        for i in range(n):
            vx[i] += 0.5 * dt * fx[i]
            vy[i] += 0.5 * dt * fy[i]
            vz[i] += 0.5 * dt * fz[i]
            x[i] += dt * vx[i]
            y[i] += dt * vy[i]
            z[i] += dt * vz[i]
            if x[i] < 0.0:
                x[i] += side
            elif x[i] >= side:
                x[i] -= side
            if y[i] < 0.0:
                y[i] += side
            elif y[i] >= side:
                y[i] -= side
            if z[i] < 0.0:
                z[i] += side
            elif z[i] >= side:
                z[i] -= side
        forces()
        for i in range(n):
            vx[i] += 0.5 * dt * fx[i]
            vy[i] += 0.5 * dt * fy[i]
            vz[i] += 0.5 * dt * fz[i]
    e1 = kinetic() + state["epot"]
    return e0, e1


# --------------------------------------------------------------- raytracer

class _Vec:
    __slots__ = ("x", "y", "z")

    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z


def _add(a, b):
    return _Vec(a.x + b.x, a.y + b.y, a.z + b.z)


def _sub(a, b):
    return _Vec(a.x - b.x, a.y - b.y, a.z - b.z)


def _scale(a, s):
    return _Vec(a.x * s, a.y * s, a.z * s)


def _dot(a, b):
    return a.x * b.x + a.y * b.y + a.z * b.z


def _norm(a):
    length = math.sqrt(_dot(a, a))
    if length == 0.0:
        return _Vec(0.0, 0.0, 0.0)
    return _scale(a, 1.0 / length)


class _Sphere:
    __slots__ = ("center", "radius", "diffuse", "specular", "reflect", "shade")


def raytracer_reference(size: int, grid: int) -> Tuple[float, int]:
    count = grid * grid
    scene = []
    for i in range(grid):
        for j in range(grid):
            s = _Sphere()
            s.center = _Vec(
                -3.0 + i * 6.0 / (grid - 1 + 1),
                -3.0 + j * 6.0 / (grid - 1 + 1),
                6.0 + ((i + j) % 3) * 1.5,
            )
            s.radius = 0.8
            s.diffuse = 0.7
            s.specular = 0.3
            s.reflect = 0.3 if (i + j) % 2 == 0 else 0.0
            s.shade = 0.3 + 0.7 * ((i * grid + j) / float(count))
            scene.append(s)
    light = _Vec(-5.0, 6.0, -2.0)
    rays = [0]

    def intersect(s, origin, direction):
        oc = _sub(s.center, origin)
        b = _dot(oc, direction)
        det = b * b - _dot(oc, oc) + s.radius * s.radius
        if det < 0.0:
            return -1.0
        root = math.sqrt(det)
        t = b - root
        if t > 1.0e-6:
            return t
        t = b + root
        if t > 1.0e-6:
            return t
        return -1.0

    def find_hit(origin, direction):
        hit = -1
        t_best = 1.0e30
        for k, s in enumerate(scene):
            t = intersect(s, origin, direction)
            if 0.0 < t < t_best:
                t_best = t
                hit = k
        return hit, t_best

    def trace(origin, direction, depth):
        rays[0] += 1
        hit, t = find_hit(origin, direction)
        if hit < 0:
            return 0.05
        s = scene[hit]
        p = _add(origin, _scale(direction, t))
        normal = _norm(_sub(p, s.center))
        to_light = _norm(_sub(light, p))
        brightness = 0.1 * s.shade
        shadow_origin = _add(p, _scale(normal, 1.0e-4))
        blocker, st = find_hit(shadow_origin, to_light)
        rays[0] += 1
        lit = True
        if blocker >= 0:
            to_light_full = _sub(light, p)
            light_dist = math.sqrt(_dot(to_light_full, to_light_full))
            if st < light_dist:
                lit = False
        if lit:
            diff = _dot(normal, to_light)
            if diff > 0.0:
                brightness += s.diffuse * diff * s.shade
            refl = _sub(_scale(normal, 2.0 * _dot(normal, to_light)), to_light)
            spec = _dot(refl, _scale(direction, -1.0))
            if spec > 0.0:
                brightness += s.specular * spec * spec * spec * spec
        if depth > 0 and s.reflect > 0.0:
            rdir = _sub(direction, _scale(normal, 2.0 * _dot(normal, direction)))
            brightness += s.reflect * trace(shadow_origin, _norm(rdir), depth - 1)
        return min(brightness, 1.0)

    eye = _Vec(0.0, 0.0, -4.0)
    checksum = 0.0
    for py in range(size):
        for px in range(size):
            sx = -1.0 + 2.0 * px / float(size)
            sy = -1.0 + 2.0 * py / float(size)
            direction = _norm(_Vec(sx, sy, 2.0))
            checksum += trace(eye, direction, 2)
    return checksum, rays[0]
