"""Pure-Python reference implementations of the SciMark kernels.

Each mirrors the Kernel-C# port operation-for-operation (same SciRandom
stream, same loop order, same floating-point association), so VM outputs
must match digit for digit — the paper section 3.4's "validation of the
results of the computations by the different kernels".
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..benchmarks.scimark.common import PySciRandom, RANDOM_SEED


# ------------------------------------------------------------------- FFT

def _log2(n: int) -> int:
    log = 0
    k = 1
    while k < n:
        k *= 2
        log += 1
    return log


def _bitreverse(data: List[float]) -> None:
    n = len(data) // 2
    nm1 = n - 1
    j = 0
    for i in range(nm1):
        ii = i << 1
        jj = j << 1
        k = n >> 1
        if i < j:
            data[ii], data[jj] = data[jj], data[ii]
            data[ii + 1], data[jj + 1] = data[jj + 1], data[ii + 1]
        while k <= j:
            j -= k
            k >>= 1
        j += k


def _transform_internal(data: List[float], direction: int) -> None:
    if not data:
        return
    n = len(data) // 2
    if n == 1:
        return
    logn = _log2(n)
    _bitreverse(data)
    bit = 0
    dual = 1
    while bit < logn:
        w_real = 1.0
        w_imag = 0.0
        theta = 2.0 * direction * math.pi / (2.0 * float(dual))
        s = math.sin(theta)
        t = math.sin(theta / 2.0)
        s2 = 2.0 * t * t
        for b in range(0, n, 2 * dual):
            i = 2 * b
            j = 2 * (b + dual)
            wd_real = data[j]
            wd_imag = data[j + 1]
            data[j] = data[i] - wd_real
            data[j + 1] = data[i + 1] - wd_imag
            data[i] += wd_real
            data[i + 1] += wd_imag
        for a in range(1, dual):
            tmp_real = w_real - s * w_imag - s2 * w_real
            tmp_imag = w_imag + s * w_real - s2 * w_imag
            w_real = tmp_real
            w_imag = tmp_imag
            for b in range(0, n, 2 * dual):
                i = 2 * (b + a)
                j = 2 * (b + a + dual)
                z1_real = data[j]
                z1_imag = data[j + 1]
                wd_real = w_real * z1_real - w_imag * z1_imag
                wd_imag = w_real * z1_imag + w_imag * z1_real
                data[j] = data[i] - wd_real
                data[j + 1] = data[i + 1] - wd_imag
                data[i] += wd_real
                data[i + 1] += wd_imag
        bit += 1
        dual *= 2


def fft_transform(data: List[float]) -> None:
    _transform_internal(data, -1)


def fft_inverse(data: List[float]) -> None:
    _transform_internal(data, 1)
    n = len(data) // 2
    norm = 1.0 / float(n)
    for i in range(len(data)):
        data[i] *= norm


def fft_reference(n: int, reps: int = 1, seed: int = RANDOM_SEED) -> Tuple[float, float, float]:
    """Returns (rms, data[0], data[-1]) matching the benchmark's results."""
    rng = PySciRandom(seed)
    data = rng.fill(2 * n)
    for _ in range(reps):
        fft_transform(data)
        fft_inverse(data)
    copy = list(data)
    fft_transform(data)
    fft_inverse(data)
    diff = 0.0
    for a, b in zip(data, copy):
        d = a - b
        diff += d * d
    rms = math.sqrt(diff / len(data))
    return rms, data[0], data[-1]


# ------------------------------------------------------------------- SOR

def sor_reference(n: int, iters: int, seed: int = RANDOM_SEED) -> float:
    rng = PySciRandom(seed)
    g = [[rng.next_double() * 1.0e-6 for _ in range(n)] for _ in range(n)]
    omega = 1.25
    omega_over_four = omega * 0.25
    one_minus_omega = 1.0 - omega
    for _ in range(iters):
        for i in range(1, n - 1):
            gi = g[i]
            gim1 = g[i - 1]
            gip1 = g[i + 1]
            for j in range(1, n - 1):
                gi[j] = omega_over_four * (gim1[j] + gip1[j] + gi[j - 1] + gi[j + 1]) \
                    + one_minus_omega * gi[j]
    # element-order accumulation to match the benchmark's float association
    checksum = 0.0
    for i in range(n):
        for j in range(n):
            checksum += g[i][j]
    return checksum


# ------------------------------------------------------------ Monte Carlo

def montecarlo_reference(samples: int, seed: int = RANDOM_SEED) -> float:
    rng = PySciRandom(seed)
    under = 0
    for _ in range(samples):
        x = rng.next_double()
        y = rng.next_double()
        if x * x + y * y <= 1.0:
            under += 1
    return (under / float(samples)) * 4.0


# ------------------------------------------------------------------ Sparse

def sparse_reference(n: int, nz: int, reps: int, seed: int = RANDOM_SEED) -> float:
    rng = PySciRandom(seed)
    x = rng.fill(n)
    y = [0.0] * n
    nr = nz // n
    anz = nr * n
    val = rng.fill(anz)
    col = [0] * anz
    row = [0] * (n + 1)
    for r in range(n):
        rowr = row[r]
        row[r + 1] = rowr + nr
        step = max(1, r // nr)
        for i in range(nr):
            col[rowr + i] = i * step
    for _ in range(reps):
        for r in range(n):
            total = 0.0
            for i in range(row[r], row[r + 1]):
                total += x[col[i]] * val[i]
            y[r] = total
    return sum(y)


# --------------------------------------------------------------------- LU

def lu_reference(n: int, reps: int = 1, seed: int = RANDOM_SEED) -> float:
    rng = PySciRandom(seed)
    a = [rng.fill(n) for _ in range(n)]
    lu = [[0.0] * n for _ in range(n)]
    pivot = [0] * n
    for _ in range(reps):
        for i in range(n):
            lu[i][:] = a[i]
        _lu_factor(lu, pivot)
    checksum = 0.0
    for i in range(n):
        for j in range(n):
            checksum += lu[i][j]
        checksum += pivot[i]
    return checksum


def _lu_factor(a: List[List[float]], pivot: List[int]) -> int:
    n = len(a)
    m = len(a[0])
    min_mn = min(m, n)
    for j in range(min_mn):
        jp = j
        t = abs(a[j][j])
        for i in range(j + 1, m):
            ab = abs(a[i][j])
            if ab > t:
                jp = i
                t = ab
        pivot[j] = jp
        if a[jp][j] == 0.0:
            return 1
        if jp != j:
            a[j], a[jp] = a[jp], a[j]
        if j < m - 1:
            recp = 1.0 / a[j][j]
            for k in range(j + 1, m):
                a[k][j] *= recp
        if j < min_mn - 1:
            for ii in range(j + 1, m):
                aii = a[ii]
                aj = a[j]
                aiij = aii[j]
                for jj in range(j + 1, n):
                    aii[jj] -= aiij * aj[jj]
    return 0
