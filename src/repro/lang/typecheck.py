"""Type checker / semantic analyzer for Kernel-C#.

Annotates the AST in place (every expression gets ``.ctype``; names, calls,
members get resolution records the code generator consumes) and builds the
:class:`~repro.lang.symbols.ClassInfo` table.

Conversion rules follow C# 1.0: implicit numeric widening
(``int -> long -> float -> double``), boxing of value types to ``object``,
``null`` to any reference type, derived-to-base reference conversion; all
narrowing requires an explicit cast.  Conditions must be ``bool`` — there is
no int-truthiness, exactly as in C#.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cil import cts
from ..cil.cts import CType
from ..cil.instructions import MethodRef
from ..errors import TypeCheckError
from . import ast_nodes as ast
from .builtins import (
    INTRINSIC_ALIASES,
    INTRINSIC_CONSTANTS,
    INTRINSIC_METHODS,
    find_intrinsic,
)
from .symbols import ClassInfo, FieldInfo, MethodInfo, VarSymbol

# numeric widening ranks
_RANK = {
    cts.INT8: 1,
    cts.UINT8: 1,
    cts.INT16: 2,
    cts.UINT16: 2,
    cts.CHAR: 2,
    cts.INT32: 3,
    cts.INT64: 4,
    cts.FLOAT32: 5,
    cts.FLOAT64: 6,
}


def implicit_convertible(src: CType, dst: CType) -> bool:
    """C#-style implicit conversion (excluding user conversions)."""
    if src is dst:
        return True
    if src in _RANK and dst in _RANK:
        return _RANK[src] < _RANK[dst] or (
            _RANK[src] == _RANK[dst] and cts.stack_type(src) is cts.stack_type(dst)
        )
    if src is cts.BOOL or dst is cts.BOOL:
        return False
    if src is cts.NULL and dst.is_reference:
        return True
    if dst is cts.OBJECT:
        return True  # reference conversion or boxing
    if src is cts.STRING and dst is cts.STRING:
        return True
    return False


def promote(a: CType, b: CType) -> Optional[CType]:
    """Usual arithmetic conversions for binary numeric operators.

    ``bool`` never participates (C# has no bool<->int conversions), even
    though it widens to int32 on the evaluation stack."""
    if a is cts.BOOL or b is cts.BOOL:
        return None
    a, b = cts.stack_type(a), cts.stack_type(b)
    if a not in (cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64):
        return None
    if b not in (cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64):
        return None
    if cts.FLOAT64 in (a, b):
        return cts.FLOAT64
    if cts.FLOAT32 in (a, b):
        return cts.FLOAT32
    if cts.INT64 in (a, b):
        return cts.INT64
    return cts.INT32


class Checker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.classes: Dict[str, ClassInfo] = {}
        # per-method state
        self._scopes: List[Dict[str, VarSymbol]] = []
        self._method: Optional[MethodInfo] = None
        self._loop_depth = 0
        self._catch_depth = 0

    # ------------------------------------------------------------------ utils

    def error(self, message: str, node: ast.Node) -> TypeCheckError:
        return TypeCheckError(message, getattr(node, "line", 0) or 0)

    def resolve_type(self, t: ast.TypeExpr, node: Optional[ast.Node] = None) -> CType:
        base = cts.BY_NAME.get(t.name)
        if base is None:
            info = self.classes.get(t.name)
            if info is None:
                raise self.error(f"unknown type {t.name!r}", node or t)
            base = cts.named(info.name)
            base.value_type_hint = info.is_struct
        # leftmost bracket group is the outermost array dimension
        for rank in reversed(t.ranks):
            base = cts.array_of(base, rank)
        return base

    def class_of_type(self, t: CType) -> Optional[ClassInfo]:
        if isinstance(t, cts.NamedType):
            return self.classes.get(t.name)
        return None

    def is_exception_type(self, info: ClassInfo) -> bool:
        root = self.classes.get("Exception")
        return root is not None and info.is_subclass_of(root)

    # ------------------------------------------------------------- conversions

    def coerce(self, expr: ast.Expr, target: CType, node: ast.Node) -> None:
        """Record an implicit conversion of ``expr`` to ``target``."""
        src = expr.ctype
        assert src is not None
        if cts.stack_type(src) is cts.stack_type(target) and not (
            target is cts.OBJECT and not src.is_reference
        ):
            expr.coerce_to = None
            return
        if not implicit_convertible(src, target):
            # derived -> base reference conversion
            src_info = self.class_of_type(src)
            dst_info = self.class_of_type(target)
            if (
                src_info is not None
                and dst_info is not None
                and not src_info.is_struct
                and src_info.is_subclass_of(dst_info)
            ):
                expr.coerce_to = None
                return
            raise self.error(
                f"cannot implicitly convert {src.name} to {target.name}", node
            )
        if target is cts.OBJECT and not src.is_reference:
            expr.coerce_to = ("box", src)
        elif target in _RANK and src is not target:
            expr.coerce_to = ("conv", target)
        else:
            expr.coerce_to = None

    # -------------------------------------------------------------- collection

    def collect(self) -> None:
        for decl in self.program.classes:
            if decl.name in self.classes or decl.name in INTRINSIC_ALIASES:
                raise self.error(f"duplicate class name {decl.name!r}", decl)
            if decl.name in cts.BY_NAME:
                raise self.error(f"class name {decl.name!r} shadows a primitive", decl)
            self.classes[decl.name] = ClassInfo(
                name=decl.name, is_struct=decl.is_struct, decl=decl
            )
        # second pass: bases, fields, methods
        for decl in self.program.classes:
            info = self.classes[decl.name]
            if decl.base_name:
                base = self.classes.get(decl.base_name)
                if base is None:
                    raise self.error(f"unknown base class {decl.base_name!r}", decl)
                if base.is_struct:
                    raise self.error("cannot inherit from a struct", decl)
                info.base = base
            for f in decl.fields:
                ftype = self.resolve_type(f.type_expr, f)
                if ftype is cts.VOID:
                    raise self.error("field cannot be void", f)
                if info.is_struct and not f.is_static:
                    if not (ftype.is_primitive and ftype is not cts.VOID):
                        raise self.error(
                            "struct instance fields must be primitive "
                            f"(got {ftype.name})", f,
                        )
                if f.name in info.fields:
                    raise self.error(f"duplicate field {f.name!r}", f)
                info.fields[f.name] = FieldInfo(f.name, ftype, f.is_static, info)
            for m in decl.methods:
                if info.is_struct and (m.is_virtual or m.is_override):
                    raise self.error("struct methods cannot be virtual", m)
                if m.is_ctor:
                    ret = cts.VOID
                else:
                    ret = self.resolve_type(m.return_type, m)
                ptypes = [self.resolve_type(p.type_expr, p) for p in m.params]
                pnames = [p.name for p in m.params]
                if len(set(pnames)) != len(pnames):
                    raise self.error("duplicate parameter name", m)
                mi = MethodInfo(
                    name=m.name,
                    param_types=ptypes,
                    param_names=pnames,
                    return_type=ret,
                    is_static=m.is_static,
                    is_virtual=m.is_virtual,
                    is_override=m.is_override,
                    is_ctor=m.is_ctor,
                    owner=info,
                    decl=m,
                )
                bucket = info.methods.setdefault(m.name, [])
                for other in bucket:
                    if [t.name for t in other.param_types] == [t.name for t in ptypes]:
                        raise self.error(f"duplicate method {m.name!r}", m)
                bucket.append(mi)
        # loop detection in the inheritance chain
        for info in self.classes.values():
            seen = set()
            cls: Optional[ClassInfo] = info
            while cls is not None:
                if cls.name in seen:
                    raise TypeCheckError(f"inheritance cycle at {info.name}")
                seen.add(cls.name)
                cls = cls.base
        # validate overrides
        for info in self.classes.values():
            for bucket in info.methods.values():
                for m in bucket:
                    if m.is_override:
                        if info.base is None:
                            raise TypeCheckError(
                                f"{m.full_name}: override with no base class"
                            )
                        base_ms = info.base.find_methods(m.name)
                        match = [
                            bm
                            for bm in base_ms
                            if [t.name for t in bm.param_types]
                            == [t.name for t in m.param_types]
                        ]
                        if not match or not match[0].dispatches_virtually:
                            raise TypeCheckError(
                                f"{m.full_name}: no virtual base method to override"
                            )
                        if match[0].return_type is not m.return_type:
                            raise TypeCheckError(
                                f"{m.full_name}: override changes return type"
                            )

    # ----------------------------------------------------------- desugaring

    def desugar_field_inits(self) -> None:
        """Move field initializers into constructors / a synthesized
        ``.cctor``, mirroring what csc emits."""
        for decl in self.program.classes:
            static_inits: List[ast.Stmt] = []
            instance_inits: List[ast.Stmt] = []
            for f in decl.fields:
                if f.init is None:
                    continue
                if f.is_static:
                    target = ast.Member(
                        line=f.line,
                        target=ast.Name(line=f.line, ident=decl.name),
                        name=f.name,
                    )
                    static_inits.append(
                        ast.ExprStmt(
                            line=f.line,
                            expr=ast.Assign(line=f.line, target=target, value=f.init),
                        )
                    )
                else:
                    target = ast.Member(
                        line=f.line, target=ast.ThisExpr(line=f.line), name=f.name
                    )
                    instance_inits.append(
                        ast.ExprStmt(
                            line=f.line,
                            expr=ast.Assign(line=f.line, target=target, value=f.init),
                        )
                    )
                f.init = None
            if static_inits:
                cctor = ast.MethodDecl(
                    line=decl.line,
                    name=".cctor",
                    return_type=ast.TypeExpr(name="void", line=decl.line),
                    is_static=True,
                    body=ast.Block(line=decl.line, statements=static_inits),
                )
                decl.methods.append(cctor)
                info = self.classes[decl.name]
                info.methods.setdefault(".cctor", []).append(
                    MethodInfo(
                        name=".cctor",
                        param_types=[],
                        param_names=[],
                        return_type=cts.VOID,
                        is_static=True,
                        is_virtual=False,
                        is_override=False,
                        is_ctor=False,
                        owner=info,
                        decl=cctor,
                    )
                )
            ctors = [m for m in decl.methods if m.is_ctor]
            if instance_inits and not ctors and not decl.is_struct:
                default = ast.MethodDecl(
                    line=decl.line, name=".ctor", is_ctor=True,
                    body=ast.Block(line=decl.line, statements=[]),
                )
                decl.methods.append(default)
                info = self.classes[decl.name]
                info.methods.setdefault(".ctor", []).append(
                    MethodInfo(
                        name=".ctor", param_types=[], param_names=[],
                        return_type=cts.VOID, is_static=False, is_virtual=False,
                        is_override=False, is_ctor=True, owner=info, decl=default,
                    )
                )
                ctors = [default]
            for ctor in ctors:
                # fresh copies per ctor would be needed if codegen mutated the
                # nodes; annotation is idempotent per node, and each ctor body
                # gets its own list but shares init nodes only when there is a
                # single ctor — clone for safety.
                clones = instance_inits if len(ctors) == 1 else _clone_stmts(instance_inits)
                ctor.body.statements[:0] = clones

    # --------------------------------------------------------------- checking

    def check(self) -> None:
        self.collect()
        self.desugar_field_inits()
        for decl in self.program.classes:
            info = self.classes[decl.name]
            for mdecl in decl.methods:
                sig = [
                    self.resolve_type(p.type_expr, p) for p in mdecl.params
                ]
                candidates = info.methods.get(mdecl.name, [])
                mi = next(
                    m
                    for m in candidates
                    if m.decl is mdecl
                )
                self.check_method(info, mi)

    def check_method(self, info: ClassInfo, mi: MethodInfo) -> None:
        decl: ast.MethodDecl = mi.decl
        self._method = mi
        self._scopes = [{}]
        self._loop_depth = 0
        self._catch_depth = 0
        arg_base = 0 if mi.is_static else 1
        for i, (pname, ptype) in enumerate(zip(mi.param_names, mi.param_types)):
            sym = VarSymbol(pname, ptype, "arg", arg_index=arg_base + i)
            self._scopes[0][pname] = sym
        if decl.base_args is not None:
            if not mi.is_ctor:
                raise self.error("base initializer outside constructor", decl)
            if info.base is None:
                raise self.error("base initializer with no base class", decl)
            for a in decl.base_args:
                self.check_expr(a)
            ctor = self.resolve_ctor(info.base, decl.base_args, decl)
            decl.base_ctor = ctor  # annotation
        self.check_block(decl.body)
        if mi.return_type is not cts.VOID and not _terminates(decl.body):
            raise self.error(
                f"{mi.full_name}: not all code paths return a value", decl
            )
        self._method = None

    # scope helpers
    def push_scope(self) -> None:
        self._scopes.append({})

    def pop_scope(self) -> None:
        self._scopes.pop()

    def declare(self, name: str, ctype: CType, node: ast.Node) -> VarSymbol:
        # C# forbids shadowing any local/parameter of an enclosing scope
        for scope in self._scopes:
            if name in scope:
                raise self.error(f"duplicate variable {name!r}", node)
        sym = VarSymbol(name, ctype, "local")
        self._scopes[-1][name] = sym
        return sym

    def lookup(self, name: str) -> Optional[VarSymbol]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------- statements

    def check_block(self, block: ast.Block) -> None:
        self.push_scope()
        for stmt in block.statements:
            self.check_stmt(stmt)
        self.pop_scope()

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            ctype = self.resolve_type(stmt.type_expr, stmt)
            if ctype is cts.VOID:
                raise self.error("variable cannot be void", stmt)
            stmt.ctype = ctype
            stmt.symbols = []
            for name, init in zip(stmt.names, stmt.inits):
                if init is not None:
                    self.check_expr(init)
                    self.coerce(init, ctype, stmt)
                sym = self.declare(name, ctype, stmt)
                stmt.symbols.append(sym)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.check_cond(stmt.cond)
            self.check_stmt(stmt.then)
            if stmt.other is not None:
                self.check_stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            self.check_cond(stmt.cond)
            self._loop_depth += 1
            self.check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self.check_stmt(stmt.body)
            self._loop_depth -= 1
            self.check_cond(stmt.cond)
        elif isinstance(stmt, ast.For):
            self.push_scope()
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.check_cond(stmt.cond)
            for u in stmt.update:
                self.check_expr(u)
            self._loop_depth += 1
            self.check_stmt(stmt.body)
            self._loop_depth -= 1
            self.pop_scope()
        elif isinstance(stmt, ast.Return):
            assert self._method is not None
            want = self._method.return_type
            if stmt.value is None:
                if want is not cts.VOID:
                    raise self.error("return requires a value", stmt)
            else:
                if want is cts.VOID:
                    raise self.error("void method cannot return a value", stmt)
                self.check_expr(stmt.value)
                self.coerce(stmt.value, want, stmt)
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise self.error("break outside loop", stmt)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise self.error("continue outside loop", stmt)
        elif isinstance(stmt, ast.Throw):
            if stmt.value is None:
                if self._catch_depth == 0:
                    raise self.error("rethrow outside catch", stmt)
            else:
                self.check_expr(stmt.value)
                t = stmt.value.ctype
                info = self.class_of_type(t)
                if info is None or not self.is_exception_type(info):
                    raise self.error(
                        f"thrown value must derive from Exception (got {t.name})",
                        stmt,
                    )
        elif isinstance(stmt, ast.Try):
            self.check_block(stmt.body)
            for clause in stmt.catches:
                info = self.classes.get(clause.type_name)
                if info is None or not self.is_exception_type(info):
                    raise self.error(
                        f"catch type {clause.type_name!r} is not an exception class",
                        clause,
                    )
                clause.class_info = info
                self.push_scope()
                if clause.var_name:
                    ct = cts.named(info.name)
                    clause.var_symbol = self.declare(clause.var_name, ct, clause)
                else:
                    clause.var_symbol = None
                self._catch_depth += 1
                # note: catch body is a Block but the variable scope wraps it
                for s in clause.body.statements:
                    self.check_stmt(s)
                self._catch_depth -= 1
                self.pop_scope()
            if stmt.finally_body is not None:
                self.check_block(stmt.finally_body)
        elif isinstance(stmt, ast.Lock):
            self.check_expr(stmt.target)
            if not stmt.target.ctype.is_reference:
                raise self.error("lock target must be a reference type", stmt)
            self.check_stmt(stmt.body)
        else:  # pragma: no cover - defensive
            raise self.error(f"unknown statement {type(stmt).__name__}", stmt)

    def check_cond(self, expr: ast.Expr) -> None:
        self.check_expr(expr)
        if expr.ctype is not cts.BOOL:
            raise self.error(f"condition must be bool (got {expr.ctype.name})", expr)

    # ------------------------------------------------------------ expressions

    def check_expr(self, expr: ast.Expr) -> CType:
        method = getattr(self, f"_check_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover - defensive
            raise self.error(f"unknown expression {type(expr).__name__}", expr)
        t = method(expr)
        expr.ctype = t
        if not hasattr(expr, "coerce_to"):
            expr.coerce_to = None
        return t

    def _check_IntLit(self, e: ast.IntLit) -> CType:
        if e.is_long:
            return cts.INT64
        if not (-(2**31) <= e.value < 2**31):
            return cts.INT64
        return cts.INT32

    def _check_FloatLit(self, e: ast.FloatLit) -> CType:
        return cts.FLOAT32 if e.is_single else cts.FLOAT64

    def _check_BoolLit(self, e: ast.BoolLit) -> CType:
        return cts.BOOL

    def _check_StringLit(self, e: ast.StringLit) -> CType:
        return cts.STRING

    def _check_CharLit(self, e: ast.CharLit) -> CType:
        return cts.CHAR

    def _check_NullLit(self, e: ast.NullLit) -> CType:
        return cts.NULL

    def _check_ThisExpr(self, e: ast.ThisExpr) -> CType:
        assert self._method is not None
        if self._method.is_static:
            raise self.error("'this' in a static method", e)
        t = cts.named(self._method.owner.name)
        t.value_type_hint = self._method.owner.is_struct
        return t

    def _check_Name(self, e: ast.Name) -> CType:
        assert self._method is not None
        sym = self.lookup(e.ident)
        if sym is not None:
            e.res = (sym.kind, sym)
            return sym.ctype
        owner = self._method.owner
        f = owner.find_field(e.ident)
        if f is not None:
            if f.is_static:
                e.res = ("sfield", f)
                return f.ctype
            if self._method.is_static:
                raise self.error(
                    f"instance field {e.ident!r} in static method", e
                )
            e.res = ("field", f)
            return f.ctype
        if e.ident in self.classes:
            e.res = ("type", self.classes[e.ident])
            return cts.VOID  # only valid as a member-access target
        if e.ident in INTRINSIC_ALIASES:
            e.res = ("builtin", INTRINSIC_ALIASES[e.ident])
            return cts.VOID
        if e.ident in cts.BY_NAME:
            e.res = ("prim", e.ident)
            return cts.VOID
        raise self.error(f"unknown name {e.ident!r}", e)

    def _check_Member(self, e: ast.Member) -> CType:
        target = e.target
        # type-qualified access: Class.static / Math.PI / int.MaxValue
        if isinstance(target, ast.Name):
            self.check_expr(target)
            res = getattr(target, "res", None)
            if res is not None and res[0] in ("type", "builtin", "prim"):
                if res[0] == "type":
                    info: ClassInfo = res[1]
                    f = info.find_field(e.name)
                    if f is not None and f.is_static:
                        e.res = ("sfield", f)
                        return f.ctype
                    raise self.error(
                        f"class {info.name} has no static field {e.name!r}", e
                    )
                if res[0] == "builtin":
                    key = (res[1], e.name)
                    if key in INTRINSIC_CONSTANTS:
                        ctype, value = INTRINSIC_CONSTANTS[key]
                        e.res = ("const", (ctype, value))
                        return ctype
                    raise self.error(
                        f"{res[1]} has no constant {e.name!r}", e
                    )
                # primitive constants: int.MaxValue ...
                key = (res[1], e.name)
                if key in INTRINSIC_CONSTANTS:
                    ctype, value = INTRINSIC_CONSTANTS[key]
                    e.res = ("const", (ctype, value))
                    return ctype
                raise self.error(f"{res[1]} has no member {e.name!r}", e)
        # instance member access
        t = self.check_expr(target)
        if t.is_array:
            if e.name == "Length":
                e.res = ("arraylen",)
                return cts.INT32
            if e.name == "Rank":
                e.res = ("const", (cts.INT32, t.rank))
                return cts.INT32
            raise self.error(f"array has no member {e.name!r}", e)
        if t is cts.STRING:
            if e.name == "Length":
                e.res = ("strlen",)
                return cts.INT32
            raise self.error(f"string has no member {e.name!r}", e)
        info = self.class_of_type(t)
        if info is None:
            raise self.error(f"{t.name} has no members", e)
        f = info.find_field(e.name)
        if f is None:
            raise self.error(f"{info.name} has no field {e.name!r}", e)
        if f.is_static:
            raise self.error(
                f"static field {e.name!r} accessed through instance", e
            )
        e.res = ("field", f)
        return f.ctype

    def _check_Index(self, e: ast.Index) -> CType:
        t = self.check_expr(e.target)
        if not t.is_array:
            raise self.error(f"cannot index {t.name}", e)
        if len(e.indices) != t.rank:
            raise self.error(
                f"array rank is {t.rank}, got {len(e.indices)} indices", e
            )
        for idx in e.indices:
            self.check_expr(idx)
            self.coerce(idx, cts.INT32, idx)
        e.elem_ctype = t.element
        e.rank = t.rank
        return t.element

    def _check_NewObject(self, e: ast.NewObject) -> CType:
        info = self.classes.get(e.type_name)
        if info is None:
            raise self.error(f"unknown class {e.type_name!r}", e)
        for a in e.args:
            self.check_expr(a)
        if not e.args and not info.methods.get(".ctor"):
            e.ctor = None  # default zero-initializing constructor
        else:
            e.ctor = self.resolve_ctor(info, e.args, e)
        e.class_info = info
        t = cts.named(info.name)
        t.value_type_hint = info.is_struct
        return t

    def resolve_ctor(
        self, info: ClassInfo, args: Sequence[ast.Expr], node: ast.Node
    ) -> MethodInfo:
        ctors = info.methods.get(".ctor", [])
        mi = self._pick_overload(ctors, args)
        if mi is None:
            raise self.error(
                f"no constructor of {info.name} takes {len(args)} such argument(s)",
                node,
            )
        for a, want in zip(args, mi.param_types):
            self.coerce(a, want, node)
        return mi

    def _check_NewArray(self, e: ast.NewArray) -> CType:
        elem = self.resolve_type(e.element, e)
        rank = len(e.dims)
        for d in e.dims:
            self.check_expr(d)
            self.coerce(d, cts.INT32, d)
        # jagged suffixes wrap the element type
        for extra in reversed(e.extra_ranks):
            elem = cts.array_of(elem, extra)
        e.elem_ctype = elem
        e.rank = rank
        return cts.array_of(elem, rank)

    def _check_Unary(self, e: ast.Unary) -> CType:
        t = self.check_expr(e.operand)
        st = cts.stack_type(t)
        if e.op == "-":
            if st not in (cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64):
                raise self.error(f"cannot negate {t.name}", e)
            return st
        if e.op == "!":
            if t is not cts.BOOL:
                raise self.error("! requires bool", e)
            return cts.BOOL
        if e.op == "~":
            if st not in (cts.INT32, cts.INT64):
                raise self.error("~ requires an integer", e)
            return st
        raise self.error(f"unknown unary {e.op}", e)  # pragma: no cover

    _COMPARISON = frozenset(["==", "!=", "<", ">", "<=", ">="])

    def _check_Binary(self, e: ast.Binary) -> CType:
        lt = self.check_expr(e.left)
        rt = self.check_expr(e.right)
        op = e.op
        # string concatenation via + (paper keeps support code identical
        # across C# and Java; both languages concat with +)
        if op == "+" and (lt is cts.STRING or rt is cts.STRING):
            ref = find_intrinsic("System.String", "Concat", (cts.stack_type(lt), cts.stack_type(rt)))
            if ref is None:
                raise self.error(f"cannot concatenate {lt.name} and {rt.name}", e)
            for operand, want in ((e.left, ref.param_types[0]), (e.right, ref.param_types[1])):
                self.coerce(operand, want, e)
            e.concat_ref = ref
            return cts.STRING
        if op in ("==", "!=") and (lt.is_reference or rt.is_reference):
            if lt is cts.STRING and rt is cts.STRING:
                e.string_equality = True
                return cts.BOOL
            if not (lt.is_reference or lt is cts.NULL) or not (
                rt.is_reference or rt is cts.NULL
            ):
                raise self.error(f"cannot compare {lt.name} and {rt.name}", e)
            return cts.BOOL
        if op in ("<<", ">>"):
            if cts.stack_type(lt) not in (cts.INT32, cts.INT64):
                raise self.error("shift requires an integer", e)
            self.coerce(e.right, cts.INT32, e)
            e.prom = cts.stack_type(lt)
            return e.prom
        if op in ("&", "|", "^"):
            if lt is cts.BOOL and rt is cts.BOOL:
                e.prom = cts.BOOL
                return cts.BOOL
            prom = promote(lt, rt)
            if prom is None or prom.is_float:
                raise self.error(f"cannot apply {op} to {lt.name}/{rt.name}", e)
            self.coerce(e.left, prom, e)
            self.coerce(e.right, prom, e)
            e.prom = prom
            return prom
        if op in ("==", "!=") and lt is cts.BOOL and rt is cts.BOOL:
            e.prom = cts.INT32
            return cts.BOOL
        prom = promote(lt, rt)
        if prom is None:
            raise self.error(f"cannot apply {op} to {lt.name} and {rt.name}", e)
        self.coerce(e.left, prom, e)
        self.coerce(e.right, prom, e)
        e.prom = prom
        if op in self._COMPARISON:
            return cts.BOOL
        if op in ("+", "-", "*", "/", "%"):
            return prom
        raise self.error(f"unknown operator {op}", e)  # pragma: no cover

    def _check_Logical(self, e: ast.Logical) -> CType:
        self.check_expr(e.left)
        self.check_expr(e.right)
        if e.left.ctype is not cts.BOOL or e.right.ctype is not cts.BOOL:
            raise self.error(f"{e.op} requires bool operands", e)
        return cts.BOOL

    def _check_Conditional(self, e: ast.Conditional) -> CType:
        self.check_cond(e.cond)
        lt = self.check_expr(e.then)
        rt = self.check_expr(e.other)
        if cts.stack_type(lt) is cts.stack_type(rt):
            return cts.stack_type(lt)
        prom = promote(lt, rt)
        if prom is None:
            if lt.is_reference and rt.is_reference:
                return lt if rt is cts.NULL else rt if lt is cts.NULL else cts.OBJECT
            raise self.error(
                f"incompatible conditional branches {lt.name}/{rt.name}", e
            )
        self.coerce(e.then, prom, e)
        self.coerce(e.other, prom, e)
        return prom

    def _check_Assign(self, e: ast.Assign) -> CType:
        target_type = self._check_assign_target(e.target)
        self.check_expr(e.value)
        if e.op:
            # compound: target op value, result converted back to target type
            prom = None
            if e.op in ("<<", ">>"):
                self.coerce(e.value, cts.INT32, e)
                prom = cts.stack_type(target_type)
            elif e.op == "+" and target_type is cts.STRING:
                ref = find_intrinsic(
                    "System.String", "Concat",
                    (cts.STRING, cts.stack_type(e.value.ctype)),
                )
                if ref is None:
                    raise self.error("cannot concatenate", e)
                self.coerce(e.value, ref.param_types[1], e)
                e.concat_ref = ref
                e.prom = cts.STRING
                return cts.STRING
            else:
                prom = promote(target_type, e.value.ctype)
                if prom is None or (
                    e.op in ("&", "|", "^", "%") and prom.is_float and e.op != "%"
                ):
                    raise self.error(
                        f"cannot apply {e.op}= to {target_type.name} and "
                        f"{e.value.ctype.name}", e,
                    )
                self.coerce(e.value, prom, e)
            e.prom = prom
            # implicit demotion back to the target's storage type is
            # performed by the code generator (C# compound-assignment rule)
        else:
            self.coerce(e.value, target_type, e)
        return target_type

    def _check_assign_target(self, target: ast.Expr) -> CType:
        if isinstance(target, ast.Name):
            t = self.check_expr(target)
            res = target.res
            if res[0] in ("local", "arg"):
                return res[1].ctype
            if res[0] in ("field", "sfield"):
                return res[1].ctype
            raise self.error("cannot assign to this name", target)
        if isinstance(target, ast.Member):
            t = self.check_expr(target)
            res = getattr(target, "res", None)
            if res and res[0] in ("field", "sfield"):
                return res[1].ctype
            raise self.error("cannot assign to this member", target)
        if isinstance(target, ast.Index):
            return self.check_expr(target)
        raise self.error("invalid assignment target", target)

    def _check_IncDec(self, e: ast.IncDec) -> CType:
        t = self._check_assign_target(e.target)
        if cts.stack_type(t) not in (cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64):
            raise self.error(f"cannot increment {t.name}", e)
        return t

    def _check_Cast(self, e: ast.Cast) -> CType:
        target = self.resolve_type(e.type_expr, e)
        src = self.check_expr(e.operand)
        e.target_ctype = target
        if target in _RANK and src is not cts.BOOL and (src in _RANK or cts.stack_type(src) in (cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64)) and not src.is_reference:
            e.kind = "numeric"
            return target
        if src is cts.BOOL and target is cts.BOOL:
            e.kind = "identity"
            return target
        if not src.is_reference and (target is cts.OBJECT):
            e.kind = "box"
            return target
        if src.is_reference and (target in _RANK or target is cts.BOOL):
            e.kind = "unbox"
            return target
        if src.is_reference and isinstance(target, cts.NamedType) and target.is_value_type:
            e.kind = "unbox_struct"
            return target
        if src.is_reference and target.is_reference:
            e.kind = "downcast"
            return target
        raise self.error(f"cannot cast {src.name} to {target.name}", e)

    def _check_Call(self, e: ast.Call) -> CType:
        callee = e.callee
        for a in e.args:
            self.check_expr(a)
        arg_types = [a.ctype for a in e.args]

        # bare call: method of the current class
        if isinstance(callee, ast.Name):
            assert self._method is not None
            owner = self._method.owner
            candidates = owner.find_methods(callee.ident)
            mi = self._pick_overload(candidates, e.args)
            if mi is None:
                raise self.error(
                    f"no method {callee.ident!r} on {owner.name} matches", e
                )
            if not mi.is_static and self._method.is_static:
                raise self.error(
                    f"instance method {mi.full_name} called from static context", e
                )
            self._finish_call(e, mi)
            e.call_kind = (
                "static"
                if mi.is_static
                else ("virtual" if mi.dispatches_virtually else "instance")
            )
            e.implicit_this = not mi.is_static
            return mi.return_type

        if isinstance(callee, ast.Member):
            target = callee.target
            # base.Method(...)
            if isinstance(target, ast.Name) and target.ident == "base":
                assert self._method is not None
                if self._method.owner.base is None:
                    raise self.error("base call with no base class", e)
                candidates = self._method.owner.base.find_methods(callee.name)
                mi = self._pick_overload(candidates, e.args)
                if mi is None:
                    raise self.error(f"no base method {callee.name!r} matches", e)
                self._finish_call(e, mi)
                e.call_kind = "base"
                return mi.return_type
            # static/intrinsic: Type.Method(...)
            if isinstance(target, ast.Name):
                self.check_expr(target)
                res = getattr(target, "res", None)
                if res is not None and res[0] == "builtin":
                    stack_args = tuple(cts.stack_type(t) for t in arg_types)
                    ref = find_intrinsic(res[1], callee.name, stack_args)
                    if ref is None:
                        raise self.error(
                            f"{res[1]} has no method {callee.name!r}"
                            f"({', '.join(t.name for t in stack_args)})", e,
                        )
                    for a, want in zip(e.args, ref.param_types):
                        self.coerce(a, want, e)
                    e.method_ref = ref
                    e.call_kind = "intrinsic"
                    return ref.return_type
                if res is not None and res[0] == "type":
                    info: ClassInfo = res[1]
                    candidates = [
                        m for m in info.find_methods(callee.name) if m.is_static
                    ]
                    mi = self._pick_overload(candidates, e.args)
                    if mi is None:
                        raise self.error(
                            f"no static method {info.name}.{callee.name} matches", e
                        )
                    self._finish_call(e, mi)
                    e.call_kind = "static"
                    return mi.return_type
            # instance call on an expression
            t = self.check_expr(target)
            if t.is_array and callee.name == "GetLength":
                if len(e.args) != 1:
                    raise self.error("GetLength takes one argument", e)
                self.coerce(e.args[0], cts.INT32, e)
                e.call_kind = "arraygetlength"
                e.method_ref = MethodRef(
                    "System.Array", "GetLength", (cts.OBJECT, cts.INT32), cts.INT32
                )
                return cts.INT32
            info = self.class_of_type(t)
            if info is None:
                raise self.error(f"{t.name} has no methods", e)
            candidates = [
                m for m in info.find_methods(callee.name) if not m.is_static
            ]
            mi = self._pick_overload(candidates, e.args)
            if mi is None:
                raise self.error(
                    f"no instance method {info.name}.{callee.name} matches", e
                )
            self._finish_call(e, mi)
            e.call_kind = "virtual" if mi.dispatches_virtually else "instance"
            return mi.return_type

        raise self.error("expression is not callable", e)

    def _pick_overload(
        self, candidates: Sequence[MethodInfo], args: Sequence[ast.Expr]
    ) -> Optional[MethodInfo]:
        best: Optional[Tuple[int, MethodInfo]] = None
        for m in candidates:
            if len(m.param_types) != len(args):
                continue
            score = 0
            ok = True
            for a, want in zip(args, m.param_types):
                got = a.ctype
                if cts.stack_type(got) is cts.stack_type(want):
                    continue
                src_info = self.class_of_type(got)
                dst_info = self.class_of_type(want)
                if (
                    src_info is not None
                    and dst_info is not None
                    and src_info.is_subclass_of(dst_info)
                ):
                    score += 1
                    continue
                if implicit_convertible(got, want):
                    score += 1
                else:
                    ok = False
                    break
            if ok and (best is None or score < best[0]):
                best = (score, m)
        return best[1] if best else None

    def _finish_call(self, e: ast.Call, mi: MethodInfo) -> None:
        for a, want in zip(e.args, mi.param_types):
            self.coerce(a, want, e)
        e.method = mi


# ---------------------------------------------------------------- reachability


def _terminates(stmt: ast.Stmt) -> bool:
    """True if every path through ``stmt`` returns or throws."""
    if isinstance(stmt, (ast.Return, ast.Throw)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_terminates(s) for s in stmt.statements)
    if isinstance(stmt, ast.If):
        return (
            stmt.other is not None
            and _terminates(stmt.then)
            and _terminates(stmt.other)
        )
    if isinstance(stmt, ast.While):
        if isinstance(stmt.cond, ast.BoolLit) and stmt.cond.value:
            return not _contains_break(stmt.body)
        return False
    if isinstance(stmt, ast.Try):
        if stmt.finally_body is not None and _terminates(stmt.finally_body):
            return True
        return _terminates(stmt.body) and all(
            _terminates(c.body) for c in stmt.catches
        )
    if isinstance(stmt, ast.Lock):
        return _terminates(stmt.body)
    return False


def _contains_break(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.Break):
        return True
    if isinstance(stmt, ast.Block):
        return any(_contains_break(s) for s in stmt.statements)
    if isinstance(stmt, ast.If):
        return _contains_break(stmt.then) or (
            stmt.other is not None and _contains_break(stmt.other)
        )
    if isinstance(stmt, (ast.Try,)):
        return (
            _contains_break(stmt.body)
            or any(_contains_break(c.body) for c in stmt.catches)
            or (stmt.finally_body is not None and _contains_break(stmt.finally_body))
        )
    if isinstance(stmt, ast.Lock):
        return _contains_break(stmt.body)
    # nested loops swallow their own breaks
    return False


def _clone_stmts(stmts: List[ast.Stmt]) -> List[ast.Stmt]:
    import copy

    return [copy.deepcopy(s) for s in stmts]


def check_program(program: ast.Program) -> Checker:
    """Run semantic analysis; returns the checker (for its class table)."""
    checker = Checker(program)
    checker.check()
    return checker
