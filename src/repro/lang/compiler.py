"""Public compiler driver: Kernel-C# source -> verified CIL assembly.

This is the reproduction's analogue of the paper's single-compiler rule
("we use a single compiler (the CLR 1.1 C# compiler) to generate the
intermediate code, and this code is then executed on each of the different
runtimes"): :func:`compile_source` runs once; every runtime profile consumes
the identical :class:`~repro.cil.metadata.Assembly`.
"""

from __future__ import annotations

from typing import Optional

from ..cil.metadata import Assembly
from ..cil.verifier import verify_assembly
from .builtins import CORELIB_SOURCE
from .codegen import CodeGen
from .parser import parse
from .typecheck import check_program

#: compiler generation tag; part of every persistent compile-cache key
#: (:mod:`repro.parallel.cache`).  Bump whenever the front end, codegen, or
#: verifier change observable output, so stale cached assemblies are never
#: reused across compiler versions.
COMPILER_VERSION = "kernel-cs/2"

#: process-local call accounting, primarily so tests (and the parallel
#: layer's cache-effectiveness assertions) can prove a warm compile cache
#: performs zero real compilations.
COMPILE_STATS = {"compile_source_calls": 0}


def compile_source(
    source: str,
    assembly_name: str = "program",
    entry_class: Optional[str] = None,
    entry_method: str = "Main",
    include_corelib: bool = True,
    verify: bool = True,
) -> Assembly:
    """Compile Kernel-C# ``source`` into a verified CIL assembly.

    ``entry_class`` of ``None`` picks the first class defining a static
    method named ``entry_method`` (if any); the assembly then carries an
    entry point the machine can run directly.
    """
    COMPILE_STATS["compile_source_calls"] += 1
    full = (CORELIB_SOURCE + "\n" + source) if include_corelib else source
    program = parse(full)
    checker = check_program(program)
    assembly = CodeGen(checker, assembly_name).generate()
    if verify:
        verify_assembly(assembly)
    if entry_class is None:
        for cls in assembly.classes.values():
            m = cls.find_method(entry_method)
            if m is not None and m.is_static:
                entry_class = cls.name
                break
    if entry_class is not None:
        cls = assembly.get_class(entry_class)
        if cls.find_method(entry_method) is not None:
            assembly.set_entry_point(entry_class, entry_method)
    return assembly


def compile_file(path: str, **kwargs) -> Assembly:
    """Compile a ``.cs`` file from disk (see :func:`compile_source`)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    kwargs.setdefault("assembly_name", path.rsplit("/", 1)[-1].rsplit(".", 1)[0])
    return compile_source(source, **kwargs)
